/**
 * @file
 * Ablation of the design choices inside Algorithm 1 (DESIGN.md §5):
 *
 *  - grant order: (priority, DOD) vs priority-only vs DOD-only,
 *  - strict in-order greedy (the paper's Algorithm 1) vs skip-greedy,
 *  - restore-on-headroom (this repo's extension of the paper's
 *    "future work" direction: re-granting demoted racks as power
 *    frees up).
 *
 * Run at a constrained 2.3 MW limit and medium discharge, where the
 * grant budget cannot cover every rack's SLA current. The five
 * variants are independent events and fan out across the SweepRunner
 * pool (--threads N).
 */

#include <cstdio>

#include "bench_common.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;
using core::PriorityAwareOptions;

int
main(int argc, char **argv)
{
    bench::banner("Ablation",
                  "Algorithm 1 ordering and greedy variants "
                  "(limit 2.3 MW, medium discharge)");

    struct Variant
    {
        const char *name;
        PriorityAwareOptions options;
    };
    std::vector<Variant> variants;
    variants.push_back({"paper (priority, DOD, strict)", {}});
    {
        PriorityAwareOptions o;
        o.ignoreDod = true;
        variants.push_back({"priority only (ignore DOD)", o});
    }
    {
        PriorityAwareOptions o;
        o.ignorePriority = true;
        variants.push_back({"DOD only (ignore priority)", o});
    }
    {
        PriorityAwareOptions o;
        o.strictGreedy = false;
        variants.push_back({"skip-greedy", o});
    }
    {
        PriorityAwareOptions o;
        o.restoreOnHeadroom = true;
        variants.push_back({"restore on headroom (extension)", o});
    }

    auto options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(options);
    util::ThreadPool pool(
        bench::resolveThreadCount(options.threads));
    sim::SweepRunner runner(pool);

    std::vector<sim::SweepTask> tasks;
    for (const Variant &variant : variants) {
        sim::SweepTask task;
        task.label = variant.name;
        task.config = bench::paperEventConfig(
            PolicyKind::PriorityAware, util::megawatts(2.3), 0.5);
        task.config.priorityAwareOptions = variant.options;
        task.config.postEventDuration = util::minutes(100.0);
        task.traces = &bench::paperMsbTraces();
        tasks.push_back(std::move(task));
    }
    auto results = runner.run(tasks);

    util::TextTable table({"variant", "P1 met (89)", "P2 met (142)",
                           "P3 met (85)", "total", "max cap (kW)"});
    for (size_t v = 0; v < variants.size(); ++v) {
        const auto &result = results[v];
        table.addRow({variants[v].name,
                      util::strf("%d", result.slaMetByPriority[0]),
                      util::strf("%d", result.slaMetByPriority[1]),
                      util::strf("%d", result.slaMetByPriority[2]),
                      util::strf("%d", result.slaMetTotal()),
                      util::strf("%.0f",
                                 util::toKilowatts(result.maxCap))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading the ablation:\n"
        " - ignoring DOD wastes budget on deep-discharge racks and "
        "lowers the per-class\n   counts (the paper's "
        "lowest-discharge-first tiebreak is what maximizes them);\n"
        " - ignoring priority trades P1 misses for cheap P2/P3 "
        "grants — more total SLAs,\n   but the wrong ones;\n"
        " - skip-greedy and restore-on-headroom recover some grants "
        "the strict paper\n   algorithm leaves on the table.\n");
    bench::finishObservability(options);
    return 0;
}
