#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <type_traits>

#include "obs/chrome_trace_writer.h"
#include "obs/crash_bundle.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series_recorder.h"
#include "obs/trace_span.h"
#include "trace/trace_cache.h"
#include "util/logging.h"

namespace dcbatt::bench {

// The singleton-sharing contract of paperMsbTraces(): the reference
// is const, so SweepRunner tasks can only reach TraceSet's const read
// paths. (Thread-safe construction is the language's: function-local
// statics initialize under a lock since C++11.)
static_assert(
    std::is_const_v<
        std::remove_reference_t<decltype(paperMsbTraces())>>,
    "paperMsbTraces must return a const reference; SweepRunner tasks "
    "share the instance");
static_assert(
    std::is_const_v<
        std::remove_reference_t<decltype(paperPriorities())>>,
    "paperPriorities must return a const reference; SweepRunner tasks "
    "share the instance");

const std::vector<power::Priority> &
paperPriorities()
{
    static const std::vector<power::Priority> priorities =
        trace::paperMsbPriorities();
    return priorities;
}

const trace::TraceSet &
paperMsbTraces()
{
    // Resolved through the process-wide trace cache so benches that
    // also build the spec themselves (or run several figures in one
    // process) replay the one generated instance.
    static const std::shared_ptr<const trace::TraceSet> traces = [] {
        trace::TraceGenSpec spec;
        spec.rackCount = 316;
        spec.startTime = util::hours(10.0);
        spec.duration = util::hours(8.0);
        spec.step = util::Seconds(3.0);
        spec.priorities = paperPriorities();
        return trace::sharedTraces(spec);
    }();
    return *traces;
}

core::ChargingEventConfig
paperEventConfig(core::PolicyKind policy, util::Watts limit,
                 double mean_dod)
{
    core::ChargingEventConfig config;
    config.policy = policy;
    config.msbLimit = limit;
    config.targetMeanDod = mean_dod;
    config.priorities = paperPriorities();
    return config;
}

std::string
fmtMw(util::Watts watts)
{
    return util::strf("%.3f MW", util::toMegawatts(watts));
}

std::string
fmtKw(util::Watts watts)
{
    return util::strf("%.1f kW", util::toKilowatts(watts));
}

std::string
fmtMin(util::Seconds seconds)
{
    return util::strf("%.1f min", util::toMinutes(seconds));
}

BenchRunOptions
parseBenchRunOptions(int argc, char **argv)
{
    BenchRunOptions options;
    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc)
            util::fatal(util::strf("flag %s needs a value", argv[i]));
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--threads") {
            options.threads = std::atoi(need_value(i++));
        } else if (flag == "--years") {
            options.aorYears = std::atof(need_value(i++));
        } else if (flag == "--shards") {
            options.aorShards = std::atoi(need_value(i++));
        } else if (flag == "--metrics-json") {
            options.metricsJsonPath = need_value(i++);
        } else if (flag == "--trace-out") {
            options.traceOutPath = need_value(i++);
        } else if (flag == "--timeseries-out") {
            options.timeSeriesOutPath = need_value(i++);
        } else if (flag == "--timeseries-cadence") {
            options.timeSeriesCadence = std::atof(need_value(i++));
        } else if (flag == "--timeseries-mode") {
            options.timeSeriesMode = need_value(i++);
        } else if (flag == "--events-out") {
            options.eventsOutPath = need_value(i++);
        } else if (flag == "--crash-dir") {
            options.crashDirPath = need_value(i++);
        } else if (!flag.empty()
                   && flag.find_first_not_of("0123456789.e+")
                       == std::string::npos) {
            // Bare year count (fig09a's historical positional arg).
            options.aorYears = std::atof(flag.c_str());
        } else {
            util::fatal(util::strf(
                "unknown bench flag: %s (expected --threads N, "
                "--years X, --shards N, --metrics-json PATH, "
                "--trace-out PATH, --timeseries-out PATH, "
                "--timeseries-cadence SECS, --timeseries-mode "
                "decimate|ring, --events-out PATH, --crash-dir DIR)",
                flag.c_str()));
        }
    }
    if (options.threads < 0)
        util::fatal("--threads must be >= 0");
    if (options.aorShards < 1)
        util::fatal("--shards must be >= 1");
    if (options.aorYears <= 0.0)
        util::fatal("--years must be positive");
    if (options.timeSeriesCadence <= 0.0)
        util::fatal("--timeseries-cadence must be positive");
    if (options.timeSeriesMode != "decimate"
        && options.timeSeriesMode != "ring")
        util::fatal("--timeseries-mode must be decimate or ring");
    return options;
}

void
initObservability(const BenchRunOptions &options)
{
    if (!options.traceOutPath.empty())
        obs::setTracingEnabled(true);
    if (!options.timeSeriesOutPath.empty()) {
        obs::TimeSeriesOptions ts;
        ts.cadenceSeconds = options.timeSeriesCadence;
        ts.bound = options.timeSeriesMode == "ring"
            ? obs::TimeSeriesBound::Ring
            : obs::TimeSeriesBound::Decimate;
        obs::armTimeSeries(ts);
    }
    if (!options.eventsOutPath.empty())
        obs::setEventLoggingEnabled(true);
    // The flag wins; the environment variable lets CI arm post-mortem
    // bundles fleet-wide without touching every invocation.
    std::string crash_dir = options.crashDirPath;
    if (crash_dir.empty()) {
        if (const char *env = std::getenv("DCBATT_CRASH_DIR"))
            crash_dir = env;
    }
    if (!crash_dir.empty())
        obs::setCrashBundleDir(crash_dir);
}

void
finishObservability(const BenchRunOptions &options)
{
    if (!options.metricsJsonPath.empty()) {
        obs::writeMetricsJson(options.metricsJsonPath);
        std::fprintf(stderr, "[bench] metrics snapshot: %s\n",
                     options.metricsJsonPath.c_str());
    }
    if (!options.traceOutPath.empty()) {
        obs::writeChromeTrace(options.traceOutPath);
        std::fprintf(stderr, "[bench] chrome trace: %s\n",
                     options.traceOutPath.c_str());
    }
    if (!options.timeSeriesOutPath.empty()) {
        obs::writeTimeSeries(options.timeSeriesOutPath);
        std::fprintf(stderr, "[bench] time series: %s\n",
                     options.timeSeriesOutPath.c_str());
    }
    if (!options.eventsOutPath.empty()) {
        obs::writeEventsJsonl(options.eventsOutPath);
        std::fprintf(stderr, "[bench] event log: %s\n",
                     options.eventsOutPath.c_str());
    }
}

unsigned
resolveThreadCount(int threads)
{
    unsigned resolved = threads > 0
        ? static_cast<unsigned>(threads)
        : util::ThreadPool::hardwareThreads();
    // stderr on purpose: stdout must not depend on the thread count.
    std::fprintf(stderr, "[bench] worker threads: %u\n", resolved);
    return resolved;
}

void
banner(const std::string &artifact, const std::string &summary)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s — %s\n", artifact.c_str(), summary.c_str());
    std::printf("==============================================="
                "=====================\n");
}

} // namespace dcbatt::bench
