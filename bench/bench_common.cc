#include "bench_common.h"

#include <cstdio>

#include "util/logging.h"

namespace dcbatt::bench {

const std::vector<power::Priority> &
paperPriorities()
{
    static const std::vector<power::Priority> priorities =
        trace::paperMsbPriorities();
    return priorities;
}

const trace::TraceSet &
paperMsbTraces()
{
    static const trace::TraceSet traces = [] {
        trace::TraceGenSpec spec;
        spec.rackCount = 316;
        spec.startTime = util::hours(10.0);
        spec.duration = util::hours(8.0);
        spec.step = util::Seconds(3.0);
        spec.priorities = paperPriorities();
        return trace::generateTraces(spec);
    }();
    return traces;
}

core::ChargingEventConfig
paperEventConfig(core::PolicyKind policy, util::Watts limit,
                 double mean_dod)
{
    core::ChargingEventConfig config;
    config.policy = policy;
    config.msbLimit = limit;
    config.targetMeanDod = mean_dod;
    config.priorities = paperPriorities();
    return config;
}

std::string
fmtMw(util::Watts watts)
{
    return util::strf("%.3f MW", util::toMegawatts(watts));
}

std::string
fmtKw(util::Watts watts)
{
    return util::strf("%.1f kW", util::toKilowatts(watts));
}

std::string
fmtMin(util::Seconds seconds)
{
    return util::strf("%.1f min", util::toMinutes(seconds));
}

void
banner(const std::string &artifact, const std::string &summary)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s — %s\n", artifact.c_str(), summary.c_str());
    std::printf("==============================================="
                "=====================\n");
}

} // namespace dcbatt::bench
