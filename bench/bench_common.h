/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: the
 * paper's MSB fleet trace (generated once and cached), and small
 * formatting helpers so every bench prints comparable output.
 */

#ifndef DCBATT_BENCH_BENCH_COMMON_H_
#define DCBATT_BENCH_BENCH_COMMON_H_

#include <string>

#include "core/charging_event_sim.h"
#include "sim/sweep_runner.h"
#include "trace/trace_generator.h"
#include "trace/trace_set.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace dcbatt::bench {

/**
 * The simulation-experiment fleet of Section V-B: 316 racks (89 P1,
 * 142 P2, 85 P3) under one MSB, 3 s samples, 8-hour window around the
 * first afternoon peak.
 *
 * Thread-safety contract: this is a process-wide singleton built by
 * C++11 thread-safe static initialization (first caller constructs,
 * concurrent callers block until it is ready) and returned as a
 * *const* reference — it is never mutated afterwards, TraceSet's read
 * paths are all const, and so the one instance is safe to share
 * across SweepRunner tasks. bench_common.cc static_asserts the const
 * part of the contract.
 */
const trace::TraceSet &paperMsbTraces();

/** The matching priority vector. */
const std::vector<power::Priority> &paperPriorities();

/** Base config for the Section V-B experiments. */
core::ChargingEventConfig paperEventConfig(core::PolicyKind policy,
                                           util::Watts limit,
                                           double mean_dod);

/** "2.500 MW" style formatting. */
std::string fmtMw(util::Watts watts);
/** "123.4 kW" style formatting. */
std::string fmtKw(util::Watts watts);
/** "12.3 min" style formatting. */
std::string fmtMin(util::Seconds seconds);

/** Print a bench banner naming the paper artifact being reproduced. */
void banner(const std::string &artifact, const std::string &summary);

/**
 * Command-line options shared by the parallel benches. Thread count
 * only changes wall time; the AOR year/shard knobs are semantic (they
 * select the sampled failure history).
 */
struct BenchRunOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    int threads = 0;
    /** Monte Carlo horizon in years (fig09a). */
    double aorYears = 3e4;
    /** AOR shard count (fig09a); 1 = the legacy serial timeline. */
    int aorShards = 64;
    /** Write the final metrics snapshot here (empty = off). */
    std::string metricsJsonPath;
    /** Record spans and write a Chrome trace here (empty = off). */
    std::string traceOutPath;
    /**
     * Record flight-recorder time series and write them here (CSV,
     * or compact JSON for .json paths; empty = off).
     */
    std::string timeSeriesOutPath;
    /** Sampling cadence for --timeseries-out, in sim seconds. */
    double timeSeriesCadence = 30.0;
    /** Bound policy for --timeseries-out: decimate (default)/ring. */
    std::string timeSeriesMode = "decimate";
    /** Record the structured event log and write JSONL here. */
    std::string eventsOutPath;
    /**
     * Dump a post-mortem crash bundle here on contract/invariant
     * failure (also read from $DCBATT_CRASH_DIR; empty = off).
     */
    std::string crashDirPath;
};

/**
 * Parse `--threads N`, `--years X`, `--shards N`, `--metrics-json
 * PATH`, `--trace-out PATH`, `--timeseries-out PATH`,
 * `--timeseries-cadence SECS`, `--timeseries-mode decimate|ring`,
 * `--events-out PATH`, `--crash-dir DIR`. A bare positional number
 * is accepted as the year count (fig09a back-compat). Unknown flags
 * are fatal.
 */
BenchRunOptions parseBenchRunOptions(int argc, char **argv);

/**
 * Arm the requested recording sinks (spans for --trace-out, the
 * time-series recorder, the event log, the crash-bundle directory —
 * the latter also honoring $DCBATT_CRASH_DIR when the flag is
 * absent). Call before the run so recording covers it; a no-op when
 * nothing was requested.
 */
void initObservability(const BenchRunOptions &options);

/**
 * Write the side files requested by the observability flags. Call
 * after worker threads have quiesced (after the sweep). All of them
 * are side channels: nothing is printed to stdout, so the figure
 * artifact bytes do not depend on these flags.
 */
void finishObservability(const BenchRunOptions &options);

/**
 * Resolve the worker count (0 -> hardware concurrency) and announce
 * it on *stderr* — never stdout, which must stay byte-identical
 * across thread counts.
 */
unsigned resolveThreadCount(int threads);

} // namespace dcbatt::bench

#endif // DCBATT_BENCH_BENCH_COMMON_H_
