/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: the
 * paper's MSB fleet trace (generated once and cached), and small
 * formatting helpers so every bench prints comparable output.
 */

#ifndef DCBATT_BENCH_BENCH_COMMON_H_
#define DCBATT_BENCH_BENCH_COMMON_H_

#include <string>

#include "core/charging_event_sim.h"
#include "trace/trace_generator.h"
#include "trace/trace_set.h"
#include "util/logging.h"
#include "util/units.h"

namespace dcbatt::bench {

/**
 * The simulation-experiment fleet of Section V-B: 316 racks (89 P1,
 * 142 P2, 85 P3) under one MSB, 3 s samples, 8-hour window around the
 * first afternoon peak. Generated once per process.
 */
const trace::TraceSet &paperMsbTraces();

/** The matching priority vector. */
const std::vector<power::Priority> &paperPriorities();

/** Base config for the Section V-B experiments. */
core::ChargingEventConfig paperEventConfig(core::PolicyKind policy,
                                           util::Watts limit,
                                           double mean_dod);

/** "2.500 MW" style formatting. */
std::string fmtMw(util::Watts watts);
/** "123.4 kW" style formatting. */
std::string fmtKw(util::Watts watts);
/** "12.3 min" style formatting. */
std::string fmtMin(util::Seconds seconds);

/** Print a bench banner naming the paper artifact being reproduced. */
void banner(const std::string &artifact, const std::string &summary);

} // namespace dcbatt::bench

#endif // DCBATT_BENCH_BENCH_COMMON_H_
