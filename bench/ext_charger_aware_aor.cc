/**
 * @file
 * Extension experiment: charger-aware AOR.
 *
 * Fig. 9(a) sweeps a *fixed* battery charge time. In reality the
 * recharge after each power-loss episode depends on how deep the
 * discharge was (episode length x rack load) and which charger the
 * fleet runs. This bench closes that loop: it feeds the CC-CV
 * charge-time model into the Monte Carlo timeline and reports the AOR
 * a rack actually sees under the original charger, the variable
 * charger, and the coordinated SLA currents of each priority.
 */

#include <algorithm>
#include <cstdio>

#include "battery/charge_time_model.h"
#include "battery/charger_policy.h"
#include "bench_common.h"
#include "core/sla_current.h"
#include "reliability/aor_simulator.h"
#include "util/text_table.h"

using namespace dcbatt;
using reliability::LossInterval;
using util::Seconds;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Extension: charger-aware AOR",
                  "AOR from episode-dependent recharge times instead "
                  "of a fixed sweep value");

    reliability::AorConfig config;
    config.years = 3e4;
    reliability::AorSimulator sim(reliability::paperFailureData(),
                                  config);

    battery::ChargeTimeModel model;
    const util::Watts rack_load = util::kilowatts(6.3);
    const util::Watts per_bbu =
        rack_load / static_cast<double>(model.params().bbusPerRack);
    auto dod_of = [&](const LossInterval &loss) {
        double dod = (per_bbu * Seconds(loss.durationSeconds)).value()
            / model.params().fullDischargeEnergy.value();
        return std::clamp(dod, 0.0, 1.0);
    };

    util::TextTable table({"fleet / policy", "AOR",
                           "loss of redundancy (h/yr)"});

    // Original charger: always 5 A.
    auto original = sim.aorForChargeModel([&](const LossInterval &l) {
        return model.chargeTime(dod_of(l), util::Amperes(5.0));
    });
    table.addRow({"original 5 A charger",
                  util::strf("%.4f%%", original.aor * 100.0),
                  util::strf("%.2f",
                             original.lossOfRedundancyHoursPerYear)});

    // Variable charger: Eq. 1 current from the episode's DOD.
    battery::VariableChargerPolicy variable;
    auto var = sim.aorForChargeModel([&](const LossInterval &l) {
        double dod = dod_of(l);
        return model.chargeTime(dod, variable.initialCurrent(dod));
    });
    table.addRow({"variable charger (Eq. 1)",
                  util::strf("%.4f%%", var.aor * 100.0),
                  util::strf("%.2f",
                             var.lossOfRedundancyHoursPerYear)});

    // Coordinated: each priority charges at its SLA current.
    core::SlaCurrentCalculator calc(model,
                                    core::SlaTable::paperDefault());
    for (power::Priority p : power::kAllPriorities) {
        auto result = sim.aorForChargeModel(
            [&](const LossInterval &l) {
                double dod = dod_of(l);
                return model.chargeTime(
                    dod, calc.requiredCurrent(dod, p));
            });
        table.addRow(
            {util::strf("coordinated, %s SLA current", toString(p)),
             util::strf("%.4f%%", result.aor * 100.0),
             util::strf("%.2f",
                        result.lossOfRedundancyHoursPerYear)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf(
        "Reading the table: most episodes are ~45 s open transitions "
        "(DOD a few percent),\nso every charger spends its time in "
        "the flat CV region — the variable charger\ngives up almost "
        "no AOR versus the 5 A original while cutting the recharge "
        "spike\n60%%, and the coordinated SLA currents land each "
        "priority close to its Table II\ntarget without the "
        "fixed-charge-time approximation.\n");
    bench::finishObservability(run_options);
    return 0;
}
