/**
 * @file
 * Extension experiment: postponed charging (the paper's stated future
 * work — "we plan to explore postponing of battery charging, which
 * would allow us to further relax the AOR for lower priority racks").
 *
 * Below a ~2.22 MW limit the fleet's 1 A charging floors (316 racks x
 * 384 W = 121 kW) no longer fit the available power and the paper's
 * algorithm must fall back to server capping. With postponement the
 * coordinator instead *holds* lowest-priority racks entirely and
 * resumes them as higher-priority racks finish: servers are never
 * touched, at the cost of longer P3 redundancy-restoration times.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Extension: postponed charging",
                  "capping vs postponement below the 1 A floor "
                  "budget (medium discharge)");

    util::TextTable table(
        {"limit (MW)", "variant", "max cap (kW)", "racks postponed",
         "P1 met (89)", "P2 met (142)", "P3 met (85)"});
    for (double limit : {2.26, 2.22, 2.18, 2.14, 2.10}) {
        for (bool postpone : {false, true}) {
            auto config = bench::paperEventConfig(
                PolicyKind::PriorityAware, util::megawatts(limit),
                0.5);
            config.priorityAwareOptions.allowPostponement = postpone;
            config.postEventDuration = util::minutes(140.0);
            auto result = core::runChargingEvent(
                config, bench::paperMsbTraces());
            int held = 0;
            for (const auto &rack : result.racks)
                held += rack.everHeld ? 1 : 0;
            table.addRow(
                {util::strf("%.2f", limit),
                 postpone ? "postponement" : "paper (capping)",
                 util::strf("%.0f", util::toKilowatts(result.maxCap)),
                 util::strf("%d", held),
                 util::strf("%d", result.slaMetByPriority[0]),
                 util::strf("%d", result.slaMetByPriority[1]),
                 util::strf("%d", result.slaMetByPriority[2])});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading the table: below ~2.22 MW the paper's algorithm "
        "needs server capping\n(performance impact); postponement "
        "trades it for held P3 racks — no capping at\nany limit, "
        "same P1/P2 protection, lower P3 redundancy while held. "
        "This is the\nAOR relaxation for lower priorities the paper "
        "anticipated.\n");
    bench::finishObservability(run_options);
    return 0;
}
