/**
 * @file
 * Reproduces Fig. 2 (Case I): a sub-second regional utility blip. The
 * racks of three (of six) data-center buildings fall onto their
 * batteries for under a second; when utility power returns, every one
 * of their chargers starts in CC mode at the full 5 A — independent
 * of the tiny DOD — producing a ~9.3 MW spike on a 61.6 MW region
 * (~15%) that decays over tens of minutes.
 *
 * The fleet is homogeneous after a uniform sub-second blip, so the
 * region is simulated as one representative rack scaled by the
 * discharged-rack count — identical arithmetic, 10^4x faster.
 */

#include <cstdio>

#include "battery/power_shelf.h"
#include "bench_common.h"
#include "util/ascii_chart.h"

using namespace dcbatt;
using util::Seconds;
using util::Watts;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 2 (Case I)",
                  "regional utility blip: battery recharge spike with "
                  "the original 5 A charger");

    // Region: 6 buildings; ~9700 racks at ~6.35 kW = 61.6 MW. Racks
    // in 3 buildings (~4850) saw the blip and recharge.
    const double region_racks = 9700.0;
    const double discharged_racks = 4850.0;
    const Watts rack_it(61.6e6 / region_racks);

    battery::PowerShelf shelf(battery::makeOriginalCharger());
    shelf.loseInputPower();
    shelf.step(Seconds(0.8), rack_it);  // the sub-second voltage sag
    double dod = shelf.meanDod();
    shelf.restoreInputPower();

    util::TimeSeries region(Seconds(0.0), Seconds(5.0));
    for (double t = 0.0; t < 45.0 * 60.0; t += 5.0) {
        double recharge =
            shelf.rechargePower().value() * discharged_racks;
        region.append(61.6e6 + recharge);
        shelf.step(Seconds(5.0), rack_it);
    }

    util::ChartOptions options;
    options.title = "Region IT load during the recharge spike";
    options.xLabel = "time (minutes)";
    options.yLabel = "power (MW)";
    options.yMin = 60.0;
    options.yMax = 72.0;
    std::printf("%s\n",
                util::renderChart(
                    {util::seriesFromTimeSeries(region, "region power",
                                                '*', 1.0 / 300.0,
                                                1e-6)},
                    options)
                    .c_str());

    double spike = region.maxValue() - 61.6e6;
    // Spike duration: time until the extra power decays below 5%.
    double over_minutes = 0.0;
    for (size_t i = 0; i < region.size(); ++i) {
        if (region[i] - 61.6e6 > 0.05 * spike)
            over_minutes = region.timeAt(i).value() / 60.0;
    }
    std::printf("battery DOD after the blip:  %.2f%% (sub-second "
                "outage)\n",
                dod * 100.0);
    std::printf("pre-outage region power:     61.6 MW (paper: "
                "61.6 MW)\n");
    std::printf("recharge spike:              %.1f MW = %.0f%% "
                "(paper: 9.3 MW = 15%%)\n",
                spike / 1e6, spike / 61.6e6 * 100.0);
    std::printf("spike duration (to 5%%):      %.0f min (paper: "
                "~25 min)\n",
                over_minutes);
    std::printf("\nWhy: the original charger always starts in CC mode "
                "at 5 A regardless of DOD\n(Section III-A), so even a "
                "sub-second outage triggers the worst-case spike.\n");
    bench::finishObservability(run_options);
    return 0;
}
