/**
 * @file
 * Reproduces Fig. 3: charging of a BBU after a full 90-second
 * discharge with the original 5 A charger — current and voltage vs
 * time, the CC->CV handover at 52 V (~20 min), the 0.4 A cutoff, and
 * the ~36-minute total sequence.
 */

#include <cstdio>

#include "battery/bbu.h"
#include "battery/charge_time_model.h"
#include "bench_common.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using util::Amperes;
using util::Seconds;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 3",
                  "BBU charge profile after a full discharge (5 A "
                  "original charger)");

    battery::BbuModel bbu;
    bbu.discharge(util::Watts(3300.0), Seconds(90.0));  // 100% DOD
    bbu.startCharging(Amperes(5.0));

    util::ChartSeries current{"charging current (A)", 'I', {}, {}};
    util::ChartSeries voltage{"voltage (V/10)", 'V', {}, {}};
    util::TextTable table({"t (min)", "current (A)", "voltage (V)",
                           "phase", "input power (W)"});

    double t = 0.0;
    double cc_end_min = -1.0;
    while (!bbu.fullyCharged() && t < 3600.0 * 2.0) {
        if (static_cast<int>(t) % 120 == 0) {
            current.xs.push_back(t / 60.0);
            current.ys.push_back(bbu.chargingCurrent().value());
            voltage.xs.push_back(t / 60.0);
            voltage.ys.push_back(bbu.terminalVoltage().value() / 10.0);
        }
        if (static_cast<int>(t) % 240 == 0) {
            table.addRow({util::strf("%.0f", t / 60.0),
                          util::strf("%.2f",
                                     bbu.chargingCurrent().value()),
                          util::strf("%.1f",
                                     bbu.terminalVoltage().value()),
                          bbu.inCvPhase() ? "CV" : "CC",
                          util::strf("%.0f",
                                     bbu.inputPower().value())});
        }
        bool was_cc = !bbu.inCvPhase();
        bbu.step(Seconds(1.0));
        if (was_cc && bbu.inCvPhase())
            cc_end_min = (t + 1.0) / 60.0;
        t += 1.0;
    }

    std::printf("%s\n", table.render().c_str());

    util::ChartOptions options;
    options.title = "BBU charging after full discharge";
    options.xLabel = "time (minutes)";
    options.yLabel = "I (A) / V (V/10)";
    std::printf("%s\n",
                util::renderChart({current, voltage}, options).c_str());

    battery::ChargeTimeModel model;
    std::printf("CC phase ends (52 V reached):  %.1f min "
                "(paper: ~20 min)\n",
                cc_end_min);
    std::printf("full charging sequence:        %.1f min "
                "(paper: ~36 min)\n",
                t / 60.0);
    std::printf("closed-form charge time:       %s\n",
                bench::fmtMin(model.chargeTime(1.0, Amperes(5.0)))
                    .c_str());
    std::printf("initial charging power:        %.0f W "
                "(paper: ~260 W)\n",
                [&] {
                    battery::BbuModel fresh;
                    fresh.forceDod(1.0);
                    fresh.startCharging(Amperes(5.0));
                    return fresh.inputPower().value();
                }());
    bench::finishObservability(run_options);
    return 0;
}
