/**
 * @file
 * Reproduces Fig. 4: BBU recharge power versus time for different
 * depths of discharge with the original 5 A charger. The two paper
 * observations to verify: (1) shorter total charge time comes almost
 * entirely from a shorter CC phase, and (2) the initial charging
 * power (~260 W) is independent of DOD — the root cause of the
 * worst-case recharge spike after even sub-second outages.
 */

#include <cstdio>

#include "battery/bbu.h"
#include "bench_common.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using util::Amperes;
using util::Seconds;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 4",
                  "BBU recharge power vs time for DOD 25/50/75/100% "
                  "(5 A charger)");

    const double dods[] = {0.25, 0.50, 0.75, 1.00};
    const char glyphs[] = {'1', '2', '3', '4'};

    std::vector<util::ChartSeries> series;
    util::TextTable table({"DOD", "initial power (W)",
                           "CC phase (min)", "CV phase (min)",
                           "total (min)"});

    for (size_t i = 0; i < 4; ++i) {
        battery::BbuModel bbu;
        bbu.forceDod(dods[i]);
        bbu.startCharging(Amperes(5.0));
        util::ChartSeries s{util::strf("DOD %.0f%%", dods[i] * 100.0),
                            glyphs[i],
                            {},
                            {}};
        double initial_power = bbu.inputPower().value();
        double t = 0.0;
        double cc_min = 0.0;
        bool counted_cc = false;
        while (!bbu.fullyCharged() && t < 2.0 * 3600.0) {
            if (static_cast<int>(t) % 60 == 0) {
                s.xs.push_back(t / 60.0);
                s.ys.push_back(bbu.inputPower().value());
            }
            if (!counted_cc && bbu.inCvPhase()) {
                cc_min = t / 60.0;
                counted_cc = true;
            }
            bbu.step(Seconds(1.0));
            t += 1.0;
        }
        table.addRow({util::strf("%.0f%%", dods[i] * 100.0),
                      util::strf("%.0f", initial_power),
                      util::strf("%.1f", cc_min),
                      util::strf("%.1f", t / 60.0 - cc_min),
                      util::strf("%.1f", t / 60.0)});
        series.push_back(std::move(s));
    }

    std::printf("%s\n", table.render().c_str());

    util::ChartOptions options;
    options.title = "Recharge power vs time";
    options.xLabel = "time (minutes)";
    options.yLabel = "BBU input power (W)";
    std::printf("%s\n", util::renderChart(series, options).c_str());

    std::printf("Paper checks: initial power ~260 W for every DOD; "
                "CV-phase spread across DODs < 4 min.\n");
    bench::finishObservability(run_options);
    return 0;
}
