/**
 * @file
 * Reproduces Fig. 5: BBU charging time versus depth of discharge for
 * charging currents 1-5 A — the "lab data" the variable charger and
 * the SLA-current calculation are derived from.
 */

#include <cstdio>

#include "battery/charge_time_model.h"
#include "bench_common.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using util::Amperes;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 5",
                  "charging time vs DOD for charging currents 1-5 A");

    battery::ChargeTimeModel model;

    std::vector<std::string> header{"DOD"};
    for (int amps = 1; amps <= 5; ++amps)
        header.push_back(util::strf("%d A (min)", amps));
    util::TextTable table(header);

    std::vector<util::ChartSeries> series;
    for (int amps = 1; amps <= 5; ++amps) {
        series.push_back({util::strf("%d A", amps),
                          static_cast<char>('0' + amps),
                          {},
                          {}});
    }

    for (int pct = 5; pct <= 100; pct += 5) {
        double dod = pct / 100.0;
        std::vector<std::string> row{util::strf("%d%%", pct)};
        for (int amps = 1; amps <= 5; ++amps) {
            double min = util::toMinutes(
                model.chargeTime(dod, Amperes(amps)));
            row.push_back(util::strf("%.1f", min));
            series[static_cast<size_t>(amps - 1)].xs.push_back(dod
                                                               * 100.0);
            series[static_cast<size_t>(amps - 1)].ys.push_back(min);
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    util::ChartOptions options;
    options.title = "Charging time vs depth of discharge";
    options.xLabel = "depth of discharge (%)";
    options.yLabel = "charging time (min)";
    std::printf("%s\n", util::renderChart(series, options).c_str());

    std::printf("Paper checks:\n");
    std::printf("  flat below ~22%% DOD at 5 A:     threshold %.1f%%\n",
                model.flatDodThreshold(Amperes(5.0)) * 100.0);
    std::printf("  5 A worst case within 45 min:   %s\n",
                bench::fmtMin(model.chargeTime(1.0, Amperes(5.0)))
                    .c_str());
    std::printf("  1 A considerably slower:        %s\n",
                bench::fmtMin(model.chargeTime(1.0, Amperes(1.0)))
                    .c_str());
    std::printf("  <50%% DOD at 2 A ~same time:     %s\n",
                bench::fmtMin(model.chargeTime(0.5, Amperes(2.0)))
                    .c_str());
    bench::finishObservability(run_options);
    return 0;
}
