/**
 * @file
 * Reproduces Fig. 6(b) / Eq. (1): the variable charger's CC-mode
 * current selection as a function of depth of discharge, and verifies
 * the design objective (always recharge within the original charger's
 * 45-minute worst case while cutting recharge power by up to 60%).
 */

#include <cstdio>

#include "battery/charge_time_model.h"
#include "battery/charger_policy.h"
#include "bench_common.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using util::Amperes;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 6(b) / Eq. (1)",
                  "variable charger CC current selection vs DOD");

    battery::VariableChargerPolicy variable;
    battery::OriginalChargerPolicy original;
    battery::ChargeTimeModel model;

    util::ChartSeries eq1{"I_C (Eq. 1)", '*', {}, {}};
    util::TextTable table({"DOD", "I_C (A)", "charge time (min)",
                           "power vs original"});
    double worst_minutes = 0.0;
    for (int pct = 0; pct <= 100; pct += 5) {
        double dod = pct / 100.0;
        Amperes amps = variable.initialCurrent(dod);
        double minutes =
            util::toMinutes(model.chargeTime(dod, amps));
        worst_minutes = std::max(worst_minutes, minutes);
        eq1.xs.push_back(pct);
        eq1.ys.push_back(amps.value());
        if (pct % 10 == 0) {
            double reduction = 1.0
                - amps / original.initialCurrent(dod);
            table.addRow({util::strf("%d%%", pct),
                          util::strf("%.1f", amps.value()),
                          util::strf("%.1f", minutes),
                          util::strf("-%.0f%%", reduction * 100.0)});
        }
    }
    std::printf("%s\n", table.render().c_str());

    util::ChartOptions options;
    options.title = "Variable charger current selection";
    options.xLabel = "depth of discharge (%)";
    options.yLabel = "CC current (A)";
    options.yMin = 0.0;
    options.yMax = 6.0;
    std::printf("%s\n", util::renderChart({eq1}, options).c_str());

    std::printf("Paper checks:\n");
    std::printf("  2 A floor below 50%% DOD, linear 2->5 A above.\n");
    std::printf("  worst-case charge time %.1f min (must be <= 45)\n",
                worst_minutes);
    std::printf("  recharge power cut by 60%% for DOD < 50%% "
                "(2 A vs 5 A).\n");
    bench::finishObservability(run_options);
    return 0;
}
