/**
 * @file
 * Reproduces Fig. 7: the variable-charger production validation. An
 * RPP feeding a 14-rack test row is opened for 60 seconds; the BBUs
 * end up ~20% discharged on average, so the new charger picks 2 A and
 * the row's recharge spike is ~10 kW — versus the >26 kW the original
 * 5 A charger would have drawn (a 60% reduction).
 */

#include <cstdio>

#include "bench_common.h"
#include "power/topology.h"
#include "sim/event_queue.h"
#include "util/ascii_chart.h"
#include "util/random.h"

using namespace dcbatt;
using util::Seconds;
using util::Watts;

namespace {

/** Run the row test with one charger policy; return RPP power (1 s). */
util::TimeSeries
runRow(std::shared_ptr<const battery::ChargerPolicy> policy)
{
    power::TopologySpec spec;
    spec.rootKind = power::NodeKind::Rpp;
    spec.rootName = "testrow";
    spec.racksPerRpp = 14;
    auto topo = power::Topology::build(spec, std::move(policy));

    // Rack loads around 6.6 kW so a 60 s open transition lands at
    // ~20% average DOD (the paper's measured value).
    util::Rng rng(99);
    for (power::Rack *rack : topo.racks()) {
        rack->setItDemand(
            util::kilowatts(6.6 + rng.uniform(-1.2, 1.2)));
    }

    sim::EventQueue queue;
    topo.scheduleOpenTransition(queue, topo.root(),
                                sim::toTicks(Seconds(120.0)),
                                sim::toTicks(Seconds(60.0)));
    util::TimeSeries rpp_power(Seconds(0.0), Seconds(1.0));
    sim::PeriodicTask physics(queue, sim::toTicks(Seconds(1.0)),
                              [&](sim::Tick) {
                                  topo.stepRacks(Seconds(1.0));
                                  rpp_power.append(
                                      topo.root().inputPower().value());
                              });
    physics.start(0);
    queue.runUntil(sim::toTicks(util::minutes(60.0)));
    return rpp_power;
}

} // namespace

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 7",
                  "RPP power during the variable-charger production "
                  "validation (14-rack row, 60 s open transition)");

    util::TimeSeries variable =
        runRow(battery::makeVariableCharger());
    util::TimeSeries original =
        runRow(battery::makeOriginalCharger());

    util::ChartOptions options;
    options.title = "RPP power (14-rack test row)";
    options.xLabel = "time (minutes)";
    options.yLabel = "power (kW)";
    auto var_series = util::seriesFromTimeSeries(
        variable.downsample(30), "variable charger", 'v', 1.0 / 60.0,
        1e-3);
    auto orig_series = util::seriesFromTimeSeries(
        original.downsample(30), "original 5A charger", 'o',
        1.0 / 60.0, 1e-3);
    std::printf("%s\n",
                util::renderChart({orig_series, var_series}, options)
                    .c_str());

    double baseline = variable[100];
    double var_spike = variable.maxValue() - baseline;
    double orig_spike = original.maxValue() - baseline;
    std::printf("row IT load:                    %s\n",
                bench::fmtKw(Watts(baseline)).c_str());
    std::printf("recharge spike, variable:       %s "
                "(paper: ~10 kW)\n",
                bench::fmtKw(Watts(var_spike)).c_str());
    std::printf("recharge spike, original 5 A:   %s "
                "(paper: >26 kW)\n",
                bench::fmtKw(Watts(orig_spike)).c_str());
    std::printf("reduction:                      %.0f%% "
                "(paper: 60%%)\n",
                (1.0 - var_spike / orig_spike) * 100.0);
    bench::finishObservability(run_options);
    return 0;
}
