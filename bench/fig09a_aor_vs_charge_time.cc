/**
 * @file
 * Reproduces Fig. 9(a): availability of redundancy (AOR) of rack
 * power versus battery charging time, by Monte Carlo over the Table I
 * failure processes (Fig. 8 state machine, 10^5 simulated years).
 *
 * The horizon is split into --shards independent sub-histories (each
 * seeded by a counter-based substream of the seed), generated and
 * walked across the --threads worker pool. The shard count is part of
 * the experiment (it selects the sampled history); the thread count
 * is not — output is byte-identical at any thread count for the same
 * (seed, shards, years). `--shards 1` is the legacy serial timeline.
 */

#include <cstdio>

#include "bench_common.h"
#include "reliability/aor_simulator.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using util::minutes;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 9(a)",
                  "AOR of rack power vs battery charging time "
                  "(Monte Carlo)");

    auto options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(options);
    util::ThreadPool pool(
        bench::resolveThreadCount(options.threads));

    reliability::AorConfig config;
    // The paper simulates 1e5 years; default to 3e4 here to keep the
    // bench quick (pass --years to override).
    config.years = options.aorYears;
    config.shards = options.aorShards;
    reliability::AorSimulator sim(reliability::paperFailureData(),
                                  config, &pool);
    std::printf("simulated horizon: %.0f years in %d shards, %.2f "
                "power-loss episodes/year\n\n",
                config.years, config.shards,
                sim.aorForChargeTime(minutes(30.0)).lossEventsPerYear);

    util::TextTable table({"charge time (min)", "AOR (%)",
                           "loss of redundancy (h/yr)"});
    util::ChartSeries series{"AOR", '*', {}, {}};
    for (double m = 10.0; m <= 120.0; m += 10.0) {
        auto result = sim.aorForChargeTime(minutes(m));
        table.addRow({util::strf("%.0f", m),
                      util::strf("%.4f", result.aor * 100.0),
                      util::strf("%.2f",
                                 result.lossOfRedundancyHoursPerYear)});
        series.xs.push_back(m);
        series.ys.push_back(result.aor * 100.0);
    }
    std::printf("%s\n", table.render().c_str());

    util::ChartOptions chart_options;
    chart_options.title = "AOR vs battery charging time";
    chart_options.xLabel = "battery charging time (min)";
    chart_options.yLabel = "AOR (%)";
    std::printf("%s\n",
                util::renderChart({series}, chart_options).c_str());

    std::printf("Paper anchors: AOR(30 min) = 99.94%%, AOR(60 min) = "
                "99.90%%, AOR(90 min) = 99.85%%;\nAOR decreases "
                "~linearly with charging time.\n");
    bench::finishObservability(options);
    return 0;
}
