/**
 * @file
 * Reproduces Fig. 9(b): the charging current required to satisfy each
 * priority's charging-time SLA as a function of the battery's depth
 * of discharge, derived by inverting the Fig. 5 charge-time data.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/sla_current.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using power::Priority;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 9(b)",
                  "SLA charging current vs DOD per rack priority");

    core::SlaCurrentCalculator calc(battery::ChargeTimeModel(),
                                    core::SlaTable::paperDefault());

    util::TextTable table({"DOD", "P1 (30 min)", "P2 (60 min)",
                           "P3 (90 min)"});
    std::vector<util::ChartSeries> series{
        {"P1 (30 min SLA)", '1', {}, {}},
        {"P2 (60 min SLA)", '2', {}, {}},
        {"P3 (90 min SLA)", '3', {}, {}}};
    for (int pct = 0; pct <= 100; pct += 5) {
        double dod = pct / 100.0;
        std::vector<std::string> row{util::strf("%d%%", pct)};
        for (Priority p : power::kAllPriorities) {
            double amps = calc.requiredCurrent(dod, p).value();
            row.push_back(util::strf("%.2f A", amps));
            auto &s = series[static_cast<size_t>(
                power::priorityIndex(p))];
            s.xs.push_back(pct);
            s.ys.push_back(amps);
        }
        if (pct % 10 == 0)
            table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    util::ChartOptions options;
    options.title = "Required charging current vs DOD";
    options.xLabel = "depth of discharge (%)";
    options.yLabel = "charging current (A)";
    options.yMin = 0.0;
    options.yMax = 6.0;
    std::printf("%s\n", util::renderChart(series, options).c_str());

    std::printf("Paper checks: at <5%% DOD the SLA currents are 2 A "
                "(P1) and 1 A (P2/P3) — the\nvalues the Fig. 10 "
                "prototype assigned; P1 saturates at the 5 A hardware "
                "limit for\nDOD above %.0f%%.\n",
                calc.maxAttainableDod(Priority::P1) * 100.0);
    bench::finishObservability(run_options);
    return 0;
}
