/**
 * @file
 * Reproduces Fig. 10: the prototype experiment. A leaf controller
 * watches a 17-rack row (9 P1, 5 P2, 3 P3); a ~5 s open transition
 * leaves the BBUs at <5% DOD; the controller computes SLA charging
 * currents (2 A for P1, 1 A for P2/P3 per Fig. 9(b)) and overrides
 * the variable-charger defaults. P1 racks draw ~700 W and finish
 * within their 30-minute SLA; P2/P3 draw ~350 W and finish within
 * the hour.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/priority_aware_coordinator.h"
#include "dynamo/controller.h"
#include "power/topology.h"
#include "util/ascii_chart.h"
#include "util/random.h"

using namespace dcbatt;
using power::Priority;
using util::Seconds;
using util::Watts;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 10",
                  "prototype: leaf-controller coordinated charging of "
                  "a 17-rack row after a 5 s open transition");

    power::TopologySpec spec;
    spec.rootKind = power::NodeKind::Rpp;
    spec.rootName = "row";
    spec.racksPerRpp = 17;
    // 9 P1, 5 P2, 3 P3 as in the paper's test row.
    spec.priorities = power::makePriorityMix(9, 5, 3);
    auto topo = power::Topology::build(spec,
                                       battery::makeVariableCharger());

    util::Rng rng(4);
    for (power::Rack *rack : topo.racks())
        rack->setItDemand(util::kilowatts(6.0 + rng.uniform(-1.0, 1.0)));

    sim::EventQueue queue;
    core::SlaCurrentCalculator calc(battery::ChargeTimeModel(),
                                    core::SlaTable::paperDefault());
    core::PriorityAwareCoordinator coordinator(std::move(calc));
    dynamo::ControlPlane plane(topo, topo.root(), queue, &coordinator);
    plane.start();

    // Open transition at 09:43 (sim t=60 s) for ~5 seconds.
    topo.scheduleOpenTransition(queue, topo.root(),
                                sim::toTicks(Seconds(60.0)),
                                sim::toTicks(Seconds(5.0)));

    // Track each priority class's aggregate recharge power.
    util::TimeSeries p1(Seconds(0.0), Seconds(1.0));
    util::TimeSeries p2(Seconds(0.0), Seconds(1.0));
    util::TimeSeries p3(Seconds(0.0), Seconds(1.0));
    std::vector<double> done_minutes(17, -1.0);
    sim::PeriodicTask physics(queue, sim::toTicks(Seconds(1.0)),
                              [&](sim::Tick now) {
        topo.stepRacks(Seconds(1.0));
        Watts by_pri[3] = {Watts(0.0), Watts(0.0), Watts(0.0)};
        for (power::Rack *rack : topo.racks()) {
            by_pri[power::priorityIndex(rack->priority())] +=
                rack->rechargePower();
            if (done_minutes[static_cast<size_t>(rack->id())] < 0.0
                && sim::toSeconds(now).value() > 70.0
                && rack->shelf().fullyCharged()) {
                done_minutes[static_cast<size_t>(rack->id())] =
                    (sim::toSeconds(now).value() - 65.0) / 60.0;
            }
        }
        p1.append(by_pri[0].value());
        p2.append(by_pri[1].value());
        p3.append(by_pri[2].value());
    });
    physics.start(0);
    queue.runUntil(sim::toTicks(util::minutes(75.0)));

    util::ChartOptions options;
    options.title = "Aggregate BBU recharge power by priority";
    options.xLabel = "time (minutes)";
    options.yLabel = "recharge power (kW)";
    std::printf("%s\n",
                util::renderChart(
                    {util::seriesFromTimeSeries(p1.downsample(30),
                                                "9 P1 racks", '1',
                                                1.0 / 60.0, 1e-3),
                     util::seriesFromTimeSeries(p2.downsample(30),
                                                "5 P2 racks", '2',
                                                1.0 / 60.0, 1e-3),
                     util::seriesFromTimeSeries(p3.downsample(30),
                                                "3 P3 racks", '3',
                                                1.0 / 60.0, 1e-3)},
                    options)
                    .c_str());

    // Per-rack steady recharge power shortly after the overrides land.
    size_t sample_at = p1.indexAt(Seconds(60.0 + 5.0 + 60.0));
    std::printf("per-rack recharge power ~1 min after overrides:\n");
    std::printf("  P1: %.0f W/rack (paper: ~700 W at 2 A)\n",
                p1[sample_at] / 9.0);
    std::printf("  P2: %.0f W/rack (paper: ~350 W at 1 A)\n",
                p2[sample_at] / 5.0);
    std::printf("  P3: %.0f W/rack (paper: ~350 W at 1 A)\n",
                p3[sample_at] / 3.0);

    double p1_worst = 0.0, p23_worst = 0.0;
    for (power::Rack *rack : topo.racks()) {
        double minutes = done_minutes[static_cast<size_t>(rack->id())];
        if (rack->priority() == Priority::P1)
            p1_worst = std::max(p1_worst, minutes);
        else
            p23_worst = std::max(p23_worst, minutes);
    }
    std::printf("slowest P1 completion:   %.1f min "
                "(paper: within ~30 min)\n",
                p1_worst);
    std::printf("slowest P2/P3 completion: %.1f min "
                "(paper: within the hour)\n",
                p23_worst);
    std::printf("note: a deficit-based pack model refills a <5%% DOD "
                "battery faster than the production\n"
                "packs' measured wall time; the SLA outcomes match "
                "(see EXPERIMENTS.md).\n");
    bench::finishObservability(run_options);
    return 0;
}
