/**
 * @file
 * Reproduces Fig. 11: fine-grain recharge power of one rack whose BBU
 * charging current is overridden by the leaf controller. The open
 * transition starts at t=35 s; the controller detects the first BBU
 * recharge power, issues the override, and the BBU power stabilizes
 * at the override value ~20 s after the command (the actuation lag).
 */

#include <cstdio>

#include "bench_common.h"
#include "dynamo/agent.h"
#include "power/rack.h"
#include "util/ascii_chart.h"

using namespace dcbatt;
using util::Amperes;
using util::Seconds;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 11",
                  "rack recharge power during a charging-current "
                  "override (20 s actuation lag)");

    power::Rack rack(0, "rack", power::Priority::P2,
                     battery::makeVariableCharger());
    rack.setItDemand(util::kilowatts(6.3));
    sim::EventQueue queue;
    dynamo::RackAgent agent(rack, queue, Seconds(20.0));

    util::TimeSeries recharge(Seconds(0.0), Seconds(1.0));
    bool override_sent = false;
    double command_at = -1.0;
    double stabilized_at = -1.0;
    sim::PeriodicTask physics(queue, sim::toTicks(Seconds(1.0)),
                              [&](sim::Tick now) {
        double t = sim::toSeconds(now).value();
        // Open transition from t=35 s to t=70 s.
        if (t == 35.0)
            rack.loseInputPower();
        if (t == 70.0)
            rack.restoreInputPower();
        rack.step(Seconds(1.0));
        recharge.append(rack.rechargePower().value());
        // Leaf-controller behaviour: on first observed recharge
        // power, compute the SLA current (1 A for this P2 rack) and
        // command the override.
        if (!override_sent && rack.rechargePower().value() > 0.0) {
            agent.commandOverride(Amperes(1.0));
            override_sent = true;
            command_at = t;
        }
        if (override_sent && stabilized_at < 0.0
            && std::abs(agent.readSetpoint().value() - 1.0) < 1e-9) {
            stabilized_at = t;
        }
    });
    physics.start(0);
    queue.runUntil(sim::toTicks(Seconds(180.0)));

    util::ChartSeries series = util::seriesFromTimeSeries(
        recharge, "rack BBU recharge power", '*', 1.0, 1.0);
    util::ChartOptions options;
    options.title = "Rack recharge power (fine grain)";
    options.xLabel = "time (seconds)";
    options.yLabel = "power (W)";
    std::printf("%s\n", util::renderChart({series}, options).c_str());

    std::printf("open transition:        t=35 s .. 70 s\n");
    std::printf("override commanded at:  t=%.0f s (first recharge "
                "power observed)\n",
                command_at);
    std::printf("setpoint stabilized at: t=%.0f s — %.0f s after the "
                "command (paper: ~20 s)\n",
                stabilized_at, stabilized_at - command_at);
    std::printf("power before override:  %s (2 A variable-charger "
                "default)\n",
                bench::fmtKw(util::Watts(recharge.sample(
                                 Seconds(command_at + 10.0))))
                    .c_str());
    std::printf("power after override:   %s (1 A SLA current)\n",
                bench::fmtKw(util::Watts(recharge.sample(
                                 Seconds(stabilized_at + 10.0))))
                    .c_str());
    bench::finishObservability(run_options);
    return 0;
}
