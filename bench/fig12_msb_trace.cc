/**
 * @file
 * Reproduces Fig. 12: one week of aggregate power of the evaluation
 * MSB (316 racks), showing diurnal cycles between ~1.9 MW and
 * ~2.1 MW at the paper's granularity.
 */

#include <cstdio>

#include "bench_common.h"
#include "obs/event_log.h"
#include "obs/time_series_recorder.h"
#include "trace/trace_generator.h"
#include "util/ascii_chart.h"

using namespace dcbatt;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Fig. 12",
                  "aggregate MSB power over one week (synthetic "
                  "production trace, 316 racks)");

    trace::TraceGenSpec spec;
    spec.rackCount = 316;
    spec.duration = util::hours(24.0 * 7.0);
    spec.step = util::Seconds(60.0);
    spec.priorities = trace::paperMsbPriorities();
    trace::TraceSet traces = trace::generateTraces(spec);
    util::TimeSeries aggregate = traces.aggregate();

    // Flight recorder: replay the weekly aggregate onto a sampled
    // tape and note the trace milestones as events. Side channels
    // only — the chart below is printed from the full series either
    // way.
    obs::RunScope run_scope("fig12:msb_week");
    if (obs::eventLoggingEnabled()) {
        obs::logEvent(
            0.0, "trace_generated",
            {{"racks", static_cast<double>(spec.rackCount)},
             {"samples", static_cast<double>(traces.sampleCount())},
             {"step_s", spec.step.value()}});
        size_t peak_idx = traces.firstPeakIndex();
        obs::logEvent(aggregate.timeAt(peak_idx).value(), "trace_peak",
                      {{"msb_mw", aggregate[peak_idx] / 1e6}});
    }
    if (obs::timeSeriesArmed()) {
        obs::TimeSeriesRecorder recorder(
            obs::armedTimeSeriesOptions());
        size_t cursor = 0;
        recorder.addProbe("msb_aggregate_mw", [&aggregate, &cursor] {
            return aggregate[cursor] / 1e6;
        });
        for (cursor = 0; cursor < aggregate.size(); ++cursor)
            recorder.sampleAt(aggregate.timeAt(cursor).value());
        obs::publishTimeSeries(std::move(recorder));
    }

    util::ChartOptions options;
    options.title = "MSB aggregate power, one week";
    options.xLabel = "time (days)";
    options.yLabel = "power (MW)";
    options.yMin = 1.8;
    options.yMax = 2.2;
    std::printf("%s\n",
                util::renderChart(
                    {util::seriesFromTimeSeries(
                        aggregate.downsample(15), "MSB power", '*',
                        1.0 / 86400.0, 1e-6)},
                    options)
                    .c_str());

    size_t peak = traces.firstPeakIndex();
    std::printf("min:         %s   (paper band: 1.9 MW)\n",
                bench::fmtMw(util::Watts(aggregate.minValue()))
                    .c_str());
    std::printf("max:         %s   (paper band: 2.1 MW)\n",
                bench::fmtMw(util::Watts(aggregate.maxValue()))
                    .c_str());
    std::printf("mean:        %s\n",
                bench::fmtMw(util::Watts(aggregate.mean())).c_str());
    std::printf("first peak:  day %.2f at %s — the charging "
                "experiments inject their open\ntransition here, when "
                "available power is most constrained.\n",
                aggregate.timeAt(peak).value() / 86400.0,
                bench::fmtMw(util::Watts(aggregate[peak])).c_str());
    std::printf("fleet:       316 racks = 89 P1 + 142 P2 + 85 P3\n");
    bench::finishObservability(run_options);
    return 0;
}
