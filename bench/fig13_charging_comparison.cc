/**
 * @file
 * Reproduces Fig. 13 (a)-(f) and Table III: MSB power during a
 * charging event for the original 5 A charger, the variable charger,
 * and coordinated priority-aware charging, at power limits 2.5 MW and
 * 2.3 MW and low/medium/high battery discharge (mean DOD 30/50/70%),
 * plus the maximum server power capping each combination needs.
 *
 * The 18 charging events are independent, so they fan out across the
 * SweepRunner pool (--threads N, default hardware concurrency) and
 * print in fixed order afterwards: output is byte-identical at any
 * thread count.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/ascii_chart.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::ChargingEventResult;
using core::PolicyKind;
using util::Watts;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 13 + Table III",
                  "MSB power with original / variable / "
                  "priority-aware charging; max server capping");

    struct Case
    {
        const char *label;
        double limit_mw;
        double mean_dod;
        const char *discharge;
    };
    const Case cases[] = {
        {"(a)", 2.5, 0.3, "low"},    {"(b)", 2.3, 0.3, "low"},
        {"(c)", 2.5, 0.5, "medium"}, {"(d)", 2.3, 0.5, "medium"},
        {"(e)", 2.5, 0.7, "high"},   {"(f)", 2.3, 0.7, "high"},
    };
    const PolicyKind policies[] = {PolicyKind::OriginalLocal,
                                   PolicyKind::VariableLocal,
                                   PolicyKind::PriorityAware};
    const char glyphs[] = {'o', 'v', 'p'};

    auto options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(options);
    util::ThreadPool pool(
        bench::resolveThreadCount(options.threads));
    sim::SweepRunner runner(pool);

    // All 18 (case, policy) events, in print order.
    std::vector<sim::SweepTask> tasks;
    for (const Case &c : cases) {
        for (PolicyKind policy : policies) {
            sim::SweepTask task;
            task.label = util::strf("%s/%s", c.label,
                                    core::toString(policy));
            task.config = bench::paperEventConfig(
                policy, util::megawatts(c.limit_mw), c.mean_dod);
            task.traces = &bench::paperMsbTraces();
            tasks.push_back(std::move(task));
        }
    }
    std::vector<ChargingEventResult> results = runner.run(tasks);

    util::TextTable table_iii(
        {"Case", "Original charger", "Variable charger",
         "Priority-aware"});

    size_t idx = 0;
    for (const Case &c : cases) {
        std::printf("\n--- Fig. 13 %s: limit %.1f MW, %s discharge "
                    "(mean DOD %.0f%%) ---\n",
                    c.label, c.limit_mw, c.discharge,
                    c.mean_dod * 100.0);
        std::vector<util::ChartSeries> series;
        std::vector<std::string> row{c.label};
        for (size_t p = 0; p < 3; ++p) {
            const ChargingEventResult &result = results[idx++];
            series.push_back(util::seriesFromTimeSeries(
                result.msbPower.downsample(120),
                core::toString(policies[p]), glyphs[p], 1.0 / 60.0,
                1e-6));
            row.push_back(util::strf(
                "%.0f kW (%.0f%%)", util::toKilowatts(result.maxCap),
                result.maxCapFractionOfIt * 100.0));
            std::printf("  %-14s peak %s, overload %4d s, max cap "
                        "%s%s\n",
                        core::toString(policies[p]),
                        bench::fmtMw(result.peakPower).c_str(),
                        result.overloadSteps,
                        bench::fmtKw(result.maxCap).c_str(),
                        result.breakerTripped ? "  [BREAKER TRIPPED]"
                                              : "");
        }
        table_iii.addRow(std::move(row));

        util::ChartOptions options_chart;
        options_chart.title = util::strf(
            "Fig. 13 %s — MSB power (limit %.1f MW marked by the "
            "y-range top)",
            c.label, c.limit_mw);
        options_chart.xLabel = "time (minutes)";
        options_chart.yLabel = "MSB power (MW)";
        options_chart.yMin = 0.0;
        options_chart.yMax = 2.8;
        std::printf("%s\n",
                    util::renderChart(series, options_chart).c_str());
    }

    std::printf("\n=== Table III: maximum server power capping "
                "required ===\n%s\n",
                table_iii.render().c_str());
    std::printf("Paper Table III: original 149-405 kW (7-20%%); "
                "variable 0-171 kW (0-8%%);\npriority-aware 0 kW in "
                "all six cases. Capping begins for priority-aware "
                "only when\navailable power drops below ~120 kW "
                "(316 racks at the 1 A floor).\n");
    bench::finishObservability(options);
    return 0;
}
