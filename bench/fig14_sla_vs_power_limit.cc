/**
 * @file
 * Reproduces Fig. 14: the number of racks (by priority) whose
 * charging-time SLA is met, for the priority-aware algorithm vs the
 * global equal-rate baseline, as the MSB power limit falls from
 * 2.6 MW to 2.2 MW, at medium (50%) and high (70%) battery
 * discharge.
 *
 * The 36 (discharge, policy, limit) events are independent full
 * charging events; they fan out across the SweepRunner pool
 * (--threads N) and print in fixed order afterwards.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 14",
                  "racks meeting the charging-time SLA vs MSB power "
                  "limit (priority-aware vs global)");

    const double dods[] = {0.5, 0.7};
    const char *discharge_names[] = {"medium", "high"};
    const PolicyKind policies[] = {PolicyKind::PriorityAware,
                                   PolicyKind::GlobalRate};
    const char *panel[] = {"(a)", "(b)", "(c)", "(d)"};

    std::vector<double> limits;
    for (double limit = 2.6; limit >= 2.2 - 1e-9; limit -= 0.05)
        limits.push_back(limit);

    auto options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(options);
    util::ThreadPool pool(
        bench::resolveThreadCount(options.threads));
    sim::SweepRunner runner(pool);

    std::vector<sim::SweepTask> tasks;
    for (size_t d = 0; d < 2; ++d) {
        for (PolicyKind policy : policies) {
            for (double limit : limits) {
                sim::SweepTask task;
                task.label = util::strf("%s/%.2fMW",
                                        core::toString(policy), limit);
                task.config = bench::paperEventConfig(
                    policy, util::megawatts(limit), dods[d]);
                task.config.postEventDuration = util::minutes(100.0);
                task.traces = &bench::paperMsbTraces();
                tasks.push_back(std::move(task));
            }
        }
    }
    auto results = runner.run(tasks);

    size_t idx = 0;
    int panel_idx = 0;
    for (size_t d = 0; d < 2; ++d) {
        for (PolicyKind policy : policies) {
            std::printf("\n--- Fig. 14 %s: %s, %s discharge ---\n",
                        panel[panel_idx++], core::toString(policy),
                        discharge_names[d]);
            util::TextTable table({"limit (MW)", "P1 met (of 89)",
                                   "P2 met (of 142)",
                                   "P3 met (of 85)", "total",
                                   "max cap (kW)"});
            for (double limit : limits) {
                const auto &result = results[idx++];
                table.addRow(
                    {util::strf("%.2f", limit),
                     util::strf("%d", result.slaMetByPriority[0]),
                     util::strf("%d", result.slaMetByPriority[1]),
                     util::strf("%d", result.slaMetByPriority[2]),
                     util::strf("%d", result.slaMetTotal()),
                     util::strf("%.0f",
                                util::toKilowatts(result.maxCap))});
            }
            std::printf("%s", table.render().c_str());
        }
    }

    std::printf(
        "\nPaper shape checks:\n"
        " - priority-aware preserves P1 SLAs longest as the limit "
        "falls; P3 is throttled\n   first but its 90-min SLA is still "
        "met at the 1 A floor (so P2 counts drop\n   before P3 "
        "counts, exactly the paper's Fig. 14(a) observation);\n"
        " - the global baseline penalizes P1 first (highest current "
        "demand), then P2;\n"
        " - server capping appears only when the limit approaches the "
        "IT load plus the\n   316-rack 1 A floor (~120 kW).\n");
    bench::finishObservability(options);
    return 0;
}
