/**
 * @file
 * Reproduces Fig. 14: the number of racks (by priority) whose
 * charging-time SLA is met, for the priority-aware algorithm vs the
 * global equal-rate baseline, as the MSB power limit falls from
 * 2.6 MW to 2.2 MW, at medium (50%) and high (70%) battery
 * discharge.
 */

#include <cstdio>

#include "bench_common.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;

int
main()
{
    bench::banner("Fig. 14",
                  "racks meeting the charging-time SLA vs MSB power "
                  "limit (priority-aware vs global)");

    const double dods[] = {0.5, 0.7};
    const char *discharge_names[] = {"medium", "high"};
    const PolicyKind policies[] = {PolicyKind::PriorityAware,
                                   PolicyKind::GlobalRate};
    const char *panel[] = {"(a)", "(b)", "(c)", "(d)"};

    int panel_idx = 0;
    for (size_t d = 0; d < 2; ++d) {
        for (PolicyKind policy : policies) {
            std::printf("\n--- Fig. 14 %s: %s, %s discharge ---\n",
                        panel[panel_idx++], core::toString(policy),
                        discharge_names[d]);
            util::TextTable table({"limit (MW)", "P1 met (of 89)",
                                   "P2 met (of 142)",
                                   "P3 met (of 85)", "total",
                                   "max cap (kW)"});
            for (double limit = 2.6; limit >= 2.2 - 1e-9;
                 limit -= 0.05) {
                auto config = bench::paperEventConfig(
                    policy, util::megawatts(limit), dods[d]);
                config.postEventDuration = util::minutes(100.0);
                auto result = core::runChargingEvent(
                    config, bench::paperMsbTraces());
                table.addRow(
                    {util::strf("%.2f", limit),
                     util::strf("%d", result.slaMetByPriority[0]),
                     util::strf("%d", result.slaMetByPriority[1]),
                     util::strf("%d", result.slaMetByPriority[2]),
                     util::strf("%d", result.slaMetTotal()),
                     util::strf("%.0f",
                                util::toKilowatts(result.maxCap))});
            }
            std::printf("%s", table.render().c_str());
        }
    }

    std::printf(
        "\nPaper shape checks:\n"
        " - priority-aware preserves P1 SLAs longest as the limit "
        "falls; P3 is throttled\n   first but its 90-min SLA is still "
        "met at the 1 A floor (so P2 counts drop\n   before P3 "
        "counts, exactly the paper's Fig. 14(a) observation);\n"
        " - the global baseline penalizes P1 first (highest current "
        "demand), then P2;\n"
        " - server capping appears only when the limit approaches the "
        "IT load plus the\n   316-rack 1 A floor (~120 kW).\n");
    return 0;
}
