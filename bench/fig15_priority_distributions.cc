/**
 * @file
 * Reproduces Fig. 15: the Fig. 14 experiment repeated with different
 * rack priority distributions at medium discharge — evenly
 * distributed priorities (one third each) and all racks P1. With a
 * uniform fleet the priority-aware algorithm still beats the global
 * baseline because lowest-discharge-first maximizes the number of
 * racks whose SLA fits the available power.
 *
 * Each panel's nine events carry a per-panel trace handle (the trace
 * set must match the priority mix); all 36 events fan out across the
 * SweepRunner pool (--threads N) and print in fixed order.
 */

#include <cstdio>

#include "bench_common.h"
#include "trace/trace_generator.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;
using power::Priority;

namespace {

struct Distribution
{
    const char *name;
    std::vector<Priority> priorities;
};

const std::vector<double> &
limitSweep()
{
    static const std::vector<double> limits = [] {
        std::vector<double> ls;
        for (double limit = 2.6; limit >= 2.2 - 1e-9; limit -= 0.05)
            ls.push_back(limit);
        return ls;
    }();
    return limits;
}

std::vector<sim::SweepTask>
panelTasks(const Distribution &dist, PolicyKind policy,
           const trace::TraceSet &traces)
{
    std::vector<sim::SweepTask> tasks;
    for (double limit : limitSweep()) {
        sim::SweepTask task;
        task.label = util::strf("%s/%s/%.2fMW", dist.name,
                                core::toString(policy), limit);
        task.config = bench::paperEventConfig(
            policy, util::megawatts(limit), 0.5);
        task.config.priorities = dist.priorities;
        task.config.postEventDuration = util::minutes(100.0);
        task.traces = &traces;
        tasks.push_back(std::move(task));
    }
    return tasks;
}

/** Print one panel from its (already computed) slice of results. */
void
printPanel(const char *panel, const Distribution &dist,
           PolicyKind policy,
           const std::vector<core::ChargingEventResult> &results,
           size_t &idx, util::RunningStats *total_stats)
{
    std::printf("\n--- Fig. 15 %s: %s, %s priorities ---\n", panel,
                core::toString(policy), dist.name);
    util::TextTable table({"limit (MW)", "P1 met", "P2 met", "P3 met",
                           "total (of 316)"});
    for (double limit : limitSweep()) {
        const auto &result = results[idx++];
        table.addRow({util::strf("%.2f", limit),
                      util::strf("%d", result.slaMetByPriority[0]),
                      util::strf("%d", result.slaMetByPriority[1]),
                      util::strf("%d", result.slaMetByPriority[2]),
                      util::strf("%d", result.slaMetTotal())});
        total_stats->add(result.slaMetTotal());
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Fig. 15",
                  "SLA satisfaction vs power limit for different rack "
                  "priority distributions (medium discharge)");

    Distribution even{"evenly distributed (1/3 each)",
                      power::makePriorityMix(106, 105, 105)};
    Distribution all_p1{"all racks P1",
                        std::vector<Priority>(316, Priority::P1)};

    // Traces must match the priority mixes.
    auto make_traces = [](const std::vector<Priority> &priorities) {
        trace::TraceGenSpec spec;
        spec.rackCount = 316;
        spec.startTime = util::hours(10.0);
        spec.duration = util::hours(8.0);
        spec.priorities = priorities;
        return trace::generateTraces(spec);
    };
    trace::TraceSet even_traces = make_traces(even.priorities);
    trace::TraceSet p1_traces = make_traces(all_p1.priorities);

    auto options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(options);
    util::ThreadPool pool(
        bench::resolveThreadCount(options.threads));
    sim::SweepRunner runner(pool);

    std::vector<sim::SweepTask> tasks;
    auto append = [&tasks](std::vector<sim::SweepTask> panel) {
        for (sim::SweepTask &task : panel)
            tasks.push_back(std::move(task));
    };
    append(panelTasks(even, PolicyKind::PriorityAware, even_traces));
    append(panelTasks(even, PolicyKind::GlobalRate, even_traces));
    append(panelTasks(all_p1, PolicyKind::PriorityAware, p1_traces));
    append(panelTasks(all_p1, PolicyKind::GlobalRate, p1_traces));
    auto results = runner.run(tasks);

    util::RunningStats even_pa, even_global, p1_pa, p1_global;
    size_t idx = 0;
    printPanel("(a)", even, PolicyKind::PriorityAware, results, idx,
               &even_pa);
    printPanel("(b)", even, PolicyKind::GlobalRate, results, idx,
               &even_global);
    printPanel("(c)", all_p1, PolicyKind::PriorityAware, results, idx,
               &p1_pa);
    printPanel("(d)", all_p1, PolicyKind::GlobalRate, results, idx,
               &p1_global);

    std::printf("\naverage racks meeting SLA across the limit "
                "sweep:\n");
    std::printf("  even thirds:  priority-aware %.0f vs global "
                "%.0f\n",
                even_pa.mean(), even_global.mean());
    std::printf("  all P1:       priority-aware %.0f vs global %.0f "
                "(paper: 208, ~3x the baseline)\n",
                p1_pa.mean(), p1_global.mean());
    std::printf("\nPaper shape check: with every rack P1, "
                "lowest-discharge-first still maximizes\nthe number "
                "of satisfied SLAs for the given power — the "
                "priority-aware average is\nseveral times the global "
                "baseline's.\n");
    bench::finishObservability(options);
    return 0;
}
