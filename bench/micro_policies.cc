/**
 * @file
 * google-benchmark microbenchmarks of the hot paths: Algorithm 1
 * planning, the SLA-current inversion, BBU physics stepping, and the
 * event-queue kernel. These quantify the control plane's cost per
 * decision — the paper's controllers tick every 3 seconds over
 * hundreds of racks, so planning must be microseconds, not
 * milliseconds.
 */

#include <benchmark/benchmark.h>

#include "battery/bbu.h"
#include "core/global_coordinator.h"
#include "core/priority_aware_coordinator.h"
#include "power/topology.h"
#include "sim/event_queue.h"
#include "trace/trace_generator.h"
#include "util/random.h"

namespace {

using namespace dcbatt;
using dynamo::RackChargeInfo;
using power::Priority;
using util::Amperes;

std::vector<RackChargeInfo>
makeFleet(int racks)
{
    auto priorities = power::makePriorityMix(racks / 3, racks / 3,
                                             racks - 2 * (racks / 3));
    util::Rng rng(5);
    std::vector<RackChargeInfo> fleet;
    for (int i = 0; i < racks; ++i) {
        RackChargeInfo info;
        info.rackId = i;
        info.priority = priorities[static_cast<size_t>(i)
                                   % priorities.size()];
        info.initialDod = rng.uniform(0.2, 0.8);
        info.setpoint = Amperes(2.0);
        info.itLoad = util::kilowatts(6.3);
        info.charging = true;
        fleet.push_back(info);
    }
    return fleet;
}

core::PriorityAwareCoordinator
makePa()
{
    return core::PriorityAwareCoordinator(
        core::SlaCurrentCalculator(battery::ChargeTimeModel(),
                                   core::SlaTable::paperDefault()));
}

void
BM_PriorityAwarePlan(benchmark::State &state)
{
    auto fleet = makeFleet(static_cast<int>(state.range(0)));
    auto pa = makePa();
    for (auto _ : state) {
        auto commands =
            pa.planInitial(fleet, util::kilowatts(300.0));
        benchmark::DoNotOptimize(commands);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PriorityAwarePlan)->Arg(64)->Arg(316)->Arg(1024);

void
BM_PriorityAwareOverloadTick(benchmark::State &state)
{
    auto fleet = makeFleet(static_cast<int>(state.range(0)));
    auto pa = makePa();
    pa.planInitial(fleet, util::kilowatts(300.0));
    for (auto _ : state) {
        auto commands = pa.onTick(fleet, util::kilowatts(-30.0));
        benchmark::DoNotOptimize(commands);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PriorityAwareOverloadTick)->Arg(316);

void
BM_GlobalPlan(benchmark::State &state)
{
    auto fleet = makeFleet(static_cast<int>(state.range(0)));
    core::GlobalRateCoordinator global;
    for (auto _ : state) {
        auto commands =
            global.planInitial(fleet, util::kilowatts(300.0));
        benchmark::DoNotOptimize(commands);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalPlan)->Arg(316);

void
BM_SlaCurrentInversion(benchmark::State &state)
{
    core::SlaCurrentCalculator calc(battery::ChargeTimeModel(),
                                    core::SlaTable::paperDefault());
    double dod = 0.1;
    for (auto _ : state) {
        dod = dod >= 0.99 ? 0.1 : dod + 0.01;
        benchmark::DoNotOptimize(
            calc.requiredCurrent(dod, Priority::P1));
    }
}
BENCHMARK(BM_SlaCurrentInversion);

void
BM_BbuStepSecond(benchmark::State &state)
{
    battery::BbuModel bbu;
    bbu.forceDod(1.0);
    bbu.startCharging(Amperes(2.0));
    for (auto _ : state) {
        if (bbu.fullyCharged()) {
            bbu.forceDod(1.0);
            bbu.startCharging(Amperes(2.0));
        }
        bbu.step(util::Seconds(1.0));
        benchmark::DoNotOptimize(bbu);
    }
}
BENCHMARK(BM_BbuStepSecond);

void
BM_EventQueueSchedule(benchmark::State &state)
{
    sim::EventQueue queue;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            queue.scheduleAfter(i + 1, [] {});
        queue.runUntil(queue.now() + 64);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::TraceGenSpec spec;
    spec.rackCount = 64;
    spec.duration = util::hours(1.0);
    spec.step = util::Seconds(3.0);
    for (auto _ : state) {
        auto traces = trace::generateTraces(spec);
        benchmark::DoNotOptimize(traces);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 1200);
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
