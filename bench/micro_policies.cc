/**
 * @file
 * google-benchmark microbenchmarks of the hot paths: Algorithm 1
 * planning, the SLA-current inversion, BBU physics stepping, and the
 * event-queue kernel. These quantify the control plane's cost per
 * decision — the paper's controllers tick every 3 seconds over
 * hundreds of racks, so planning must be microseconds, not
 * milliseconds.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "battery/bbu.h"
#include "core/charging_event_sim.h"
#include "core/global_coordinator.h"
#include "core/priority_aware_coordinator.h"
#include "core/region_budget.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series_recorder.h"
#include "power/topology.h"
#include "reliability/aor_simulator.h"
#include "sim/event_queue.h"
#include "trace/streaming_trace_source.h"
#include "trace/trace_cache.h"
#include "trace/trace_generator.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using namespace dcbatt;
using dynamo::RackChargeInfo;
using power::Priority;
using util::Amperes;

std::vector<RackChargeInfo>
makeFleet(int racks)
{
    auto priorities = power::makePriorityMix(racks / 3, racks / 3,
                                             racks - 2 * (racks / 3));
    util::Rng rng(5);
    std::vector<RackChargeInfo> fleet;
    for (int i = 0; i < racks; ++i) {
        RackChargeInfo info;
        info.rackId = i;
        info.priority = priorities[static_cast<size_t>(i)
                                   % priorities.size()];
        info.initialDod = rng.uniform(0.2, 0.8);
        info.setpoint = Amperes(2.0);
        info.itLoad = util::kilowatts(6.3);
        info.charging = true;
        fleet.push_back(info);
    }
    return fleet;
}

core::PriorityAwareCoordinator
makePa()
{
    return core::PriorityAwareCoordinator(
        core::SlaCurrentCalculator(battery::ChargeTimeModel(),
                                   core::SlaTable::paperDefault()));
}

/** Attach the coordinator's SLA-memo counters to a benchmark run. */
void
reportSlaMemo(benchmark::State &state,
              const core::PriorityAwareCoordinator &pa)
{
    const core::SlaMemoStats &memo = pa.slaMemoStats();
    state.counters["sla_memo_hits"] = static_cast<double>(memo.hits);
    state.counters["sla_memo_misses"] =
        static_cast<double>(memo.misses);
    state.counters["sla_memo_evictions"] =
        static_cast<double>(memo.evictions);
    state.counters["sla_memo_peak_occupancy"] =
        static_cast<double>(memo.peakOccupancy);
}

void
BM_PriorityAwarePlan(benchmark::State &state)
{
    auto fleet = makeFleet(static_cast<int>(state.range(0)));
    auto pa = makePa();
    for (auto _ : state) {
        auto commands =
            pa.planInitial(fleet, util::kilowatts(300.0));
        benchmark::DoNotOptimize(commands);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    reportSlaMemo(state, pa);
}
BENCHMARK(BM_PriorityAwarePlan)->Arg(64)->Arg(316)->Arg(1024);

void
BM_PriorityAwareOverloadTick(benchmark::State &state)
{
    auto fleet = makeFleet(static_cast<int>(state.range(0)));
    auto pa = makePa();
    pa.planInitial(fleet, util::kilowatts(300.0));
    for (auto _ : state) {
        auto commands = pa.onTick(fleet, util::kilowatts(-30.0));
        benchmark::DoNotOptimize(commands);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    reportSlaMemo(state, pa);
}
BENCHMARK(BM_PriorityAwareOverloadTick)->Arg(316);

void
BM_GlobalPlan(benchmark::State &state)
{
    auto fleet = makeFleet(static_cast<int>(state.range(0)));
    core::GlobalRateCoordinator global;
    for (auto _ : state) {
        auto commands =
            global.planInitial(fleet, util::kilowatts(300.0));
        benchmark::DoNotOptimize(commands);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlobalPlan)->Arg(316);

void
BM_SlaCurrentInversion(benchmark::State &state)
{
    core::SlaCurrentCalculator calc(battery::ChargeTimeModel(),
                                    core::SlaTable::paperDefault());
    double dod = 0.1;
    for (auto _ : state) {
        dod = dod >= 0.99 ? 0.1 : dod + 0.01;
        benchmark::DoNotOptimize(
            calc.requiredCurrent(dod, Priority::P1));
    }
}
BENCHMARK(BM_SlaCurrentInversion);

void
BM_BbuStepSecond(benchmark::State &state)
{
    battery::BbuModel bbu;
    bbu.forceDod(1.0);
    bbu.startCharging(Amperes(2.0));
    for (auto _ : state) {
        if (bbu.fullyCharged()) {
            bbu.forceDod(1.0);
            bbu.startCharging(Amperes(2.0));
        }
        bbu.step(util::Seconds(1.0));
        benchmark::DoNotOptimize(bbu);
    }
}
BENCHMARK(BM_BbuStepSecond);

void
BM_EventQueueSchedule(benchmark::State &state)
{
    sim::EventQueue queue;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            queue.scheduleAfter(i + 1, [] {});
        queue.runUntil(queue.now() + 64);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueSchedule);

/**
 * Serial Monte Carlo AOR: one timeline, generated and walked per
 * iteration. This is the pre-sharding baseline the parallel variant
 * is measured against.
 */
void
BM_AorSerial(benchmark::State &state)
{
    const double years = static_cast<double>(state.range(0));
    for (auto _ : state) {
        reliability::AorConfig config;
        config.years = years;
        reliability::AorSimulator sim(reliability::paperFailureData(),
                                      config);
        benchmark::DoNotOptimize(
            sim.aorForChargeTime(util::minutes(30.0)));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(years));
}
BENCHMARK(BM_AorSerial)->Arg(1000)->Unit(benchmark::kMillisecond);

/**
 * Sharded Monte Carlo AOR on a worker pool. Note the sampled history
 * differs from BM_AorSerial (shard count is semantic), so compare
 * wall time only. Arg is the thread count; 64 shards per iteration.
 */
void
BM_AorSharded(benchmark::State &state)
{
    const double years = 1000.0;
    util::ThreadPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        reliability::AorConfig config;
        config.years = years;
        config.shards = 64;
        reliability::AorSimulator sim(reliability::paperFailureData(),
                                      config, &pool);
        benchmark::DoNotOptimize(
            sim.aorForChargeTime(util::minutes(30.0)));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(years));
}
BENCHMARK(BM_AorSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * One small end-to-end charging event (64 racks, 1 h trace, short
 * post-event window) — the unit of work SweepRunner fans out. Keeps
 * the per-event cost visible so sweep wall-time regressions can be
 * attributed.
 */
void
BM_RunChargingEvent(benchmark::State &state)
{
    trace::TraceGenSpec spec;
    spec.rackCount = 64;
    spec.startTime = util::hours(10.0);
    spec.duration = util::hours(1.0);
    spec.priorities = power::makePriorityMix(22, 21, 21);
    trace::TraceSet traces = trace::generateTraces(spec);

    core::ChargingEventConfig config;
    config.policy = core::PolicyKind::PriorityAware;
    config.msbLimit = util::megawatts(0.9);
    config.targetMeanDod = 0.5;
    config.priorities = spec.priorities;
    config.postEventDuration = util::minutes(20.0);
    // DCBATT_BENCH_RECORD=1 arms the flight recorder so the
    // recording-on cost can be A/B'd against the default run (the
    // 1.2x budget in BENCH_perf.json's gate policy).
    const char *record = std::getenv("DCBATT_BENCH_RECORD");
    const bool recording = record && record[0] == '1';
    if (recording) {
        obs::setEventLoggingEnabled(true);
        obs::armTimeSeries();
    }
    for (auto _ : state) {
        auto result = core::runChargingEvent(config, traces);
        benchmark::DoNotOptimize(result);
        if (recording) {
            // Drop the tapes between iterations so memory stays flat;
            // the clear is part of the measured recording overhead.
            obs::clearTimeSeries();
            obs::clearEvents();
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
    // Staging-arena footprints (gauges max-merged across events, like
    // trace.cache_bytes): makes the allocate-per-event memory budget
    // visible next to the time-per-event number.
    state.counters["arena_high_water_bytes"] =
        obs::gauge("core.arena_high_water_bytes").value();
    state.counters["trace_arena_high_water_bytes"] =
        obs::gauge("trace.arena_high_water_bytes").value();
}
BENCHMARK(BM_RunChargingEvent)->Unit(benchmark::kMillisecond);

/**
 * Hot-path cost of resolving an already-cached trace set, with the
 * cache's memory footprint attached (the trace.cache_bytes gauge the
 * --metrics-json export carries).
 */
void
BM_TraceCacheLookup(benchmark::State &state)
{
    trace::TraceGenSpec spec;
    spec.rackCount = 64;
    spec.duration = util::hours(1.0);
    spec.step = util::Seconds(3.0);
    auto warm = trace::sharedTraces(spec);  // miss happens here
    for (auto _ : state) {
        auto traces = trace::sharedTraces(spec);
        benchmark::DoNotOptimize(traces);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["trace_cache_bytes"] =
        obs::gauge("trace.cache_bytes").value();
}
BENCHMARK(BM_TraceCacheLookup);

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::TraceGenSpec spec;
    spec.rackCount = 64;
    spec.duration = util::hours(1.0);
    spec.step = util::Seconds(3.0);
    for (auto _ : state) {
        auto traces = trace::generateTraces(spec);
        benchmark::DoNotOptimize(traces);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 1200);
}
BENCHMARK(BM_TraceGeneration);

void
BM_StreamingTraceWindow(benchmark::State &state)
{
    // One full forward walk over the windows of an hour-long trace
    // through the paging path (generation + eviction), the per-shard
    // hot loop of the region engine.
    trace::StreamingTraceSpec spec;
    spec.base.rackCount = 64;
    spec.base.duration = util::hours(1.0);
    spec.base.step = util::Seconds(3.0);
    spec.windowSamples = 300;
    spec.maxResidentWindows = 2;
    for (auto _ : state) {
        trace::StreamingTraceSource source(spec);
        double sink = 0.0;
        for (size_t w = 0; w < source.windowCount(); ++w)
            sink += source.windowFor(w * spec.windowSamples).at(
                w * spec.windowSamples, 0);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 1200);
}
BENCHMARK(BM_StreamingTraceWindow);

void
BM_RegionBudgetSplit(benchmark::State &state)
{
    // The cross-MSB coordination tick at region scale: split + audit
    // for n MSBs. Runs once per coordination period (default 60 s),
    // on the driving thread, so it must stay far below a physics step.
    const auto n = static_cast<size_t>(state.range(0));
    core::RegionBudgetConfig config;
    config.regionBudgetW = 0.85 * 2.5e6 * static_cast<double>(n);
    config.suiteLimitW.assign(4, 40e6);
    std::vector<core::MsbBudgetReport> reports(n);
    for (size_t i = 0; i < n; ++i) {
        core::MsbBudgetReport &r = reports[i];
        r.msbIndex = static_cast<int>(i);
        r.suite = static_cast<int>(i % 4);
        r.itW = 1.8e6 + 1e4 * static_cast<double>(i % 7);
        r.demandW = {120e3, 180e3, 90e3};
        r.breakerLimitW = 2.5e6;
    }
    for (auto _ : state) {
        core::RegionBudgetOutcome out =
            core::splitRegionBudget(config, reports);
        core::auditRegionBudget(config, reports, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RegionBudgetSplit)->Arg(50);

} // namespace

BENCHMARK_MAIN();
