/**
 * @file
 * Region-scale benchmark: wall time, peak RSS, and thread scaling of
 * sim::runRegion.
 *
 * Runs one region spec twice — single worker, then --threads workers —
 * and verifies the results are identical (the determinism contract is
 * exercised on every bench run, not only in tests). The *simulation*
 * summary goes to stdout and is byte-identical regardless of thread
 * count or machine; the *performance* numbers (walls, RSS, scaling
 * efficiency) are nondeterministic by nature and therefore go to
 * stderr and, when --perf-json is given, a JSON side file that
 * tools/bench_to_json.sh merges into BENCH_perf.json and
 * tools/check_region_scaling.py gates in CI.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.h"
#include "power/region_spec.h"
#include "sim/region_engine.h"
#include "util/logging.h"
#include "util/text_table.h"
#include "util/units.h"

using namespace dcbatt;

namespace {

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Process peak RSS in MiB (ru_maxrss is KiB on Linux). */
double
peakRssMib()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Options
{
    int msbs = 8;
    int racksPerMsb = 150;
    double hours = 2.0;
    unsigned threads = 0;  // 0: hardware concurrency
    std::string perfJsonPath;
};

Options
parseOptions(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                util::fatal(util::strf("%s needs a value", flag));
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--msbs") == 0)
            options.msbs = std::atoi(need("--msbs"));
        else if (std::strcmp(argv[i], "--racks-per-msb") == 0)
            options.racksPerMsb = std::atoi(need("--racks-per-msb"));
        else if (std::strcmp(argv[i], "--hours") == 0)
            options.hours = std::atof(need("--hours"));
        else if (std::strcmp(argv[i], "--threads") == 0)
            options.threads = static_cast<unsigned>(
                std::atoi(need("--threads")));
        else if (std::strcmp(argv[i], "--perf-json") == 0)
            options.perfJsonPath = need("--perf-json");
        else
            util::fatal(util::strf("unknown flag %s", argv[i]));
    }
    if (options.threads == 0) {
        options.threads =
            std::max(1u, std::thread::hardware_concurrency());
    }
    return options;
}

power::RegionSpec
makeSpec(const Options &options)
{
    power::RegionSpec spec;
    spec.msbs = options.msbs;
    spec.racksPerMsb = options.racksPerMsb;
    spec.suitesPerBuilding = std::min(4, options.msbs);
    spec.duration = util::hours(options.hours);
    // Scale the per-MSB load model with the rack count so the fleet
    // stays at the paper's ~6.7 kW/rack operating point.
    double rack_share = static_cast<double>(options.racksPerMsb) / 300.0;
    spec.msbAggregateMean = util::Watts(2.0e6 * rack_share);
    spec.msbAggregateAmplitude = util::Watts(0.15e6 * rack_share);
    spec.msbLimit = util::Watts(2.5e6 * rack_share);
    spec.firstOutage = util::minutes(20.0);
    spec.outageStagger =
        util::Seconds(options.hours * 3600.0 * 0.25
                      / std::max(1, options.msbs));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = parseOptions(argc, argv);
    power::RegionSpec spec = makeSpec(options);

    bench::banner(
        "region scale",
        "wall time / peak RSS / thread scaling of sim::runRegion");

    sim::RegionRunOptions run_one;
    run_one.threads = 1;
    auto start = std::chrono::steady_clock::now();
    sim::RegionResult base = sim::runRegion(spec, run_one);
    double wall_one = wallSeconds(start);
    double rss_one = peakRssMib();

    sim::RegionRunOptions run_many;
    run_many.threads = options.threads;
    start = std::chrono::steady_clock::now();
    sim::RegionResult threaded = sim::runRegion(spec, run_many);
    double wall_many = wallSeconds(start);
    double rss_many = peakRssMib();

    // The determinism contract, checked on every bench run.
    if (base.peakRegionMw != threaded.peakRegionMw
        || base.grantMw.values() != threaded.grantMw.values()
        || base.regionPowerMw.values()
            != threaded.regionPowerMw.values()) {
        std::fprintf(stderr,
                     "FATAL: threads=1 and threads=%u disagree\n",
                     options.threads);
        return 1;
    }

    int sla_met = 0;
    int outages = 0;
    for (const sim::RegionMsbOutcome &msb : base.msbs) {
        sla_met += msb.slaMetTotal();
        outages += msb.outages;
    }

    // Deterministic artifact: simulation results only.
    util::TextTable table({"metric", "value"});
    table.addRow({"MSBs", util::strf("%d", options.msbs)});
    table.addRow({"racks", util::strf("%d", base.racksTotal())});
    table.addRow({"simulated hours",
                  util::strf("%.1f", options.hours)});
    table.addRow({"peak region power",
                  util::strf("%.3f MW", base.peakRegionMw)});
    table.addRow(
        {"coordination ticks",
         util::strf("%llu",
                    (unsigned long long)base.coordinationTicks)});
    table.addRow({"SLA met (racks)", util::strf("%d", sla_met)});
    table.addRow({"battery-exhausted racks",
                  util::strf("%d", outages)});
    table.addRow({"trace peak resident",
                  util::strf("%.1f MiB",
                             static_cast<double>(
                                 base.tracePeakResidentBytes)
                                 / (1024.0 * 1024.0))});
    std::printf("%s", table.render().c_str());

    // Nondeterministic performance numbers: stderr + JSON side file.
    double speedup = wall_many > 0.0 ? wall_one / wall_many : 0.0;
    unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    double efficiency =
        speedup / static_cast<double>(
            std::min(options.threads, cores));
    double rss_mib = std::max(rss_one, rss_many);
    std::fprintf(stderr,
                 "[region_scale] threads 1: %.2fs  threads %u: %.2fs  "
                 "speedup %.2fx  efficiency %.2f  peak RSS %.1f MiB\n",
                 wall_one, options.threads, wall_many, speedup,
                 efficiency, rss_mib);

    if (!options.perfJsonPath.empty()) {
        FILE *f = std::fopen(options.perfJsonPath.c_str(), "w");
        if (f == nullptr)
            util::fatal(util::strf("cannot write %s", options.perfJsonPath.c_str()));
        std::string walls =
            options.threads == 1
                ? util::strf("{\"threads_1\": %.3f}", wall_many)
                : util::strf("{\"threads_1\": %.3f, "
                             "\"threads_%u\": %.3f}",
                             wall_one, options.threads, wall_many);
        std::fprintf(
            f,
            "{\n"
            "  \"msbs\": %d,\n"
            "  \"racks\": %d,\n"
            "  \"sim_hours\": %.2f,\n"
            "  \"threads\": %u,\n"
            "  \"hardware_threads\": %u,\n"
            "  \"wall_seconds\": %s,\n"
            "  \"speedup\": %.3f,\n"
            "  \"scaling_efficiency\": %.3f,\n"
            "  \"peak_rss_mib\": %.1f,\n"
            "  \"trace_peak_resident_mib\": %.2f\n"
            "}\n",
            options.msbs, base.racksTotal(), options.hours,
            options.threads, cores, walls.c_str(), speedup,
            efficiency, rss_mib,
            static_cast<double>(base.tracePeakResidentBytes)
                / (1024.0 * 1024.0));
        std::fclose(f);
    }
    return 0;
}
