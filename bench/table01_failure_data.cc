/**
 * @file
 * Reproduces Table I: component failure and repair times, plus a
 * Monte Carlo validation that the simulated event rates match the
 * published MTBFs.
 */

#include <cstdio>

#include "bench_common.h"
#include "reliability/aor_simulator.h"
#include "reliability/failure_data.h"
#include "util/text_table.h"

using namespace dcbatt;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Table I", "component failure and repair times");

    auto data = reliability::paperFailureData();
    util::TextTable table({"Failure type", "Component", "MTBF (h)",
                           "MTTR (h)", "effect", "events/yr"});
    for (const auto &proc : data) {
        table.addRow({proc.failureType, proc.component,
                      util::strf("%.3g", proc.mtbfHours),
                      util::strf("%.1f", proc.mttrHours),
                      proc.effect
                              == reliability::FailureEffect::Outage
                          ? "outage"
                          : "2 open transitions",
                      util::strf("%.3f", 8760.0 / proc.mtbfHours)});
    }
    std::printf("%s\n", table.render().c_str());

    double rate = reliability::totalEventsPerYear(data);
    std::printf("total failures/year:            %.2f\n", rate);

    reliability::AorConfig config;
    config.years = 5e3;
    reliability::AorSimulator sim(data, config);
    auto result = sim.aorForChargeTime(util::minutes(30.0));
    std::printf("simulated loss episodes/year:   %.2f "
                "(~2 per failure: the paired open transitions)\n",
                result.lossEventsPerYear);
    std::printf("simulated dark hours/year:      %.2f\n",
                result.darkHoursPerYear);
    bench::finishObservability(run_options);
    return 0;
}
