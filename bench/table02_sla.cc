/**
 * @file
 * Reproduces Table II: the charging-time SLA per rack priority, with
 * the Monte Carlo-measured AOR for each SLA charge time alongside the
 * paper's target values.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/sla.h"
#include "reliability/aor_simulator.h"
#include "util/text_table.h"

using namespace dcbatt;
using power::Priority;

int
main(int argc, char **argv)
{
    auto run_options = bench::parseBenchRunOptions(argc, argv);
    bench::initObservability(run_options);
    bench::banner("Table II",
                  "charging time SLA for different rack priority");

    core::SlaTable sla = core::SlaTable::paperDefault();
    reliability::AorConfig config;
    config.years = 3e4;
    reliability::AorSimulator sim(reliability::paperFailureData(),
                                  config);

    util::TextTable table({"Rack priority", "AOR target",
                           "AOR measured", "Loss of redundancy (h/yr)",
                           "Charging time SLA"});
    const char *names[] = {"P1 (high)", "P2 (normal)", "P3 (low)"};
    for (Priority p : power::kAllPriorities) {
        auto entry = sla.entry(p);
        auto measured = sim.aorForChargeTime(entry.chargeTimeSla);
        table.addRow(
            {names[power::priorityIndex(p)],
             util::strf("%.2f%%", entry.targetAor * 100.0),
             util::strf("%.3f%%", measured.aor * 100.0),
             util::strf("%.2f (target %.2f)",
                        measured.lossOfRedundancyHoursPerYear,
                        sla.lossOfRedundancyHoursPerYear(p)),
             bench::fmtMin(entry.chargeTimeSla)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper Table II: P1 99.94%% / 5.26 h/yr / 30 min; "
                "P2 99.90%% / 8.76 h/yr / 60 min;\n"
                "P3 99.85%% / 13.14 h/yr / 90 min.\n");
    bench::finishObservability(run_options);
    return 0;
}
