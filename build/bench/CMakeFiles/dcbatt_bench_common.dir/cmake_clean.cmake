file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/dcbatt_bench_common.dir/bench_common.cc.o.d"
  "libdcbatt_bench_common.a"
  "libdcbatt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
