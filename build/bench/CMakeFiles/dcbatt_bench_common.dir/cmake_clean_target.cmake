file(REMOVE_RECURSE
  "libdcbatt_bench_common.a"
)
