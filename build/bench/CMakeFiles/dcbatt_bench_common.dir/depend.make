# Empty dependencies file for dcbatt_bench_common.
# This may be replaced when dependencies are built.
