file(REMOVE_RECURSE
  "CMakeFiles/ext_charger_aware_aor.dir/ext_charger_aware_aor.cc.o"
  "CMakeFiles/ext_charger_aware_aor.dir/ext_charger_aware_aor.cc.o.d"
  "ext_charger_aware_aor"
  "ext_charger_aware_aor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_charger_aware_aor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
