# Empty dependencies file for ext_charger_aware_aor.
# This may be replaced when dependencies are built.
