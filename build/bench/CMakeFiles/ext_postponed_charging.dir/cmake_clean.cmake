file(REMOVE_RECURSE
  "CMakeFiles/ext_postponed_charging.dir/ext_postponed_charging.cc.o"
  "CMakeFiles/ext_postponed_charging.dir/ext_postponed_charging.cc.o.d"
  "ext_postponed_charging"
  "ext_postponed_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_postponed_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
