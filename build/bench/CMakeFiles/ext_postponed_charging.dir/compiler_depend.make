# Empty compiler generated dependencies file for ext_postponed_charging.
# This may be replaced when dependencies are built.
