file(REMOVE_RECURSE
  "CMakeFiles/fig02_region_outage.dir/fig02_region_outage.cc.o"
  "CMakeFiles/fig02_region_outage.dir/fig02_region_outage.cc.o.d"
  "fig02_region_outage"
  "fig02_region_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_region_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
