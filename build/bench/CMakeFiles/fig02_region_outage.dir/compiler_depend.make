# Empty compiler generated dependencies file for fig02_region_outage.
# This may be replaced when dependencies are built.
