file(REMOVE_RECURSE
  "CMakeFiles/fig03_bbu_charge_profile.dir/fig03_bbu_charge_profile.cc.o"
  "CMakeFiles/fig03_bbu_charge_profile.dir/fig03_bbu_charge_profile.cc.o.d"
  "fig03_bbu_charge_profile"
  "fig03_bbu_charge_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_bbu_charge_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
