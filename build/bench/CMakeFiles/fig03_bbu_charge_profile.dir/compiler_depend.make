# Empty compiler generated dependencies file for fig03_bbu_charge_profile.
# This may be replaced when dependencies are built.
