file(REMOVE_RECURSE
  "CMakeFiles/fig04_recharge_power_vs_dod.dir/fig04_recharge_power_vs_dod.cc.o"
  "CMakeFiles/fig04_recharge_power_vs_dod.dir/fig04_recharge_power_vs_dod.cc.o.d"
  "fig04_recharge_power_vs_dod"
  "fig04_recharge_power_vs_dod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_recharge_power_vs_dod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
