# Empty dependencies file for fig04_recharge_power_vs_dod.
# This may be replaced when dependencies are built.
