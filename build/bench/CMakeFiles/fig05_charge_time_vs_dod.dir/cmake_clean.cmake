file(REMOVE_RECURSE
  "CMakeFiles/fig05_charge_time_vs_dod.dir/fig05_charge_time_vs_dod.cc.o"
  "CMakeFiles/fig05_charge_time_vs_dod.dir/fig05_charge_time_vs_dod.cc.o.d"
  "fig05_charge_time_vs_dod"
  "fig05_charge_time_vs_dod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_charge_time_vs_dod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
