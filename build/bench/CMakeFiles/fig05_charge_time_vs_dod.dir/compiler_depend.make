# Empty compiler generated dependencies file for fig05_charge_time_vs_dod.
# This may be replaced when dependencies are built.
