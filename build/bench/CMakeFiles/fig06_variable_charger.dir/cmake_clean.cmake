file(REMOVE_RECURSE
  "CMakeFiles/fig06_variable_charger.dir/fig06_variable_charger.cc.o"
  "CMakeFiles/fig06_variable_charger.dir/fig06_variable_charger.cc.o.d"
  "fig06_variable_charger"
  "fig06_variable_charger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_variable_charger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
