# Empty dependencies file for fig06_variable_charger.
# This may be replaced when dependencies are built.
