file(REMOVE_RECURSE
  "CMakeFiles/fig07_production_validation.dir/fig07_production_validation.cc.o"
  "CMakeFiles/fig07_production_validation.dir/fig07_production_validation.cc.o.d"
  "fig07_production_validation"
  "fig07_production_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_production_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
