# Empty compiler generated dependencies file for fig07_production_validation.
# This may be replaced when dependencies are built.
