file(REMOVE_RECURSE
  "CMakeFiles/fig09a_aor_vs_charge_time.dir/fig09a_aor_vs_charge_time.cc.o"
  "CMakeFiles/fig09a_aor_vs_charge_time.dir/fig09a_aor_vs_charge_time.cc.o.d"
  "fig09a_aor_vs_charge_time"
  "fig09a_aor_vs_charge_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_aor_vs_charge_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
