# Empty dependencies file for fig09a_aor_vs_charge_time.
# This may be replaced when dependencies are built.
