file(REMOVE_RECURSE
  "CMakeFiles/fig09b_sla_current.dir/fig09b_sla_current.cc.o"
  "CMakeFiles/fig09b_sla_current.dir/fig09b_sla_current.cc.o.d"
  "fig09b_sla_current"
  "fig09b_sla_current.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_sla_current.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
