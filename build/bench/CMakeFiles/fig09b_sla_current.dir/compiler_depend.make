# Empty compiler generated dependencies file for fig09b_sla_current.
# This may be replaced when dependencies are built.
