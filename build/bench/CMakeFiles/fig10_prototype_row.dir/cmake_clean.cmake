file(REMOVE_RECURSE
  "CMakeFiles/fig10_prototype_row.dir/fig10_prototype_row.cc.o"
  "CMakeFiles/fig10_prototype_row.dir/fig10_prototype_row.cc.o.d"
  "fig10_prototype_row"
  "fig10_prototype_row.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_prototype_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
