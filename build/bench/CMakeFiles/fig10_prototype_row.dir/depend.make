# Empty dependencies file for fig10_prototype_row.
# This may be replaced when dependencies are built.
