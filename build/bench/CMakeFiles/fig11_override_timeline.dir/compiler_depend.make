# Empty compiler generated dependencies file for fig11_override_timeline.
# This may be replaced when dependencies are built.
