file(REMOVE_RECURSE
  "CMakeFiles/fig12_msb_trace.dir/fig12_msb_trace.cc.o"
  "CMakeFiles/fig12_msb_trace.dir/fig12_msb_trace.cc.o.d"
  "fig12_msb_trace"
  "fig12_msb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_msb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
