file(REMOVE_RECURSE
  "CMakeFiles/fig13_charging_comparison.dir/fig13_charging_comparison.cc.o"
  "CMakeFiles/fig13_charging_comparison.dir/fig13_charging_comparison.cc.o.d"
  "fig13_charging_comparison"
  "fig13_charging_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_charging_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
