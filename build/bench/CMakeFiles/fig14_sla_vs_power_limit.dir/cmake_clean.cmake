file(REMOVE_RECURSE
  "CMakeFiles/fig14_sla_vs_power_limit.dir/fig14_sla_vs_power_limit.cc.o"
  "CMakeFiles/fig14_sla_vs_power_limit.dir/fig14_sla_vs_power_limit.cc.o.d"
  "fig14_sla_vs_power_limit"
  "fig14_sla_vs_power_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sla_vs_power_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
