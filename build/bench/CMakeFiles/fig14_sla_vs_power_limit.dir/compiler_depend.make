# Empty compiler generated dependencies file for fig14_sla_vs_power_limit.
# This may be replaced when dependencies are built.
