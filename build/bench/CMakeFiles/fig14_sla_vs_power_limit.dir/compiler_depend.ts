# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_sla_vs_power_limit.
