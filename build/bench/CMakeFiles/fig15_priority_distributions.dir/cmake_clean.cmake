file(REMOVE_RECURSE
  "CMakeFiles/fig15_priority_distributions.dir/fig15_priority_distributions.cc.o"
  "CMakeFiles/fig15_priority_distributions.dir/fig15_priority_distributions.cc.o.d"
  "fig15_priority_distributions"
  "fig15_priority_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_priority_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
