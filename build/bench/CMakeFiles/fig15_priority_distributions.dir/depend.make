# Empty dependencies file for fig15_priority_distributions.
# This may be replaced when dependencies are built.
