# Empty compiler generated dependencies file for micro_policies.
# This may be replaced when dependencies are built.
