file(REMOVE_RECURSE
  "CMakeFiles/table01_failure_data.dir/table01_failure_data.cc.o"
  "CMakeFiles/table01_failure_data.dir/table01_failure_data.cc.o.d"
  "table01_failure_data"
  "table01_failure_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_failure_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
