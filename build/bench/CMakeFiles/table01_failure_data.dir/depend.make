# Empty dependencies file for table01_failure_data.
# This may be replaced when dependencies are built.
