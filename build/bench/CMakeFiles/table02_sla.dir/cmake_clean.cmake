file(REMOVE_RECURSE
  "CMakeFiles/table02_sla.dir/table02_sla.cc.o"
  "CMakeFiles/table02_sla.dir/table02_sla.cc.o.d"
  "table02_sla"
  "table02_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
