# Empty compiler generated dependencies file for table02_sla.
# This may be replaced when dependencies are built.
