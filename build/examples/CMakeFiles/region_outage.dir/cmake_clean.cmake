file(REMOVE_RECURSE
  "CMakeFiles/region_outage.dir/region_outage.cpp.o"
  "CMakeFiles/region_outage.dir/region_outage.cpp.o.d"
  "region_outage"
  "region_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
