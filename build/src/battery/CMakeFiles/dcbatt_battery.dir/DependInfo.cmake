
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/bbu.cc" "src/battery/CMakeFiles/dcbatt_battery.dir/bbu.cc.o" "gcc" "src/battery/CMakeFiles/dcbatt_battery.dir/bbu.cc.o.d"
  "/root/repo/src/battery/charge_time_model.cc" "src/battery/CMakeFiles/dcbatt_battery.dir/charge_time_model.cc.o" "gcc" "src/battery/CMakeFiles/dcbatt_battery.dir/charge_time_model.cc.o.d"
  "/root/repo/src/battery/charger_policy.cc" "src/battery/CMakeFiles/dcbatt_battery.dir/charger_policy.cc.o" "gcc" "src/battery/CMakeFiles/dcbatt_battery.dir/charger_policy.cc.o.d"
  "/root/repo/src/battery/power_shelf.cc" "src/battery/CMakeFiles/dcbatt_battery.dir/power_shelf.cc.o" "gcc" "src/battery/CMakeFiles/dcbatt_battery.dir/power_shelf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcbatt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
