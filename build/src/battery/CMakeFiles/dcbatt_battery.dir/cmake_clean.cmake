file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_battery.dir/bbu.cc.o"
  "CMakeFiles/dcbatt_battery.dir/bbu.cc.o.d"
  "CMakeFiles/dcbatt_battery.dir/charge_time_model.cc.o"
  "CMakeFiles/dcbatt_battery.dir/charge_time_model.cc.o.d"
  "CMakeFiles/dcbatt_battery.dir/charger_policy.cc.o"
  "CMakeFiles/dcbatt_battery.dir/charger_policy.cc.o.d"
  "CMakeFiles/dcbatt_battery.dir/power_shelf.cc.o"
  "CMakeFiles/dcbatt_battery.dir/power_shelf.cc.o.d"
  "libdcbatt_battery.a"
  "libdcbatt_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
