file(REMOVE_RECURSE
  "libdcbatt_battery.a"
)
