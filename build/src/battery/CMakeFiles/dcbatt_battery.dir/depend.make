# Empty dependencies file for dcbatt_battery.
# This may be replaced when dependencies are built.
