
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/charging_event_sim.cc" "src/core/CMakeFiles/dcbatt_core.dir/charging_event_sim.cc.o" "gcc" "src/core/CMakeFiles/dcbatt_core.dir/charging_event_sim.cc.o.d"
  "/root/repo/src/core/global_coordinator.cc" "src/core/CMakeFiles/dcbatt_core.dir/global_coordinator.cc.o" "gcc" "src/core/CMakeFiles/dcbatt_core.dir/global_coordinator.cc.o.d"
  "/root/repo/src/core/priority_aware_coordinator.cc" "src/core/CMakeFiles/dcbatt_core.dir/priority_aware_coordinator.cc.o" "gcc" "src/core/CMakeFiles/dcbatt_core.dir/priority_aware_coordinator.cc.o.d"
  "/root/repo/src/core/sla.cc" "src/core/CMakeFiles/dcbatt_core.dir/sla.cc.o" "gcc" "src/core/CMakeFiles/dcbatt_core.dir/sla.cc.o.d"
  "/root/repo/src/core/sla_current.cc" "src/core/CMakeFiles/dcbatt_core.dir/sla_current.cc.o" "gcc" "src/core/CMakeFiles/dcbatt_core.dir/sla_current.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dynamo/CMakeFiles/dcbatt_dynamo.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcbatt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dcbatt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/dcbatt_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcbatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcbatt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
