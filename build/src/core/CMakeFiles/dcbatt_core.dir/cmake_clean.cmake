file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_core.dir/charging_event_sim.cc.o"
  "CMakeFiles/dcbatt_core.dir/charging_event_sim.cc.o.d"
  "CMakeFiles/dcbatt_core.dir/global_coordinator.cc.o"
  "CMakeFiles/dcbatt_core.dir/global_coordinator.cc.o.d"
  "CMakeFiles/dcbatt_core.dir/priority_aware_coordinator.cc.o"
  "CMakeFiles/dcbatt_core.dir/priority_aware_coordinator.cc.o.d"
  "CMakeFiles/dcbatt_core.dir/sla.cc.o"
  "CMakeFiles/dcbatt_core.dir/sla.cc.o.d"
  "CMakeFiles/dcbatt_core.dir/sla_current.cc.o"
  "CMakeFiles/dcbatt_core.dir/sla_current.cc.o.d"
  "libdcbatt_core.a"
  "libdcbatt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
