file(REMOVE_RECURSE
  "libdcbatt_core.a"
)
