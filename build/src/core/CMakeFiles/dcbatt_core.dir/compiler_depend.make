# Empty compiler generated dependencies file for dcbatt_core.
# This may be replaced when dependencies are built.
