file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_dynamo.dir/agent.cc.o"
  "CMakeFiles/dcbatt_dynamo.dir/agent.cc.o.d"
  "CMakeFiles/dcbatt_dynamo.dir/capping.cc.o"
  "CMakeFiles/dcbatt_dynamo.dir/capping.cc.o.d"
  "CMakeFiles/dcbatt_dynamo.dir/controller.cc.o"
  "CMakeFiles/dcbatt_dynamo.dir/controller.cc.o.d"
  "libdcbatt_dynamo.a"
  "libdcbatt_dynamo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_dynamo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
