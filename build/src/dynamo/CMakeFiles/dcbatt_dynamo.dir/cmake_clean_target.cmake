file(REMOVE_RECURSE
  "libdcbatt_dynamo.a"
)
