# Empty compiler generated dependencies file for dcbatt_dynamo.
# This may be replaced when dependencies are built.
