
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/breaker.cc" "src/power/CMakeFiles/dcbatt_power.dir/breaker.cc.o" "gcc" "src/power/CMakeFiles/dcbatt_power.dir/breaker.cc.o.d"
  "/root/repo/src/power/rack.cc" "src/power/CMakeFiles/dcbatt_power.dir/rack.cc.o" "gcc" "src/power/CMakeFiles/dcbatt_power.dir/rack.cc.o.d"
  "/root/repo/src/power/topology.cc" "src/power/CMakeFiles/dcbatt_power.dir/topology.cc.o" "gcc" "src/power/CMakeFiles/dcbatt_power.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/battery/CMakeFiles/dcbatt_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcbatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcbatt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
