file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_power.dir/breaker.cc.o"
  "CMakeFiles/dcbatt_power.dir/breaker.cc.o.d"
  "CMakeFiles/dcbatt_power.dir/rack.cc.o"
  "CMakeFiles/dcbatt_power.dir/rack.cc.o.d"
  "CMakeFiles/dcbatt_power.dir/topology.cc.o"
  "CMakeFiles/dcbatt_power.dir/topology.cc.o.d"
  "libdcbatt_power.a"
  "libdcbatt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
