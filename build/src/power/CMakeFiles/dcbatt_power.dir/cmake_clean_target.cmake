file(REMOVE_RECURSE
  "libdcbatt_power.a"
)
