# Empty compiler generated dependencies file for dcbatt_power.
# This may be replaced when dependencies are built.
