file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_reliability.dir/aor_simulator.cc.o"
  "CMakeFiles/dcbatt_reliability.dir/aor_simulator.cc.o.d"
  "CMakeFiles/dcbatt_reliability.dir/failure_data.cc.o"
  "CMakeFiles/dcbatt_reliability.dir/failure_data.cc.o.d"
  "libdcbatt_reliability.a"
  "libdcbatt_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
