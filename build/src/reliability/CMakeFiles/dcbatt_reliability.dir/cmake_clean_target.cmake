file(REMOVE_RECURSE
  "libdcbatt_reliability.a"
)
