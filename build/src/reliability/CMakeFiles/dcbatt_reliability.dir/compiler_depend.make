# Empty compiler generated dependencies file for dcbatt_reliability.
# This may be replaced when dependencies are built.
