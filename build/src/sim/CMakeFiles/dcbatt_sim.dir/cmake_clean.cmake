file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_sim.dir/event_queue.cc.o"
  "CMakeFiles/dcbatt_sim.dir/event_queue.cc.o.d"
  "libdcbatt_sim.a"
  "libdcbatt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
