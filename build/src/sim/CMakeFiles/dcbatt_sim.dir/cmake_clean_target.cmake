file(REMOVE_RECURSE
  "libdcbatt_sim.a"
)
