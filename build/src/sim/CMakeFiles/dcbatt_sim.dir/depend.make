# Empty dependencies file for dcbatt_sim.
# This may be replaced when dependencies are built.
