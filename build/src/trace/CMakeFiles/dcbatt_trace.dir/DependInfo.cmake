
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace_generator.cc" "src/trace/CMakeFiles/dcbatt_trace.dir/trace_generator.cc.o" "gcc" "src/trace/CMakeFiles/dcbatt_trace.dir/trace_generator.cc.o.d"
  "/root/repo/src/trace/trace_set.cc" "src/trace/CMakeFiles/dcbatt_trace.dir/trace_set.cc.o" "gcc" "src/trace/CMakeFiles/dcbatt_trace.dir/trace_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/dcbatt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/dcbatt_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcbatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcbatt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
