file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_trace.dir/trace_generator.cc.o"
  "CMakeFiles/dcbatt_trace.dir/trace_generator.cc.o.d"
  "CMakeFiles/dcbatt_trace.dir/trace_set.cc.o"
  "CMakeFiles/dcbatt_trace.dir/trace_set.cc.o.d"
  "libdcbatt_trace.a"
  "libdcbatt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
