file(REMOVE_RECURSE
  "libdcbatt_trace.a"
)
