# Empty dependencies file for dcbatt_trace.
# This may be replaced when dependencies are built.
