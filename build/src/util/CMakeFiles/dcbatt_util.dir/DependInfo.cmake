
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_chart.cc" "src/util/CMakeFiles/dcbatt_util.dir/ascii_chart.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/ascii_chart.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/util/CMakeFiles/dcbatt_util.dir/csv.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/csv.cc.o.d"
  "/root/repo/src/util/interpolate.cc" "src/util/CMakeFiles/dcbatt_util.dir/interpolate.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/interpolate.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/dcbatt_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/dcbatt_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/dcbatt_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/stats.cc.o.d"
  "/root/repo/src/util/text_table.cc" "src/util/CMakeFiles/dcbatt_util.dir/text_table.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/text_table.cc.o.d"
  "/root/repo/src/util/time_series.cc" "src/util/CMakeFiles/dcbatt_util.dir/time_series.cc.o" "gcc" "src/util/CMakeFiles/dcbatt_util.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
