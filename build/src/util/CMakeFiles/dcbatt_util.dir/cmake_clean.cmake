file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_util.dir/ascii_chart.cc.o"
  "CMakeFiles/dcbatt_util.dir/ascii_chart.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/csv.cc.o"
  "CMakeFiles/dcbatt_util.dir/csv.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/interpolate.cc.o"
  "CMakeFiles/dcbatt_util.dir/interpolate.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/logging.cc.o"
  "CMakeFiles/dcbatt_util.dir/logging.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/random.cc.o"
  "CMakeFiles/dcbatt_util.dir/random.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/stats.cc.o"
  "CMakeFiles/dcbatt_util.dir/stats.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/text_table.cc.o"
  "CMakeFiles/dcbatt_util.dir/text_table.cc.o.d"
  "CMakeFiles/dcbatt_util.dir/time_series.cc.o"
  "CMakeFiles/dcbatt_util.dir/time_series.cc.o.d"
  "libdcbatt_util.a"
  "libdcbatt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
