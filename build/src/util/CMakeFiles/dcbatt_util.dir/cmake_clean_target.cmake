file(REMOVE_RECURSE
  "libdcbatt_util.a"
)
