# Empty dependencies file for dcbatt_util.
# This may be replaced when dependencies are built.
