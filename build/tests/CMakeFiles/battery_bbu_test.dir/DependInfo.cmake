
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/battery_bbu_test.cc" "tests/CMakeFiles/battery_bbu_test.dir/battery_bbu_test.cc.o" "gcc" "tests/CMakeFiles/battery_bbu_test.dir/battery_bbu_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcbatt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/dcbatt_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamo/CMakeFiles/dcbatt_dynamo.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcbatt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dcbatt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/dcbatt_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcbatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcbatt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
