file(REMOVE_RECURSE
  "CMakeFiles/battery_bbu_test.dir/battery_bbu_test.cc.o"
  "CMakeFiles/battery_bbu_test.dir/battery_bbu_test.cc.o.d"
  "battery_bbu_test"
  "battery_bbu_test.pdb"
  "battery_bbu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_bbu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
