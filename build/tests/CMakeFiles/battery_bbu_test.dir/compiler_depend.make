# Empty compiler generated dependencies file for battery_bbu_test.
# This may be replaced when dependencies are built.
