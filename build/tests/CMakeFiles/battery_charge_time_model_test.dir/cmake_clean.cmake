file(REMOVE_RECURSE
  "CMakeFiles/battery_charge_time_model_test.dir/battery_charge_time_model_test.cc.o"
  "CMakeFiles/battery_charge_time_model_test.dir/battery_charge_time_model_test.cc.o.d"
  "battery_charge_time_model_test"
  "battery_charge_time_model_test.pdb"
  "battery_charge_time_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_charge_time_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
