# Empty compiler generated dependencies file for battery_charge_time_model_test.
# This may be replaced when dependencies are built.
