file(REMOVE_RECURSE
  "CMakeFiles/battery_charger_policy_test.dir/battery_charger_policy_test.cc.o"
  "CMakeFiles/battery_charger_policy_test.dir/battery_charger_policy_test.cc.o.d"
  "battery_charger_policy_test"
  "battery_charger_policy_test.pdb"
  "battery_charger_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_charger_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
