# Empty dependencies file for battery_charger_policy_test.
# This may be replaced when dependencies are built.
