file(REMOVE_RECURSE
  "CMakeFiles/battery_power_shelf_test.dir/battery_power_shelf_test.cc.o"
  "CMakeFiles/battery_power_shelf_test.dir/battery_power_shelf_test.cc.o.d"
  "battery_power_shelf_test"
  "battery_power_shelf_test.pdb"
  "battery_power_shelf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_power_shelf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
