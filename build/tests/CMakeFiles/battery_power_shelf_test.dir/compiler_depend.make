# Empty compiler generated dependencies file for battery_power_shelf_test.
# This may be replaced when dependencies are built.
