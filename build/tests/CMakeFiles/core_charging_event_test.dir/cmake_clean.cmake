file(REMOVE_RECURSE
  "CMakeFiles/core_charging_event_test.dir/core_charging_event_test.cc.o"
  "CMakeFiles/core_charging_event_test.dir/core_charging_event_test.cc.o.d"
  "core_charging_event_test"
  "core_charging_event_test.pdb"
  "core_charging_event_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_charging_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
