# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_charging_event_test.
