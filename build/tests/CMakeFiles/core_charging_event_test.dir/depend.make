# Empty dependencies file for core_charging_event_test.
# This may be replaced when dependencies are built.
