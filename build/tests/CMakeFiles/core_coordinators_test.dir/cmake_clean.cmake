file(REMOVE_RECURSE
  "CMakeFiles/core_coordinators_test.dir/core_coordinators_test.cc.o"
  "CMakeFiles/core_coordinators_test.dir/core_coordinators_test.cc.o.d"
  "core_coordinators_test"
  "core_coordinators_test.pdb"
  "core_coordinators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coordinators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
