# Empty dependencies file for core_coordinators_test.
# This may be replaced when dependencies are built.
