file(REMOVE_RECURSE
  "CMakeFiles/core_sla_test.dir/core_sla_test.cc.o"
  "CMakeFiles/core_sla_test.dir/core_sla_test.cc.o.d"
  "core_sla_test"
  "core_sla_test.pdb"
  "core_sla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
