# Empty dependencies file for core_sla_test.
# This may be replaced when dependencies are built.
