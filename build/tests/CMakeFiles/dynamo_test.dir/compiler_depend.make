# Empty compiler generated dependencies file for dynamo_test.
# This may be replaced when dependencies are built.
