file(REMOVE_RECURSE
  "CMakeFiles/fuzz_control_test.dir/fuzz_control_test.cc.o"
  "CMakeFiles/fuzz_control_test.dir/fuzz_control_test.cc.o.d"
  "fuzz_control_test"
  "fuzz_control_test.pdb"
  "fuzz_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
