# Empty dependencies file for fuzz_control_test.
# This may be replaced when dependencies are built.
