file(REMOVE_RECURSE
  "CMakeFiles/postponed_charging_test.dir/postponed_charging_test.cc.o"
  "CMakeFiles/postponed_charging_test.dir/postponed_charging_test.cc.o.d"
  "postponed_charging_test"
  "postponed_charging_test.pdb"
  "postponed_charging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postponed_charging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
