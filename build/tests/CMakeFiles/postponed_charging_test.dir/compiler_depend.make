# Empty compiler generated dependencies file for postponed_charging_test.
# This may be replaced when dependencies are built.
