file(REMOVE_RECURSE
  "CMakeFiles/power_breaker_test.dir/power_breaker_test.cc.o"
  "CMakeFiles/power_breaker_test.dir/power_breaker_test.cc.o.d"
  "power_breaker_test"
  "power_breaker_test.pdb"
  "power_breaker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_breaker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
