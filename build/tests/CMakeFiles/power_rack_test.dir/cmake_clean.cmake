file(REMOVE_RECURSE
  "CMakeFiles/power_rack_test.dir/power_rack_test.cc.o"
  "CMakeFiles/power_rack_test.dir/power_rack_test.cc.o.d"
  "power_rack_test"
  "power_rack_test.pdb"
  "power_rack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_rack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
