# Empty compiler generated dependencies file for power_rack_test.
# This may be replaced when dependencies are built.
