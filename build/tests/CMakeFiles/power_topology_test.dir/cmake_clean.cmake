file(REMOVE_RECURSE
  "CMakeFiles/power_topology_test.dir/power_topology_test.cc.o"
  "CMakeFiles/power_topology_test.dir/power_topology_test.cc.o.d"
  "power_topology_test"
  "power_topology_test.pdb"
  "power_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
