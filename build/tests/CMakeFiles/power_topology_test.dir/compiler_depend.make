# Empty compiler generated dependencies file for power_topology_test.
# This may be replaced when dependencies are built.
