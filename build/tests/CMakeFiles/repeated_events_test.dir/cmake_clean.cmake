file(REMOVE_RECURSE
  "CMakeFiles/repeated_events_test.dir/repeated_events_test.cc.o"
  "CMakeFiles/repeated_events_test.dir/repeated_events_test.cc.o.d"
  "repeated_events_test"
  "repeated_events_test.pdb"
  "repeated_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeated_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
