# Empty dependencies file for repeated_events_test.
# This may be replaced when dependencies are built.
