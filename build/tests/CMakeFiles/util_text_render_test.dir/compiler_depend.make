# Empty compiler generated dependencies file for util_text_render_test.
# This may be replaced when dependencies are built.
