# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_units_test[1]_include.cmake")
include("/root/repo/build/tests/util_interpolate_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_random_test[1]_include.cmake")
include("/root/repo/build/tests/util_csv_test[1]_include.cmake")
include("/root/repo/build/tests/util_time_series_test[1]_include.cmake")
include("/root/repo/build/tests/util_text_render_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/battery_charge_time_model_test[1]_include.cmake")
include("/root/repo/build/tests/battery_bbu_test[1]_include.cmake")
include("/root/repo/build/tests/battery_charger_policy_test[1]_include.cmake")
include("/root/repo/build/tests/battery_power_shelf_test[1]_include.cmake")
include("/root/repo/build/tests/power_breaker_test[1]_include.cmake")
include("/root/repo/build/tests/power_rack_test[1]_include.cmake")
include("/root/repo/build/tests/power_topology_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/dynamo_test[1]_include.cmake")
include("/root/repo/build/tests/core_sla_test[1]_include.cmake")
include("/root/repo/build/tests/core_coordinators_test[1]_include.cmake")
include("/root/repo/build/tests/core_charging_event_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/integration_paper_test[1]_include.cmake")
include("/root/repo/build/tests/postponed_charging_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_control_test[1]_include.cmake")
include("/root/repo/build/tests/engine_options_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_header_test[1]_include.cmake")
include("/root/repo/build/tests/repeated_events_test[1]_include.cmake")
