add_test([=[UmbrellaHeader.ExposesEveryLayer]=]  /root/repo/build/tests/umbrella_header_test [==[--gtest_filter=UmbrellaHeader.ExposesEveryLayer]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaHeader.ExposesEveryLayer]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_header_test_TESTS UmbrellaHeader.ExposesEveryLayer)
