file(REMOVE_RECURSE
  "CMakeFiles/dcbatt_sim_cli.dir/dcbatt_sim.cc.o"
  "CMakeFiles/dcbatt_sim_cli.dir/dcbatt_sim.cc.o.d"
  "dcbatt_sim"
  "dcbatt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcbatt_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
