# Empty compiler generated dependencies file for dcbatt_sim_cli.
# This may be replaced when dependencies are built.
