/**
 * @file
 * Power-oversubscription capacity planning with battery recharge in
 * the loop.
 *
 * The paper's economic argument: statically reserving the worst-case
 * battery recharge power (~25% of rack power) strands capacity, so
 * the budget should instead assume coordinated charging. This example
 * quantifies that trade: for each charging policy, find the highest
 * IT utilization of a 2.5 MW MSB (i.e., the deepest oversubscription)
 * at which a maintenance open transition still causes no server
 * capping — and cross-check the reliability side by reporting the
 * AOR each priority would see at its SLA charge time.
 *
 * Run: ./build/examples/capacity_planning
 */

#include <cstdio>

#include "core/charging_event_sim.h"
#include "reliability/aor_simulator.h"
#include "trace/trace_generator.h"
#include "util/logging.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;

namespace {

/** Max mean-IT-load (MW) with zero capping, by bisection over traces. */
double
maxSafeUtilization(PolicyKind policy,
                   const std::vector<power::Priority> &priorities)
{
    double lo = 1.8, hi = 2.5;
    for (int iter = 0; iter < 7; ++iter) {
        double mid = 0.5 * (lo + hi);
        trace::TraceGenSpec tspec;
        tspec.rackCount = 316;
        tspec.startTime = util::hours(10.0);
        tspec.duration = util::hours(6.0);
        tspec.priorities = priorities;
        tspec.aggregateMean = util::megawatts(mid);
        tspec.aggregateAmplitude = util::megawatts(0.05 * mid);
        trace::TraceSet traces = trace::generateTraces(tspec);

        core::ChargingEventConfig config;
        config.policy = policy;
        config.msbLimit = util::megawatts(2.5);
        config.priorities = priorities;
        config.openTransitionLength = util::Seconds(60.0);
        config.postEventDuration = util::hours(1.5);
        auto result = core::runChargingEvent(config, traces);
        if (result.maxCap.value() > 0.0)
            hi = mid;
        else
            lo = mid;
    }
    return lo;
}

} // namespace

int
main()
{
    std::printf("capacity_planning: deepest safe oversubscription of "
                "a 2.5 MW MSB\n(60 s maintenance open transition, no "
                "server capping allowed)\n\n");

    auto priorities = trace::paperMsbPriorities();
    util::TextTable table({"policy", "max safe mean IT load",
                           "of the 2.5 MW limit"});
    for (PolicyKind policy :
         {PolicyKind::OriginalLocal, PolicyKind::VariableLocal,
          PolicyKind::PriorityAware}) {
        double mw = maxSafeUtilization(policy, priorities);
        table.addRow({core::toString(policy),
                      util::strf("%.2f MW", mw),
                      util::strf("%.0f%%", mw / 2.5 * 100.0)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("reliability cross-check (Monte Carlo over Table I "
                "failure data):\n");
    reliability::AorConfig aor_config;
    aor_config.years = 2e4;
    reliability::AorSimulator aor(reliability::paperFailureData(),
                                  aor_config);
    core::SlaTable sla = core::SlaTable::paperDefault();
    util::TextTable aor_table({"priority", "charge-time SLA",
                               "AOR at that charge time",
                               "AOR target"});
    for (power::Priority p : power::kAllPriorities) {
        auto result = aor.aorForChargeTime(sla.chargeTimeSla(p));
        aor_table.addRow(
            {toString(p),
             util::strf("%.0f min",
                        util::toMinutes(sla.chargeTimeSla(p))),
             util::strf("%.3f%%", result.aor * 100.0),
             util::strf("%.2f%%", sla.targetAor(p) * 100.0)});
    }
    std::printf("%s\n", aor_table.render().c_str());
    std::printf(
        "Conclusion: coordinated charging lets the operator run the "
        "MSB several\npercentage points hotter with zero capping "
        "exposure — that headroom is the\ncapacity the paper says "
        "static recharge budgeting would have stranded.\n");
    return 0;
}
