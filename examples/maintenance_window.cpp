/**
 * @file
 * Planning a maintenance window (the paper's Case II scenario).
 *
 * An MSB must be transferred to its reserve and back — two open
 * transitions for every rack beneath it. The data-center operator
 * wants to know, before scheduling the work: will the recharge spike
 * force server capping, and how does the answer change with the
 * charging policy and the time of day?
 *
 * This example sweeps the maintenance start hour across the day and
 * reports, for each policy, the peak MSB power and the worst server
 * capping — the exact decision table an operator would want.
 *
 * Run: ./build/examples/maintenance_window [limit_MW]
 */

#include <cstdio>
#include <cstdlib>

#include "core/charging_event_sim.h"
#include "trace/trace_generator.h"
#include "util/logging.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;

int
main(int argc, char **argv)
{
    double limit_mw = argc > 1 ? std::atof(argv[1]) : 2.35;

    std::printf("maintenance_window: MSB reserve transfer rehearsal\n");
    std::printf("fleet: 316 racks (89 P1 / 142 P2 / 85 P3), limit "
                "%.2f MW\n\n",
                limit_mw);

    auto priorities = trace::paperMsbPriorities();
    const PolicyKind policies[] = {PolicyKind::OriginalLocal,
                                   PolicyKind::VariableLocal,
                                   PolicyKind::GlobalRate,
                                   PolicyKind::PriorityAware};

    util::TextTable table({"start hour", "policy", "peak (MW)",
                           "max cap (kW)", "overload (s)",
                           "SLAs met (of 316)"});
    for (double hour : {4.0, 14.0, 20.0}) {
        // Window around the chosen hour; the transfer takes ~45 s
        // each way, modelled as one 90 s power loss.
        trace::TraceGenSpec tspec;
        tspec.rackCount = 316;
        tspec.startTime = util::hours(hour - 1.0);
        tspec.duration = util::hours(5.0);
        tspec.priorities = priorities;
        // Anchor the fleet band to the paper's 1.9-2.1 MW.
        trace::TraceSet traces = trace::generateTraces(tspec);

        for (PolicyKind policy : policies) {
            core::ChargingEventConfig config;
            config.policy = policy;
            config.msbLimit = util::megawatts(limit_mw);
            config.priorities = priorities;
            config.openTransitionLength = util::Seconds(90.0);
            config.eventTime = util::hours(hour);
            config.postEventDuration = util::hours(2.0);
            auto result = core::runChargingEvent(config, traces);
            table.addRow(
                {util::strf("%02.0f:00", hour),
                 core::toString(policy),
                 util::strf("%.3f",
                            util::toMegawatts(result.peakPower)),
                 util::strf("%.0f", util::toKilowatts(result.maxCap)),
                 util::strf("%d", result.overloadSteps),
                 util::strf("%d", result.slaMetTotal())});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading the table: with the original charger the transfer "
        "forces server capping\nat any hour; the variable charger "
        "fixes the daytime spike only where headroom\nexists; "
        "coordinated priority-aware charging makes the window safe "
        "at every hour\nwithout touching servers — the paper's case "
        "for deploying it fleet-wide.\n");
    return 0;
}
