/**
 * @file
 * Quickstart: the whole dcbatt stack in one small scenario.
 *
 * Builds a 16-rack row behind an RPP, replays a short synthetic
 * trace, opens the breaker for 60 seconds (an "open transition"), and
 * lets the coordinated priority-aware charging algorithm pick each
 * rack's recharge current against the RPP's available power. Prints
 * the event timeline and each rack's SLA outcome.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/priority_aware_coordinator.h"
#include "dynamo/controller.h"
#include "obs/metrics.h"
#include "power/topology.h"
#include "trace/trace_generator.h"
#include "util/logging.h"
#include "util/text_table.h"

using namespace dcbatt;
using power::Priority;
using util::Seconds;

int
main()
{
    // --- 1. A row of 16 racks with mixed priorities ---------------
    power::TopologySpec spec;
    spec.rootKind = power::NodeKind::Rpp;
    spec.rootName = "row0";
    spec.racksPerRpp = 16;
    spec.rppLimit = util::kilowatts(120.0);  // oversubscribed row
    spec.priorities = power::makePriorityMix(5, 6, 5);
    auto topo = power::Topology::build(spec,
                                       battery::makeVariableCharger());

    // --- 2. A synthetic load trace for the row --------------------
    trace::TraceGenSpec tspec;
    tspec.rackCount = 16;
    tspec.duration = util::hours(3.0);
    tspec.startTime = util::hours(12.0);
    tspec.step = Seconds(3.0);
    tspec.aggregateMean = util::kilowatts(100.0);
    tspec.aggregateAmplitude = util::kilowatts(5.0);
    tspec.priorities = spec.priorities;
    trace::TraceSet traces = trace::generateTraces(tspec);

    // --- 3. Control plane: the paper's Algorithm 1 ----------------
    sim::EventQueue queue;
    core::SlaCurrentCalculator calculator(
        battery::ChargeTimeModel(), core::SlaTable::paperDefault());
    core::PriorityAwareCoordinator coordinator(std::move(calculator));
    dynamo::ControlPlane plane(topo, topo.root(), queue, &coordinator);
    plane.start();

    // --- 4. Open transition at t = 10 min for 60 s -----------------
    const Seconds ot_start = util::minutes(10.0);
    const Seconds ot_length(60.0);
    topo.scheduleOpenTransition(queue, topo.root(),
                                sim::toTicks(ot_start),
                                sim::toTicks(ot_length));

    // --- 5. Physics: trace replay at 1 s ---------------------------
    std::vector<double> done_min(16, -1.0);
    double peak_kw = 0.0;
    sim::PeriodicTask physics(queue, sim::toTicks(Seconds(1.0)),
                              [&](sim::Tick now) {
        Seconds t = tspec.startTime + sim::toSeconds(now);
        for (power::Rack *rack : topo.racks())
            rack->setItDemand(traces.rackPower(rack->id(), t));
        topo.stepRacks(Seconds(1.0));
        topo.observeBreakers(Seconds(1.0));
        peak_kw = std::max(peak_kw,
                           topo.root().inputPower().value() / 1e3);
        double since_restore = sim::toSeconds(now).value()
            - (ot_start + ot_length).value();
        if (since_restore > 1.0) {
            for (power::Rack *rack : topo.racks()) {
                auto id = static_cast<size_t>(rack->id());
                if (done_min[id] < 0.0
                    && rack->shelf().fullyCharged()) {
                    done_min[id] = since_restore / 60.0;
                }
            }
        }
    });
    physics.start(0);
    queue.runUntil(sim::toTicks(util::hours(2.5)));

    // --- 6. Report --------------------------------------------------
    std::printf("quickstart: 16-rack row, 60 s open transition at "
                "t=10 min\n");
    std::printf("RPP limit %.0f kW, peak power %.1f kW, breaker %s\n\n",
                topo.root().breaker()->limit().value() / 1e3, peak_kw,
                topo.root().breaker()->tripped() ? "TRIPPED" : "ok");

    core::SlaTable sla = core::SlaTable::paperDefault();
    util::TextTable table({"rack", "priority", "charged in (min)",
                           "SLA (min)", "met"});
    for (power::Rack *rack : topo.racks()) {
        double minutes = done_min[static_cast<size_t>(rack->id())];
        double limit =
            util::toMinutes(sla.chargeTimeSla(rack->priority()));
        table.addRow({rack->name(), toString(rack->priority()),
                      minutes < 0.0 ? "never"
                                    : util::strf("%.1f", minutes),
                      util::strf("%.0f", limit),
                      minutes >= 0.0 && minutes <= limit ? "yes"
                                                         : "NO"});
    }
    std::printf("%s", table.render().c_str());

    // --- 7. Metrics ------------------------------------------------
    // The control plane counted its work in the process-wide metrics
    // registry as a side effect; the same snapshot is what the bench
    // binaries export with --metrics-json.
    obs::MetricsSnapshot snapshot = obs::snapshotMetrics();
    if (const obs::MetricValue *ticks =
            snapshot.find("dynamo.control_ticks")) {
        std::printf("\ncontrol-plane ticks: %llu (from the metrics "
                    "registry; see --metrics-json on the benches)\n",
                    static_cast<unsigned long long>(ticks->count));
    }
    return 0;
}
