/**
 * @file
 * Case I rehearsal: what does a region-wide utility blip do to each
 * building, and how much does the charging policy matter?
 *
 * Reconstructs the paper's August-2019 thunderstorm event: a
 * sub-second utility sag drops several buildings onto batteries; when
 * power returns every BBU recharges at once. This example simulates
 * one affected MSB at full fidelity (316 racks, traces, Dynamo
 * control plane) for each policy and then scales the recharge spike
 * to the region, reporting the aggregate picture the paper's Fig. 2
 * shows and the per-MSB capping consequences.
 *
 * Run: ./build/examples/region_outage
 */

#include <cstdio>

#include "core/charging_event_sim.h"
#include "trace/trace_generator.h"
#include "util/logging.h"
#include "util/text_table.h"

using namespace dcbatt;
using core::PolicyKind;

int
main()
{
    std::printf("region_outage: sub-second utility sag across a "
                "region (Case I)\n\n");

    auto priorities = trace::paperMsbPriorities();
    trace::TraceGenSpec tspec;
    tspec.rackCount = 316;
    tspec.startTime = util::hours(10.0);
    tspec.duration = util::hours(6.0);
    tspec.priorities = priorities;
    trace::TraceSet traces = trace::generateTraces(tspec);

    // A region carries ~30 MSBs' worth of IT load (61.6 MW at
    // ~2.05 MW per MSB); half of them saw the sag.
    const double affected_msbs = 15.0;
    const double region_it_mw = 61.6;

    util::TextTable table({"policy", "MSB peak (MW)",
                           "MSB recharge spike (kW)",
                           "region spike (MW)", "region spike (%)",
                           "max cap per MSB (kW)"});
    for (PolicyKind policy :
         {PolicyKind::OriginalLocal, PolicyKind::VariableLocal,
          PolicyKind::GlobalRate, PolicyKind::PriorityAware}) {
        core::ChargingEventConfig config;
        config.policy = policy;
        config.msbLimit = util::megawatts(2.5);
        config.priorities = priorities;
        // The sag: under one second on batteries.
        config.openTransitionLength = util::Seconds(0.8);
        config.postEventDuration = util::hours(1.5);
        auto result = core::runChargingEvent(config, traces);

        double spike_kw =
            util::toKilowatts(util::Watts(
                result.rechargePower.maxValue()));
        double region_spike_mw = spike_kw * affected_msbs / 1e3;
        table.addRow(
            {core::toString(policy),
             util::strf("%.3f", util::toMegawatts(result.peakPower)),
             util::strf("%.0f", spike_kw),
             util::strf("%.1f", region_spike_mw),
             util::strf("%.0f%%",
                        region_spike_mw / region_it_mw * 100.0),
             util::strf("%.0f", util::toKilowatts(result.maxCap))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper reference: the 2019 event measured a 9.3 MW spike on "
        "61.6 MW (15%%) with the\noriginal charger. The variable "
        "charger cuts the region spike by 60%% on its own;\n"
        "coordination removes the remaining capping risk on "
        "tight MSBs.\n");
    return 0;
}
