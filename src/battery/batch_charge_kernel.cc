#include "battery/batch_charge_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "battery/batch_charge_kernel_internal.h"
#include "util/logging.h"

namespace dcbatt::battery {

namespace internal {

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

} // namespace internal

bool
batchChargingEnabled()
{
    // Read per call (once per Topology::stepRacks, not per rack): the
    // differential tests flip the variable within one process.
    const char *env = std::getenv("DCBATT_BATCH");
    return !(env != nullptr && std::string_view(env) == "off");
}

SimdMode
activeSimdMode()
{
    static const SimdMode mode = [] {
        const char *env = std::getenv("DCBATT_SIMD");
        std::string_view v = env != nullptr ? env : "auto";
        if (v == "off" || v == "scalar")
            return SimdMode::Scalar;
#ifdef DCBATT_HAVE_AVX2_TU
        bool has = internal::cpuHasAvx2();
        if (v == "avx2" && !has) {
            util::warn("DCBATT_SIMD=avx2 requested but this CPU lacks "
                       "AVX2; using scalar lanes");
            return SimdMode::Scalar;
        }
        if (v != "auto" && v != "avx2")
            util::warn("unknown DCBATT_SIMD value; using auto");
        return has ? SimdMode::Avx2 : SimdMode::Scalar;
#else
        if (v == "avx2")
            util::warn("DCBATT_SIMD=avx2 requested but this build has "
                       "no AVX2 lanes; using scalar");
        return SimdMode::Scalar;
#endif
    }();
    return mode;
}

BatchChargeKernel::BatchChargeKernel(const BbuParams &params)
    : refillC_(params.refillCharge.value()),
      effic_(params.chargeEfficiency),
      emptyV_(params.emptyVoltage.value()),
      cvV_(params.cvVoltage.value()),
      tauS_(params.cvTimeConstant.value())
{
    // The OCV line constants, with exactly the expressions the
    // BbuModel constructor evaluates (cvCharge(originalCurrent) /
    // refillCharge), so both sides hold bit-equal spans.
    double ref_threshold = ((params.originalCurrent
                             - params.cutoffCurrent)
                            * params.cvTimeConstant)
        / params.refillCharge;
    ocvSocSpan_ = 1.0 - ref_threshold;
    ocvVoltSpan_ = params.ccEndVoltage.value()
        - params.emptyVoltage.value();
}

void
BatchChargeKernel::ccLanesScalar(BatchChargeStage &stage, double dt,
                                 std::size_t begin) const
{
    const std::size_t n = stage.ccLanes();
    const double *dod = stage.ccDod.data();
    const double *sp = stage.ccSetpointA.data();
    double *dod_out = stage.ccDodOut.data();
    double *input_w = stage.ccInputW.data();
    for (std::size_t i = begin; i < n; ++i) {
        // applyCharge(dod, setpoint * dt): the whole step stays inside
        // the CC segment (the exporter checked the handover).
        double nd = std::max(0.0, dod[i] - (sp[i] * dt) / refillC_);
        dod_out[i] = nd;
        // refreshDerived(): current == setpoint; input power from the
        // linear OCV line at the new DOD.
        double t = std::clamp((1.0 - nd) / ocvSocSpan_, 0.0, 1.0);
        double v = emptyV_ + ocvVoltSpan_ * t;
        input_w[i] = (v * sp[i]) / effic_;
    }
}

void
BatchChargeKernel::cvLanesScalar(BatchChargeStage &stage, double dt,
                                 double factor, std::size_t begin) const
{
    const std::size_t n = stage.cvLanes();
    const double *dod = stage.cvDod.data();
    const double *i0 = stage.cvI0A.data();
    const double *elapsed = stage.cvElapsedS.data();
    double *dod_out = stage.cvDodOut.data();
    double *elapsed_out = stage.cvElapsedOutS.data();
    for (std::size_t i = begin; i < n; ++i) {
        // applyCharge(dod, cvDeliveredCoulombs(i0, i0 * factor)).
        double i1 = i0[i] * factor;
        double nd =
            std::max(0.0, dod[i] - (tauS_ * (i0[i] - i1)) / refillC_);
        dod_out[i] = nd;
        elapsed_out[i] = elapsed[i] + dt;
    }
}

void
BatchChargeKernel::advanceWithMode(BatchChargeStage &stage, double dt,
                                   SimdMode mode) const
{
    stage.ccDodOut.resize(stage.ccLanes());
    stage.ccInputW.resize(stage.ccLanes());
    stage.cvDodOut.resize(stage.cvLanes());
    stage.cvElapsedOutS.resize(stage.cvLanes());
    stage.cvCurrentA.resize(stage.cvLanes());
    stage.cvInputW.resize(stage.cvLanes());

    // One cvDecayFactor(dt) shared by every CV lane — the same double
    // the per-pack memo would return, since all lanes advance by dt.
    const double factor = std::exp(-dt / tauS_);

    std::size_t cc_done = 0;
    std::size_t cv_done = 0;
#ifdef DCBATT_HAVE_AVX2_TU
    if (mode == SimdMode::Avx2) {
        internal::BatchChargeConsts c{refillC_, effic_,      emptyV_,
                                      cvV_,     tauS_,       ocvSocSpan_,
                                      ocvVoltSpan_};
        cc_done = internal::ccLanesAvx2(
            c, dt, stage.ccLanes(), stage.ccDod.data(),
            stage.ccSetpointA.data(), stage.ccDodOut.data(),
            stage.ccInputW.data());
        cv_done = internal::cvLanesAvx2(
            c, dt, factor, stage.cvLanes(), stage.cvDod.data(),
            stage.cvI0A.data(), stage.cvElapsedS.data(),
            stage.cvDodOut.data(), stage.cvElapsedOutS.data());
    }
#else
    (void)mode;
#endif
    ccLanesScalar(stage, dt, cc_done);
    cvLanesScalar(stage, dt, factor, cv_done);

    // Per-lane CV current and input power. The decay stays a scalar
    // libm std::exp in both modes: refreshDerived() recomputes
    // e^{-elapsed/tau} from scratch (not i0 * factor — the floats
    // differ), and vectorized exp implementations are not bit-equal
    // to libm's.
    const std::size_t n = stage.cvLanes();
    const double *sp = stage.cvSetpointA.data();
    const double *elapsed_out = stage.cvElapsedOutS.data();
    double *current = stage.cvCurrentA.data();
    double *input_w = stage.cvInputW.data();
    for (std::size_t i = 0; i < n; ++i) {
        double decay = std::exp(-elapsed_out[i] / tauS_);
        double cur = sp[i] * decay;
        current[i] = cur;
        input_w[i] = (cvV_ * cur) / effic_;
    }
}

} // namespace dcbatt::battery
