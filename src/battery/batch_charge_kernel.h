/**
 * @file
 * Struct-of-arrays batch advance for lockstep CC-CV charging.
 *
 * During a fleet-wide recharge, most racks are in lockstep mode: one
 * representative pack per shelf integrates and its twins ride along.
 * Those representatives all run the same closed-form CC-CV update with
 * the same dt and the same calibration — only their (dod, setpoint,
 * cvElapsed) state differs. This kernel hoists that update out of the
 * per-rack object walk into two dense lanes (one CC, one CV) so the
 * arithmetic runs over contiguous arrays, auto-vectorized in the
 * scalar build and hand-vectorized under AVX2 when the CPU has it.
 *
 * Bit-exactness contract: both lane implementations evaluate exactly
 * the expressions BbuModel::stepAnalytic() + refreshDerived() evaluate
 * for a strictly interior segment (no phase boundary inside dt), in
 * the same order, with no FMA contraction (the AVX2 translation unit
 * is compiled with -mavx2 -ffp-contract=off and never uses fused
 * intrinsics). The per-lane CV current decay keeps its scalar
 * std::exp — transcendentals are the one place vector math libraries
 * diverge from libm, and the golden artifacts are byte-compared.
 * battery_batch_kernel_test pins both parities (batch vs. BbuModel
 * step, AVX2 vs. scalar).
 *
 * Runtime switches (read from the environment):
 *  - DCBATT_BATCH=off      disable batch staging entirely (Topology
 *                          falls back to the per-rack step walk);
 *  - DCBATT_SIMD=off       force the scalar lanes;
 *  - DCBATT_SIMD=avx2      require the AVX2 lanes (scalar fallback
 *                          with a warning if the CPU lacks them);
 *  - DCBATT_SIMD=auto      (default) AVX2 when the CPU supports it.
 */

#ifndef DCBATT_BATTERY_BATCH_CHARGE_KERNEL_H_
#define DCBATT_BATTERY_BATCH_CHARGE_KERNEL_H_

#include <cstddef>
#include <vector>

#include "battery/bbu_params.h"

namespace dcbatt::battery {

/** Which instruction set the batch lanes run on. */
enum class SimdMode
{
    Scalar,
    Avx2,
};

/** The resolved DCBATT_SIMD mode (env + CPU probe, cached). */
SimdMode activeSimdMode();

/** Whether Topology should stage batch lanes at all (DCBATT_BATCH). */
bool batchChargingEnabled();

/**
 * Staging arrays for one batched step: one row per exported lockstep
 * representative, split into a CC lane set and a CV lane set (their
 * update expressions differ). Inputs are filled by
 * BbuModel::tryExportBatchLane() in rack order; outputs by
 * BatchChargeKernel::advance(). The vectors are reused across steps —
 * clear() keeps capacity.
 */
struct BatchChargeStage
{
    /** CC lane inputs. */
    std::vector<double> ccDod;
    std::vector<double> ccSetpointA;
    /** CC lane outputs (current stays at the setpoint). */
    std::vector<double> ccDodOut;
    std::vector<double> ccInputW;

    /** CV lane inputs. */
    std::vector<double> cvDod;
    std::vector<double> cvI0A;       ///< segment start current
    std::vector<double> cvSetpointA;
    std::vector<double> cvElapsedS;
    /** CV lane outputs. */
    std::vector<double> cvDodOut;
    std::vector<double> cvElapsedOutS;
    std::vector<double> cvCurrentA;
    std::vector<double> cvInputW;

    std::size_t ccLanes() const { return ccDod.size(); }
    std::size_t cvLanes() const { return cvDod.size(); }

    void
    clear()
    {
        ccDod.clear();
        ccSetpointA.clear();
        ccDodOut.clear();
        ccInputW.clear();
        cvDod.clear();
        cvI0A.clear();
        cvSetpointA.clear();
        cvElapsedS.clear();
        cvDodOut.clear();
        cvElapsedOutS.clear();
        cvCurrentA.clear();
        cvInputW.clear();
    }
};

/** Batched CC-CV advance for one calibration (all racks share it). */
class BatchChargeKernel
{
  public:
    explicit BatchChargeKernel(const BbuParams &params);

    /** Advance every staged lane by @p dt under the resolved mode. */
    void
    advance(BatchChargeStage &stage, double dt) const
    {
        advanceWithMode(stage, dt, activeSimdMode());
    }

    /** Advance with an explicit mode (the parity test's hook). */
    void advanceWithMode(BatchChargeStage &stage, double dt,
                         SimdMode mode) const;

  private:
    void ccLanesScalar(BatchChargeStage &stage, double dt,
                       std::size_t begin) const;
    void cvLanesScalar(BatchChargeStage &stage, double dt, double factor,
                       std::size_t begin) const;

    /** Derived constants, bit-equal to BbuModel's (same expressions). */
    double refillC_;
    double effic_;
    double emptyV_;
    double cvV_;
    double tauS_;
    double ocvSocSpan_;
    double ocvVoltSpan_;
};

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_BATCH_CHARGE_KERNEL_H_
