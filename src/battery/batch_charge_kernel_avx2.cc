/**
 * @file
 * AVX2 bodies of the batch CC-CV lanes. This translation unit is the
 * only one compiled with -mavx2, and it is compiled with
 * -ffp-contract=off: every _mm256 operation below maps 1:1 onto one
 * scalar operation of the fallback lanes (mul, div, sub, add, max,
 * min), so the results are bit-identical — the property the golden
 * artifacts and battery_batch_kernel_test rely on. No fused
 * multiply-add intrinsics, ever.
 */

#include "battery/batch_charge_kernel_internal.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace dcbatt::battery::internal {

std::size_t
ccLanesAvx2(const BatchChargeConsts &c, double dt, std::size_t n,
            const double *dod, const double *setpoint, double *dod_out,
            double *input_w)
{
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d dt_v = _mm256_set1_pd(dt);
    const __m256d refill = _mm256_set1_pd(c.refillC);
    const __m256d soc_span = _mm256_set1_pd(c.ocvSocSpan);
    const __m256d volt_span = _mm256_set1_pd(c.ocvVoltSpan);
    const __m256d empty = _mm256_set1_pd(c.emptyV);
    const __m256d eff = _mm256_set1_pd(c.effic);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d d = _mm256_loadu_pd(dod + i);
        __m256d sp = _mm256_loadu_pd(setpoint + i);
        // max(0, dod - (sp * dt) / refill)
        __m256d nd = _mm256_max_pd(
            zero, _mm256_sub_pd(
                      d, _mm256_div_pd(_mm256_mul_pd(sp, dt_v),
                                       refill)));
        _mm256_storeu_pd(dod_out + i, nd);
        // clamp((1 - nd) / socSpan, 0, 1) as min(1, max(0, .)):
        // identical to std::clamp for the NaN-free operands here.
        __m256d t = _mm256_min_pd(
            one, _mm256_max_pd(
                     zero, _mm256_div_pd(_mm256_sub_pd(one, nd),
                                         soc_span)));
        __m256d v = _mm256_add_pd(empty, _mm256_mul_pd(volt_span, t));
        __m256d w = _mm256_div_pd(_mm256_mul_pd(v, sp), eff);
        _mm256_storeu_pd(input_w + i, w);
    }
    return i;
}

std::size_t
cvLanesAvx2(const BatchChargeConsts &c, double dt, double factor,
            std::size_t n, const double *dod, const double *i0,
            const double *elapsed, double *dod_out, double *elapsed_out)
{
    const __m256d zero = _mm256_setzero_pd();
    const __m256d dt_v = _mm256_set1_pd(dt);
    const __m256d refill = _mm256_set1_pd(c.refillC);
    const __m256d tau = _mm256_set1_pd(c.tauS);
    const __m256d factor_v = _mm256_set1_pd(factor);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d cur0 = _mm256_loadu_pd(i0 + i);
        __m256d cur1 = _mm256_mul_pd(cur0, factor_v);
        // max(0, dod - (tau * (i0 - i1)) / refill)
        __m256d delivered =
            _mm256_mul_pd(tau, _mm256_sub_pd(cur0, cur1));
        __m256d nd = _mm256_max_pd(
            zero, _mm256_sub_pd(_mm256_loadu_pd(dod + i),
                                _mm256_div_pd(delivered, refill)));
        _mm256_storeu_pd(dod_out + i, nd);
        _mm256_storeu_pd(elapsed_out + i,
                         _mm256_add_pd(_mm256_loadu_pd(elapsed + i),
                                       dt_v));
    }
    return i;
}

} // namespace dcbatt::battery::internal

#else // !x86-64

namespace dcbatt::battery::internal {

// Never dispatched to off x86-64 (cpuHasAvx2() is false); the symbols
// exist so the dispatch code links unchanged.
std::size_t
ccLanesAvx2(const BatchChargeConsts &, double, std::size_t,
            const double *, const double *, double *, double *)
{
    return 0;
}

std::size_t
cvLanesAvx2(const BatchChargeConsts &, double, double, std::size_t,
            const double *, const double *, const double *, double *,
            double *)
{
    return 0;
}

} // namespace dcbatt::battery::internal

#endif
