/**
 * @file
 * Internal seam between the batch charge kernel's dispatch and its
 * AVX2 translation unit (compiled with -mavx2 -ffp-contract=off; see
 * src/battery/CMakeLists.txt). Nothing outside src/battery includes
 * this.
 */

#ifndef DCBATT_BATTERY_BATCH_CHARGE_KERNEL_INTERNAL_H_
#define DCBATT_BATTERY_BATCH_CHARGE_KERNEL_INTERNAL_H_

#include <cstddef>

namespace dcbatt::battery::internal {

/** The kernel's derived constants, passed by value to the AVX2 TU. */
struct BatchChargeConsts
{
    double refillC;
    double effic;
    double emptyV;
    double cvV;
    double tauS;
    double ocvSocSpan;
    double ocvVoltSpan;
};

/** Whether this CPU executes AVX2 (false off x86-64). */
bool cpuHasAvx2();

/**
 * Vector bodies of the CC / CV lane updates. Each processes the
 * leading multiple-of-4 lanes and returns how many it handled; the
 * caller finishes the tail (and, for CV, the per-lane transcendental
 * part) with the scalar code. Expressions mirror the scalar lanes
 * operation for operation — no FMA — so results are bit-identical.
 */
std::size_t ccLanesAvx2(const BatchChargeConsts &c, double dt,
                        std::size_t n, const double *dod,
                        const double *setpoint, double *dod_out,
                        double *input_w);
std::size_t cvLanesAvx2(const BatchChargeConsts &c, double dt,
                        double factor, std::size_t n, const double *dod,
                        const double *i0, const double *elapsed,
                        double *dod_out, double *elapsed_out);

} // namespace dcbatt::battery::internal

#endif // DCBATT_BATTERY_BATCH_CHARGE_KERNEL_INTERNAL_H_
