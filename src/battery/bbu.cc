#include "battery/bbu.h"

#include <algorithm>
#include <cmath>

#include "battery/batch_charge_kernel.h"
#include "util/check.h"

namespace dcbatt::battery {

using util::Amperes;
using util::Coulombs;
using util::Joules;
using util::Seconds;
using util::Volts;
using util::Watts;

const char *
toString(BbuState state)
{
    switch (state) {
      case BbuState::FullyCharged:
        return "fully_charged";
      case BbuState::Discharging:
        return "discharging";
      case BbuState::FullyDischarged:
        return "fully_discharged";
      case BbuState::Charging:
        return "charging";
    }
    DCBATT_UNREACHABLE("invalid BbuState %d", static_cast<int>(state));
}

BbuModel::BbuModel(BbuParams params) : params_(params), kernel_(params)
{
    DCBATT_REQUIRE(params_.numericSubstep > 0.0,
                   "numeric substep %g s must be positive",
                   params_.numericSubstep);
    substepDecay_ = std::exp(-params_.numericSubstep
                             / params_.cvTimeConstant.value());
    // Constants of the open-circuit-voltage line, computed once with
    // exactly the expressions terminalVoltage() originally evaluated
    // per read (so cached reads stay bit-identical).
    double ref_threshold = cvCharge(params_.originalCurrent)
        / params_.refillCharge;
    ocvSocSpan_ = 1.0 - ref_threshold;
    ocvVoltSpan_ = params_.ccEndVoltage.value()
        - params_.emptyVoltage.value();
}

void
BbuModel::setSetpoint(Amperes current)
{
    setpoint_ = util::clamp(current, params_.minCurrent,
                            params_.maxCurrent);
    if (params_.integrator == CcCvIntegrator::NumericReference
        && state_ == BbuState::Charging && inCv_) {
        // A mid-CV setpoint change re-anchors the decayed current to
        // the new setpoint, matching the analytic path's semantics
        // (current = setpoint * e^{-elapsed/tau}).
        numericCurrentA_ = setpoint_.value()
            * std::exp(-cvElapsed_.value()
                       / params_.cvTimeConstant.value());
    }
    refreshDerived();
}

void
BbuModel::setPaused(bool paused)
{
    paused_ = paused;
    refreshDerived();
}

Coulombs
BbuModel::cvCharge(Amperes setpoint) const
{
    return (setpoint - params_.cutoffCurrent) * params_.cvTimeConstant;
}

Volts
BbuModel::terminalVoltage() const
{
    if (state_ == BbuState::Charging && inCv_)
        return params_.cvVoltage;
    // Linear open-circuit curve from empty (42.6 V at DOD 1) to the CC
    // end voltage. The CC->CV handover for the reference 5 A setpoint
    // happens at DOD ~0.22, which is where the line is pinned to 52 V.
    double t = std::clamp((1.0 - dod_) / ocvSocSpan_, 0.0, 1.0);
    double v = params_.emptyVoltage.value() + ocvVoltSpan_ * t;
    return Volts(v);
}

Joules
BbuModel::discharge(Watts power, Seconds dt)
{
    DCBATT_REQUIRE(power.value() >= 0.0,
                   "negative discharge power %g W", power.value());
    if (state_ == BbuState::FullyDischarged || power.value() == 0.0
        || dt.value() <= 0.0) {
        return Joules(0.0);
    }
    state_ = BbuState::Discharging;
    inCv_ = false;
    paused_ = false;
    cvElapsed_ = Seconds(0.0);
    numericCurrentA_ = 0.0;
    Joules requested = power * dt;
    Joules available = params_.fullDischargeEnergy * (1.0 - dod_);
    Joules delivered = util::min(requested, available);
    dod_ += delivered / params_.fullDischargeEnergy;
    if (dod_ >= 1.0 - 1e-12) {
        dod_ = 1.0;
        state_ = BbuState::FullyDischarged;
    }
    DCBATT_ASSERT(dod_ >= 0.0 && dod_ <= 1.0,
                  "DOD %.12g outside [0, 1] after discharge", dod_);
    refreshDerived();
    return delivered;
}

void
BbuModel::startCharging(Amperes initial_current)
{
    if (state_ == BbuState::FullyCharged)
        return;
    setSetpoint(initial_current);
    state_ = BbuState::Charging;
    cvElapsed_ = Seconds(0.0);
    inCv_ = false;
    maybeEnterCv();
    if (inCv_)
        numericCurrentA_ = setpoint_.value();
    refreshDerived();
}

void
BbuModel::maybeEnterCv()
{
    // The CC-CV state machine only moves forward: once the remaining
    // deficit fits in the CV tail the pack enters CV and stays there
    // until charging completes (or a discharge resets the cycle).
    if (!inCv_
        && kernel_.shouldEnterCv(dod_, setpoint_.value())) {
        inCv_ = true;
        cvElapsed_ = Seconds(0.0);
    }
}

void
BbuModel::step(Seconds dt)
{
    if (state_ != BbuState::Charging || paused_ || dt.value() <= 0.0)
        return;
    DCBATT_ASSERT(setpoint_ >= params_.minCurrent
                      && setpoint_ <= params_.maxCurrent,
                  "charging setpoint %g A outside hardware range "
                  "[%g, %g]",
                  setpoint_.value(), params_.minCurrent.value(),
                  params_.maxCurrent.value());
    if (params_.integrator == CcCvIntegrator::NumericReference)
        stepNumeric(dt);
    else
        stepAnalytic(dt);
}

double
BbuModel::cvAdvanceFactorMemo(double advance)
{
    if (advance != cvAdvanceKey_) {
        cvAdvanceKey_ = advance;
        cvAdvanceFactor_ = kernel_.cvDecayFactor(advance);
    }
    return cvAdvanceFactor_;
}

void
BbuModel::stepAnalytic(Seconds dt)
{
    double remaining = dt.value();
    while (remaining > 1e-12) {
        maybeEnterCv();
        if (!inCv_) {
            // CC phase: constant current until the deficit equals the
            // CV-phase charge. Advance either the full step or exactly
            // to the handover, whichever is sooner.
            double handover_s =
                kernel_.ccHandoverSeconds(dod_, setpoint_.value());
            DCBATT_ASSERT(handover_s >= 0.0,
                          "CC phase with deficit %g C below CV charge "
                          "%g C",
                          deficit().value(),
                          cvCharge(setpoint_).value());
            double advance = std::min(remaining, handover_s);
            dod_ = kernel_.applyCharge(dod_,
                                       setpoint_.value() * advance);
            remaining -= advance;
        } else {
            // CV phase: exponentially decaying current; charging is
            // complete when the current reaches the cutoff. Charge
            // delivered beyond the residual deficit is absorbed by
            // top-of-charge balancing (deficit clamps at zero). The
            // segment's start current is the cached instantaneous
            // current: at CV entry the decay factor is exactly 1, and
            // at a step boundary the cache was refreshed with the
            // same e^{-elapsed/tau} the original model recomputed.
            double total_cv = totalCvMemo();
            double left = total_cv - cvElapsed_.value();
            double advance = std::min(remaining, left);
            double i0 = cachedCurrentA_;
            double i1 = i0 * cvAdvanceFactorMemo(advance);
            dod_ = kernel_.applyCharge(
                dod_, kernel_.cvDeliveredCoulombs(i0, i1));
            cvElapsed_ += Seconds(advance);
            remaining -= advance;
            if (cvElapsed_.value() >= total_cv - 1e-9) {
                completeCharge();
                return;
            }
        }
    }
    refreshDerived();
}

void
BbuModel::stepNumeric(Seconds dt)
{
    const double tau = params_.cvTimeConstant.value();
    const double h_max = params_.numericSubstep;
    double remaining = dt.value();
    while (remaining > 1e-12) {
        bool was_cv = inCv_;
        maybeEnterCv();
        if (inCv_ && !was_cv)
            numericCurrentA_ = setpoint_.value();
        if (!inCv_) {
            // The CC phase is linear, so the rectangle rule is exact;
            // cut at the handover so the CC->CV transition lands on
            // the same step as the analytic path.
            double handover_s =
                kernel_.ccHandoverSeconds(dod_, setpoint_.value());
            DCBATT_ASSERT(handover_s >= 0.0,
                          "CC phase with negative handover %g s",
                          handover_s);
            double advance = std::min(remaining, handover_s);
            dod_ = kernel_.applyCharge(dod_,
                                       setpoint_.value() * advance);
            remaining -= advance;
        } else {
            // Rectangle-rule CV integration with the decay applied as
            // a running multiply of the precomputed per-substep
            // factor; completion when the current hits the cutoff.
            double h = std::min(remaining, h_max);
            double decay =
                h == h_max ? substepDecay_ : std::exp(-h / tau);
            dod_ = kernel_.applyCharge(dod_, numericCurrentA_ * h);
            numericCurrentA_ *= decay;
            cvElapsed_ += Seconds(h);
            remaining -= h;
            if (numericCurrentA_ <= params_.cutoffCurrent.value()) {
                completeCharge();
                return;
            }
        }
    }
    refreshDerived();
}

void
BbuModel::completeCharge()
{
    dod_ = 0.0;
    state_ = BbuState::FullyCharged;
    setpoint_ = Amperes(0.0);
    inCv_ = false;
    cvElapsed_ = Seconds(0.0);
    numericCurrentA_ = 0.0;
    refreshDerived();
}

void
BbuModel::refreshDerived()
{
    if (state_ != BbuState::Charging) {
        cachedCurrentA_ = 0.0;
        cachedInputW_ = 0.0;
        return;
    }
    if (paused_) {
        cachedCurrentA_ = 0.0;
    } else if (!inCv_) {
        cachedCurrentA_ = setpoint_.value();
    } else if (params_.integrator == CcCvIntegrator::NumericReference) {
        cachedCurrentA_ = numericCurrentA_;
    } else {
        double decay = std::exp(-cvElapsed_ / params_.cvTimeConstant);
        cachedCurrentA_ = (setpoint_ * decay).value();
    }
    // Input power, with exactly the expression the original model
    // evaluated on every read (a paused pack draws V * 0 / eff == 0).
    Watts cell_power = terminalVoltage() * chargingCurrent();
    cachedInputW_ = (cell_power / params_.chargeEfficiency).value();
}

void
BbuModel::reset()
{
    state_ = BbuState::FullyCharged;
    dod_ = 0.0;
    setpoint_ = Amperes(0.0);
    inCv_ = false;
    paused_ = false;
    cvElapsed_ = Seconds(0.0);
    numericCurrentA_ = 0.0;
    refreshDerived();
}

void
BbuModel::forceDod(double dod)
{
    DCBATT_REQUIRE(dod >= 0.0 && dod <= 1.0, "bad DOD %g", dod);
    dod_ = dod;
    inCv_ = false;
    cvElapsed_ = Seconds(0.0);
    numericCurrentA_ = 0.0;
    if (dod == 0.0) {
        state_ = BbuState::FullyCharged;
        setpoint_ = Amperes(0.0);
    } else if (dod == 1.0) {
        state_ = BbuState::FullyDischarged;
    } else {
        state_ = BbuState::Discharging;
    }
    refreshDerived();
}

} // namespace dcbatt::battery
