#include "battery/bbu.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcbatt::battery {

using util::Amperes;
using util::Coulombs;
using util::Joules;
using util::Seconds;
using util::Volts;
using util::Watts;

const char *
toString(BbuState state)
{
    switch (state) {
      case BbuState::FullyCharged:
        return "fully_charged";
      case BbuState::Discharging:
        return "discharging";
      case BbuState::FullyDischarged:
        return "fully_discharged";
      case BbuState::Charging:
        return "charging";
    }
    DCBATT_UNREACHABLE("invalid BbuState %d", static_cast<int>(state));
}

BbuModel::BbuModel(BbuParams params) : params_(params) {}

void
BbuModel::setSetpoint(Amperes current)
{
    setpoint_ = util::clamp(current, params_.minCurrent,
                            params_.maxCurrent);
}

Coulombs
BbuModel::cvCharge(Amperes setpoint) const
{
    return (setpoint - params_.cutoffCurrent) * params_.cvTimeConstant;
}

Amperes
BbuModel::chargingCurrent() const
{
    if (state_ != BbuState::Charging || paused_)
        return Amperes(0.0);
    if (!inCv_)
        return setpoint_;
    double decay = std::exp(-cvElapsed_ / params_.cvTimeConstant);
    return setpoint_ * decay;
}

Volts
BbuModel::terminalVoltage() const
{
    if (state_ == BbuState::Charging && inCv_)
        return params_.cvVoltage;
    // Linear open-circuit curve from empty (42.6 V at DOD 1) to the CC
    // end voltage. The CC->CV handover for the reference 5 A setpoint
    // happens at DOD ~0.22, which is where the line is pinned to 52 V.
    double ref_threshold = cvCharge(params_.originalCurrent)
        / params_.refillCharge;
    double span = 1.0 - ref_threshold;
    double t = std::clamp((1.0 - dod_) / span, 0.0, 1.0);
    double v = params_.emptyVoltage.value()
        + (params_.ccEndVoltage.value() - params_.emptyVoltage.value())
        * t;
    return Volts(v);
}

Watts
BbuModel::inputPower() const
{
    if (state_ != BbuState::Charging)
        return Watts(0.0);
    Watts cell_power = terminalVoltage() * chargingCurrent();
    return cell_power / params_.chargeEfficiency;
}

Joules
BbuModel::discharge(Watts power, Seconds dt)
{
    DCBATT_REQUIRE(power.value() >= 0.0,
                   "negative discharge power %g W", power.value());
    if (state_ == BbuState::FullyDischarged || power.value() == 0.0
        || dt.value() <= 0.0) {
        return Joules(0.0);
    }
    state_ = BbuState::Discharging;
    inCv_ = false;
    paused_ = false;
    cvElapsed_ = Seconds(0.0);
    Joules requested = power * dt;
    Joules available = params_.fullDischargeEnergy * (1.0 - dod_);
    Joules delivered = util::min(requested, available);
    dod_ += delivered / params_.fullDischargeEnergy;
    if (dod_ >= 1.0 - 1e-12) {
        dod_ = 1.0;
        state_ = BbuState::FullyDischarged;
    }
    DCBATT_ASSERT(dod_ >= 0.0 && dod_ <= 1.0,
                  "DOD %.12g outside [0, 1] after discharge", dod_);
    return delivered;
}

void
BbuModel::startCharging(Amperes initial_current)
{
    if (state_ == BbuState::FullyCharged)
        return;
    setSetpoint(initial_current);
    state_ = BbuState::Charging;
    cvElapsed_ = Seconds(0.0);
    inCv_ = false;
    maybeEnterCv();
}

void
BbuModel::maybeEnterCv()
{
    // The CC-CV state machine only moves forward: once the remaining
    // deficit fits in the CV tail the pack enters CV and stays there
    // until charging completes (or a discharge resets the cycle).
    if (!inCv_ && deficit() <= cvCharge(setpoint_)) {
        inCv_ = true;
        cvElapsed_ = Seconds(0.0);
    }
}

void
BbuModel::step(Seconds dt)
{
    if (state_ != BbuState::Charging || paused_ || dt.value() <= 0.0)
        return;
    DCBATT_ASSERT(setpoint_ >= params_.minCurrent
                      && setpoint_ <= params_.maxCurrent,
                  "charging setpoint %g A outside hardware range "
                  "[%g, %g]",
                  setpoint_.value(), params_.minCurrent.value(),
                  params_.maxCurrent.value());
    double remaining = dt.value();
    while (remaining > 1e-12) {
        maybeEnterCv();
        if (!inCv_) {
            // CC phase: constant current until the deficit equals the
            // CV-phase charge. Advance either the full step or exactly
            // to the handover, whichever is sooner.
            Coulombs to_handover = deficit() - cvCharge(setpoint_);
            DCBATT_ASSERT(to_handover.value() >= 0.0,
                          "CC phase with deficit %g C below CV charge "
                          "%g C",
                          deficit().value(),
                          cvCharge(setpoint_).value());
            double handover_s = to_handover.value() / setpoint_.value();
            double advance = std::min(remaining, handover_s);
            Coulombs delivered = setpoint_ * Seconds(advance);
            dod_ = std::max(0.0, dod_ - delivered / params_.refillCharge);
            remaining -= advance;
        } else {
            // CV phase: exponentially decaying current; charging is
            // complete when the current reaches the cutoff. Charge
            // delivered beyond the residual deficit is absorbed by
            // top-of-charge balancing (deficit clamps at zero).
            Seconds tau = params_.cvTimeConstant;
            double total_cv = tau.value()
                * std::log(setpoint_ / params_.cutoffCurrent);
            double left = total_cv - cvElapsed_.value();
            double advance = std::min(remaining, left);
            double i0 = setpoint_.value() * std::exp(-cvElapsed_ / tau);
            double i1 = i0 * std::exp(-advance / tau.value());
            Coulombs delivered(tau.value() * (i0 - i1));
            dod_ = std::max(0.0, dod_ - delivered / params_.refillCharge);
            cvElapsed_ += Seconds(advance);
            remaining -= advance;
            if (cvElapsed_.value() >= total_cv - 1e-9) {
                dod_ = 0.0;
                state_ = BbuState::FullyCharged;
                setpoint_ = Amperes(0.0);
                inCv_ = false;
                cvElapsed_ = Seconds(0.0);
                return;
            }
        }
    }
}

void
BbuModel::reset()
{
    state_ = BbuState::FullyCharged;
    dod_ = 0.0;
    setpoint_ = Amperes(0.0);
    inCv_ = false;
    paused_ = false;
    cvElapsed_ = Seconds(0.0);
}

void
BbuModel::forceDod(double dod)
{
    DCBATT_REQUIRE(dod >= 0.0 && dod <= 1.0, "bad DOD %g", dod);
    dod_ = dod;
    inCv_ = false;
    cvElapsed_ = Seconds(0.0);
    if (dod == 0.0) {
        state_ = BbuState::FullyCharged;
        setpoint_ = Amperes(0.0);
    } else if (dod == 1.0) {
        state_ = BbuState::FullyDischarged;
    } else {
        state_ = BbuState::Discharging;
    }
}

} // namespace dcbatt::battery
