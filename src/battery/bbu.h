/**
 * @file
 * Dynamic model of one battery backup unit (BBU).
 *
 * Implements the four-state machine of Fig. 8(a) — FullyCharged,
 * Discharging, FullyDischarged, Charging — with the CC-CV charging
 * dynamics whose closed form lives in ChargeTimeModel. The two agree
 * exactly: stepping this model to completion takes the same time (to
 * within one integration step) as ChargeTimeModel::chargeTime().
 *
 * The charger behaviour reproduces the deployed hardware:
 *  - CC phase: constant setpoint current, terminal voltage rising from
 *    42.6 V to 52.0 V; hands over to CV when the remaining deficit
 *    equals the charge the CV phase will deliver.
 *  - CV phase: 52.5 V, current decaying exponentially from the setpoint
 *    with time constant tau until the 0.4 A cutoff. The decay is
 *    time-based: after a shallow discharge the pack still walks through
 *    the full CV tail (top-of-charge balancing), which is why measured
 *    charge time is flat below the DOD threshold and why the *original*
 *    charger always produces the worst-case initial power spike, the
 *    root cause the paper identifies.
 *  - The setpoint can be changed while charging (manual override).
 *
 * Two integrators implement the dynamics (BbuParams::integrator):
 *
 *  - Analytic (default): composes the closed-form primitives of
 *    CcCvKernel — the next state boundary (CC->CV handover, CV
 *    cutoff) is computed exactly and the state jumps there, with the
 *    instantaneous current and the CV duration cached on the model so
 *    reads do no transcendental work. This path is bit-identical to
 *    the original per-second integrator at every step size.
 *  - NumericReference: the legacy fixed-substep integrator, kept as a
 *    cross-check. The CV decay is applied as a running multiply of
 *    the precomputed per-substep factor e^{-h/tau}; charge is
 *    integrated with the rectangle rule, so SoC lags the analytic
 *    path by O(h/2tau) per segment and completion lands within one
 *    substep of the closed form (the parity property test pins both).
 */

#ifndef DCBATT_BATTERY_BBU_H_
#define DCBATT_BATTERY_BBU_H_

#include <cstddef>

#include "battery/batch_charge_kernel.h"
#include "battery/bbu_params.h"
#include "battery/cc_cv_kernel.h"
#include "util/check.h"
#include "util/units.h"

namespace dcbatt::battery {

/**
 * Which batch lane (if any) a pack's next step can run on — see
 * batch_charge_kernel.h. None means the step has a discrete event
 * inside it (phase handover, completion, pause, ...) and must take
 * the ordinary scalar path.
 */
enum class BatchLaneKind
{
    None,
    Cc,
    Cv,
};

/** Battery states of Fig. 8(a). */
enum class BbuState
{
    FullyCharged,
    Discharging,
    FullyDischarged,
    Charging,
};

const char *toString(BbuState state);

/** One BBU with CC-CV recharge dynamics. */
class BbuModel
{
  public:
    explicit BbuModel(BbuParams params = {});

    const BbuParams &params() const { return params_; }

    BbuState state() const { return state_; }
    /** Depth of discharge in [0, 1]; 0 means full. */
    double dod() const { return dod_; }
    bool fullyCharged() const { return state_ == BbuState::FullyCharged; }
    bool fullyDischarged() const
    {
        return state_ == BbuState::FullyDischarged;
    }
    bool charging() const { return state_ == BbuState::Charging; }

    /** Whether the charger is in the CV phase (meaningful if charging). */
    bool inCvPhase() const { return charging() && inCv_; }

    /** Present CC setpoint. */
    util::Amperes setpoint() const { return setpoint_; }

    /**
     * Change the CC setpoint (manual-override path). Clamped to the
     * hardware range. Takes effect immediately; actuation latency is
     * modelled by the control plane, not the pack.
     */
    void setSetpoint(util::Amperes current);

    /**
     * Pause/resume charging (the postponed-charging extension the
     * paper lists as future work). A paused pack stays in the
     * Charging state but draws no current and makes no progress; the
     * CV decay clock is frozen with it.
     */
    void setPaused(bool paused);
    bool paused() const { return paused_; }

    /** Instantaneous charging current drawn by the cells (0 if idle). */
    util::Amperes chargingCurrent() const
    {
        return util::Amperes(cachedCurrentA_);
    }

    /** Terminal voltage under the present state. */
    util::Volts terminalVoltage() const;

    /** Wall (input) power consumed by charging, incl. PSU loss. */
    util::Watts inputPower() const
    {
        if (state_ != BbuState::Charging)
            return util::Watts(0.0);
        return util::Watts(cachedInputW_);
    }

    /**
     * Begin (or continue) discharging at the given cell power draw.
     * Transitions to Discharging; to FullyDischarged when the energy
     * runs out mid-step. @returns the energy actually delivered, which
     * is less than power*dt if the pack empties.
     */
    util::Joules discharge(util::Watts power, util::Seconds dt);

    /**
     * Input power restored: begin charging at @p initial_current
     * (clamped to hardware range). A fully charged pack stays
     * FullyCharged. Charging restarts cleanly even if already charging
     * (e.g. a second open transition mid-charge).
     */
    void startCharging(util::Amperes initial_current);

    /** Advance charging dynamics by dt. No-op unless Charging. */
    void step(util::Seconds dt);

    /**
     * Batched stepping, part 1: if the next step(dt) would be one
     * strictly interior CC or CV segment on the analytic integrator
     * (no handover, no completion, not paused), push this pack's lane
     * inputs onto @p stage and report which lane set; otherwise stage
     * nothing and return None. Non-const only because the CV check
     * warms the same totalCvMemo() slot the scalar step would.
     */
    BatchLaneKind tryExportBatchLane(double dt,
                                     BatchChargeStage &stage);

    /**
     * Batched stepping, part 2: adopt lane @p lane of @p stage's
     * outputs, leaving the pack in exactly the state step(dt) would
     * have produced (BatchChargeKernel mirrors stepAnalytic() +
     * refreshDerived() bit for bit). Only valid right after a
     * tryExportBatchLane() that returned @p kind for this pack.
     */
    void applyBatchLane(BatchLaneKind kind, std::size_t lane,
                        const BatchChargeStage &stage);

    /**
     * Snapshot of the fields that determine a pack's dynamic
     * evolution. Two packs with bit-equal ChargeStates (and the same
     * calibration) stepped by the same dt stay bit-equal — the
     * integrator is deterministic — which PowerShelf exploits to
     * integrate one representative pack and copy the result across
     * its twins.
     */
    struct ChargeState
    {
        BbuState state;
        double dod;
        double setpointA;
        double cvElapsedS;
        double numericCurrentA;
        bool inCv;
        bool paused;
    };

    ChargeState chargeState() const
    {
        return {state_,          dod_,    setpoint_.value(),
                cvElapsed_.value(), numericCurrentA_, inCv_,
                paused_};
    }

    /** Whether this pack's dynamic state bit-equals @p s. */
    bool matches(const ChargeState &s) const
    {
        return state_ == s.state && dod_ == s.dod
            && setpoint_.value() == s.setpointA
            && inCv_ == s.inCv && paused_ == s.paused
            && cvElapsed_.value() == s.cvElapsedS
            && numericCurrentA_ == s.numericCurrentA;
    }

    /**
     * Copy @p other's dynamic state (including the derived caches and
     * memo slots) into this pack. Only valid between packs sharing one
     * calibration — PowerShelf's twin fast-forward.
     */
    void adoptStateFrom(const BbuModel &other)
    {
        state_ = other.state_;
        dod_ = other.dod_;
        setpoint_ = other.setpoint_;
        inCv_ = other.inCv_;
        paused_ = other.paused_;
        cvElapsed_ = other.cvElapsed_;
        cachedCurrentA_ = other.cachedCurrentA_;
        cachedInputW_ = other.cachedInputW_;
        totalCvKey_ = other.totalCvKey_;
        totalCvCache_ = other.totalCvCache_;
        cvAdvanceKey_ = other.cvAdvanceKey_;
        cvAdvanceFactor_ = other.cvAdvanceFactor_;
        numericCurrentA_ = other.numericCurrentA_;
    }

    /** Reset to FullyCharged. */
    void reset();

    /** Inject a DOD directly (test/benchmark setup helper). */
    void forceDod(double dod);

  private:
    /** Remaining charge deficit in coulombs. */
    util::Coulombs deficit() const { return params_.refillCharge * dod_; }

    /** CV-phase charge for a given setpoint. */
    util::Coulombs cvCharge(util::Amperes setpoint) const;

    void maybeEnterCv();

    /** Closed-form fast-forward path (default integrator). */
    void stepAnalytic(util::Seconds dt);

    /** Legacy fixed-substep reference integrator. */
    void stepNumeric(util::Seconds dt);

    /** Discrete completion transition shared by both integrators. */
    void completeCharge();

    /**
     * Recompute the cached instantaneous current after any state
     * change. Uses exactly the expressions the original model
     * evaluated on every read, so cached reads stay bit-identical.
     */
    void refreshDerived();

    /** Cached tau*log(setpoint/cutoff), keyed by the setpoint. */
    double totalCvMemo();

    /** Cached e^{-advance/tau}, keyed by the advance length. */
    double cvAdvanceFactorMemo(double advance);

    BbuParams params_;
    CcCvKernel kernel_;
    BbuState state_ = BbuState::FullyCharged;
    double dod_ = 0.0;
    util::Amperes setpoint_{0.0};
    bool inCv_ = false;
    bool paused_ = false;
    util::Seconds cvElapsed_{0.0};

    /** chargingCurrent() in amperes; valid at every quiescent point. */
    double cachedCurrentA_ = 0.0;
    /** inputPower() in watts while Charging; refreshed with it. */
    double cachedInputW_ = 0.0;
    /** Constants of the linear OCV curve (terminalVoltage). */
    double ocvSocSpan_ = 1.0;
    double ocvVoltSpan_ = 0.0;

    /** Memo slots (sentinel keys: both quantities are positive). */
    double totalCvKey_ = -1.0;
    double totalCvCache_ = 0.0;
    double cvAdvanceKey_ = -1.0;
    double cvAdvanceFactor_ = 1.0;

    /** Numeric reference path: e^{-h/tau} and the running current. */
    double substepDecay_ = 1.0;
    double numericCurrentA_ = 0.0;
};

// The batch-lane protocol runs once per rack per physics step; the
// definitions live here so Topology's staging loop inlines them
// (the build has no LTO to do it across translation units).

inline double
BbuModel::totalCvMemo()
{
    if (setpoint_.value() != totalCvKey_) {
        totalCvKey_ = setpoint_.value();
        totalCvCache_ = kernel_.totalCvSeconds(totalCvKey_);
    }
    return totalCvCache_;
}

inline BatchLaneKind
BbuModel::tryExportBatchLane(double dt, BatchChargeStage &stage)
{
    // Mirrors the gates of step(): anything that makes step() a no-op
    // or routes it off the analytic fast path stays scalar.
    if (state_ != BbuState::Charging || paused_ || dt <= 0.0
        || params_.integrator == CcCvIntegrator::NumericReference) {
        return BatchLaneKind::None;
    }
    DCBATT_ASSERT(setpoint_ >= params_.minCurrent
                      && setpoint_ <= params_.maxCurrent,
                  "charging setpoint %g A outside hardware range "
                  "[%g, %g]",
                  setpoint_.value(), params_.minCurrent.value(),
                  params_.maxCurrent.value());
    if (!inCv_) {
        // stepAnalytic() would first run maybeEnterCv(), then advance
        // min(dt, handover). Batch only the case where the whole step
        // stays inside the CC segment (handover >= dt keeps
        // min(dt, handover) == dt).
        if (kernel_.shouldEnterCv(dod_, setpoint_.value()))
            return BatchLaneKind::None;
        double handover_s =
            kernel_.ccHandoverSeconds(dod_, setpoint_.value());
        if (dt > handover_s)
            return BatchLaneKind::None;
        stage.ccDod.push_back(dod_);
        stage.ccSetpointA.push_back(setpoint_.value());
        return BatchLaneKind::Cc;
    }
    // CV segment: eligible only when the step neither overruns the
    // remaining CV time (min(dt, left) must be dt) nor trips the
    // completion check — both tested with the scalar path's own
    // floating-point expressions.
    double total_cv = totalCvMemo();
    double left = total_cv - cvElapsed_.value();
    if (dt > left)
        return BatchLaneKind::None;
    if (cvElapsed_.value() + dt >= total_cv - 1e-9)
        return BatchLaneKind::None;
    stage.cvDod.push_back(dod_);
    stage.cvI0A.push_back(cachedCurrentA_);
    stage.cvSetpointA.push_back(setpoint_.value());
    stage.cvElapsedS.push_back(cvElapsed_.value());
    return BatchLaneKind::Cv;
}

inline void
BbuModel::applyBatchLane(BatchLaneKind kind, std::size_t lane,
                         const BatchChargeStage &stage)
{
    if (kind == BatchLaneKind::Cc) {
        dod_ = stage.ccDodOut[lane];
        // refreshDerived() on an interior CC point: current is the
        // setpoint, input power was computed in the lane.
        cachedCurrentA_ = setpoint_.value();
        cachedInputW_ = stage.ccInputW[lane];
        return;
    }
    DCBATT_ASSERT(kind == BatchLaneKind::Cv,
                  "applyBatchLane with kind %d",
                  static_cast<int>(kind));
    dod_ = stage.cvDodOut[lane];
    cvElapsed_ = util::Seconds(stage.cvElapsedOutS[lane]);
    cachedCurrentA_ = stage.cvCurrentA[lane];
    cachedInputW_ = stage.cvInputW[lane];
}

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_BBU_H_
