/**
 * @file
 * Dynamic model of one battery backup unit (BBU).
 *
 * Implements the four-state machine of Fig. 8(a) — FullyCharged,
 * Discharging, FullyDischarged, Charging — with the CC-CV charging
 * dynamics whose closed form lives in ChargeTimeModel. The two agree
 * exactly: stepping this model to completion takes the same time (to
 * within one integration step) as ChargeTimeModel::chargeTime().
 *
 * The charger behaviour reproduces the deployed hardware:
 *  - CC phase: constant setpoint current, terminal voltage rising from
 *    42.6 V to 52.0 V; hands over to CV when the remaining deficit
 *    equals the charge the CV phase will deliver.
 *  - CV phase: 52.5 V, current decaying exponentially from the setpoint
 *    with time constant tau until the 0.4 A cutoff. The decay is
 *    time-based: after a shallow discharge the pack still walks through
 *    the full CV tail (top-of-charge balancing), which is why measured
 *    charge time is flat below the DOD threshold and why the *original*
 *    charger always produces the worst-case initial power spike, the
 *    root cause the paper identifies.
 *  - The setpoint can be changed while charging (manual override).
 */

#ifndef DCBATT_BATTERY_BBU_H_
#define DCBATT_BATTERY_BBU_H_

#include "battery/bbu_params.h"
#include "util/units.h"

namespace dcbatt::battery {

/** Battery states of Fig. 8(a). */
enum class BbuState
{
    FullyCharged,
    Discharging,
    FullyDischarged,
    Charging,
};

const char *toString(BbuState state);

/** One BBU with CC-CV recharge dynamics. */
class BbuModel
{
  public:
    explicit BbuModel(BbuParams params = {});

    const BbuParams &params() const { return params_; }

    BbuState state() const { return state_; }
    /** Depth of discharge in [0, 1]; 0 means full. */
    double dod() const { return dod_; }
    bool fullyCharged() const { return state_ == BbuState::FullyCharged; }
    bool fullyDischarged() const
    {
        return state_ == BbuState::FullyDischarged;
    }
    bool charging() const { return state_ == BbuState::Charging; }

    /** Whether the charger is in the CV phase (meaningful if charging). */
    bool inCvPhase() const { return charging() && inCv_; }

    /** Present CC setpoint. */
    util::Amperes setpoint() const { return setpoint_; }

    /**
     * Change the CC setpoint (manual-override path). Clamped to the
     * hardware range. Takes effect immediately; actuation latency is
     * modelled by the control plane, not the pack.
     */
    void setSetpoint(util::Amperes current);

    /**
     * Pause/resume charging (the postponed-charging extension the
     * paper lists as future work). A paused pack stays in the
     * Charging state but draws no current and makes no progress; the
     * CV decay clock is frozen with it.
     */
    void setPaused(bool paused) { paused_ = paused; }
    bool paused() const { return paused_; }

    /** Instantaneous charging current drawn by the cells (0 if idle). */
    util::Amperes chargingCurrent() const;

    /** Terminal voltage under the present state. */
    util::Volts terminalVoltage() const;

    /** Wall (input) power consumed by charging, incl. PSU loss. */
    util::Watts inputPower() const;

    /**
     * Begin (or continue) discharging at the given cell power draw.
     * Transitions to Discharging; to FullyDischarged when the energy
     * runs out mid-step. @returns the energy actually delivered, which
     * is less than power*dt if the pack empties.
     */
    util::Joules discharge(util::Watts power, util::Seconds dt);

    /**
     * Input power restored: begin charging at @p initial_current
     * (clamped to hardware range). A fully charged pack stays
     * FullyCharged. Charging restarts cleanly even if already charging
     * (e.g. a second open transition mid-charge).
     */
    void startCharging(util::Amperes initial_current);

    /** Advance charging dynamics by dt. No-op unless Charging. */
    void step(util::Seconds dt);

    /** Reset to FullyCharged. */
    void reset();

    /** Inject a DOD directly (test/benchmark setup helper). */
    void forceDod(double dod);

  private:
    /** Remaining charge deficit in coulombs. */
    util::Coulombs deficit() const { return params_.refillCharge * dod_; }

    /** CV-phase charge for a given setpoint. */
    util::Coulombs cvCharge(util::Amperes setpoint) const;

    void maybeEnterCv();

    BbuParams params_;
    BbuState state_ = BbuState::FullyCharged;
    double dod_ = 0.0;
    util::Amperes setpoint_{0.0};
    bool inCv_ = false;
    bool paused_ = false;
    util::Seconds cvElapsed_{0.0};
};

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_BBU_H_
