/**
 * @file
 * Calibrated parameters of the battery backup unit (BBU) model.
 *
 * Every constant here is pinned to a number the paper reports (see
 * DESIGN.md section 4 for the full derivation):
 *
 *  - 100 % depth of discharge (DOD) is defined as discharging a BBU at
 *    3.3 kW of IT load for 90 seconds (footnote 1) => 297 kJ.
 *  - The original charger does constant-current (CC) charging at 5 A up
 *    to 52.0 V (about 20 minutes from full discharge), then constant
 *    voltage (CV) at 52.5 V until the current decays below 0.4 A; the
 *    full sequence completes in about 36 minutes (Fig. 3).
 *  - Those two times pin the refill charge Q = 7803 C and the CV decay
 *    time constant tau = 373 s. tau also reproduces the paper's CV
 *    power fit 1.9*e^{-0.18t} kW (t in minutes) and the observed flat
 *    charge time below 22 % DOD at 5 A.
 *  - The initial BBU charge power of ~260 W at 5 A pins the empty-cell
 *    voltage (42.6 V) and the PSU charging efficiency (0.82); the rack
 *    CC power of ~1.9 kW at 5 A and the fleet minimum of ~120 kW for
 *    316 racks at 1 A both follow from 6 BBUs/rack at 52.5 V / 0.82
 *    = 384 W per ampere per rack.
 */

#ifndef DCBATT_BATTERY_BBU_PARAMS_H_
#define DCBATT_BATTERY_BBU_PARAMS_H_

#include "util/units.h"

namespace dcbatt::battery {

/**
 * Which charging integrator BbuModel::step() uses.
 *
 * Analytic is the default and the production path: the CC-CV
 * trajectory is advanced in closed form (see cc_cv_kernel.h), with
 * derived values (current, input power, CV duration) cached on the
 * model. NumericReference is the legacy fixed-substep integrator kept
 * as a cross-check; the parity property test asserts the two agree on
 * every discrete outcome and track each other's SoC within a
 * documented tolerance.
 */
enum class CcCvIntegrator
{
    Analytic,
    NumericReference,
};

/** Physical calibration of one BBU and its PSU charger. */
struct BbuParams
{
    /** Energy of a 100 % depth-of-discharge event (3.3 kW x 90 s). */
    util::Joules fullDischargeEnergy{297e3};

    /** Charge needed to refill from 100 % DOD, incl. acceptance loss. */
    util::Coulombs refillCharge{7803.0};

    /** CV-phase current decay time constant. */
    util::Seconds cvTimeConstant{373.0};

    /** CV-phase cutoff current: charging completes below this. */
    util::Amperes cutoffCurrent{0.4};

    /** Hardware charging-current range (manual override span). */
    util::Amperes minCurrent{1.0};
    util::Amperes maxCurrent{5.0};

    /** The original charger's fixed CC setpoint. */
    util::Amperes originalCurrent{5.0};

    /** Variable charger's floor current (Eq. 1, DOD < 50 %). */
    util::Amperes variableFloorCurrent{2.0};

    /** Cell voltage at 100 % DOD (pins the 260 W initial power). */
    util::Volts emptyVoltage{42.6};

    /** Voltage at which CC hands over to CV. */
    util::Volts ccEndVoltage{52.0};

    /** Regulated CV-phase voltage. */
    util::Volts cvVoltage{52.5};

    /** PSU wall-to-battery charging efficiency. */
    double chargeEfficiency = 0.82;

    /** Maximum sustained discharge power per BBU (3.3 kW). */
    util::Watts maxDischargePower{3300.0};

    /** BBUs per rack: two power zones, three BBUs each (2+1). */
    int bbusPerRack = 6;
    int zonesPerRack = 2;

    /** Charging integrator (analytic fast-forward by default). */
    CcCvIntegrator integrator = CcCvIntegrator::Analytic;

    /**
     * Substep (seconds) of the numeric reference integrator; each
     * step() is split into fixed slices of at most this length, with
     * the CV decay applied as a running multiply of the precomputed
     * per-substep factor e^{-h/tau}. Ignored on the analytic path.
     */
    double numericSubstep = 1.0;
};

/** Rack-level CC charging wall power per ampere of BBU setpoint. */
inline util::Watts
rackWattsPerAmpere(const BbuParams &p)
{
    return util::Watts(p.cvVoltage.value() * p.bbusPerRack
                       / p.chargeEfficiency);
}

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_BBU_PARAMS_H_
