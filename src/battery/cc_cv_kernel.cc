#include "battery/cc_cv_kernel.h"

#include <algorithm>

#include "util/check.h"

namespace dcbatt::battery {

bool
CcCvKernel::advance(CcCvState &state, double setpoint_a,
                    double dt_seconds) const
{
    DCBATT_REQUIRE(setpoint_a > params_.cutoffCurrent.value(),
                   "setpoint %g A not above cutoff %g A", setpoint_a,
                   params_.cutoffCurrent.value());
    double remaining = dt_seconds;
    while (remaining > 1e-12) {
        if (!state.inCv && shouldEnterCv(state.dod, setpoint_a)) {
            state.inCv = true;
            state.cvElapsedSeconds = 0.0;
        }
        if (!state.inCv) {
            // CC segment: linear SoC at the setpoint, cut at the
            // closed-form handover time.
            double handover_s =
                ccHandoverSeconds(state.dod, setpoint_a);
            DCBATT_ASSERT(handover_s >= 0.0,
                          "CC phase with negative handover time %g s",
                          handover_s);
            double adv = std::min(remaining, handover_s);
            state.dod = applyCharge(state.dod, setpoint_a * adv);
            remaining -= adv;
        } else {
            // CV segment: exponential current decay, cut at the
            // cutoff-current completion time.
            double total_cv = totalCvSeconds(setpoint_a);
            double left = total_cv - state.cvElapsedSeconds;
            double adv = std::min(remaining, left);
            double i0 =
                setpoint_a * cvDecayFactor(state.cvElapsedSeconds);
            double i1 = i0 * cvDecayFactor(adv);
            state.dod =
                applyCharge(state.dod, cvDeliveredCoulombs(i0, i1));
            state.cvElapsedSeconds += adv;
            remaining -= adv;
            if (state.cvElapsedSeconds >= total_cv - 1e-9) {
                state.dod = 0.0;
                return true;
            }
        }
    }
    return false;
}

} // namespace dcbatt::battery
