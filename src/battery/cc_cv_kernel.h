/**
 * @file
 * Piecewise-analytic CC-CV fast-forward kernel.
 *
 * The CC-CV trajectory between control-plane interventions is closed
 * form: the CC phase is linear in state of charge, the CV phase is the
 * paper's exponential current decay. This kernel exposes that math as
 * a set of primitives — next state boundary (CC->CV handover, CV
 * cutoff / full charge), instantaneous current, and an analytic
 * advance that jumps the state by an arbitrary dt — so callers never
 * have to integrate second by second.
 *
 * BbuModel composes these primitives on its hot path (keeping its own
 * derived-value caches); tests and the charge-time cross-checks use
 * the self-contained advance() below. Every expression here mirrors
 * the stepped model bit for bit: stepping a BbuModel and fast-
 * forwarding a CcCvState through the same boundaries produces
 * identical doubles, which is what keeps the figure artifacts byte-
 * identical to the pre-kernel integrator.
 */

#ifndef DCBATT_BATTERY_CC_CV_KERNEL_H_
#define DCBATT_BATTERY_CC_CV_KERNEL_H_

#include <cmath>

#include "battery/bbu_params.h"

namespace dcbatt::battery {

/** Charging-trajectory state advanced by the kernel. */
struct CcCvState
{
    /** Depth of discharge in [0, 1]; 0 means full. */
    double dod = 0.0;
    /** Whether the charger is in the CV phase. */
    bool inCv = false;
    /** Seconds spent in the CV phase so far. */
    double cvElapsedSeconds = 0.0;
};

/** Which state boundary nextBoundarySeconds() reported. */
enum class CcCvBoundary
{
    CcToCv,      ///< CC phase ends (deficit equals the CV charge)
    FullCharge,  ///< CV current reaches the cutoff; charging completes
};

/** Closed-form CC-CV charging math for one parameter set. */
class CcCvKernel
{
  public:
    explicit CcCvKernel(const BbuParams &params) : params_(params) {}

    const BbuParams &params() const { return params_; }

    /** Charge the CV phase delivers for a given setpoint (coulombs). */
    double
    cvChargeCoulombs(double setpoint_a) const
    {
        return (util::Amperes(setpoint_a) - params_.cutoffCurrent)
            .value() * params_.cvTimeConstant.value();
    }

    /** Remaining charge deficit at a given DOD (coulombs). */
    double
    deficitCoulombs(double dod) const
    {
        return (params_.refillCharge * dod).value();
    }

    /** Whether the CC phase is over (the deficit fits the CV tail). */
    bool
    shouldEnterCv(double dod, double setpoint_a) const
    {
        return deficitCoulombs(dod) <= cvChargeCoulombs(setpoint_a);
    }

    /** Total CV-phase duration for a setpoint (DOD-independent). */
    double
    totalCvSeconds(double setpoint_a) const
    {
        return params_.cvTimeConstant.value()
            * std::log(util::Amperes(setpoint_a)
                       / params_.cutoffCurrent);
    }

    /** Seconds of CC phase left before the handover to CV. */
    double
    ccHandoverSeconds(double dod, double setpoint_a) const
    {
        double to_handover =
            deficitCoulombs(dod) - cvChargeCoulombs(setpoint_a);
        return to_handover / setpoint_a;
    }

    /** CV-phase current decay over @p seconds. */
    double
    cvDecayFactor(double seconds) const
    {
        return std::exp(-seconds / params_.cvTimeConstant.value());
    }

    /** Instantaneous charging current (amperes). */
    double
    currentAt(const CcCvState &state, double setpoint_a) const
    {
        if (!state.inCv)
            return setpoint_a;
        return setpoint_a
            * std::exp(-util::Seconds(state.cvElapsedSeconds)
                       / params_.cvTimeConstant);
    }

    /** Charge a CV segment delivers as its current falls i0 -> i1. */
    double
    cvDeliveredCoulombs(double i0_a, double i1_a) const
    {
        return params_.cvTimeConstant.value() * (i0_a - i1_a);
    }

    /** DOD after absorbing @p coulombs (clamped at full). */
    double
    applyCharge(double dod, double coulombs) const
    {
        return std::max(
            0.0, dod - coulombs / params_.refillCharge.value());
    }

    /**
     * Seconds until the next state boundary at a fixed setpoint:
     * the CC->CV handover while in CC, the cutoff-current full-charge
     * point while in CV. The state must describe an in-progress
     * charge (CC implies the deficit exceeds the CV charge).
     */
    double
    nextBoundarySeconds(const CcCvState &state, double setpoint_a,
                        CcCvBoundary *which = nullptr) const
    {
        if (!state.inCv) {
            if (which)
                *which = CcCvBoundary::CcToCv;
            return ccHandoverSeconds(state.dod, setpoint_a);
        }
        if (which)
            *which = CcCvBoundary::FullCharge;
        return totalCvSeconds(setpoint_a) - state.cvElapsedSeconds;
    }

    /**
     * Fast-forward @p state by @p dt_seconds at a fixed setpoint,
     * splitting the advance at state boundaries. @returns true when
     * the charge completed (dod clamped to 0, state left at the CV
     * end); the caller owns the discrete completion transition.
     */
    bool advance(CcCvState &state, double setpoint_a,
                 double dt_seconds) const;

  private:
    BbuParams params_;
};

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_CC_CV_KERNEL_H_
