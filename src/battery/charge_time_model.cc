#include "battery/charge_time_model.h"

#include <cmath>

#include "util/check.h"

namespace dcbatt::battery {

using util::Amperes;
using util::Coulombs;
using util::Seconds;

ChargeTimeModel::ChargeTimeModel(BbuParams params) : params_(params)
{
    DCBATT_REQUIRE(params_.cutoffCurrent < params_.minCurrent,
                   "cutoff %g A must be below min current %g A",
                   params_.cutoffCurrent.value(),
                   params_.minCurrent.value());
}

Seconds
ChargeTimeModel::ccDuration(double dod, Amperes current) const
{
    DCBATT_REQUIRE(dod >= 0.0 && dod <= 1.0, "DOD out of range: %g",
                   dod);
    DCBATT_REQUIRE(current > params_.cutoffCurrent,
                   "current %g A at or below cutoff %g A",
                   current.value(), params_.cutoffCurrent.value());
    Coulombs deficit = params_.refillCharge * dod;
    Coulombs cv_charge = (current - params_.cutoffCurrent)
        * params_.cvTimeConstant;
    Coulombs cc_charge = deficit - cv_charge;
    if (cc_charge.value() <= 0.0)
        return Seconds(0.0);
    return cc_charge / current;
}

Seconds
ChargeTimeModel::cvDuration(Amperes current) const
{
    return params_.cvTimeConstant
        * std::log(current / params_.cutoffCurrent);
}

Seconds
ChargeTimeModel::chargeTime(double dod, Amperes current) const
{
    return ccDuration(dod, current) + cvDuration(current);
}

double
ChargeTimeModel::flatDodThreshold(Amperes current) const
{
    Coulombs cv_charge = (current - params_.cutoffCurrent)
        * params_.cvTimeConstant;
    return cv_charge / params_.refillCharge;
}

std::optional<Amperes>
ChargeTimeModel::currentForDeadline(double dod, Seconds deadline) const
{
    if (chargeTime(dod, params_.maxCurrent) > deadline)
        return std::nullopt;
    if (chargeTime(dod, params_.minCurrent) <= deadline)
        return params_.minCurrent;
    // T(dod, I) is strictly decreasing in I over [min, max] whenever
    // the CC phase is non-empty; in the flat (pure-CV) region it is
    // increasing in I, but that region cannot straddle the deadline
    // crossing because we already know T(max) <= deadline < T(min).
    Amperes lo = params_.minCurrent;
    Amperes hi = params_.maxCurrent;
    for (int iter = 0; iter < 60; ++iter) {
        Amperes mid = (lo + hi) / 2.0;
        if (chargeTime(dod, mid) <= deadline)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

util::Grid2D
ChargeTimeModel::labTable(const std::vector<double> &dods,
                          const std::vector<double> &currents) const
{
    std::vector<double> values;
    values.reserve(dods.size() * currents.size());
    for (double dod : dods) {
        for (double amps : currents)
            values.push_back(chargeTime(dod, Amperes(amps)).value());
    }
    return util::Grid2D(dods, currents, std::move(values));
}

util::Grid2D
ChargeTimeModel::defaultLabTable() const
{
    std::vector<double> dods;
    for (int pct = 5; pct <= 100; pct += 5)
        dods.push_back(pct / 100.0);
    std::vector<double> currents;
    for (double amps = params_.minCurrent.value();
         amps <= params_.maxCurrent.value() + 1e-9; amps += 0.5) {
        currents.push_back(amps);
    }
    return labTable(dods, currents);
}

} // namespace dcbatt::battery
