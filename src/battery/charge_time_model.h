/**
 * @file
 * Closed-form CC-CV charge-time model (the analytic form of Fig. 5).
 *
 * For a BBU at depth of discharge `dod` charged with CC setpoint `I`:
 *
 *   T(dod, I) = max(0, dod*Q - tau*(I - I_cut)) / I + tau * ln(I/I_cut)
 *
 * The first term is the CC phase (the CV phase delivers tau*(I - I_cut)
 * coulombs, so CC covers the rest); the second is the CV phase, whose
 * duration depends only on the setpoint — which is why measured charge
 * times flatten below the DOD threshold tau*(I - I_cut)/Q (22 % at 5 A,
 * exactly as the paper reports).
 *
 * The model also provides the inverse used by the SLA calculator
 * (Fig. 9b): the smallest setpoint that meets a target charge time.
 */

#ifndef DCBATT_BATTERY_CHARGE_TIME_MODEL_H_
#define DCBATT_BATTERY_CHARGE_TIME_MODEL_H_

#include <optional>
#include <vector>

#include "battery/bbu_params.h"
#include "util/interpolate.h"
#include "util/units.h"

namespace dcbatt::battery {

/** Analytic charge-time model and its tabulated ("lab data") form. */
class ChargeTimeModel
{
  public:
    explicit ChargeTimeModel(BbuParams params = {});

    const BbuParams &params() const { return params_; }

    /** Total time to fully charge from `dod` at CC setpoint `current`. */
    util::Seconds chargeTime(double dod, util::Amperes current) const;

    /** Duration of the CC phase only (0 when charging starts in CV). */
    util::Seconds ccDuration(double dod, util::Amperes current) const;

    /** Duration of the CV phase (independent of DOD). */
    util::Seconds cvDuration(util::Amperes current) const;

    /** DOD below which total charge time is flat for this setpoint. */
    double flatDodThreshold(util::Amperes current) const;

    /**
     * Smallest setpoint within the hardware range that charges from
     * `dod` within `deadline`. Returns nullopt when even the maximum
     * current misses the deadline (the paper's hardware-limitation
     * case). Monotonicity of T in I makes bisection exact.
     */
    std::optional<util::Amperes>
    currentForDeadline(double dod, util::Seconds deadline) const;

    /**
     * Tabulated charge times on a (DOD, current) grid, emulating the
     * paper's lab measurements (Fig. 5). The returned grid bilinearly
     * interpolates, which is how the paper says Fig. 9(b) was derived.
     */
    util::Grid2D labTable(const std::vector<double> &dods,
                          const std::vector<double> &currents) const;

    /** Default lab grid: DOD 5..100 % step 5, current 1..5 A step 0.5. */
    util::Grid2D defaultLabTable() const;

  private:
    BbuParams params_;
};

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_CHARGE_TIME_MODEL_H_
