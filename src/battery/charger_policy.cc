#include "battery/charger_policy.h"

namespace dcbatt::battery {

util::Amperes
VariableChargerPolicy::initialCurrent(double dod) const
{
    util::Amperes floor = params_.variableFloorCurrent;
    if (dod < 0.5)
        return floor;
    util::Amperes raw(floor.value() + (dod - 0.5) * 6.0);
    return util::clamp(raw, floor, params_.maxCurrent);
}

std::unique_ptr<ChargerPolicy>
makeOriginalCharger(BbuParams params)
{
    return std::make_unique<OriginalChargerPolicy>(params);
}

std::unique_ptr<ChargerPolicy>
makeVariableCharger(BbuParams params)
{
    return std::make_unique<VariableChargerPolicy>(params);
}

} // namespace dcbatt::battery
