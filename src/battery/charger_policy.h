/**
 * @file
 * Rack-local charger policies: how a PSU picks the initial CC setpoint
 * when input power returns after a discharge event.
 *
 *  - OriginalChargerPolicy: the pre-2019 firmware — always charge at
 *    the maximum 5 A regardless of how little was discharged. This is
 *    the root cause of the recharge power spikes in the paper's case
 *    studies.
 *  - VariableChargerPolicy: the paper's new hardware (Eq. 1) — 2 A
 *    below 50 % DOD, rising linearly to 5 A at 100 % DOD, which keeps
 *    the worst-case recharge time within 45 minutes while cutting the
 *    recharge power by up to 60 %.
 *
 * Both support the *manual override* interface (1–5 A) that the
 * coordinated control plane uses.
 */

#ifndef DCBATT_BATTERY_CHARGER_POLICY_H_
#define DCBATT_BATTERY_CHARGER_POLICY_H_

#include <memory>
#include <string>

#include "battery/bbu_params.h"
#include "util/units.h"

namespace dcbatt::battery {

/** Strategy choosing the initial CC setpoint from the measured DOD. */
class ChargerPolicy
{
  public:
    virtual ~ChargerPolicy() = default;

    /** Initial CC setpoint for a pack at the given depth of discharge. */
    virtual util::Amperes initialCurrent(double dod) const = 0;

    /** Human-readable policy name (for logs and bench output). */
    virtual std::string name() const = 0;
};

/** Original firmware: fixed maximum-rate charging. */
class OriginalChargerPolicy : public ChargerPolicy
{
  public:
    explicit OriginalChargerPolicy(BbuParams params = {})
        : params_(params) {}

    util::Amperes
    initialCurrent(double) const override
    {
        return params_.originalCurrent;
    }

    std::string name() const override { return "original-5A"; }

  private:
    BbuParams params_;
};

/**
 * The paper's variable charger, Eq. (1):
 *
 *   I_C = 2 + (DOD - 0.5) * 6   if DOD >= 50 %
 *   I_C = 2                     if DOD <  50 %
 *
 * clamped to the hardware maximum.
 */
class VariableChargerPolicy : public ChargerPolicy
{
  public:
    explicit VariableChargerPolicy(BbuParams params = {})
        : params_(params) {}

    util::Amperes initialCurrent(double dod) const override;

    std::string name() const override { return "variable"; }

  private:
    BbuParams params_;
};

/** Factory helpers. */
std::unique_ptr<ChargerPolicy> makeOriginalCharger(BbuParams params = {});
std::unique_ptr<ChargerPolicy> makeVariableCharger(BbuParams params = {});

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_CHARGER_POLICY_H_
