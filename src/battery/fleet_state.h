/**
 * @file
 * Struct-of-arrays snapshot of the battery fleet's per-rack hot state.
 *
 * The charging-event engine samples the same handful of per-rack
 * quantities every physics step (IT load, recharge power, cap,
 * input/hold/charge-completion flags). Walking 316 rack objects and
 * their shelves for each read costs far more than the reads
 * themselves, so power::Topology::stepRacks() refreshes this batch —
 * one row per rack, rack id == row index — in the same pass that
 * advances the physics, and the sampling loop then runs over dense
 * arrays. Rows hold exactly the values the object walk would have
 * produced at the post-step state; they are snapshots, not caches
 * with invalidation.
 */

#ifndef DCBATT_BATTERY_FLEET_STATE_H_
#define DCBATT_BATTERY_FLEET_STATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcbatt::battery {

/** Per-rack hot-state rows; rack id indexes every array. */
struct FleetState
{
    /** Rack::itLoad() in watts (demand minus cap, floored at 0). */
    std::vector<double> itLoadW;
    /** Rack::rechargePower() in watts (0 while input power is off). */
    std::vector<double> rechargeW;
    /** Rack::capAmount() in watts. */
    std::vector<double> capW;
    /** Rack::inputPowerOn(). */
    std::vector<std::uint8_t> inputOn;
    /** PowerShelf::chargingHeld(). */
    std::vector<std::uint8_t> held;
    /** PowerShelf::fullyCharged(). */
    std::vector<std::uint8_t> fullyCharged;
    /** PowerShelf::chargingCount() (BBUs charging, CC or CV). */
    std::vector<std::int32_t> chargingBbus;
    /** PowerShelf::cvCount() (charging BBUs in the CV phase). */
    std::vector<std::int32_t> cvBbus;

    void
    resize(std::size_t racks)
    {
        itLoadW.assign(racks, 0.0);
        rechargeW.assign(racks, 0.0);
        capW.assign(racks, 0.0);
        inputOn.assign(racks, 1);
        held.assign(racks, 0);
        fullyCharged.assign(racks, 1);
        chargingBbus.assign(racks, 0);
        cvBbus.assign(racks, 0);
    }

    std::size_t size() const { return itLoadW.size(); }
};

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_FLEET_STATE_H_
