#include "battery/power_shelf.h"

#include <algorithm>

#include "util/check.h"

namespace dcbatt::battery {

using util::Amperes;
using util::Seconds;
using util::Watts;

PowerShelf::PowerShelf(std::shared_ptr<const ChargerPolicy> policy,
                       BbuParams params)
    : params_(params), policy_(std::move(policy))
{
    DCBATT_REQUIRE(policy_ != nullptr, "null charger policy");
    DCBATT_REQUIRE(params_.bbusPerRack > 0 && params_.zonesPerRack > 0
                       && params_.bbusPerRack % params_.zonesPerRack
                           == 0,
                   "bad shelf geometry: %d BBUs in %d zones",
                   params_.bbusPerRack, params_.zonesPerRack);
    bbus_.assign(static_cast<size_t>(params_.bbusPerRack),
                 BbuModel(params_));
    healthy_.assign(bbus_.size(), true);
}

int
PowerShelf::zoneOf(int index) const
{
    int per_zone = params_.bbusPerRack / params_.zonesPerRack;
    return index / per_zone;
}

std::vector<int>
PowerShelf::healthyInZone(int zone) const
{
    std::vector<int> result;
    for (int i = 0; i < bbuCount(); ++i) {
        if (healthy_[static_cast<size_t>(i)] && zoneOf(i) == zone)
            result.push_back(i);
    }
    return result;
}

void
PowerShelf::loseInputPower()
{
    inputOn_ = false;
}

Amperes
PowerShelf::effectiveCurrentFor(const BbuModel &bbu) const
{
    if (override_)
        return *override_;
    return policy_->initialCurrent(bbu.dod());
}

void
PowerShelf::restoreInputPower()
{
    if (inputOn_)
        return;
    inputOn_ = true;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (!healthy_[idx])
            continue;
        BbuModel &bbu = bbus_[idx];
        if (!bbu.fullyCharged()) {
            bbu.startCharging(effectiveCurrentFor(bbu));
            bbu.setPaused(held_);
        }
    }
}

Watts
PowerShelf::step(Seconds dt, Watts it_load)
{
    if (dt.value() <= 0.0)
        return inputOn_ ? it_load : Watts(0.0);
    if (inputOn_) {
        for (int i = 0; i < bbuCount(); ++i) {
            auto idx = static_cast<size_t>(i);
            if (healthy_[idx])
                bbus_[idx].step(dt);
        }
        return it_load;
    }
    // Input power off: each zone's healthy BBUs share half the rack
    // load. A zone whose batteries are empty drops its share (a rack
    // power outage for those servers).
    Watts carried(0.0);
    Watts zone_load = it_load / static_cast<double>(params_.zonesPerRack);
    for (int zone = 0; zone < params_.zonesPerRack; ++zone) {
        std::vector<int> members = healthyInZone(zone);
        std::vector<int> live;
        for (int i : members) {
            if (!bbus_[static_cast<size_t>(i)].fullyDischarged())
                live.push_back(i);
        }
        if (live.empty())
            continue;
        Watts share = zone_load / static_cast<double>(live.size());
        // Respect the per-BBU discharge rating; overflow beyond the
        // rating is dropped (brown-out) rather than silently carried.
        share = util::min(share, params_.maxDischargePower);
        for (int i : live) {
            util::Joules delivered =
                bbus_[static_cast<size_t>(i)].discharge(share, dt);
            carried += delivered / dt;
        }
    }
    // Energy conservation: the shelf never delivers more power than
    // the servers asked for (it can deliver less — a brown-out).
    DCBATT_ASSERT(carried <= it_load + Watts(1e-6),
                  "shelf delivered %.6f W against %.6f W of load",
                  carried.value(), it_load.value());
    return carried;
}

void
PowerShelf::setOverride(Amperes current)
{
    Amperes clamped = util::clamp(current, params_.minCurrent,
                                  params_.maxCurrent);
    override_ = clamped;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            bbus_[idx].setSetpoint(clamped);
    }
}

void
PowerShelf::clearOverride()
{
    override_.reset();
}

void
PowerShelf::holdCharging()
{
    held_ = true;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            bbus_[idx].setPaused(true);
    }
}

void
PowerShelf::resumeCharging()
{
    held_ = false;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            bbus_[idx].setPaused(false);
    }
}

Watts
PowerShelf::rechargePower() const
{
    Watts total(0.0);
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx])
            total += bbus_[idx].inputPower();
    }
    return total;
}

util::Amperes
PowerShelf::chargeSetpoint() const
{
    Amperes setpoint(0.0);
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        // Paused (postponed) packs draw nothing; reporting their
        // stored setpoint would make the control plane believe relief
        // is still in flight forever.
        if (healthy_[idx] && bbus_[idx].charging()
            && !bbus_[idx].paused()) {
            setpoint = util::max(setpoint, bbus_[idx].setpoint());
        }
    }
    return setpoint;
}

double
PowerShelf::maxDod() const
{
    double dod = 0.0;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx])
            dod = std::max(dod, bbus_[idx].dod());
    }
    return dod;
}

double
PowerShelf::meanDod() const
{
    double sum = 0.0;
    int count = 0;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx]) {
            sum += bbus_[idx].dod();
            ++count;
        }
    }
    return count ? sum / count : 0.0;
}

int
PowerShelf::chargingCount() const
{
    int count = 0;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            ++count;
    }
    return count;
}

int
PowerShelf::dischargedCount() const
{
    int count = 0;
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && !bbus_[idx].fullyCharged()
            && !bbus_[idx].charging()) {
            ++count;
        }
    }
    return count;
}

bool
PowerShelf::canCarryLoad() const
{
    for (int zone = 0; zone < params_.zonesPerRack; ++zone) {
        bool zone_ok = false;
        for (int i : healthyInZone(zone)) {
            if (!bbus_[static_cast<size_t>(i)].fullyDischarged()) {
                zone_ok = true;
                break;
            }
        }
        if (!zone_ok)
            return false;
    }
    return true;
}

void
PowerShelf::failBbu(int index)
{
    DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                   "BBU index %d outside [0, %d)", index, bbuCount());
    healthy_[static_cast<size_t>(index)] = false;
}

void
PowerShelf::repairBbu(int index)
{
    DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                   "BBU index %d outside [0, %d)", index, bbuCount());
    auto idx = static_cast<size_t>(index);
    healthy_[idx] = true;
    bbus_[idx].reset();
}

void
PowerShelf::forceUniformDod(double dod)
{
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx])
            bbus_[idx].forceDod(dod);
    }
}

} // namespace dcbatt::battery
