#include "battery/power_shelf.h"

#include <algorithm>

#include "util/check.h"

namespace dcbatt::battery {

using util::Amperes;
using util::Seconds;
using util::Watts;

PowerShelf::PowerShelf(std::shared_ptr<const ChargerPolicy> policy,
                       BbuParams params)
    : params_(params), policy_(std::move(policy))
{
    DCBATT_REQUIRE(policy_ != nullptr, "null charger policy");
    DCBATT_REQUIRE(params_.bbusPerRack > 0 && params_.zonesPerRack > 0
                       && params_.bbusPerRack % params_.zonesPerRack
                           == 0,
                   "bad shelf geometry: %d BBUs in %d zones",
                   params_.bbusPerRack, params_.zonesPerRack);
    bbus_.assign(static_cast<size_t>(params_.bbusPerRack),
                 BbuModel(params_));
    healthy_.assign(bbus_.size(), true);
    rebuildZoneMembers();
}

int
PowerShelf::zoneOf(int index) const
{
    int per_zone = params_.bbusPerRack / params_.zonesPerRack;
    return index / per_zone;
}

void
PowerShelf::rebuildZoneMembers()
{
    zoneMembers_.assign(static_cast<size_t>(params_.zonesPerRack), {});
    healthyTotal_ = 0;
    for (int i = 0; i < bbuCount(); ++i) {
        if (healthy_[static_cast<size_t>(i)]) {
            zoneMembers_[static_cast<size_t>(zoneOf(i))].push_back(i);
            ++healthyTotal_;
        }
    }
}

void
PowerShelf::materializeTwins() const
{
    if (!lockstep_)
        return;
    lockstep_ = false;
    ++stepStats_.materializations;
    auto &self = const_cast<PowerShelf &>(*this);
    const BbuModel &rep = bbus_[repIdx_];
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (idx == repIdx_ || !healthy_[idx])
            continue;
        self.bbus_[idx].adoptStateFrom(rep);
    }
}

const std::vector<int> &
PowerShelf::healthyInZone(int zone) const
{
    DCBATT_REQUIRE(zone >= 0 && zone < params_.zonesPerRack,
                   "zone %d outside [0, %d)", zone,
                   params_.zonesPerRack);
    return zoneMembers_[static_cast<size_t>(zone)];
}

void
PowerShelf::loseInputPower()
{
    inputOn_ = false;
    markDirty();
}

Amperes
PowerShelf::effectiveCurrentFor(const BbuModel &bbu) const
{
    if (override_)
        return *override_;
    return policy_->initialCurrent(bbu.dod());
}

void
PowerShelf::restoreInputPower()
{
    if (inputOn_)
        return;
    inputOn_ = true;
    materializeTwins();
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (!healthy_[idx])
            continue;
        BbuModel &bbu = bbus_[idx];
        if (!bbu.fullyCharged()) {
            bbu.startCharging(effectiveCurrentFor(bbu));
            bbu.setPaused(held_);
        }
    }
    markDirty();
}

Watts
PowerShelf::step(Seconds dt, Watts it_load)
{
    if (dt.value() <= 0.0)
        return inputOn_ ? it_load : Watts(0.0);
    if (inputOn_) {
        // Quiescent fast path: with nothing charging, stepping every
        // BBU is a no-op walk — skip it and keep the aggregates valid.
        ensureAggregates();
        if (chargingN_ == 0) {
            ++stepStats_.quiescentSteps;
            return it_load;
        }
        if (lockstep_) {
            ++stepStats_.lockstepSteps;
            // Every healthy pack is a bit-equal twin of the
            // representative: integrating it advances them all (the
            // replicas stay stale until materializeTwins()).
            bbus_[repIdx_].step(dt);
            aggValid_ = false;
            return it_load;
        }
        // Twin fast-forward: a shelf's packs are built identically and
        // in the common flow discharge and recharge in lockstep, so
        // most steps integrate six bit-equal packs. Integrate one
        // representative and copy its post-step state into every pack
        // whose pre-step state matches bit-for-bit; the integrator is
        // deterministic, so the copy equals re-integrating exactly.
        // When the whole shelf moved as twins, enter lockstep mode and
        // stop touching the replicas from the next step on.
        ++stepStats_.fullSteps;
        bool have_rep = false;
        bool all_twins = true;
        size_t rep_idx = 0;
        BbuModel::ChargeState pre{};
        const BbuModel *post = nullptr;
        for (int i = 0; i < bbuCount(); ++i) {
            auto idx = static_cast<size_t>(i);
            if (!healthy_[idx])
                continue;
            BbuModel &pack = bbus_[idx];
            if (have_rep && pack.matches(pre)) {
                pack.adoptStateFrom(*post);
                continue;
            }
            if (have_rep)
                all_twins = false;
            else
                rep_idx = idx;
            pre = pack.chargeState();
            pack.step(dt);
            post = &pack;
            have_rep = true;
        }
        if (have_rep && all_twins) {
            lockstep_ = true;
            repIdx_ = rep_idx;
        }
        aggValid_ = false;
        return it_load;
    }
    materializeTwins();
    // Input power off: each zone's healthy BBUs share half the rack
    // load. A zone whose batteries are empty drops its share (a rack
    // power outage for those servers). Two passes over the precomputed
    // zone membership — count the live packs, then discharge them —
    // with no per-step allocation; discharging pack i only mutates
    // pack i, so the second pass sees the same live set the first
    // counted.
    Watts carried(0.0);
    Watts zone_load = it_load / static_cast<double>(params_.zonesPerRack);
    for (int zone = 0; zone < params_.zonesPerRack; ++zone) {
        const std::vector<int> &members =
            zoneMembers_[static_cast<size_t>(zone)];
        size_t live = 0;
        for (int i : members) {
            if (!bbus_[static_cast<size_t>(i)].fullyDischarged())
                ++live;
        }
        if (live == 0)
            continue;
        Watts share = zone_load / static_cast<double>(live);
        // Respect the per-BBU discharge rating; overflow beyond the
        // rating is dropped (brown-out) rather than silently carried.
        share = util::min(share, params_.maxDischargePower);
        for (int i : members) {
            BbuModel &pack = bbus_[static_cast<size_t>(i)];
            if (pack.fullyDischarged())
                continue;
            util::Joules delivered = pack.discharge(share, dt);
            carried += delivered / dt;
        }
    }
    aggValid_ = false;
    // Energy conservation: the shelf never delivers more power than
    // the servers asked for (it can deliver less — a brown-out).
    DCBATT_ASSERT(carried <= it_load + Watts(1e-6),
                  "shelf delivered %.6f W against %.6f W of load",
                  carried.value(), it_load.value());
    return carried;
}

void
PowerShelf::setOverride(Amperes current)
{
    Amperes clamped = util::clamp(current, params_.minCurrent,
                                  params_.maxCurrent);
    override_ = clamped;
    materializeTwins();
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            bbus_[idx].setSetpoint(clamped);
    }
    markDirty();
}

void
PowerShelf::clearOverride()
{
    override_.reset();
    markDirty();
}

void
PowerShelf::holdCharging()
{
    held_ = true;
    materializeTwins();
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            bbus_[idx].setPaused(true);
    }
    markDirty();
}

void
PowerShelf::resumeCharging()
{
    held_ = false;
    materializeTwins();
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx] && bbus_[idx].charging())
            bbus_[idx].setPaused(false);
    }
    markDirty();
}

void
PowerShelf::refreshAggregates() const
{
    int charging = 0;
    int cv = 0;
    int discharged = 0;
    int healthy = 0;
    Watts recharge(0.0);
    Amperes setpoint(0.0);
    double dod_max = 0.0;
    double dod_sum = 0.0;
    if (lockstep_) {
        // Every healthy pack bit-equals the representative. The
        // counting aggregates are healthyTotal_ copies of one
        // predicate, evaluated once; the continuous sums keep the
        // repeated-addition fold so they stay bit-equal to the
        // per-pack walk (n additions of x, not n * x).
        const BbuModel &rep = bbus_[repIdx_];
        const double input_w = rep.inputPower().value();
        const double rep_dod = rep.dod();
        double recharge_w = 0.0;
        for (int k = 0; k < healthyTotal_; ++k) {
            recharge_w += input_w;
            dod_sum += rep_dod;
        }
        healthy = healthyTotal_;
        recharge = Watts(recharge_w);
        if (healthyTotal_ > 0) {
            dod_max = std::max(dod_max, rep_dod);
            if (rep.charging()) {
                charging = healthyTotal_;
                if (rep.inCvPhase())
                    cv = healthyTotal_;
                if (!rep.paused())
                    setpoint = util::max(setpoint, rep.setpoint());
            } else if (!rep.fullyCharged()) {
                discharged = healthyTotal_;
            }
        }
    } else {
        for (int i = 0; i < bbuCount(); ++i) {
            auto idx = static_cast<size_t>(i);
            if (!healthy_[idx])
                continue;
            const BbuModel &bbu = bbus_[idx];
            ++healthy;
            recharge += bbu.inputPower();
            dod_max = std::max(dod_max, bbu.dod());
            dod_sum += bbu.dod();
            if (bbu.charging()) {
                ++charging;
                if (bbu.inCvPhase())
                    ++cv;
                // Paused (postponed) packs draw nothing; reporting
                // their stored setpoint would make the control plane
                // believe relief is still in flight forever.
                if (!bbu.paused())
                    setpoint = util::max(setpoint, bbu.setpoint());
            } else if (!bbu.fullyCharged()) {
                ++discharged;
            }
        }
    }
    chargingN_ = charging;
    cvN_ = cv;
    dischargedN_ = discharged;
    healthyN_ = healthy;
    rechargeSumW_ = recharge.value();
    chargeSetpointA_ = setpoint.value();
    maxDodCache_ = dod_max;
    dodSum_ = dod_sum;
    aggValid_ = true;
}

bool
PowerShelf::canCarryLoad() const
{
    for (int zone = 0; zone < params_.zonesPerRack; ++zone) {
        const std::vector<int> &members =
            zoneMembers_[static_cast<size_t>(zone)];
        if (members.empty())
            return false;
        if (lockstep_) {
            // Twins: one pack answers for the whole zone.
            if (bbus_[repIdx_].fullyDischarged())
                return false;
            continue;
        }
        bool zone_ok = false;
        for (int i : members) {
            if (!bbus_[static_cast<size_t>(i)].fullyDischarged()) {
                zone_ok = true;
                break;
            }
        }
        if (!zone_ok)
            return false;
    }
    return true;
}

void
PowerShelf::failBbu(int index)
{
    DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                   "BBU index %d outside [0, %d)", index, bbuCount());
    materializeTwins();
    healthy_[static_cast<size_t>(index)] = false;
    rebuildZoneMembers();
    markDirty();
}

void
PowerShelf::repairBbu(int index)
{
    DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                   "BBU index %d outside [0, %d)", index, bbuCount());
    materializeTwins();
    auto idx = static_cast<size_t>(index);
    healthy_[idx] = true;
    bbus_[idx].reset();
    rebuildZoneMembers();
    markDirty();
}

void
PowerShelf::forceUniformDod(double dod)
{
    materializeTwins();
    for (int i = 0; i < bbuCount(); ++i) {
        auto idx = static_cast<size_t>(i);
        if (healthy_[idx])
            bbus_[idx].forceDod(dod);
    }
    markDirty();
}

} // namespace dcbatt::battery
