/**
 * @file
 * Rack power shelf: the six BBUs behind a rack's two power zones.
 *
 * An Open Rack V2 rack has two identical power zones, each fed by three
 * PSU+BBU pairs in a 2+1 redundant arrangement. During an open
 * transition the healthy BBUs of each zone share the zone's IT load;
 * when input power returns, each discharged BBU starts charging at the
 * setpoint chosen by the shelf's local ChargerPolicy (original or
 * variable), until/unless the control plane issues a manual override.
 *
 * The shelf is the unit the Dynamo agent talks to: it reports the
 * aggregate recharge (wall) power and accepts a single override current
 * that is applied to every charging BBU, exactly like the deployed
 * hardware.
 */

#ifndef DCBATT_BATTERY_POWER_SHELF_H_
#define DCBATT_BATTERY_POWER_SHELF_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "battery/bbu.h"
#include "battery/charger_policy.h"
#include "util/check.h"
#include "util/units.h"

namespace dcbatt::battery {

/** The battery side of one rack (6 BBUs in 2 zones). */
class PowerShelf
{
  public:
    /**
     * @param policy local charging policy; shared so that a fleet of
     *        racks can reference one policy object.
     * @param params BBU calibration (also defines the shelf geometry).
     */
    explicit PowerShelf(std::shared_ptr<const ChargerPolicy> policy,
                        BbuParams params = {});

    const BbuParams &params() const { return params_; }

    /** Whether rack input power is currently available. */
    bool inputPowerOn() const { return inputOn_; }

    /** Cut rack input power (start of an open transition / outage). */
    void loseInputPower();

    /**
     * Restore rack input power. Discharged BBUs begin charging at the
     * policy's DOD-dependent setpoint.
     */
    void restoreInputPower();

    /**
     * Advance the shelf by dt. While input power is off, the healthy
     * BBUs in each zone share @p it_load; while on, charging BBUs
     * advance their CC-CV dynamics.
     * @returns the IT power actually carried (less than it_load when
     *          batteries run out — a rack power outage).
     */
    util::Watts step(util::Seconds dt, util::Watts it_load);

    /**
     * Batched stepping, part 1 (see batch_charge_kernel.h): when this
     * step would be a lockstep integration of the representative pack
     * over one interior CC/CV segment, stage the representative's lane
     * and return its kind; the caller must then complete the step with
     * applyBatchLane() instead of step(). Returns None whenever the
     * shelf would take any other path (input off, quiescent, not in
     * lockstep, boundary inside dt), in which case nothing is staged
     * and step() must run as usual.
     */
    BatchLaneKind tryExportBatchLane(util::Seconds dt,
                                     BatchChargeStage &stage);  // inline below

    /**
     * Batched stepping, part 2: adopt the representative pack's lane
     * outputs, with the same bookkeeping the lockstep branch of
     * step() performs. Only valid right after a tryExportBatchLane()
     * that returned @p kind.
     */
    void applyBatchLane(BatchLaneKind kind, std::size_t lane,
                        const BatchChargeStage &stage);

    /**
     * Manual override: set all charging BBUs' CC setpoint (clamped to
     * the 1–5 A hardware range). Also applies to BBUs that *start*
     * charging later while the override is active.
     */
    void setOverride(util::Amperes current);

    /** Clear the override; future charge starts use the local policy. */
    void clearOverride();

    bool overrideActive() const { return override_.has_value(); }

    /**
     * Postponed charging (the paper's future-work extension): hold
     * pauses every charging BBU (and any that starts charging while
     * the hold is active); resume releases them. Holding trades
     * redundancy-restoration time for recharge power.
     */
    void holdCharging();
    void resumeCharging();
    bool chargingHeld() const { return held_; }

    /** Aggregate wall power drawn by charging BBUs. */
    util::Watts rechargePower() const
    {
        ensureAggregates();
        return util::Watts(rechargeSumW_);
    }

    /**
     * Present CC setpoint of the charging BBUs (max across them; they
     * are uniform in practice). Zero when nothing is charging.
     */
    util::Amperes chargeSetpoint() const
    {
        ensureAggregates();
        return util::Amperes(chargeSetpointA_);
    }

    /** Maximum DOD across BBUs (the controller's per-rack estimate). */
    double maxDod() const
    {
        ensureAggregates();
        return maxDodCache_;
    }

    /** Mean DOD across healthy BBUs. */
    double meanDod() const
    {
        ensureAggregates();
        return healthyN_ ? dodSum_ / healthyN_ : 0.0;
    }

    bool
    fullyCharged() const
    {
        return chargingCount() == 0 && dischargedCount() == 0;
    }

    /** Whether any BBU is currently charging. */
    bool anyCharging() const { return chargingCount() > 0; }

    int chargingCount() const
    {
        ensureAggregates();
        return chargingN_;
    }
    /** Charging BBUs in the constant-voltage phase. */
    int cvCount() const
    {
        ensureAggregates();
        return cvN_;
    }
    int dischargedCount() const
    {
        ensureAggregates();
        return dischargedN_;
    }

    /**
     * Whether the shelf can still power the rack with input off: every
     * zone needs at least one healthy, non-empty BBU.
     */
    bool canCarryLoad() const;

    /** Fail a BBU (dropped from load sharing and charging). */
    void failBbu(int index);
    /** Repair a previously failed BBU (returns fully charged). */
    void repairBbu(int index);
    bool
    bbuHealthy(int index) const
    {
        DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                       "BBU index %d outside [0, %d)", index,
                       bbuCount());
        return healthy_[static_cast<size_t>(index)];
    }

    const BbuModel &
    bbu(int index) const
    {
        DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                       "BBU index %d outside [0, %d)", index,
                       bbuCount());
        materializeTwins();
        return bbus_[static_cast<size_t>(index)];
    }
    BbuModel &
    bbu(int index)
    {
        DCBATT_REQUIRE(index >= 0 && index < bbuCount(),
                       "BBU index %d outside [0, %d)", index,
                       bbuCount());
        materializeTwins();
        // The caller may mutate the BBU through this reference, so
        // conservatively report the shelf's aggregates as stale.
        markDirty();
        return bbus_[static_cast<size_t>(index)];
    }
    int bbuCount() const { return static_cast<int>(bbus_.size()); }

    /** Force every healthy BBU to the same DOD (test/bench helper). */
    void forceUniformDod(double dod);

    /**
     * Tally of how the per-step integrator ran, kept as plain members
     * so the hot loop pays one increment and the observability layer
     * can fold the totals into the metrics registry once per event
     * (see runChargingEvent) instead of per step.
     */
    struct StepStats
    {
        uint64_t quiescentSteps = 0; ///< nothing charging, walk skipped
        uint64_t lockstepSteps = 0;  ///< one representative integrated
        uint64_t fullSteps = 0;      ///< twin-compare walk over packs
        uint64_t materializations = 0; ///< lockstep exits (twin copies)
    };
    const StepStats &stepStats() const { return stepStats_; }

    /**
     * Register a callback fired whenever the shelf's aggregate power
     * may have changed (override/hold/fail/repair/input transitions,
     * mutable BBU access). The power topology uses this to invalidate
     * its cached subtree sums; per-step charging progress is handled
     * by Rack::step itself. At most one callback is supported.
     */
    void setDirtyCallback(std::function<void()> cb)
    {
        dirtyCallback_ = std::move(cb);
    }

  private:
    int zoneOf(int index) const;
    const std::vector<int> &healthyInZone(int zone) const;
    util::Amperes effectiveCurrentFor(const BbuModel &bbu) const;
    void rebuildZoneMembers();

    void
    markDirty()
    {
        aggValid_ = false;
        if (dirtyCallback_)
            dirtyCallback_();
    }

    /**
     * One walk over the healthy BBUs recomputing every cached
     * aggregate, with each field accumulated by exactly the expression
     * its per-read walk originally used (same BBU order, same
     * operations), so cached reads are bit-identical to cold walks.
     * In lockstep mode the walk reads the representative pack's value
     * the same number of times — repeated accumulation of bit-equal
     * values is the same sum.
     */
    void refreshAggregates() const;

    void
    ensureAggregates() const
    {
        if (!aggValid_)
            refreshAggregates();
    }

    /**
     * Leave lockstep mode by copying the representative pack's state
     * into its stale replicas (see lockstep_). Logically const: the
     * replicas already equal the representative by the lockstep
     * invariant, this only makes the bytes agree.
     */
    void materializeTwins() const;

    BbuParams params_;
    std::shared_ptr<const ChargerPolicy> policy_;
    std::vector<BbuModel> bbus_;
    std::vector<bool> healthy_;
    /** Healthy BBU indices per zone (rebuilt on fail/repair). */
    std::vector<std::vector<int>> zoneMembers_;
    std::optional<util::Amperes> override_;
    bool held_ = false;
    bool inputOn_ = true;
    std::function<void()> dirtyCallback_;

    /**
     * Lockstep (twin) mode: every healthy pack's dynamic state is
     * bit-equal, so step() integrates only the representative pack
     * (first healthy index, repIdx_) and leaves the replicas stale.
     * Any path that reads or mutates an individual pack materializes
     * the replicas first; aggregate reads stay lockstep-aware instead.
     * Entered when a full twin-compare pass over a charging step finds
     * every pack bit-equal; left via materializeTwins().
     */
    mutable bool lockstep_ = false;
    size_t repIdx_ = 0;
    /** Healthy pack count (maintained by rebuildZoneMembers). */
    int healthyTotal_ = 0;

    /** Cached aggregates over the healthy BBUs (refreshAggregates). */
    mutable bool aggValid_ = false;
    mutable int chargingN_ = 0;
    mutable int cvN_ = 0;
    mutable int dischargedN_ = 0;
    mutable int healthyN_ = 0;
    mutable double rechargeSumW_ = 0.0;
    mutable double chargeSetpointA_ = 0.0;
    mutable double maxDodCache_ = 0.0;
    mutable double dodSum_ = 0.0;

    /** Last: keeps the hot aggregate block's layout unchanged. */
    mutable StepStats stepStats_;
};

// Defined here (not power_shelf.cc) so Topology::stepRacks()'s
// once-per-rack-per-step staging loop inlines the whole batch-lane
// protocol — the build has no LTO to do it across translation units.

inline BatchLaneKind
PowerShelf::tryExportBatchLane(util::Seconds dt, BatchChargeStage &stage)
{
    // Export only the one configuration step() handles in lockstep
    // mode: input power on, something charging, every healthy pack a
    // bit-equal twin of the representative. Everything else (quiescent
    // shelves, twin-compare walks, discharge) stays on step().
    if (dt.value() <= 0.0 || !inputOn_)
        return BatchLaneKind::None;
    ensureAggregates();
    if (chargingN_ == 0 || !lockstep_)
        return BatchLaneKind::None;
    return bbus_[repIdx_].tryExportBatchLane(dt.value(), stage);
}

inline void
PowerShelf::applyBatchLane(BatchLaneKind kind, std::size_t lane,
                           const BatchChargeStage &stage)
{
    // The bookkeeping of step()'s lockstep branch, with the
    // representative's integration replaced by the staged result.
    ++stepStats_.lockstepSteps;
    // tryExportBatchLane() refreshed the aggregates this step and
    // nothing ran on this shelf in between.
    DCBATT_ASSERT(aggValid_,
                  "applyBatchLane without fresh aggregates");
    bbus_[repIdx_].applyBatchLane(kind, lane, stage);
    // An interior CC/CV step moves only the continuous quantities:
    // the pack stays Charging, in the same phase, unpaused, at the
    // same setpoint, so every counting aggregate (and the setpoint)
    // is already correct. Fold the three continuous ones exactly as
    // refreshAggregates() would — healthyTotal_ repeated additions
    // of bit-equal values — instead of invalidating, which would
    // re-run the branchy per-pack fold once per rack per step.
    const BbuModel &rep = bbus_[repIdx_];
    const double input_w = rep.inputPower().value();
    const double rep_dod = rep.dod();
    double recharge_w = 0.0;
    double dod_sum = 0.0;
    for (int k = 0; k < healthyTotal_; ++k) {
        recharge_w += input_w;
        dod_sum += rep_dod;
    }
    rechargeSumW_ = recharge_w;
    dodSum_ = dod_sum;
    maxDodCache_ = std::max(0.0, rep_dod);
}

} // namespace dcbatt::battery

#endif // DCBATT_BATTERY_POWER_SHELF_H_
