#include "core/charging_event_sim.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>

#include "battery/power_shelf.h"
#include "core/charging_invariants.h"
#include "core/global_coordinator.h"
#include "core/local_coordinator.h"
#include "obs/crash_bundle.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series_recorder.h"
#include "obs/trace_span.h"
#include "power/topology.h"
#include "sim/event_queue.h"
#include "sim/invariant_auditor.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/logging.h"

namespace dcbatt::core {

using power::Priority;
using power::Rack;
using util::Seconds;
using util::Watts;

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::OriginalLocal:
        return "original-5A";
      case PolicyKind::VariableLocal:
        return "variable";
      case PolicyKind::GlobalRate:
        return "global";
      case PolicyKind::PriorityAware:
        return "priority-aware";
    }
    return "?";
}

namespace {

std::unique_ptr<dynamo::ChargingCoordinator>
makeCoordinator(const ChargingEventConfig &config)
{
    switch (config.policy) {
      case PolicyKind::OriginalLocal:
        return std::make_unique<LocalOnlyCoordinator>("original-5A");
      case PolicyKind::VariableLocal:
        return std::make_unique<LocalOnlyCoordinator>("variable");
      case PolicyKind::GlobalRate:
        return std::make_unique<GlobalRateCoordinator>(config.bbuParams);
      case PolicyKind::PriorityAware: {
        SlaCurrentCalculator calc(
            battery::ChargeTimeModel(config.bbuParams),
            config.slaTable);
        return std::make_unique<PriorityAwareCoordinator>(
            std::move(calc), config.priorityAwareOptions);
      }
    }
    DCBATT_UNREACHABLE("unknown policy %d",
                       static_cast<int>(config.policy));
}

std::shared_ptr<const battery::ChargerPolicy>
makeLocalCharger(const ChargingEventConfig &config)
{
    if (config.policy == PolicyKind::OriginalLocal)
        return battery::makeOriginalCharger(config.bbuParams);
    // The variable charger is the deployed hardware underneath both
    // coordinated policies.
    return battery::makeVariableCharger(config.bbuParams);
}

} // namespace

ChargingEventResult
runChargingEvent(const ChargingEventConfig &config,
                 const trace::TraceSet &traces)
{
    DCBATT_SPAN_NAMED(event_span, "core.runChargingEvent");
    const int n_racks = traces.rackCount();
    if (n_racks <= 0)
        util::fatal("runChargingEvent: empty trace set");
    event_span.arg("racks", static_cast<double>(n_racks));
    DCBATT_REQUIRE(config.physicsStep.value() > 0.0,
                   "nonpositive physics step %g s",
                   config.physicsStep.value());
    DCBATT_REQUIRE(config.targetMeanDod > 0.0
                       && config.targetMeanDod <= 1.0,
                   "target mean DOD %g outside (0, 1]",
                   config.targetMeanDod);

    // Per-event staging arena (util/arena.h): every scratch buffer
    // below is bump-allocated and rewound wholesale here, so after the
    // first event on a thread the hot loop does zero heap traffic.
    // The buffers are (re)initialized before any read, so results are
    // a function of the config alone, never of thread assignment.
    // detlint: allow(thread-local) -- per-thread scratch, fully
    // reinitialized per event; reported only through a max-merged
    // gauge, which is order-independent.
    static thread_local util::Arena event_arena;
    event_arena.reset();

    // --- topology ---------------------------------------------------
    power::TopologySpec spec;
    spec.rootKind = power::NodeKind::Msb;
    spec.rootName = "msb0";
    spec.sbsPerMsb = 2;
    spec.rppsPerSb = (n_racks + 2 * 16 - 1) / (2 * 16);
    spec.racksPerRpp = 16;
    spec.totalRacks = n_racks;
    spec.msbLimit = config.msbLimit;
    // The paper varies the power limit only at the MSB and assumes
    // lower levels are unconstrained.
    spec.sbLimit = util::megawatts(50.0);
    spec.rppLimit = util::megawatts(50.0);
    spec.priorities = config.priorities;
    spec.bbuParams = config.bbuParams;
    power::Topology topo =
        power::Topology::build(spec, makeLocalCharger(config));

    // --- event timing ----------------------------------------------
    const util::TimeSeries &aggregate = traces.aggregate();
    const size_t peak_index = config.eventTime
        ? aggregate.indexAt(*config.eventTime)
        : traces.firstPeakIndex();
    const Seconds peak_time(
        traces.rack(0).timeAt(peak_index).value());

    Watts peak_power(aggregate[peak_index]);
    Watts mean_rack_power = peak_power / static_cast<double>(n_racks);
    util::Joules rack_energy = config.bbuParams.fullDischargeEnergy
        * static_cast<double>(config.bbuParams.bbusPerRack);
    Seconds ot_length = config.openTransitionLength.value_or(
        rack_energy * config.targetMeanDod / mean_rack_power);

    const Seconds t0 = Seconds(peak_time.value())
        - config.preEventDuration;
    const Seconds t_end = peak_time + ot_length
        + config.postEventDuration;
    if (t0 < traces.start()
        || t_end.value() > traces.start().value()
               + static_cast<double>(traces.sampleCount())
                   * traces.step().value()) {
        util::fatal(util::strf(
            "runChargingEvent: window [%.0f, %.0f]s outside trace "
            "range starting at %.0fs",
            t0.value(), t_end.value(), traces.start().value()));
    }

    // --- control plane ----------------------------------------------
    sim::EventQueue queue;
    auto coordinator = makeCoordinator(config);
    dynamo::ControlPlane plane(topo, topo.root(), queue,
                               coordinator.get(),
                               config.controllerConfig);
    plane.start();

    // --- flight recorder ---------------------------------------------
    // Every sink below is a side channel gated on process-wide arming:
    // an unarmed run takes one relaxed load per gate and nothing else,
    // and stdout never depends on any of it. A crash mid-run can stamp
    // the simulation clock into the bundle through this provider.
    obs::SimTimeGuard sim_time_guard(
        [&queue] { return sim::toSeconds(queue.now()).value(); });
    if (obs::crashBundleArmed()) {
        obs::setCrashContext("core.policy", toString(config.policy));
        obs::setCrashContext(
            "core.msb_limit_mw",
            util::strf("%.6g", util::toMegawatts(config.msbLimit)));
        obs::setCrashContext(
            "core.target_mean_dod",
            util::strf("%.6g", config.targetMeanDod));
        obs::setCrashContext("core.racks",
                             util::strf("%d", n_racks));
        obs::setCrashContext(
            "core.physics_step_s",
            util::strf("%.6g", config.physicsStep.value()));
    }
    const bool events_on = obs::eventLoggingEnabled();

    std::unique_ptr<obs::TimeSeriesRecorder> recorder;
    util::ArenaVector<double> dod_scratch{
        util::ArenaAllocator<double>(event_arena)};
    dod_scratch.reserve(static_cast<size_t>(n_racks));
    if (obs::timeSeriesArmed()) {
        recorder = std::make_unique<obs::TimeSeriesRecorder>(
            obs::armedTimeSeriesOptions());
        // MSB aggregate load vs. the breaker limit (the Fig. 12 view).
        recorder->addProbe("msb_mw", [&topo] {
            return util::toMegawatts(topo.root().inputPower());
        });
        // Per-priority capped-rack counts (the Fig. 11 view).
        for (power::Priority pri : power::kAllPriorities) {
            recorder->addProbe(
                util::strf("capped_racks_p%d",
                           power::priorityIndex(pri) + 1),
                [&topo, pri, n_racks] {
                    const battery::FleetState &fleet = topo.fleet();
                    double capped = 0.0;
                    for (int i = 0; i < n_racks; ++i) {
                        auto idx = static_cast<size_t>(i);
                        if (fleet.capW[idx] > 0.0
                            && topo.rack(i).priority() == pri)
                            capped += 1.0;
                    }
                    return capped;
                });
        }
        // SoC distribution quantiles across the fleet (Figs. 3-5).
        auto soc_quantile = [&topo, &dod_scratch,
                             n_racks](double q) {
            dod_scratch.clear();
            for (int i = 0; i < n_racks; ++i) {
                dod_scratch.push_back(
                    topo.rack(i).shelf().meanDod());
            }
            auto nth = dod_scratch.begin()
                + static_cast<ptrdiff_t>(
                    q * static_cast<double>(n_racks - 1));
            std::nth_element(dod_scratch.begin(), nth,
                             dod_scratch.end());
            return 1.0 - *nth;
        };
        recorder->addProbe("soc_p10",
                           [soc_quantile] { return soc_quantile(0.9); });
        recorder->addProbe("soc_p50",
                           [soc_quantile] { return soc_quantile(0.5); });
        recorder->addProbe("soc_p90",
                           [soc_quantile] { return soc_quantile(0.1); });
        // Shelf CC/CV population.
        recorder->addProbe("charging_bbus", [&topo, n_racks] {
            const battery::FleetState &fleet = topo.fleet();
            double total = 0.0;
            for (int i = 0; i < n_racks; ++i)
                total += fleet.chargingBbus[static_cast<size_t>(i)];
            return total;
        });
        recorder->addProbe("cv_bbus", [&topo, n_racks] {
            const battery::FleetState &fleet = topo.fleet();
            double total = 0.0;
            for (int i = 0; i < n_racks; ++i)
                total += fleet.cvBbus[static_cast<size_t>(i)];
            return total;
        });
        // Dynamo controller state.
        recorder->addProbe("dynamo_cap_kw", [&plane] {
            return util::toKilowatts(plane.totalCap());
        });
        recorder->addProbe("dynamo_event_active", [&plane] {
            return plane.rootController().chargingEventActive()
                ? 1.0
                : 0.0;
        });
    }

    // Open transition at the peak. Sim time 0 == trace time t0.
    auto to_tick = [&](Seconds trace_time) {
        return sim::toTicks(trace_time - t0);
    };
    topo.scheduleOpenTransition(queue, topo.root(),
                                to_tick(peak_time),
                                sim::toTicks(ot_length));

    // Optional in-flight physical-invariant auditing. The auditor
    // rides the same event queue as the physics and control plane; a
    // violation aborts through the DCBATT contract machinery.
    std::unique_ptr<sim::InvariantAuditor> auditor;
    if (config.auditInterval) {
        auditor = std::make_unique<sim::InvariantAuditor>(
            queue, sim::toTicks(*config.auditInterval));
        registerChargingInvariants(
            *auditor, topo,
            dynamic_cast<const PriorityAwareCoordinator *>(
                coordinator.get()));
        auditor->start();
    }

    // --- result plumbing ---------------------------------------------
    ChargingEventResult result;
    result.limit = config.msbLimit;
    result.otStart = peak_time - t0;
    result.otLength = ot_length;
    result.chargeStart = result.otStart + ot_length;
    result.msbPower = util::TimeSeries(Seconds(0.0),
                                       config.physicsStep);
    result.itPower = util::TimeSeries(Seconds(0.0), config.physicsStep);
    result.rechargePower = util::TimeSeries(Seconds(0.0),
                                            config.physicsStep);
    result.capPower = util::TimeSeries(Seconds(0.0),
                                       config.physicsStep);
    // The sample count is known up front (one per physics step over
    // [t0, t_end]); reserving keeps the four series from reallocating
    // inside the hot loop.
    auto samples = static_cast<size_t>(
        (t_end - t0).value() / config.physicsStep.value()) + 2;
    result.msbPower.reserve(samples);
    result.itPower.reserve(samples);
    result.rechargePower.reserve(samples);
    result.capPower.reserve(samples);
    result.racks.assign(static_cast<size_t>(n_racks), RackOutcome{});
    for (int i = 0; i < n_racks; ++i) {
        RackOutcome &outcome = result.racks[static_cast<size_t>(i)];
        outcome.rackId = i;
        outcome.priority = topo.rack(i).priority();
    }

    // Snapshot the per-rack DOD at the instant charging begins. This
    // event is scheduled after the restore event at the same tick, so
    // FIFO ordering guarantees the batteries have switched to charging
    // but not yet absorbed any charge.
    queue.schedule(to_tick(peak_time + ot_length), [&] {
        double dod_sum = 0.0;
        for (int i = 0; i < n_racks; ++i) {
            double dod = topo.rack(i).shelf().meanDod();
            result.racks[static_cast<size_t>(i)].initialDod = dod;
            result.racks[static_cast<size_t>(i)].sawOutage =
                topo.rack(i).sawOutage();
            dod_sum += dod;
        }
        result.meanInitialDod = dod_sum / n_racks;
        if (events_on) {
            double t_s = result.chargeStart.value();
            for (int i = 0; i < n_racks; ++i) {
                const RackOutcome &outcome =
                    result.racks[static_cast<size_t>(i)];
                obs::logEvent(
                    t_s, "charge_start",
                    {{"rack", static_cast<double>(i)},
                     {"priority",
                      static_cast<double>(power::priorityIndex(
                                              outcome.priority)
                                          + 1)},
                     {"dod", outcome.initialDod}});
            }
        }
    });

    if (events_on) {
        obs::logEvent(
            0.0, "event_window",
            {{"racks", static_cast<double>(n_racks)},
             {"limit_mw", util::toMegawatts(config.msbLimit)},
             {"ot_start_s", result.otStart.value()},
             {"ot_length_s", result.otLength.value()},
             {"window_s", (t_end - t0).value()}},
            {{"policy", toString(config.policy)}});
    }

    // --- physics loop -------------------------------------------------
    uint8_t *done =
        event_arena.allocateArray<uint8_t>(static_cast<size_t>(n_racks));
    /** Per-rack "was any BBU in CV" flags for CC→CV transition events. */
    uint8_t *was_cv = events_on
        ? event_arena.allocateArray<uint8_t>(static_cast<size_t>(n_racks))
        : nullptr;
    size_t last_trace_idx = std::numeric_limits<size_t>::max();
    const Seconds dt = config.physicsStep;
    sim::PeriodicTask physics(queue, sim::toTicks(dt),
                              [&](sim::Tick now) {
        Seconds trace_time = t0 + sim::toSeconds(now);
        // Every rack trace shares one clock, so one indexAt() resolves
        // all the samples; when the trace index has not advanced since
        // the previous physics tick every demand is unchanged and the
        // update loop is skipped (setItDemand would ignore the equal
        // value anyway, but not for free).
        size_t trace_idx = traces.rack(0).indexAt(trace_time);
        if (trace_idx != last_trace_idx) {
            last_trace_idx = trace_idx;
            for (int i = 0; i < n_racks; ++i) {
                topo.rack(i).setItDemand(
                    Watts(traces.rack(i)[trace_idx]));
            }
        }
        topo.stepRacks(dt);
        topo.observeBreakers(dt);

        // Sample fleet-level series from the power sums stepRacks
        // folded over the struct-of-arrays rows it just refreshed (no
        // rack mutates between the step and this read, so the sums
        // equal the object walk exactly).
        const battery::FleetState &fleet = topo.fleet();
        const power::Topology::StepPowerTotals &totals =
            topo.stepPowerTotals();
        Watts msb = topo.root().inputPower();
        result.msbPower.append(msb.value());
        result.itPower.append(totals.itW);
        result.rechargePower.append(totals.rechargeW);
        result.capPower.append(totals.capW);
        if (msb > config.msbLimit)
            ++result.overloadSteps;

        // One pass over the rows: sticky cap/hold flags plus
        // charge-completion detection (the latter armed only once
        // charging has begun).
        Seconds sim_now = sim::toSeconds(now);
        const bool after_start = sim_now > result.chargeStart;
        for (int i = 0; i < n_racks; ++i) {
            auto idx = static_cast<size_t>(i);
            if (fleet.capW[idx] > 0.0)
                result.racks[idx].everCapped = true;
            if (fleet.held[idx])
                result.racks[idx].everHeld = true;
            if (!after_start || done[idx])
                continue;
            if (fleet.fullyCharged[idx]) {
                done[idx] = true;
                result.racks[idx].chargeDuration =
                    sim_now - result.chargeStart;
                if (events_on) {
                    obs::logEvent(
                        sim_now.value(), "charge_finish",
                        {{"rack", static_cast<double>(i)},
                         {"duration_s",
                          result.racks[idx]
                              .chargeDuration->value()}});
                }
            }
        }

        // Flight recorder side channels: CC→CV transition events and
        // the sim-time-cadence telemetry tape. Both read state the
        // loop above already refreshed; neither mutates anything the
        // simulation reads back.
        if (events_on) {
            for (int i = 0; i < n_racks; ++i) {
                auto idx = static_cast<size_t>(i);
                bool cv = fleet.cvBbus[idx] > 0;
                if (cv && !was_cv[idx]) {
                    obs::logEvent(
                        sim_now.value(), "cc_cv_transition",
                        {{"rack", static_cast<double>(i)},
                         {"cv_bbus", static_cast<double>(
                                         fleet.cvBbus[idx])}});
                }
                was_cv[idx] = cv;
            }
        }
        if (recorder)
            recorder->sampleAt(sim_now.value());
    });
    physics.start(0);

    queue.runUntil(to_tick(t_end));
    plane.stop();
    physics.stop();
    if (auditor) {
        // One final pass over the end state, then record the stats.
        auditor->stop();
        auditor->auditNow();
        result.auditCount = auditor->auditCount();
        result.auditViolations = auditor->violationCount();
    }

    // --- outcomes -----------------------------------------------------
    result.peakPower = Watts(result.msbPower.maxValue());
    result.maxCap = Watts(result.capPower.maxValue());
    size_t max_cap_at = result.capPower.argMax();
    double it_at = result.itPower[max_cap_at]
        + result.capPower[max_cap_at];
    result.maxCapFractionOfIt =
        it_at > 0.0 ? result.maxCap.value() / it_at : 0.0;
    result.breakerTripped = topo.root().breaker()->tripped();

    uint64_t sla_met = 0;
    for (int i = 0; i < n_racks; ++i) {
        RackOutcome &outcome = result.racks[static_cast<size_t>(i)];
        Seconds sla =
            config.slaTable.chargeTimeSla(outcome.priority);
        outcome.slaMet = outcome.chargeDuration.has_value()
            && *outcome.chargeDuration <= sla;
        int pri = power::priorityIndex(outcome.priority);
        ++result.racksByPriority[static_cast<size_t>(pri)];
        if (outcome.slaMet) {
            ++result.slaMetByPriority[static_cast<size_t>(pri)];
            ++sla_met;
        }
    }

    // --- metrics ------------------------------------------------------
    // One registry visit per event, after the hot loop: every quantity
    // below is simulation-deterministic (counts and sim-time seconds),
    // so snapshots are identical at any thread count. Wall-clock time
    // is the span's business, never the registry's.
    const auto steps = static_cast<uint64_t>(result.msbPower.size());
    DCBATT_COUNT("core.charging_events");
    DCBATT_COUNT_N("core.racks_simulated", n_racks);
    DCBATT_COUNT_N("core.physics_steps", steps);
    DCBATT_COUNT_N("core.overload_steps", result.overloadSteps);
    DCBATT_COUNT_N("core.sla_met", sla_met);
    DCBATT_COUNT_N("core.sla_missed",
                   static_cast<uint64_t>(n_racks) - sla_met);
    battery::PowerShelf::StepStats shelf{};
    for (int i = 0; i < n_racks; ++i) {
        const auto &stats = topo.rack(i).shelf().stepStats();
        shelf.quiescentSteps += stats.quiescentSteps;
        shelf.lockstepSteps += stats.lockstepSteps;
        shelf.fullSteps += stats.fullSteps;
        shelf.materializations += stats.materializations;
    }
    DCBATT_COUNT_N("battery.shelf_quiescent_steps",
                   shelf.quiescentSteps);
    DCBATT_COUNT_N("battery.shelf_lockstep_steps", shelf.lockstepSteps);
    DCBATT_COUNT_N("battery.shelf_full_steps", shelf.fullSteps);
    DCBATT_COUNT_N("battery.twin_materializations",
                   shelf.materializations);
    // The SLA memo counts hits with plain per-instance increments (the
    // lookup itself is only a hash probe); fold them into the registry
    // here, once, instead of per probe.
    if (const auto *pac =
            dynamic_cast<const PriorityAwareCoordinator *>(
                coordinator.get())) {
        const SlaMemoStats &memo = pac->slaMemoStats();
        DCBATT_COUNT_N("core.sla_memo_hits", memo.hits);
        DCBATT_COUNT_N("core.sla_memo_misses", memo.misses);
        DCBATT_COUNT_N("core.sla_memo_evictions", memo.evictions);
    }
    {
        static obs::Histogram &window_hist = obs::histogram(
            "core.event_window_s",
            {600.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0});
        window_hist.observe((t_end - t0).value());
    }
    {
        // Staging-arena footprint for this event. Nothing is freed
        // until the reset at the top, so usedBytes() here is the
        // event's high-water mark; the gauge max-merges so the
        // snapshot is identical at any thread count.
        static obs::Gauge &arena_gauge =
            obs::gauge("core.arena_high_water_bytes");
        arena_gauge.setMax(
            static_cast<double>(event_arena.usedBytes()));
    }
    {
        static obs::Histogram &memo_hist = obs::histogram(
            "core.sla_memo_occupancy",
            {16.0, 64.0, 256.0, 1024.0, 4096.0});
        if (const auto *pac =
                dynamic_cast<const PriorityAwareCoordinator *>(
                    coordinator.get())) {
            memo_hist.observe(static_cast<double>(
                pac->slaMemoStats().peakOccupancy));
        }
    }
    event_span.arg("physics_steps", static_cast<double>(steps));
    event_span.arg("overload_steps",
                   static_cast<double>(result.overloadSteps));

    if (events_on) {
        obs::logEvent(
            (t_end - t0).value(), "event_end",
            {{"peak_mw", util::toMegawatts(result.peakPower)},
             {"overload_steps",
              static_cast<double>(result.overloadSteps)},
             {"sla_met", static_cast<double>(sla_met)},
             {"audit_count",
              static_cast<double>(result.auditCount)},
             {"audit_violations",
              static_cast<double>(result.auditViolations)}});
    }
    if (recorder) {
        // Offer the end state as a final sample (taken iff the
        // cadence is due), then hand the tape to the process-wide
        // store under this task's RunScope label.
        recorder->sampleAt((t_end - t0).value());
        obs::publishTimeSeries(std::move(*recorder));
    }
    return result;
}

} // namespace dcbatt::core
