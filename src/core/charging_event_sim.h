/**
 * @file
 * The charging-event simulation engine (Section V-B's experimental
 * setup).
 *
 * Builds an MSB subtree with the paper's fleet (316 racks by default),
 * replays a rack power trace, injects an MSB-level open transition at
 * the trace's first peak (when available power is most constrained),
 * and runs one of the charging policies through the Dynamo control
 * plane while recording everything Figs. 13-15 and Table III report:
 * the MSB power series, server capping, per-rack charge-completion
 * times, and SLA satisfaction by priority.
 *
 * The target mean battery DOD is dialled in the same way as the
 * paper: by choosing the open-transition length (each rack's DOD is
 * its IT load times the outage length over its battery energy).
 */

#ifndef DCBATT_CORE_CHARGING_EVENT_SIM_H_
#define DCBATT_CORE_CHARGING_EVENT_SIM_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "battery/bbu_params.h"
#include "core/priority_aware_coordinator.h"
#include "core/sla.h"
#include "dynamo/controller.h"
#include "power/priority.h"
#include "trace/trace_set.h"
#include "util/time_series.h"
#include "util/units.h"

namespace dcbatt::core {

/** Which charging policy the experiment runs. */
enum class PolicyKind
{
    OriginalLocal,   ///< original 5 A charger, no coordination
    VariableLocal,   ///< variable charger (Eq. 1), no coordination
    GlobalRate,      ///< coordinated baseline: uniform rate
    PriorityAware,   ///< the paper's Algorithm 1
};

const char *toString(PolicyKind kind);

/** Experiment configuration. */
struct ChargingEventConfig
{
    PolicyKind policy = PolicyKind::PriorityAware;
    PriorityAwareOptions priorityAwareOptions;

    /** MSB power limit (the paper sweeps 2.2-2.6 MW). */
    util::Watts msbLimit = util::megawatts(2.5);

    /**
     * Target fleet-mean DOD; sets the open-transition length
     * (0.3 / 0.5 / 0.7 = the paper's low/medium/high discharge).
     */
    double targetMeanDod = 0.5;

    /**
     * When set, inject the open transition at this absolute trace
     * time instead of at the trace's first aggregate peak (the
     * paper's default, where available power is most constrained).
     */
    std::optional<util::Seconds> eventTime;
    /** Explicit open-transition length (overrides targetMeanDod). */
    std::optional<util::Seconds> openTransitionLength;

    /** Lead-in simulated before the open transition. */
    util::Seconds preEventDuration = util::minutes(10.0);
    /** Simulated time after the transition ends. */
    util::Seconds postEventDuration = util::hours(2.5);

    /** Physics integration step. */
    util::Seconds physicsStep{1.0};

    /**
     * When set, run a sim::InvariantAuditor at this interval for the
     * whole event, validating the physical invariants of
     * core/charging_invariants.h (SoC bounds, CC-CV direction, breaker
     * thermal limits, power conservation, priority charging order).
     * A violation aborts through the DCBATT contract machinery.
     */
    std::optional<util::Seconds> auditInterval;

    SlaTable slaTable = SlaTable::paperDefault();
    battery::BbuParams bbuParams;
    dynamo::ControllerConfig controllerConfig;

    /** Rack priorities; must cover the trace's rack count (cycled). */
    std::vector<power::Priority> priorities;
};

/** Per-rack outcome of a charging event. */
struct RackOutcome
{
    int rackId = -1;
    power::Priority priority = power::Priority::P2;
    /** DOD when charging began. */
    double initialDod = 0.0;
    /** Time from charging start to fully charged (unset: never). */
    std::optional<util::Seconds> chargeDuration;
    bool slaMet = false;
    /** Battery ran out during the open transition (server outage). */
    bool sawOutage = false;
    /** Rack was ever power-capped during the event. */
    bool everCapped = false;
    /** Rack charging was ever postponed (held). */
    bool everHeld = false;
};

/** Everything the benches need from one run. */
struct ChargingEventResult
{
    /** All series share the physics step and start at sim time 0. */
    util::TimeSeries msbPower;
    util::TimeSeries itPower;
    util::TimeSeries rechargePower;
    util::TimeSeries capPower;

    util::Watts limit{0.0};
    util::Seconds otStart{0.0};
    util::Seconds otLength{0.0};
    util::Seconds chargeStart{0.0};

    double meanInitialDod = 0.0;

    /** Table III metrics. */
    util::Watts maxCap{0.0};
    double maxCapFractionOfIt = 0.0;

    util::Watts peakPower{0.0};
    bool breakerTripped = false;
    /** Physics steps during which the MSB was above its limit. */
    int overloadSteps = 0;

    /** Invariant-audit passes run (0 unless auditing was enabled). */
    uint64_t auditCount = 0;
    /** Violations detected (always 0 with the aborting handler). */
    uint64_t auditViolations = 0;

    std::vector<RackOutcome> racks;
    std::array<int, 3> racksByPriority{0, 0, 0};
    std::array<int, 3> slaMetByPriority{0, 0, 0};

    int slaMetTotal() const
    {
        return slaMetByPriority[0] + slaMetByPriority[1]
            + slaMetByPriority[2];
    }
};

/**
 * Run one charging event. @p traces supplies per-rack IT load; the
 * simulation window is centred on the trace's first aggregate peak
 * and must fit inside the trace.
 */
ChargingEventResult runChargingEvent(const ChargingEventConfig &config,
                                     const trace::TraceSet &traces);

} // namespace dcbatt::core

#endif // DCBATT_CORE_CHARGING_EVENT_SIM_H_
