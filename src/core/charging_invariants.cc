#include "core/charging_invariants.h"

#include <cmath>
#include <memory>
#include <vector>

#include "battery/power_shelf.h"
#include "power/breaker.h"
#include "power/rack.h"
#include "util/logging.h"

namespace dcbatt::core {

using power::PowerNode;
using power::Rack;
using power::Topology;
using util::Watts;

namespace {

/** CC-CV phase snapshot of one BBU. */
enum class ChargePhase : int
{
    Idle = 0,  ///< not charging (full, discharging, or discharged)
    Cc = 1,
    Cv = 2,
};

ChargePhase
phaseOf(const battery::BbuModel &bbu)
{
    if (!bbu.charging())
        return ChargePhase::Idle;
    return bbu.inCvPhase() ? ChargePhase::Cv : ChargePhase::Cc;
}

/** Last-audit CC-CV phase and DOD, per (rack, bbu). */
struct PhaseHistory
{
    struct Sample
    {
        ChargePhase phase = ChargePhase::Idle;
        double dod = 0.0;
    };
    // Indexed by rack id, then BBU index (ids are dense per topology).
    std::vector<std::vector<Sample>> samples;
};

void
checkSocBounds(sim::AuditContext &context, const Topology &topology,
               double slack)
{
    for (const Rack *rack : topology.racks()) {
        const battery::PowerShelf &shelf = rack->shelf();
        for (int b = 0; b < shelf.bbuCount(); ++b) {
            double dod = shelf.bbu(b).dod();
            context.expect(
                dod >= -slack && dod <= 1.0 + slack,
                util::strf("rack %s bbu %d: DOD %.12g outside [0, 1]",
                           rack->name().c_str(), b, dod));
        }
    }
}

void
checkCcCvForward(sim::AuditContext &context, const Topology &topology,
                 PhaseHistory &history, double slack)
{
    const size_t n_racks = topology.racks().size();
    if (history.samples.size() != n_racks)
        history.samples.resize(n_racks);
    for (size_t r = 0; r < n_racks; ++r) {
        const Rack *rack = topology.racks()[r];
        const battery::PowerShelf &shelf = rack->shelf();
        auto &rack_history = history.samples[r];
        if (rack_history.size()
            != static_cast<size_t>(shelf.bbuCount())) {
            rack_history.assign(
                static_cast<size_t>(shelf.bbuCount()), {});
        }
        for (int b = 0; b < shelf.bbuCount(); ++b) {
            const battery::BbuModel &bbu = shelf.bbu(b);
            auto &prev = rack_history[static_cast<size_t>(b)];
            ChargePhase phase = phaseOf(bbu);
            double dod = bbu.dod();
            // CV -> CC within one continuous charge is the violation;
            // a DOD increase between samples means the pack discharged
            // and restarted charging, which legally begins in CC.
            if (prev.phase == ChargePhase::Cv && phase == ChargePhase::Cc
                && dod <= prev.dod + slack) {
                context.fail(util::strf(
                    "rack %s bbu %d: CC-CV phase moved backwards "
                    "(CV -> CC at DOD %.6g, was %.6g)",
                    rack->name().c_str(), b, dod, prev.dod));
            }
            prev.phase = phase;
            prev.dod = dod;
        }
    }
}

void
checkBreakerThermal(sim::AuditContext &context, const PowerNode &node,
                    double slack)
{
    if (const power::CircuitBreaker *breaker = node.breaker()) {
        double accumulator = breaker->thermalAccumulator();
        context.expect(
            accumulator >= -slack,
            util::strf("breaker %s: negative thermal accumulator %.12g",
                       breaker->name().c_str(), accumulator));
        if (!breaker->tripped()) {
            context.expect(
                accumulator < breaker->tripThreshold() + slack,
                util::strf("breaker %s: accumulator %.6g at/over trip "
                           "threshold %.6g but breaker not tripped",
                           breaker->name().c_str(), accumulator,
                           breaker->tripThreshold()));
        }
    }
    for (const PowerNode *child : node.children())
        checkBreakerThermal(context, *child, slack);
}

/** Returns the subtree's input power while checking conservation. */
Watts
checkConservation(sim::AuditContext &context, const PowerNode &node,
                  Watts tolerance)
{
    if (const Rack *rack = node.rack()) {
        // Leaf: the node must report exactly the rack's tap-box power,
        // which in turn must decompose into IT load + recharge power
        // while input power is on (and zero while it is off).
        Watts reported = node.inputPower();
        Watts expected = rack->inputPowerOn()
            ? rack->itLoad() + rack->shelf().rechargePower()
            : Watts(0.0);
        context.expect(
            std::abs((reported - expected).value())
                <= tolerance.value(),
            util::strf("rack %s: input power %.6f W != IT + recharge "
                       "%.6f W",
                       rack->name().c_str(), reported.value(),
                       expected.value()));
        return reported;
    }
    Watts children_sum(0.0);
    for (const PowerNode *child : node.children())
        children_sum += checkConservation(context, *child, tolerance);
    Watts reported = node.inputPower();
    context.expect(
        std::abs((reported - children_sum).value()) <= tolerance.value(),
        util::strf("node %s: input power %.6f W != children sum %.6f W",
                   node.name().c_str(), reported.value(),
                   children_sum.value()));
    return reported;
}

void
checkPriorityOrder(sim::AuditContext &context, const Topology &topology,
                   const PriorityAwareCoordinator *coordinator)
{
    // Physical level: among racks in the Charging state, no rack may
    // be actively charging while a strictly higher-priority rack is
    // held (postponed). Holds are taken bottom-up and released
    // top-down, so the held set is always a suffix of the priority
    // order.
    int most_important_held = 3;  // past-the-end priority index
    for (const Rack *rack : topology.racks()) {
        const battery::PowerShelf &shelf = rack->shelf();
        if (shelf.anyCharging() && shelf.chargingHeld()) {
            most_important_held =
                std::min(most_important_held,
                         power::priorityIndex(rack->priority()));
        }
    }
    if (most_important_held < 3) {
        for (const Rack *rack : topology.racks()) {
            const battery::PowerShelf &shelf = rack->shelf();
            if (!shelf.anyCharging() || shelf.chargingHeld())
                continue;
            context.expect(
                power::priorityIndex(rack->priority())
                    <= most_important_held,
                util::strf("rack %s (%s) charging while a P%d rack is "
                           "held",
                           rack->name().c_str(),
                           power::toString(rack->priority()),
                           most_important_held + 1));
        }
    }

    // Plan level: the coordinator's own hold set must honour the same
    // ordering against the racks it still plans to charge.
    if (!coordinator)
        return;
    const auto &plan = coordinator->planStates();
    int planned_held = 3;
    for (size_t rack_id = 0; rack_id < plan.size(); ++rack_id) {
        if (plan[rack_id].held) {
            planned_held = std::min(
                planned_held,
                power::priorityIndex(
                    topology.racks()[rack_id]->priority()));
        }
    }
    if (planned_held >= 3)
        return;
    for (size_t rack_id = 0; rack_id < plan.size(); ++rack_id) {
        const auto &st = plan[rack_id];
        if (!st.hasCommand)
            continue;
        const Rack *rack = topology.racks()[rack_id];
        if (st.held || !rack->shelf().anyCharging())
            continue;
        context.expect(
            power::priorityIndex(rack->priority()) <= planned_held,
            util::strf("coordinator plans rack %zu (%s) charging at "
                       "%.2f A while a P%d rack is planned held",
                       rack_id, power::toString(rack->priority()),
                       st.commanded.value(), planned_held + 1));
    }
}

} // namespace

void
registerChargingInvariants(sim::InvariantAuditor &auditor,
                           const Topology &topology,
                           const PriorityAwareCoordinator *coordinator,
                           ChargingInvariantOptions options)
{
    const Topology *topo = &topology;

    auditor.addInvariant(
        "soc-bounds", [topo, options](sim::AuditContext &context) {
            checkSocBounds(context, *topo, options.dodSlack);
        });

    auto history = std::make_shared<PhaseHistory>();
    auditor.addInvariant(
        "cc-cv-forward",
        [topo, history, options](sim::AuditContext &context) {
            checkCcCvForward(context, *topo, *history, options.dodSlack);
        });

    auditor.addInvariant(
        "breaker-thermal",
        [topo, options](sim::AuditContext &context) {
            checkBreakerThermal(context, topo->root(),
                                options.thermalSlack);
        });

    auditor.addInvariant(
        "power-conservation",
        [topo, options](sim::AuditContext &context) {
            checkConservation(context, topo->root(),
                              options.conservationTolerance);
        });

    auditor.addInvariant(
        "priority-charging-order",
        [topo, coordinator](sim::AuditContext &context) {
            checkPriorityOrder(context, *topo, coordinator);
        });
}

} // namespace dcbatt::core
