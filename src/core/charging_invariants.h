/**
 * @file
 * Physical invariants of a charging-event simulation, packaged for the
 * sim::InvariantAuditor.
 *
 * The failure mode this guards against is the classic one in
 * power-modelling code: a refactor (or a future performance
 * optimisation such as cached subtree aggregation) silently violating
 * a conservation law or a physical bound, distorting fleet-level
 * conclusions without any test noticing. Registering these checks
 * turns each law into a machine-checked contract audited while the
 * simulation runs:
 *
 *  - soc-bounds: every BBU's state of charge stays in [0, capacity]
 *    (DOD in [0, 1]).
 *  - cc-cv-forward: a charging BBU's CC-CV state machine only moves
 *    forward (never CV back to CC without an intervening discharge).
 *  - breaker-thermal: no breaker's thermal accumulator exceeds its
 *    trip threshold while the breaker reports untripped.
 *  - power-conservation: every interior node's input power equals the
 *    sum of its children's, within tolerance, all the way down to the
 *    rack (IT load + recharge power while input is on).
 *  - priority-charging-order: no lower-priority rack charges while a
 *    higher-priority rack is starved (held/postponed) — the paper's
 *    priority-aware ordering contract, checked both at the physical
 *    shelf level and, when a PriorityAwareCoordinator is supplied,
 *    against its planned hold set.
 */

#ifndef DCBATT_CORE_CHARGING_INVARIANTS_H_
#define DCBATT_CORE_CHARGING_INVARIANTS_H_

#include "core/priority_aware_coordinator.h"
#include "power/topology.h"
#include "sim/invariant_auditor.h"
#include "util/units.h"

namespace dcbatt::core {

/** Tolerances for the physical-invariant checks. */
struct ChargingInvariantOptions
{
    /** Allowed parent-vs-children power mismatch per node. */
    util::Watts conservationTolerance{1e-6};
    /** Slack on the [0, 1] DOD bounds (floating-point headroom). */
    double dodSlack = 1e-9;
    /** Slack on the breaker thermal-accumulator bound. */
    double thermalSlack = 1e-9;
};

/**
 * Register the full physical-invariant set for @p topology on
 * @p auditor. The topology must outlive the auditor. @p coordinator
 * may be null; when given, the priority-ordering invariant also
 * cross-checks the coordinator's planned holds against the racks that
 * are physically charging.
 */
void registerChargingInvariants(
    sim::InvariantAuditor &auditor, const power::Topology &topology,
    const PriorityAwareCoordinator *coordinator = nullptr,
    ChargingInvariantOptions options = {});

} // namespace dcbatt::core

#endif // DCBATT_CORE_CHARGING_INVARIANTS_H_
