#include "core/global_coordinator.h"

#include <algorithm>
#include <cmath>

namespace dcbatt::core {

using dynamo::OverrideCommand;
using dynamo::RackChargeInfo;
using util::Amperes;
using util::Watts;

GlobalRateCoordinator::GlobalRateCoordinator(battery::BbuParams params)
    : params_(params)
{
}

Amperes
GlobalRateCoordinator::feasibleRate(Watts budget, int racks) const
{
    if (racks <= 0)
        return params_.minCurrent;
    Watts per_amp = battery::rackWattsPerAmpere(params_);
    double amps = budget.value()
        / (per_amp.value() * static_cast<double>(racks));
    // Quantize down to 0.1 A so commands are stable tick to tick.
    amps = std::floor(amps * 10.0) / 10.0;
    return util::clamp(Amperes(amps), params_.minCurrent,
                       params_.maxCurrent);
}

std::vector<OverrideCommand>
GlobalRateCoordinator::commandAll(
    const std::vector<RackChargeInfo> &racks) const
{
    std::vector<OverrideCommand> commands;
    for (const RackChargeInfo &info : racks) {
        if (info.charging)
            commands.push_back({info.rackId, rate_});
    }
    return commands;
}

std::vector<OverrideCommand>
GlobalRateCoordinator::planInitial(
    const std::vector<RackChargeInfo> &racks, Watts available_power)
{
    int charging = static_cast<int>(
        std::count_if(racks.begin(), racks.end(),
                      [](const RackChargeInfo &r) { return r.charging; }));
    rate_ = feasibleRate(available_power, charging);
    return commandAll(racks);
}

std::vector<OverrideCommand>
GlobalRateCoordinator::onTick(const std::vector<RackChargeInfo> &racks,
                              Watts headroom)
{
    // Only reduce; the baseline never re-raises the rate. On overload,
    // shrink the uniform rate enough to absorb the *projected*
    // deficit: the commanded rate may not have propagated through the
    // actuation lag yet, and counting the in-flight change avoids
    // ratcheting the rate down once per tick of a single transient.
    if (headroom.value() >= 0.0 || rate_ <= params_.minCurrent)
        return {};
    int charging = 0;
    Watts per_amp = battery::rackWattsPerAmpere(params_);
    Watts pending(0.0);
    for (const RackChargeInfo &info : racks) {
        if (!info.charging)
            continue;
        ++charging;
        pending += per_amp * (rate_ - info.setpoint).value();
    }
    if (charging == 0)
        return {};
    Watts deficit = -(headroom - pending);
    if (deficit.value() <= 0.0)
        return {};
    double cut = deficit.value()
        / (per_amp.value() * static_cast<double>(charging));
    cut = std::ceil(cut * 10.0) / 10.0;
    rate_ = util::clamp(rate_ - Amperes(cut), params_.minCurrent,
                        params_.maxCurrent);
    return commandAll(racks);
}

} // namespace dcbatt::core
