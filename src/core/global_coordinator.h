/**
 * @file
 * Global equal-rate charging baseline (Section V-B3).
 *
 * "The global charging algorithm only looks at the available power
 * during a charging event and charges all the racks at the same rate
 * to prevent power overload." It coordinates — the breaker never
 * overloads while a feasible uniform rate exists — but ignores both
 * rack priority and battery DOD, which is what the priority-aware
 * algorithm improves on in Figs. 14 and 15.
 */

#ifndef DCBATT_CORE_GLOBAL_COORDINATOR_H_
#define DCBATT_CORE_GLOBAL_COORDINATOR_H_

#include <string>

#include "battery/bbu_params.h"
#include "dynamo/coordinator.h"

namespace dcbatt::core {

/** Uniform-rate coordinator. */
class GlobalRateCoordinator : public dynamo::ChargingCoordinator
{
  public:
    explicit GlobalRateCoordinator(battery::BbuParams params = {});

    std::string name() const override { return "global-equal-rate"; }

    std::vector<dynamo::OverrideCommand>
    planInitial(const std::vector<dynamo::RackChargeInfo> &racks,
                util::Watts available_power) override;

    std::vector<dynamo::OverrideCommand>
    onTick(const std::vector<dynamo::RackChargeInfo> &racks,
           util::Watts headroom) override;

    /** The uniform rate currently commanded. */
    util::Amperes currentRate() const { return rate_; }

  private:
    /** Largest uniform setpoint that fits the budget for n racks. */
    util::Amperes feasibleRate(util::Watts budget, int racks) const;

    std::vector<dynamo::OverrideCommand>
    commandAll(const std::vector<dynamo::RackChargeInfo> &racks) const;

    battery::BbuParams params_;
    util::Amperes rate_{0.0};
};

} // namespace dcbatt::core

#endif // DCBATT_CORE_GLOBAL_COORDINATOR_H_
