/**
 * @file
 * "No coordination" policy.
 *
 * Stands in for the original 5 A charger and the uncoordinated
 * variable charger: the racks' local charger hardware picks the
 * charging current on its own and the control plane never overrides
 * it. Dynamo can still cap servers when a breaker overloads — which
 * is exactly the costly behaviour Table III quantifies.
 */

#ifndef DCBATT_CORE_LOCAL_COORDINATOR_H_
#define DCBATT_CORE_LOCAL_COORDINATOR_H_

#include <string>
#include <utility>

#include "dynamo/coordinator.h"

namespace dcbatt::core {

/** Coordinator that issues no overrides at all. */
class LocalOnlyCoordinator : public dynamo::ChargingCoordinator
{
  public:
    explicit LocalOnlyCoordinator(std::string label = "local-only")
        : label_(std::move(label)) {}

    std::string name() const override { return label_; }

    bool managesCurrents() const override { return false; }

    std::vector<dynamo::OverrideCommand>
    planInitial(const std::vector<dynamo::RackChargeInfo> &,
                util::Watts) override
    {
        return {};
    }

    std::vector<dynamo::OverrideCommand>
    onTick(const std::vector<dynamo::RackChargeInfo> &,
           util::Watts) override
    {
        return {};
    }

  private:
    std::string label_;
};

} // namespace dcbatt::core

#endif // DCBATT_CORE_LOCAL_COORDINATOR_H_
