#include "core/priority_aware_coordinator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcbatt::core {

using dynamo::OverrideCommand;
using dynamo::RackChargeInfo;
using util::Amperes;
using util::Watts;

PriorityAwareCoordinator::PriorityAwareCoordinator(
    SlaCurrentCalculator calculator, PriorityAwareOptions options)
    : calc_(std::move(calculator)), options_(options)
{
}

std::vector<const RackChargeInfo *>
PriorityAwareCoordinator::grantOrder(
    const std::vector<RackChargeInfo> &racks) const
{
    std::vector<const RackChargeInfo *> order;
    for (const RackChargeInfo &info : racks) {
        if (info.charging)
            order.push_back(&info);
    }
    std::sort(order.begin(), order.end(),
              [this](const RackChargeInfo *a, const RackChargeInfo *b) {
                  if (!options_.ignorePriority
                      && a->priority != b->priority) {
                      return power::priorityIndex(a->priority)
                          < power::priorityIndex(b->priority);
                  }
                  if (!options_.ignoreDod
                      && a->initialDod != b->initialDod) {
                      return a->initialDod < b->initialDod;
                  }
                  return a->rackId < b->rackId;
              });
    return order;
}

Amperes
PriorityAwareCoordinator::slaCurrentFor(double dod,
                                        power::Priority p) const
{
    // Quantize the DOD to a 1e-6 bucket and compute from the bucket
    // value, so equal buckets always yield bit-equal currents.
    double clamped = std::clamp(dod, 0.0, 1.0);
    auto bucket = static_cast<uint64_t>(std::llround(clamped * 1e6));
    uint64_t key =
        (static_cast<uint64_t>(power::priorityIndex(p)) << 32)
        | bucket;
    auto it = slaMemo_.find(key);
    if (it != slaMemo_.end()) {
        ++memoStats_.hits;
        return it->second;
    }
    ++memoStats_.misses;
    Amperes current = calc_.requiredCurrent(
        static_cast<double>(bucket) * 1e-6, p);
    if (slaMemo_.size() >= kSlaMemoCapacity) {
        // Clear-on-full: deterministic and order-independent (see the
        // declaration comment).
        slaMemo_.clear();
        ++memoStats_.evictions;
    }
    slaMemo_.emplace(key, current);
    memoStats_.peakOccupancy = std::max(
        memoStats_.peakOccupancy,
        static_cast<uint64_t>(slaMemo_.size()));
    return current;
}

std::vector<OverrideCommand>
PriorityAwareCoordinator::planInitial(
    const std::vector<RackChargeInfo> &racks, Watts available_power)
{
    commanded_.clear();
    slaCurrent_.clear();
    held_.clear();

    Amperes floor = bbuParams().minCurrent;
    Watts per_amp = battery::rackWattsPerAmpere(bbuParams());
    auto order = grantOrder(racks);

    // Algorithm 1, lines 1-4: initialize everything to the 1 A floor
    // and compute each rack's SLA current from (DOD, priority).
    for (const RackChargeInfo *info : order) {
        commanded_[info->rackId] = floor;
        slaCurrent_[info->rackId] =
            slaCurrentFor(info->initialDod, info->priority);
    }

    // Postponement extension: if even the 1 A floors exceed the
    // available power (minus a noise margin), hold racks in reverse
    // (lowest-priority-highest-discharge-first) order until the
    // floors fit. Without the extension the shortfall becomes server
    // capping instead.
    Watts floor_total = per_amp
        * (floor.value() * static_cast<double>(order.size()));
    Watts plan_budget = available_power - options_.resumeMargin;
    if (options_.allowPostponement && floor_total > plan_budget) {
        Watts need = floor_total - plan_budget;
        for (auto it = order.rbegin();
             it != order.rend() && need.value() > 0.0; ++it) {
            held_[(*it)->rackId] = true;
            need -= per_amp * floor.value();
        }
    }
    auto is_held = [this](int rack_id) {
        auto it = held_.find(rack_id);
        return it != held_.end() && it->second;
    };
    double floored = 0.0;
    for (const RackChargeInfo *info : order) {
        if (!is_held(info->rackId))
            floored += 1.0;
    }

    // Lines 5-8: grant SLA currents in highest-priority-lowest-
    // discharge-first order while the available power lasts. The
    // floor power of every non-held charging rack is committed up
    // front.
    Watts budget = available_power
        - per_amp * (floor.value() * floored);
    for (const RackChargeInfo *info : order) {
        if (is_held(info->rackId))
            continue;
        Amperes sla = slaCurrent_[info->rackId];
        DCBATT_ASSERT(sla >= floor && sla <= bbuParams().maxCurrent,
                      "SLA current %g A for rack %d outside [%g, %g] A",
                      sla.value(), info->rackId, floor.value(),
                      bbuParams().maxCurrent.value());
        Watts extra = per_amp * (sla - floor).value();
        if (extra <= budget) {
            commanded_[info->rackId] = sla;
            budget -= extra;
        } else if (options_.strictGreedy) {
            break;
        }
    }

    std::vector<OverrideCommand> commands;
    commands.reserve(commanded_.size());
    for (const RackChargeInfo *info : order) {
        if (is_held(info->rackId)) {
            commands.push_back({info->rackId, floor,
                                OverrideCommand::Kind::Hold});
        } else {
            commands.push_back({info->rackId,
                                commanded_[info->rackId]});
        }
    }
    return commands;
}

std::vector<OverrideCommand>
PriorityAwareCoordinator::onTick(const std::vector<RackChargeInfo> &racks,
                                 Watts headroom)
{
    std::vector<OverrideCommand> commands;
    Amperes floor = bbuParams().minCurrent;
    Watts per_amp = battery::rackWattsPerAmpere(bbuParams());
    auto order = grantOrder(racks);
    auto is_held = [this](int rack_id) {
        auto it = held_.find(rack_id);
        return it != held_.end() && it->second;
    };

    // Power change still in flight through the actuation pipeline
    // (+ = rising). Commands already issued but not yet effective
    // must be counted before reacting to measured headroom —
    // otherwise every tick of a transient demotes (or resumes)
    // another slice of the fleet.
    Watts pending(0.0);
    for (const RackChargeInfo *info : order) {
        if (is_held(info->rackId)) {
            // A held rack's power is heading to zero.
            pending -= per_amp * info->setpoint.value();
            continue;
        }
        auto cmd = commanded_.find(info->rackId);
        if (cmd == commanded_.end())
            continue;
        pending += per_amp * (cmd->second - info->setpoint).value();
    }

    // Servers come first: while any rack is power-capped, all spare
    // headroom belongs to cap release, not to battery charging — and
    // with postponement enabled the coordinator actively sheds
    // charging load until the controller can release every cap.
    Watts fleet_cap(0.0);
    for (const RackChargeInfo &info : racks)
        fleet_cap += info.capAmount;

    Watts need(0.0);
    if (headroom.value() < 0.0) {
        // Overload: with postponement, re-target to a margin below
        // the limit so trace noise does not retrigger.
        need = -(headroom - pending);
        if (options_.allowPostponement)
            need += options_.resumeMargin;
    }
    if (options_.allowPostponement && fleet_cap.value() > 0.0) {
        // Shed enough charging load that releasing all caps still
        // leaves the hysteresis margin.
        need = util::max(need, fleet_cap + options_.resumeMargin
                                   - (headroom - pending));
    }
    if (need.value() > 0.0) {
        // Demote racks to the floor in reverse order (lowest
        // priority, highest discharge first) until the *projected*
        // power fits.
        for (auto it = order.rbegin();
             it != order.rend() && need.value() > 0.0; ++it) {
            const RackChargeInfo *info = *it;
            if (is_held(info->rackId))
                continue;
            auto cmd = commanded_.find(info->rackId);
            Amperes present = cmd != commanded_.end()
                ? cmd->second
                : info->setpoint;
            if (present <= floor + Amperes(1e-9)) {
                if (options_.allowPostponement) {
                    // Already at the floor: postpone entirely rather
                    // than let the controller cap servers.
                    held_[info->rackId] = true;
                    commands.push_back({info->rackId, floor,
                                        OverrideCommand::Kind::Hold});
                    need -= per_amp * floor.value();
                }
                continue;
            }
            Watts relief = per_amp * (present - floor).value();
            commanded_[info->rackId] = floor;
            commands.push_back({info->rackId, floor});
            need -= relief;
        }
        return commands;
    }

    if (options_.allowPostponement && fleet_cap.value() <= 0.0) {
        // Resume postponed racks (highest priority, lowest discharge
        // first) as *projected* headroom allows; each resume costs
        // one floor. The resume threshold sits one margin above the
        // hold threshold (hysteresis against noise ping-pong).
        Watts per_amp_floor = per_amp * floor.value();
        Watts budget = headroom - pending
            - options_.resumeMargin * 2.0;
        for (const RackChargeInfo *info : order) {
            if (budget < per_amp_floor)
                break;
            auto it = held_.find(info->rackId);
            if (it == held_.end() || !it->second || !info->charging)
                continue;
            it->second = false;
            commanded_[info->rackId] = floor;
            commands.push_back({info->rackId, floor,
                                OverrideCommand::Kind::Resume});
            budget -= per_amp_floor;
        }
    }

    if (options_.restoreOnHeadroom && fleet_cap.value() <= 0.0) {
        // Extension: when racks finish charging and headroom returns,
        // re-grant demoted racks their SLA current, same order as the
        // initial plan.
        Watts budget = headroom - pending - options_.restoreMargin;
        if (budget.value() <= 0.0)
            return commands;
        for (const RackChargeInfo *info : order) {
            auto cmd = commanded_.find(info->rackId);
            auto sla = slaCurrent_.find(info->rackId);
            if (cmd == commanded_.end() || sla == slaCurrent_.end())
                continue;
            if (cmd->second >= sla->second)
                continue;
            Watts extra = per_amp * (sla->second - cmd->second).value();
            if (extra <= budget) {
                commanded_[info->rackId] = sla->second;
                commands.push_back({info->rackId, sla->second});
                budget -= extra;
            }
        }
    }
    return commands;
}

} // namespace dcbatt::core
