#include "core/priority_aware_coordinator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcbatt::core {

using dynamo::OverrideCommand;
using dynamo::RackChargeInfo;
using util::Amperes;
using util::Watts;

PriorityAwareCoordinator::PriorityAwareCoordinator(
    SlaCurrentCalculator calculator, PriorityAwareOptions options)
    : calc_(std::move(calculator)), options_(options)
{
}

const std::vector<const RackChargeInfo *> &
PriorityAwareCoordinator::grantOrder(
    const std::vector<RackChargeInfo> &racks) const
{
    std::vector<const RackChargeInfo *> &order = orderBuf_;
    order.clear();
    order.reserve(racks.size());
    for (const RackChargeInfo &info : racks) {
        if (info.charging)
            order.push_back(&info);
    }
    std::sort(order.begin(), order.end(),
              [this](const RackChargeInfo *a, const RackChargeInfo *b) {
                  if (!options_.ignorePriority
                      && a->priority != b->priority) {
                      return power::priorityIndex(a->priority)
                          < power::priorityIndex(b->priority);
                  }
                  if (!options_.ignoreDod
                      && a->initialDod != b->initialDod) {
                      return a->initialDod < b->initialDod;
                  }
                  return a->rackId < b->rackId;
              });
    return order;
}

PriorityAwareCoordinator::RackPlanState &
PriorityAwareCoordinator::stateFor(int rack_id)
{
    auto idx = static_cast<size_t>(rack_id);
    if (idx >= plan_.size())
        plan_.resize(idx + 1);
    return plan_[idx];
}

const PriorityAwareCoordinator::RackPlanState *
PriorityAwareCoordinator::stateAt(int rack_id) const
{
    auto idx = static_cast<size_t>(rack_id);
    return idx < plan_.size() ? &plan_[idx] : nullptr;
}

Amperes
PriorityAwareCoordinator::slaCurrentFor(double dod,
                                        power::Priority p) const
{
    // Quantize the DOD to a 1e-6 bucket and compute from the bucket
    // value, so equal buckets always yield bit-equal currents.
    double clamped = std::clamp(dod, 0.0, 1.0);
    auto bucket = static_cast<uint64_t>(std::llround(clamped * 1e6));
    uint64_t key =
        (static_cast<uint64_t>(power::priorityIndex(p)) << 32)
        | bucket;
    auto it = slaMemo_.find(key);
    if (it != slaMemo_.end()) {
        ++memoStats_.hits;
        return it->second;
    }
    ++memoStats_.misses;
    Amperes current = calc_.requiredCurrent(
        static_cast<double>(bucket) * 1e-6, p);
    if (slaMemo_.size() >= kSlaMemoCapacity) {
        // Clear-on-full: deterministic and order-independent (see the
        // declaration comment).
        slaMemo_.clear();
        ++memoStats_.evictions;
    }
    slaMemo_.emplace(key, current);
    memoStats_.peakOccupancy = std::max(
        memoStats_.peakOccupancy,
        static_cast<uint64_t>(slaMemo_.size()));
    return current;
}

std::vector<OverrideCommand>
PriorityAwareCoordinator::planInitial(
    const std::vector<RackChargeInfo> &racks, Watts available_power)
{
    plan_.clear();

    Amperes floor = bbuParams().minCurrent;
    Watts per_amp = battery::rackWattsPerAmpere(bbuParams());
    const auto &order = grantOrder(racks);

    // Algorithm 1, lines 1-4: initialize everything to the 1 A floor
    // and compute each rack's SLA current from (DOD, priority).
    for (const RackChargeInfo *info : order) {
        RackPlanState &st = stateFor(info->rackId);
        st.commanded = floor;
        st.hasCommand = true;
        st.sla = slaCurrentFor(info->initialDod, info->priority);
        st.hasSla = true;
    }

    // Postponement extension: if even the 1 A floors exceed the
    // available power (minus a noise margin), hold racks in reverse
    // (lowest-priority-highest-discharge-first) order until the
    // floors fit. Without the extension the shortfall becomes server
    // capping instead.
    Watts floor_total = per_amp
        * (floor.value() * static_cast<double>(order.size()));
    Watts plan_budget = available_power - options_.resumeMargin;
    if (options_.allowPostponement && floor_total > plan_budget) {
        Watts need = floor_total - plan_budget;
        for (auto it = order.rbegin();
             it != order.rend() && need.value() > 0.0; ++it) {
            stateFor((*it)->rackId).held = true;
            need -= per_amp * floor.value();
        }
    }
    auto is_held = [this](int rack_id) {
        const RackPlanState *st = stateAt(rack_id);
        return st != nullptr && st->held;
    };
    double floored = 0.0;
    for (const RackChargeInfo *info : order) {
        if (!is_held(info->rackId))
            floored += 1.0;
    }

    // Lines 5-8: grant SLA currents in highest-priority-lowest-
    // discharge-first order while the available power lasts. The
    // floor power of every non-held charging rack is committed up
    // front.
    Watts budget = available_power
        - per_amp * (floor.value() * floored);
    for (const RackChargeInfo *info : order) {
        if (is_held(info->rackId))
            continue;
        Amperes sla = stateFor(info->rackId).sla;
        DCBATT_ASSERT(sla >= floor && sla <= bbuParams().maxCurrent,
                      "SLA current %g A for rack %d outside [%g, %g] A",
                      sla.value(), info->rackId, floor.value(),
                      bbuParams().maxCurrent.value());
        Watts extra = per_amp * (sla - floor).value();
        if (extra <= budget) {
            stateFor(info->rackId).commanded = sla;
            budget -= extra;
        } else if (options_.strictGreedy) {
            break;
        }
    }

    std::vector<OverrideCommand> commands;
    commands.reserve(order.size());
    for (const RackChargeInfo *info : order) {
        if (is_held(info->rackId)) {
            commands.push_back({info->rackId, floor,
                                OverrideCommand::Kind::Hold});
        } else {
            commands.push_back({info->rackId,
                                stateFor(info->rackId).commanded});
        }
    }
    return commands;
}

std::vector<OverrideCommand>
PriorityAwareCoordinator::onTick(const std::vector<RackChargeInfo> &racks,
                                 Watts headroom)
{
    std::vector<OverrideCommand> commands;
    Amperes floor = bbuParams().minCurrent;
    Watts per_amp = battery::rackWattsPerAmpere(bbuParams());
    const auto &order = grantOrder(racks);
    auto is_held = [this](int rack_id) {
        const RackPlanState *st = stateAt(rack_id);
        return st != nullptr && st->held;
    };

    // Power change still in flight through the actuation pipeline
    // (+ = rising). Commands already issued but not yet effective
    // must be counted before reacting to measured headroom —
    // otherwise every tick of a transient demotes (or resumes)
    // another slice of the fleet.
    Watts pending(0.0);
    for (const RackChargeInfo *info : order) {
        const RackPlanState *st = stateAt(info->rackId);
        if (st != nullptr && st->held) {
            // A held rack's power is heading to zero.
            pending -= per_amp * info->setpoint.value();
            continue;
        }
        if (st == nullptr || !st->hasCommand)
            continue;
        pending += per_amp * (st->commanded - info->setpoint).value();
    }

    // Servers come first: while any rack is power-capped, all spare
    // headroom belongs to cap release, not to battery charging — and
    // with postponement enabled the coordinator actively sheds
    // charging load until the controller can release every cap.
    Watts fleet_cap(0.0);
    for (const RackChargeInfo &info : racks)
        fleet_cap += info.capAmount;

    Watts need(0.0);
    if (headroom.value() < 0.0) {
        // Overload: with postponement, re-target to a margin below
        // the limit so trace noise does not retrigger.
        need = -(headroom - pending);
        if (options_.allowPostponement)
            need += options_.resumeMargin;
    }
    if (options_.allowPostponement && fleet_cap.value() > 0.0) {
        // Shed enough charging load that releasing all caps still
        // leaves the hysteresis margin.
        need = util::max(need, fleet_cap + options_.resumeMargin
                                   - (headroom - pending));
    }
    if (need.value() > 0.0) {
        // Demote racks to the floor in reverse order (lowest
        // priority, highest discharge first) until the *projected*
        // power fits.
        for (auto it = order.rbegin();
             it != order.rend() && need.value() > 0.0; ++it) {
            const RackChargeInfo *info = *it;
            if (is_held(info->rackId))
                continue;
            const RackPlanState *cmd = stateAt(info->rackId);
            Amperes present = cmd != nullptr && cmd->hasCommand
                ? cmd->commanded
                : info->setpoint;
            if (present <= floor + Amperes(1e-9)) {
                if (options_.allowPostponement) {
                    // Already at the floor: postpone entirely rather
                    // than let the controller cap servers.
                    stateFor(info->rackId).held = true;
                    commands.push_back({info->rackId, floor,
                                        OverrideCommand::Kind::Hold});
                    need -= per_amp * floor.value();
                }
                continue;
            }
            Watts relief = per_amp * (present - floor).value();
            RackPlanState &st = stateFor(info->rackId);
            st.commanded = floor;
            st.hasCommand = true;
            commands.push_back({info->rackId, floor});
            need -= relief;
        }
        return commands;
    }

    if (options_.allowPostponement && fleet_cap.value() <= 0.0) {
        // Resume postponed racks (highest priority, lowest discharge
        // first) as *projected* headroom allows; each resume costs
        // one floor. The resume threshold sits one margin above the
        // hold threshold (hysteresis against noise ping-pong).
        Watts per_amp_floor = per_amp * floor.value();
        Watts budget = headroom - pending
            - options_.resumeMargin * 2.0;
        for (const RackChargeInfo *info : order) {
            if (budget < per_amp_floor)
                break;
            if (!is_held(info->rackId) || !info->charging)
                continue;
            RackPlanState &st = stateFor(info->rackId);
            st.held = false;
            st.commanded = floor;
            st.hasCommand = true;
            commands.push_back({info->rackId, floor,
                                OverrideCommand::Kind::Resume});
            budget -= per_amp_floor;
        }
    }

    if (options_.restoreOnHeadroom && fleet_cap.value() <= 0.0) {
        // Extension: when racks finish charging and headroom returns,
        // re-grant demoted racks their SLA current, same order as the
        // initial plan.
        Watts budget = headroom - pending - options_.restoreMargin;
        if (budget.value() <= 0.0)
            return commands;
        for (const RackChargeInfo *info : order) {
            const RackPlanState *st = stateAt(info->rackId);
            if (st == nullptr || !st->hasCommand || !st->hasSla)
                continue;
            if (st->commanded >= st->sla)
                continue;
            Watts extra = per_amp * (st->sla - st->commanded).value();
            if (extra <= budget) {
                Amperes sla = st->sla;
                stateFor(info->rackId).commanded = sla;
                commands.push_back({info->rackId, sla});
                budget -= extra;
            }
        }
    }
    return commands;
}

} // namespace dcbatt::core
