/**
 * @file
 * The paper's contribution: the coordinated priority-aware battery
 * charging algorithm (Algorithm 1 plus the overload response of
 * Section IV-C).
 *
 * At the start of a charging event, every charging rack is initialized
 * to the 1 A floor; racks are then visited in
 * highest-priority-lowest-discharge-first order and granted their SLA
 * charging current (Fig. 9b) while the breaker's available power
 * lasts. This order meets higher-priority SLAs first, and within a
 * priority maximizes the number of racks whose SLA fits the budget
 * (the lowest-DOD racks need the least current).
 *
 * While charging, any detected overload is answered by demoting racks
 * to the 1 A floor in the reverse (lowest-priority-highest-discharge-
 * first) order until the projected power fits. Server capping — the
 * control plane's last resort — only happens when everything is
 * already at the floor.
 *
 * Ablation knobs (all default to the paper's behaviour):
 *  - strictGreedy: stop at the first rack whose SLA does not fit
 *    (Algorithm 1 as written) vs. skip it and keep trying smaller
 *    requests.
 *  - restoreOnHeadroom: re-grant demoted racks when headroom returns.
 */

#ifndef DCBATT_CORE_PRIORITY_AWARE_COORDINATOR_H_
#define DCBATT_CORE_PRIORITY_AWARE_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sla_current.h"
#include "dynamo/coordinator.h"

namespace dcbatt::core {

/** Behaviour switches for the ablation benches. */
struct PriorityAwareOptions
{
    /** Stop granting at the first rack that does not fit (paper). */
    bool strictGreedy = true;
    /** Re-grant demoted racks when headroom returns (extension). */
    bool restoreOnHeadroom = false;
    /** Headroom (watts) kept in reserve when re-granting. */
    util::Watts restoreMargin = util::kilowatts(20.0);
    /** Sort key ablations: ignore DOD (priority only) or priority. */
    bool ignoreDod = false;
    bool ignorePriority = false;

    /**
     * Postponed charging (the paper's future-work extension): when
     * even the 1 A floors do not fit the available power, hold
     * (postpone) racks in reverse order instead of capping servers,
     * and resume them as racks finish and headroom returns.
     */
    bool allowPostponement = false;
    /**
     * Headroom kept in reserve when resuming postponed racks. Too
     * small risks resume/hold ping-pong on trace noise; too large
     * strands held racks on breakers that run close to their limit.
     */
    util::Watts resumeMargin = util::kilowatts(2.0);
};

/** Hit/miss/eviction counters of the SLA-current memo. */
struct SlaMemoStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** Full-table clears (each drops every entry at once). */
    uint64_t evictions = 0;
    /** High-water mark of live entries (occupancy telemetry). */
    uint64_t peakOccupancy = 0;
};

/** Algorithm 1 + reverse-order overload throttling. */
class PriorityAwareCoordinator : public dynamo::ChargingCoordinator
{
  public:
    /**
     * Memo capacity: ~2^32 DOD buckets exist per priority, so an
     * adversarial DOD stream could otherwise grow the table without
     * bound inside a long sweep process. 4096 entries cover every
     * fleet the experiments run (#racks distinct DODs per event) with
     * two orders of magnitude of slack.
     */
    static constexpr size_t kSlaMemoCapacity = 4096;

    PriorityAwareCoordinator(SlaCurrentCalculator calculator,
                             PriorityAwareOptions options = {});

    std::string name() const override { return "priority-aware"; }

    std::vector<dynamo::OverrideCommand>
    planInitial(const std::vector<dynamo::RackChargeInfo> &racks,
                util::Watts available_power) override;

    std::vector<dynamo::OverrideCommand>
    onTick(const std::vector<dynamo::RackChargeInfo> &racks,
           util::Watts headroom) override;

    const SlaCurrentCalculator &calculator() const { return calc_; }

    /** Per-rack plan state (see planStates()). */
    struct RackPlanState
    {
        /** Last commanded current (valid when hasCommand). */
        util::Amperes commanded{0.0};
        /** SLA current computed by planInitial (valid when hasSla). */
        util::Amperes sla{0.0};
        bool hasCommand = false;
        bool hasSla = false;
        /** Postponed (held at zero) by the coordinator. */
        bool held = false;
    };

    /**
     * Plan state after the last plan/tick, indexed by rack id (rack
     * ids are dense fleet row indices). Racks past the largest id the
     * coordinator has seen have no entry; entries with neither
     * hasCommand nor held set are untouched racks.
     */
    const std::vector<RackPlanState> &planStates() const
    {
        return plan_;
    }

    /** SLA-current memo counters since construction. */
    const SlaMemoStats &slaMemoStats() const { return memoStats_; }

  private:
    /**
     * Sort (priority asc, DOD asc, id) honoring the ablation knobs.
     * Returns a reference to orderBuf_, rebuilt on every call (the
     * coordinator ticks every few seconds for every rack in the
     * fleet; reusing the buffer keeps the plan hot path free of
     * per-tick allocation). Invalidated by the next grantOrder call.
     */
    const std::vector<const dynamo::RackChargeInfo *> &
    grantOrder(const std::vector<dynamo::RackChargeInfo> &racks) const;

    /**
     * SLA current for (DOD, priority), memoized per (priority, DOD
     * bucket of 1e-6) so the charge-time bisection runs at most once
     * per bucket instead of once per rack per plan — fleets cluster
     * around few distinct DODs, and repeated charging events re-plan
     * with the same inputs every event. The bucketing error (DOD
     * rounded to the nearest 1e-6) moves the resulting current by
     * microamperes, far below the hardware's command resolution.
     *
     * The memo is bounded at kSlaMemoCapacity entries: on overflow the
     * whole table is cleared (deterministic, order-independent — an
     * LRU chain would make the retained set depend on rack visit
     * order). A clear costs at most one re-bisection per live bucket.
     */
    util::Amperes slaCurrentFor(double dod, power::Priority p) const;

    battery::BbuParams bbuParams() const
    {
        return calc_.model().params();
    }

    /** Grow-on-demand access to a rack's plan entry. */
    RackPlanState &stateFor(int rack_id);
    /** Read access; null when the rack has no entry yet. */
    const RackPlanState *stateAt(int rack_id) const;

    SlaCurrentCalculator calc_;
    PriorityAwareOptions options_;
    /** Reused grant-order buffer (see grantOrder). */
    mutable std::vector<const dynamo::RackChargeInfo *> orderBuf_;
    /** Memo for slaCurrentFor: (priority, DOD bucket) -> current. */
    mutable std::unordered_map<uint64_t, util::Amperes> slaMemo_;  // detlint: allow(unordered-container) -- memo cache, keyed lookup only
    mutable SlaMemoStats memoStats_;
    /**
     * Plan state indexed by rack id. A dense vector, not a map: the
     * tick path probes commanded/held several times per rack per
     * control tick, and rack ids are fleet row indices anyway.
     */
    std::vector<RackPlanState> plan_;
};

} // namespace dcbatt::core

#endif // DCBATT_CORE_PRIORITY_AWARE_COORDINATOR_H_
