#include "core/region_budget.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace dcbatt::core {

namespace {

constexpr double kEpsW = 1e-3;
constexpr double kInf = std::numeric_limits<double>::infinity();

/** Cap for index @p i; vectors shorter than the fleet mean "no cap". */
double
capAt(const std::vector<double> &caps, size_t i)
{
    return i < caps.size() ? caps[i] : kInf;
}

/** Mutable remaining-capacity state threaded through the fill stages. */
struct FillState
{
    double region;
    std::vector<double> msb;
    std::vector<double> suite;
    std::vector<double> building;
};

/**
 * Headroom left for MSB @p i: the min over its cap chain. The region
 * share is handled by the caller (it is common to every MSB).
 */
double
chainAvail(const FillState &state,
           const std::vector<MsbBudgetReport> &reports, size_t i)
{
    const MsbBudgetReport &r = reports[i];
    double avail = state.msb[i];
    avail = std::min(avail,
                     capAt(state.suite,
                           static_cast<size_t>(r.suite)));
    avail = std::min(avail,
                     capAt(state.building,
                           static_cast<size_t>(r.building)));
    return std::max(avail, 0.0);
}

void
applyGrant(FillState &state,
           const std::vector<MsbBudgetReport> &reports, size_t i,
           double w)
{
    const MsbBudgetReport &r = reports[i];
    state.region -= w;
    state.msb[i] -= w;
    auto s = static_cast<size_t>(r.suite);
    auto b = static_cast<size_t>(r.building);
    if (s < state.suite.size())
        state.suite[s] -= w;
    if (b < state.building.size())
        state.building[b] -= w;
}

/**
 * Water-fill @p demand (one value per MSB) into @p grants, bounded by
 * @p state. Proportional passes first (fairness within the class),
 * then one greedy mop-up pass in report order, which guarantees the
 * audit's termination property: any demand still unmet afterwards is
 * capacity-blocked or the region budget is exhausted.
 */
void
fillClass(const RegionBudgetConfig &config,
          const std::vector<MsbBudgetReport> &reports,
          const std::vector<double> &demand, FillState &state,
          std::vector<double> &grants)
{
    const size_t n = reports.size();
    grants.assign(n, 0.0);
    std::vector<double> want(n, 0.0);
    for (int pass = 0; pass < config.passes; ++pass) {
        double total_want = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double unmet = demand[i] - grants[i];
            want[i] = std::clamp(unmet, 0.0,
                                 chainAvail(state, reports, i));
            total_want += want[i];
        }
        if (total_want <= kEpsW || state.region <= kEpsW)
            break;
        double pot = std::min(state.region, total_want);
        for (size_t i = 0; i < n; ++i) {
            if (want[i] <= 0.0)
                continue;
            double share = pot * want[i] / total_want;
            double w = std::min({demand[i] - grants[i],
                                 chainAvail(state, reports, i),
                                 share, state.region});
            if (w <= 0.0)
                continue;
            grants[i] += w;
            applyGrant(state, reports, i, w);
        }
    }
    // Greedy mop-up: proportional rounding can strand budget when
    // shared suite caps shrink mid-pass.
    for (size_t i = 0; i < n && state.region > kEpsW; ++i) {
        double w = std::min({demand[i] - grants[i],
                             chainAvail(state, reports, i),
                             state.region});
        if (w <= kEpsW)
            continue;
        grants[i] += w;
        applyGrant(state, reports, i, w);
    }
}

} // namespace

RegionBudgetOutcome
splitRegionBudget(const RegionBudgetConfig &config,
                  const std::vector<MsbBudgetReport> &reports)
{
    const size_t n = reports.size();
    RegionBudgetOutcome out;
    out.grantW.assign(n, 0.0);

    FillState state;
    state.region = std::max(config.regionBudgetW, 0.0);
    state.msb.resize(n);
    for (size_t i = 0; i < n; ++i)
        state.msb[i] = std::max(reports[i].breakerLimitW, 0.0);
    state.suite = config.suiteLimitW;
    state.building = config.buildingLimitW;

    std::vector<double> demand(n, 0.0);

    // Stage 0: IT load. Not curtailable here — if it does not fit,
    // the shortfall shows up as itUnmetW and the per-MSB controllers
    // do the capping.
    for (size_t i = 0; i < n; ++i)
        demand[i] = std::max(reports[i].itW, 0.0);
    fillClass(config, reports, demand, state, out.itGrantW);
    for (size_t i = 0; i < n; ++i) {
        out.itGrantedW += out.itGrantW[i];
        out.itUnmetW += demand[i] - out.itGrantW[i];
        out.grantW[i] += out.itGrantW[i];
    }

    // Stages 1-3: charging demand, strictly class by class.
    for (size_t c = 0; c < 3; ++c) {
        for (size_t i = 0; i < n; ++i)
            demand[i] = std::max(reports[i].demandW[c], 0.0);
        fillClass(config, reports, demand, state, out.classGrantW[c]);
        for (size_t i = 0; i < n; ++i) {
            out.classGrantedW[c] += out.classGrantW[c][i];
            out.classUnmetW[c] += demand[i] - out.classGrantW[c][i];
            out.grantW[i] += out.classGrantW[c][i];
        }
    }

    // Final stage: spread the residual budget as headroom, bounded
    // by each MSB's remaining breaker/feeder capacity. Without this,
    // IT drift between coordination ticks would immediately overrun
    // demand-sized ceilings and cap servers while budget sits idle.
    for (size_t i = 0; i < n; ++i)
        demand[i] = std::max(state.msb[i], 0.0);
    fillClass(config, reports, demand, state, out.headroomGrantW);
    for (size_t i = 0; i < n; ++i) {
        out.headroomGrantedW += out.headroomGrantW[i];
        out.grantW[i] += out.headroomGrantW[i];
    }

    out.residualW = std::max(state.region, 0.0);
    return out;
}

void
auditRegionBudget(const RegionBudgetConfig &config,
                  const std::vector<MsbBudgetReport> &reports,
                  const RegionBudgetOutcome &outcome,
                  double tolerance_w)
{
    const size_t n = reports.size();
    DCBATT_REQUIRE(outcome.grantW.size() == n
                       && outcome.itGrantW.size() == n
                       && outcome.headroomGrantW.size() == n,
                   "budget outcome shape mismatch: %zu MSBs, %zu/%zu "
                   "grant rows",
                   n, outcome.grantW.size(), outcome.itGrantW.size());

    // Conservation against the region budget.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i)
        total += outcome.grantW[i];
    DCBATT_REQUIRE(total <= config.regionBudgetW + tolerance_w,
                   "budget split over-commits: granted %.1f W of "
                   "%.1f W budget",
                   total, config.regionBudgetW);

    // Per-MSB decomposition and caps; fold suite/building sums.
    std::vector<double> suite_sum(config.suiteLimitW.size(), 0.0);
    std::vector<double> building_sum(config.buildingLimitW.size(),
                                     0.0);
    for (size_t i = 0; i < n; ++i) {
        const MsbBudgetReport &r = reports[i];
        double parts = outcome.itGrantW[i] + outcome.headroomGrantW[i];
        for (size_t c = 0; c < 3; ++c) {
            DCBATT_REQUIRE(outcome.classGrantW[c].size() == n,
                           "class %zu grant row count %zu != %zu", c,
                           outcome.classGrantW[c].size(), n);
            DCBATT_REQUIRE(
                outcome.classGrantW[c][i]
                    <= r.demandW[c] + tolerance_w,
                "MSB %d granted %.1f W for class %zu demand %.1f W",
                r.msbIndex, outcome.classGrantW[c][i], c,
                r.demandW[c]);
            parts += outcome.classGrantW[c][i];
        }
        DCBATT_REQUIRE(outcome.itGrantW[i] <= r.itW + tolerance_w,
                       "MSB %d granted %.1f W for IT demand %.1f W",
                       r.msbIndex, outcome.itGrantW[i], r.itW);
        DCBATT_REQUIRE(
            std::abs(parts - outcome.grantW[i]) <= tolerance_w,
            "MSB %d grant %.1f W != stage sum %.1f W", r.msbIndex,
            outcome.grantW[i], parts);
        DCBATT_REQUIRE(
            outcome.grantW[i] <= r.breakerLimitW + tolerance_w,
            "MSB %d grant %.1f W above breaker %.1f W", r.msbIndex,
            outcome.grantW[i], r.breakerLimitW);
        auto s = static_cast<size_t>(r.suite);
        auto b = static_cast<size_t>(r.building);
        if (s < suite_sum.size())
            suite_sum[s] += outcome.grantW[i];
        if (b < building_sum.size())
            building_sum[b] += outcome.grantW[i];
    }
    for (size_t s = 0; s < suite_sum.size(); ++s) {
        DCBATT_REQUIRE(suite_sum[s]
                           <= config.suiteLimitW[s] + tolerance_w,
                       "suite %zu granted %.1f W above cap %.1f W", s,
                       suite_sum[s], config.suiteLimitW[s]);
    }
    for (size_t b = 0; b < building_sum.size(); ++b) {
        DCBATT_REQUIRE(building_sum[b]
                           <= config.buildingLimitW[b] + tolerance_w,
                       "building %zu granted %.1f W above cap %.1f W",
                       b, building_sum[b], config.buildingLimitW[b]);
    }

    // Priority ordering: unmet demand in class c is only legitimate
    // when that MSB's cap chain or the region budget is exhausted.
    // (IT is stage 0, so the same check covers IT starvation.)
    double region_left = config.regionBudgetW - total;
    auto chain_left = [&](size_t i) {
        const MsbBudgetReport &r = reports[i];
        double left = r.breakerLimitW - outcome.grantW[i];
        auto s = static_cast<size_t>(r.suite);
        auto b = static_cast<size_t>(r.building);
        if (s < suite_sum.size())
            left = std::min(left,
                            config.suiteLimitW[s] - suite_sum[s]);
        if (b < building_sum.size())
            left = std::min(left, config.buildingLimitW[b]
                                      - building_sum[b]);
        return left;
    };
    for (size_t i = 0; i < n; ++i) {
        double it_unmet = reports[i].itW - outcome.itGrantW[i];
        bool blocked = region_left <= tolerance_w
            || chain_left(i) <= tolerance_w;
        DCBATT_REQUIRE(it_unmet <= tolerance_w || blocked,
                       "MSB %d IT demand %.1f W unmet with headroom "
                       "(region %.1f W, chain %.1f W)",
                       reports[i].msbIndex, it_unmet, region_left,
                       chain_left(i));
        for (size_t c = 0; c < 3; ++c) {
            double unmet = reports[i].demandW[c]
                - outcome.classGrantW[c][i];
            DCBATT_REQUIRE(
                unmet <= tolerance_w || blocked,
                "MSB %d class %zu demand %.1f W unmet with headroom "
                "(region %.1f W, chain %.1f W)",
                reports[i].msbIndex, c, unmet, region_left,
                chain_left(i));
        }
    }
}

} // namespace dcbatt::core
