/**
 * @file
 * Cross-MSB charging-budget splitter.
 *
 * One region-wide power budget has to be divided across MSB
 * coordinators every coordination tick. The splitter extends the
 * paper's priority semantics from racks-under-one-MSB to
 * MSBs-under-one-region:
 *
 *   1. IT demand is granted first (it is not curtailable by the
 *      splitter; if the region budget cannot cover the fleet's IT
 *      load, grants scale back and the per-MSB Dynamo controllers
 *      eventually cap servers — the last resort, exactly as within
 *      one MSB).
 *   2. Remaining budget water-fills charging demand class by class
 *      (P1, then P2, then P3). Within a class, MSBs are filled
 *      proportionally to their demand, bounded by each MSB's breaker
 *      headroom and its suite/building feeder caps.
 *
 * The outcome carries per-class per-MSB grants so the audit can check
 * the contract mechanically (auditRegionBudget; wired into the region
 * engine's invariant auditing):
 *
 *   - conservation: grants sum to at most the region budget,
 *   - caps: no MSB/suite/building exceeds its limit,
 *   - priority: a class sees unmet demand only when every MSB holding
 *     that demand is capacity-blocked or the region budget is
 *     exhausted (so a lower class can never starve a higher one).
 *
 * Pure functions of their inputs — deterministic regardless of thread
 * count; the region engine calls them on the coordination thread only.
 */

#ifndef DCBATT_CORE_REGION_BUDGET_H_
#define DCBATT_CORE_REGION_BUDGET_H_

#include <array>
#include <cstddef>
#include <vector>

namespace dcbatt::core {

/** What one MSB reports to the splitter each coordination tick. */
struct MsbBudgetReport
{
    int msbIndex = -1;
    /** Region-global suite index of this MSB. */
    int suite = 0;
    int building = 0;
    /** Uncurtailed IT demand (watts) under this MSB right now. */
    double itW = 0.0;
    /** Charging wall-power demand (watts) by priority class. */
    std::array<double, 3> demandW{0.0, 0.0, 0.0};
    /** MSB breaker rating (upper bound on any grant). */
    double breakerLimitW = 0.0;
};

/** Static caps the splitter enforces. */
struct RegionBudgetConfig
{
    /** Region-wide budget (watts). */
    double regionBudgetW = 0.0;
    /** Per-suite feeder caps, indexed by region-global suite id. */
    std::vector<double> suiteLimitW;
    /** Per-building feeder caps. */
    std::vector<double> buildingLimitW;
    /** Proportional-fill refinement passes per class. */
    int passes = 8;
};

/** The split: per-MSB grants plus the class-level accounting. */
struct RegionBudgetOutcome
{
    /** Total grant per MSB (watts), in report order. */
    std::vector<double> grantW;
    /** Per-class grant per MSB (classGrantW[c][msb]). */
    std::array<std::vector<double>, 3> classGrantW;
    /** IT grant per MSB. */
    std::vector<double> itGrantW;
    /**
     * Residual budget distributed as headroom after every demand
     * class is satisfied (proportional to remaining breaker
     * capacity). Demand between coordination ticks drifts, so
     * stranding budget would convert drift into spurious capping.
     */
    std::vector<double> headroomGrantW;

    double itGrantedW = 0.0;
    double itUnmetW = 0.0;
    std::array<double, 3> classGrantedW{0.0, 0.0, 0.0};
    std::array<double, 3> classUnmetW{0.0, 0.0, 0.0};
    double headroomGrantedW = 0.0;
    /** Budget left after all stages (breaker/feeder caps binding). */
    double residualW = 0.0;
};

/**
 * Split @p config.regionBudgetW across @p reports (see file comment).
 * Report order is the deterministic tie-break order; callers pass
 * MSB-index order.
 */
RegionBudgetOutcome
splitRegionBudget(const RegionBudgetConfig &config,
                  const std::vector<MsbBudgetReport> &reports);

/**
 * Validate the split contract via DCBATT_REQUIRE (aborts on
 * violation). @p tolerance_w absorbs float folding error.
 */
void auditRegionBudget(const RegionBudgetConfig &config,
                       const std::vector<MsbBudgetReport> &reports,
                       const RegionBudgetOutcome &outcome,
                       double tolerance_w = 1.0);

} // namespace dcbatt::core

#endif // DCBATT_CORE_REGION_BUDGET_H_
