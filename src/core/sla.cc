#include "core/sla.h"

namespace dcbatt::core {

SlaTable
SlaTable::paperDefault()
{
    return SlaTable(std::array<SlaEntry, 3>{
        SlaEntry{0.9994, util::minutes(30.0)},
        SlaEntry{0.9990, util::minutes(60.0)},
        SlaEntry{0.9985, util::minutes(90.0)},
    });
}

} // namespace dcbatt::core
