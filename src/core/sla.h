/**
 * @file
 * Charging-time SLAs per rack priority (Table II).
 *
 * The paper assigns each priority a target availability-of-redundancy
 * (AOR) and the battery charging time that achieves it (from the
 * Monte Carlo study of Fig. 9a):
 *
 *   P1 (high)   AOR 99.94 %  ->  charge within 30 minutes
 *   P2 (normal) AOR 99.90 %  ->  charge within 60 minutes
 *   P3 (low)    AOR 99.85 %  ->  charge within 90 minutes
 *
 * The table is configurable: the paper notes the framework applies
 * "regardless of the AOR values or the number of rack priority
 * levels".
 */

#ifndef DCBATT_CORE_SLA_H_
#define DCBATT_CORE_SLA_H_

#include <array>

#include "power/priority.h"
#include "util/units.h"

namespace dcbatt::core {

/** SLA row for one priority. */
struct SlaEntry
{
    double targetAor = 0.999;
    util::Seconds chargeTimeSla = util::minutes(60.0);
};

/** Priority -> SLA mapping. */
class SlaTable
{
  public:
    /** Table II of the paper. */
    static SlaTable paperDefault();

    SlaTable() = default;
    explicit SlaTable(std::array<SlaEntry, 3> entries)
        : entries_(entries) {}

    const SlaEntry &entry(power::Priority p) const
    {
        return entries_[static_cast<size_t>(power::priorityIndex(p))];
    }
    util::Seconds chargeTimeSla(power::Priority p) const
    {
        return entry(p).chargeTimeSla;
    }
    double targetAor(power::Priority p) const
    {
        return entry(p).targetAor;
    }

    /** Loss-of-redundancy budget in hours per year (Table II col 3). */
    double lossOfRedundancyHoursPerYear(power::Priority p) const
    {
        return (1.0 - targetAor(p)) * 24.0 * 365.0;
    }

  private:
    std::array<SlaEntry, 3> entries_{
        SlaEntry{0.9994, util::minutes(30.0)},
        SlaEntry{0.9990, util::minutes(60.0)},
        SlaEntry{0.9985, util::minutes(90.0)},
    };
};

} // namespace dcbatt::core

#endif // DCBATT_CORE_SLA_H_
