#include "core/sla_current.h"

#include "util/check.h"

namespace dcbatt::core {

using util::Amperes;
using util::Seconds;

SlaCurrentCalculator::SlaCurrentCalculator(battery::ChargeTimeModel model,
                                           SlaTable table)
    : model_(std::move(model)), table_(table)
{
}

void
SlaCurrentCalculator::setFloor(power::Priority p, Amperes floor)
{
    floors_[static_cast<size_t>(power::priorityIndex(p))] = floor;
}

Amperes
SlaCurrentCalculator::requiredCurrent(double dod, power::Priority p) const
{
    DCBATT_REQUIRE(dod >= 0.0 && dod <= 1.0, "DOD out of range: %g",
                   dod);
    Seconds deadline = table_.chargeTimeSla(p) - latencyMargin_;
    auto needed = model_.currentForDeadline(dod, deadline);
    Amperes current = needed.value_or(model_.params().maxCurrent);
    return util::clamp(current, floor(p), model_.params().maxCurrent);
}

bool
SlaCurrentCalculator::attainable(double dod, power::Priority p) const
{
    return model_.currentForDeadline(dod, table_.chargeTimeSla(p))
        .has_value();
}

double
SlaCurrentCalculator::maxAttainableDod(power::Priority p) const
{
    // chargeTime(dod, I) is increasing in DOD, so bisect on DOD with
    // the maximum current.
    if (!attainable(1.0, p))
    {
        double lo = 0.0, hi = 1.0;
        for (int iter = 0; iter < 60; ++iter) {
            double mid = 0.5 * (lo + hi);
            if (attainable(mid, p))
                lo = mid;
            else
                hi = mid;
        }
        return lo;
    }
    return 1.0;
}

} // namespace dcbatt::core
