/**
 * @file
 * SLA charging-current calculator (Fig. 9b).
 *
 * Given a rack's battery depth of discharge and its priority, compute
 * the charging current required to meet the priority's charging-time
 * SLA: the inverse of the charge-time model, clamped to the 1-5 A
 * hardware range, with a per-priority floor (P1 racks are never
 * commanded below the variable charger's 2 A default — inferred from
 * the prototype experiment of Fig. 10, where P1 racks at <5 % DOD are
 * assigned 2 A while P2/P3 get 1 A).
 *
 * When even 5 A cannot meet the SLA (deep discharges against the
 * 30-minute P1 deadline), the calculator returns the maximum current:
 * the paper acknowledges this hardware limitation explicitly.
 */

#ifndef DCBATT_CORE_SLA_CURRENT_H_
#define DCBATT_CORE_SLA_CURRENT_H_

#include <array>

#include "battery/charge_time_model.h"
#include "core/sla.h"
#include "power/priority.h"
#include "util/units.h"

namespace dcbatt::core {

/** Computes the SLA charging current for (DOD, priority). */
class SlaCurrentCalculator
{
  public:
    SlaCurrentCalculator(battery::ChargeTimeModel model, SlaTable table);

    /** Override the per-priority current floors (defaults 2/1/1 A). */
    void setFloor(power::Priority p, util::Amperes floor);

    /**
     * Control-plane latency budgeted into the deadline: the rack
     * charges at the local default until the override propagates
     * (controller tick + actuation lag), so the current is sized for
     * SLA minus this margin. Default 30 s.
     */
    void setCommandLatencyMargin(util::Seconds margin)
    {
        latencyMargin_ = margin;
    }
    util::Seconds commandLatencyMargin() const { return latencyMargin_; }
    util::Amperes floor(power::Priority p) const
    {
        return floors_[static_cast<size_t>(power::priorityIndex(p))];
    }

    /**
     * Current required to charge from @p dod within the priority's
     * SLA, clamped to [floor(priority), max]. Returns max current when
     * the SLA is unattainable.
     */
    util::Amperes requiredCurrent(double dod, power::Priority p) const;

    /** Whether the SLA is attainable at all within the hardware range. */
    bool attainable(double dod, power::Priority p) const;

    /** Largest DOD from which the priority's SLA is attainable. */
    double maxAttainableDod(power::Priority p) const;

    const battery::ChargeTimeModel &model() const { return model_; }
    const SlaTable &slaTable() const { return table_; }

  private:
    battery::ChargeTimeModel model_;
    SlaTable table_;
    std::array<util::Amperes, 3> floors_{
        util::Amperes(2.0), util::Amperes(1.0), util::Amperes(1.0)};
    util::Seconds latencyMargin_{30.0};
};

} // namespace dcbatt::core

#endif // DCBATT_CORE_SLA_CURRENT_H_
