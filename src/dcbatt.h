/**
 * @file
 * Umbrella header: the full public API of dcbatt.
 *
 * Fine-grained headers remain the preferred includes inside the
 * library and its tests; this header exists for downstream users who
 * want the whole toolkit with one include.
 *
 * Layer map (bottom-up):
 *  - util:        units, RNG, interpolation, CSV, series, stats, text
 *  - sim:         discrete-event kernel
 *  - battery:     BBU CC-CV physics, chargers, rack power shelf
 *  - power:       breaker hierarchy, racks, topology, transitions
 *  - trace:       synthetic production power traces
 *  - dynamo:      agents, controllers, capping (the control plane)
 *  - core:        SLAs, charging policies, the experiment engine
 *  - reliability: Table I failure data, Monte Carlo AOR
 */

#ifndef DCBATT_DCBATT_H_
#define DCBATT_DCBATT_H_

#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/interpolate.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/text_table.h"
#include "util/thread_pool.h"
#include "util/time_series.h"
#include "util/units.h"

#include "sim/event_queue.h"
#include "sim/sim_time.h"
#include "sim/sweep_runner.h"

#include "battery/bbu.h"
#include "battery/bbu_params.h"
#include "battery/charge_time_model.h"
#include "battery/charger_policy.h"
#include "battery/power_shelf.h"

#include "power/breaker.h"
#include "power/priority.h"
#include "power/rack.h"
#include "power/topology.h"

#include "trace/trace_generator.h"
#include "trace/trace_set.h"

#include "dynamo/agent.h"
#include "dynamo/capping.h"
#include "dynamo/controller.h"
#include "dynamo/coordinator.h"

#include "core/charging_event_sim.h"
#include "core/global_coordinator.h"
#include "core/local_coordinator.h"
#include "core/priority_aware_coordinator.h"
#include "core/sla.h"
#include "core/sla_current.h"

#include "reliability/aor_simulator.h"
#include "reliability/failure_data.h"

#endif // DCBATT_DCBATT_H_
