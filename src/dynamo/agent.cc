#include "dynamo/agent.h"

namespace dcbatt::dynamo {

using util::Amperes;

RackAgent::RackAgent(power::Rack &rack, sim::EventQueue &queue,
                     util::Seconds actuation_lag)
    : rack_(&rack), queue_(&queue), actuationLag_(actuation_lag)
{
}

void
RackAgent::commandOverride(Amperes current)
{
    if (lastCommanded_.value() != 0.0
        && std::abs((lastCommanded_ - current).value()) < 1e-9) {
        return;
    }
    lastCommanded_ = current;
    power::Rack *rack = rack_;
    queue_->scheduleAfter(sim::toTicks(actuationLag_),
                          [rack, current] {
                              rack->shelf().setOverride(current);
                          });
}

void
RackAgent::commandHold()
{
    if (holdCommanded_)
        return;
    holdCommanded_ = true;
    power::Rack *rack = rack_;
    queue_->scheduleAfter(sim::toTicks(actuationLag_),
                          [rack] { rack->shelf().holdCharging(); });
}

void
RackAgent::commandResume(Amperes current)
{
    if (!holdCommanded_)
        return;
    holdCommanded_ = false;
    lastCommanded_ = current;
    power::Rack *rack = rack_;
    queue_->scheduleAfter(sim::toTicks(actuationLag_),
                          [rack, current] {
                              rack->shelf().setOverride(current);
                              rack->shelf().resumeCharging();
                          });
}

void
RackAgent::clearOverride()
{
    lastCommanded_ = Amperes(0.0);
    holdCommanded_ = false;
    rack_->shelf().clearOverride();
    rack_->shelf().resumeCharging();
}

} // namespace dcbatt::dynamo
