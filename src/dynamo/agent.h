/**
 * @file
 * Dynamo rack agent.
 *
 * The paper adds a new Dynamo agent type that runs on each rack's
 * top-of-rack switch: it reads rack input power, IT load, and BBU
 * charge/discharge power from the PSUs, and can issue a manual
 * override of the BBU charging current (1-5 A). The agent is a pure
 * request handler — controllers decide, agents actuate.
 *
 * Actuation is not instantaneous: the prototype measurement in Fig. 11
 * shows the BBU power stabilizing about 20 seconds after the override
 * command is issued. RackAgent models that latency by scheduling the
 * shelf override on the event queue.
 */

#ifndef DCBATT_DYNAMO_AGENT_H_
#define DCBATT_DYNAMO_AGENT_H_

#include "power/rack.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace dcbatt::dynamo {

/** Per-rack Dynamo agent (runs on the TOR switch). */
class RackAgent
{
  public:
    /**
     * @param rack the rack this agent manages (not owned).
     * @param queue event queue used to model actuation latency.
     * @param actuation_lag delay between override command and effect.
     */
    RackAgent(power::Rack &rack, sim::EventQueue &queue,
              util::Seconds actuation_lag = util::Seconds(20.0));

    int rackId() const { return rack_->id(); }
    power::Rack &rack() { return *rack_; }
    const power::Rack &rack() const { return *rack_; }

    // --- read path -------------------------------------------------
    util::Watts readInputPower() const { return rack_->inputPower(); }
    util::Watts readItLoad() const { return rack_->itLoad(); }
    util::Watts readRechargePower() const
    {
        return rack_->rechargePower();
    }
    util::Amperes readSetpoint() const
    {
        return rack_->shelf().chargeSetpoint();
    }
    bool inputPowerOn() const { return rack_->inputPowerOn(); }
    bool charging() const { return rack_->shelf().anyCharging(); }

    // --- write path ------------------------------------------------
    /**
     * Command a charging-current override. The shelf setpoint changes
     * after the actuation lag. Duplicate commands (same current as the
     * last one issued) are suppressed.
     */
    void commandOverride(util::Amperes current);

    /**
     * Command a charging hold / resume (postponed charging). Subject
     * to the same actuation lag as current overrides; duplicate
     * commands are suppressed. Resume applies @p current as the
     * override so the released rack draws exactly what the
     * coordinator budgeted for it (not its local-charger default).
     */
    void commandHold();
    void commandResume(util::Amperes current);
    bool holdCommanded() const { return holdCommanded_; }
    bool chargingHeld() const { return rack_->shelf().chargingHeld(); }

    /** Clear the override (immediately; used between experiments). */
    void clearOverride();

    /** Last override current commanded (0 if none). */
    util::Amperes lastCommanded() const { return lastCommanded_; }

    /** Set/adjust a server power cap (takes effect immediately). */
    void commandCap(util::Watts amount) { rack_->setCapAmount(amount); }
    void commandUncap() { rack_->uncap(); }

  private:
    power::Rack *rack_;
    sim::EventQueue *queue_;
    util::Seconds actuationLag_;
    util::Amperes lastCommanded_{0.0};
    bool holdCommanded_ = false;
};

} // namespace dcbatt::dynamo

#endif // DCBATT_DYNAMO_AGENT_H_
