#include "dynamo/capping.h"

#include <algorithm>

#include "power/priority.h"
#include "util/check.h"

namespace dcbatt::dynamo {

using power::Priority;
using util::Watts;

Watts
CappingEngine::applyReduction(std::vector<RackAgent *> &agents,
                              Watts reduction)
{
    Watts applied(0.0);
    if (reduction.value() <= 0.0)
        return applied;
    // Work class by class from P3 down to P1, shaving proportionally
    // to each rack's remaining cappable load within the class.
    for (int pri = 2; pri >= 0 && applied < reduction; --pri) {
        std::vector<RackAgent *> members;
        Watts cappable(0.0);
        for (RackAgent *agent : agents) {
            if (power::priorityIndex(agent->rack().priority()) != pri)
                continue;
            Watts demand = agent->rack().itDemand();
            Watts floor = demand * (1.0 - maxCapFraction_);
            Watts room = agent->rack().itLoad() - floor;
            if (room.value() > 0.0) {
                members.push_back(agent);
                cappable += room;
            }
        }
        if (members.empty() || cappable.value() <= 0.0)
            continue;
        Watts want = util::min(reduction - applied, cappable);
        for (RackAgent *agent : members) {
            Watts demand = agent->rack().itDemand();
            Watts floor = demand * (1.0 - maxCapFraction_);
            Watts room = agent->rack().itLoad() - floor;
            Watts share = want * (room / cappable);
            DCBATT_ASSERT(share.value() >= 0.0,
                          "negative cap share %g W for rack %d",
                          share.value(), agent->rackId());
            Watts new_cap = agent->rack().capAmount() + share;
            agent->commandCap(new_cap);
            ledger_[agent->rackId()] += share.value();
            applied += share;
        }
    }
    DCBATT_ASSERT(applied <= reduction + Watts(1e-6),
                  "capped %.6f W, more than the %.6f W asked for",
                  applied.value(), reduction.value());
    return applied;
}

Watts
CappingEngine::release(std::vector<RackAgent *> &agents, Watts headroom)
{
    Watts released(0.0);
    if (headroom.value() <= 0.0)
        return released;
    for (int pri = 0; pri <= 2 && released < headroom; ++pri) {
        for (RackAgent *agent : agents) {
            if (power::priorityIndex(agent->rack().priority()) != pri)
                continue;
            auto held = ledger_.find(agent->rackId());
            if (held == ledger_.end() || held->second <= 0.0)
                continue;
            Watts cap = agent->rack().capAmount();
            Watts give = util::min(util::min(cap, Watts(held->second)),
                                   headroom - released);
            if (give.value() <= 0.0)
                continue;
            agent->commandCap(cap - give);
            held->second -= give.value();
            released += give;
            if (released >= headroom)
                break;
        }
    }
    return released;
}

void
CappingEngine::releaseAll(std::vector<RackAgent *> &agents)
{
    for (RackAgent *agent : agents) {
        auto held = ledger_.find(agent->rackId());
        if (held == ledger_.end() || held->second <= 0.0)
            continue;
        Watts cap = agent->rack().capAmount();
        Watts give = util::min(cap, Watts(held->second));
        agent->commandCap(cap - give);
        held->second = 0.0;
    }
    ledger_.clear();
}

Watts
CappingEngine::totalCap() const
{
    double total = 0.0;
    for (const auto &[rack_id, watts] : ledger_)
        total += watts;
    return Watts(total);
}

Watts
CappingEngine::fleetCap(const std::vector<RackAgent *> &agents)
{
    Watts total(0.0);
    for (const RackAgent *agent : agents)
        total += agent->rack().capAmount();
    return total;
}

} // namespace dcbatt::dynamo
