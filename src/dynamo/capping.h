/**
 * @file
 * Priority-aware server power capping (Dynamo's last line of defense).
 *
 * When a breaker is overloaded and charging currents are already at
 * their floor, Dynamo caps server power "according to priority of
 * services running on those servers" (Section II-B). The engine here
 * distributes a required reduction across racks: lowest priority
 * first, proportionally to each rack's IT load within a priority
 * class, and releases caps (highest priority first) when headroom
 * returns.
 */

#ifndef DCBATT_DYNAMO_CAPPING_H_
#define DCBATT_DYNAMO_CAPPING_H_

#include <map>
#include <vector>

#include "dynamo/agent.h"
#include "util/units.h"

namespace dcbatt::dynamo {

/**
 * Distributes power caps across a set of rack agents.
 *
 * Each engine keeps a ledger of the caps *it* imposed and only ever
 * releases those: several controllers (MSB, SB, RPP) watch overlapping
 * rack sets, and a controller with ample headroom must not undo the
 * caps a constrained upstream controller just applied.
 */
class CappingEngine
{
  public:
    /** Fraction of IT load a rack can shed at most (capping floor). */
    explicit CappingEngine(double max_cap_fraction = 0.4)
        : maxCapFraction_(max_cap_fraction) {}

    /**
     * Increase caps so total IT load drops by @p reduction. Returns
     * the reduction actually achievable (less when every rack is at
     * its capping floor).
     */
    util::Watts applyReduction(std::vector<RackAgent *> &agents,
                               util::Watts reduction);

    /**
     * Release up to @p headroom of existing caps (highest priority
     * racks are released first). Returns the amount released.
     */
    util::Watts release(std::vector<RackAgent *> &agents,
                        util::Watts headroom);

    /** Remove all caps this engine imposed. */
    void releaseAll(std::vector<RackAgent *> &agents);

    /** Sum of caps currently imposed by this engine. */
    util::Watts totalCap() const;

    /** Sum of caps on the racks regardless of who imposed them. */
    static util::Watts fleetCap(const std::vector<RackAgent *> &agents);

  private:
    double maxCapFraction_;
    /** Watts of cap this engine holds per rack id. */
    /**
     * Ordered by rack id: totalCap() folds these doubles in rack-id
     * order, so the sum's rounding is a stable function of the ledger
     * contents, never of hash-bucket layout (determinism contract,
     * DESIGN.md §13).
     */
    std::map<int, double> ledger_;
};

} // namespace dcbatt::dynamo

#endif // DCBATT_DYNAMO_CAPPING_H_
