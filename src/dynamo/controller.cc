#include "dynamo/controller.h"

#include <algorithm>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace dcbatt::dynamo {

using power::PowerNode;
using util::Amperes;
using util::Seconds;
using util::Watts;

BreakerController::BreakerController(PowerNode &node,
                                     std::vector<RackAgent *> agents,
                                     sim::EventQueue &queue,
                                     ChargingCoordinator *coordinator,
                                     ControllerConfig config)
    : node_(&node), agents_(std::move(agents)), queue_(&queue),
      coordinator_(coordinator), config_(config)
{
    DCBATT_REQUIRE(node_->breaker() != nullptr,
                   "node %s has no breaker", node_->name().c_str());
    for (RackAgent *agent : agents_)
        agentById_[agent->rackId()] = agent;
}

Watts
BreakerController::limit() const
{
    return util::min(node_->breaker()->limit(), limitCeiling_);
}

Watts
BreakerController::measuredItLoad() const
{
    Watts total(0.0);
    for (const RackAgent *agent : agents_)
        total += agent->readItLoad();
    return total;
}

bool
BreakerController::anyCharging() const
{
    return std::any_of(agents_.begin(), agents_.end(),
                       [](const RackAgent *a) { return a->charging(); });
}

const std::vector<RackChargeInfo> &
BreakerController::snapshotRacks() const
{
    snapshotBuf_.clear();
    snapshotBuf_.reserve(agents_.size());
    for (size_t i = 0; i < agents_.size(); ++i) {
        const RackAgent *agent = agents_[i];
        RackChargeInfo &info = snapshotBuf_.emplace_back();
        info.rackId = agent->rackId();
        info.priority = agent->rack().priority();
        info.initialDod = i < initialDod_.size() ? initialDod_[i] : 0.0;
        info.setpoint = agent->readSetpoint();
        info.rechargePower = agent->readRechargePower();
        info.itLoad = agent->readItLoad();
        info.capAmount = agent->rack().capAmount();
        info.charging = agent->charging();
        info.held = agent->holdCommanded();
    }
    return snapshotBuf_;
}

bool
BreakerController::overridesInFlight() const
{
    sim::Tick grace = sim::toTicks(config_.overrideGrace);
    sim::Tick now = queue_->now();
    for (const auto &[rack_id, when] : lastCommandTick_) {
        if (now - when < grace)
            return true;
    }
    return false;
}

bool
BreakerController::allChargingAtFloor() const
{
    for (const RackAgent *agent : agents_) {
        if (!agent->charging())
            continue;
        if (agent->holdCommanded())
            continue;  // postponed: drawing (or about to draw) nothing
        Amperes floor = agent->rack().shelf().params().minCurrent;
        // A rack counts as throttled once the floor was commanded,
        // even if the actuation lag has not elapsed yet.
        Amperes commanded = agent->lastCommanded();
        Amperes effective = commanded.value() > 0.0
            ? commanded
            : agent->readSetpoint();
        if (effective > floor + Amperes(1e-9))
            return false;
    }
    return true;
}

void
BreakerController::issue(const std::vector<OverrideCommand> &commands)
{
    // Flight-recorder gate, hoisted: one relaxed load per issue()
    // call instead of per command.
    const bool events_on = obs::eventLoggingEnabled();
    auto sim_now = [this] {
        return sim::toSeconds(queue_->now()).value();
    };
    for (const OverrideCommand &cmd : commands) {
        auto it = agentById_.find(cmd.rackId);
        if (it == agentById_.end()) {
            util::warn(util::strf("controller %s: override for unknown "
                                  "rack %d",
                                  node_->name().c_str(), cmd.rackId));
            continue;
        }
        RackAgent *agent = it->second;
        switch (cmd.kind) {
          case OverrideCommand::Kind::Hold:
            if (!agent->holdCommanded()) {
                agent->commandHold();
                lastCommandTick_[cmd.rackId] = queue_->now();
                DCBATT_COUNT("dynamo.cmd_hold");
                if (events_on) {
                    obs::logEvent(
                        sim_now(), "cmd_hold",
                        {{"rack",
                          static_cast<double>(cmd.rackId)}});
                }
            }
            break;
          case OverrideCommand::Kind::Resume:
            if (agent->holdCommanded()) {
                agent->commandResume(cmd.current);
                lastCommandTick_[cmd.rackId] = queue_->now();
                DCBATT_COUNT("dynamo.cmd_resume");
                if (events_on) {
                    obs::logEvent(
                        sim_now(), "cmd_resume",
                        {{"rack",
                          static_cast<double>(cmd.rackId)},
                         {"current_a", cmd.current.value()}});
                }
            }
            break;
          case OverrideCommand::Kind::SetCurrent: {
            Amperes before = agent->lastCommanded();
            agent->commandOverride(cmd.current);
            if (std::abs((agent->lastCommanded() - before).value())
                > 1e-12) {
                lastCommandTick_[cmd.rackId] = queue_->now();
                DCBATT_COUNT("dynamo.cmd_set_current");
                if (events_on) {
                    obs::logEvent(
                        sim_now(), "cmd_set_current",
                        {{"rack",
                          static_cast<double>(cmd.rackId)},
                         {"current_a",
                          agent->lastCommanded().value()}});
                }
            }
            break;
          }
        }
    }
}

void
BreakerController::tick()
{
    bool charging = anyCharging();

    if (charging && !eventActive_) {
        // A charging event begins: snapshot per-rack DOD (the paper's
        // leaf controllers estimate this from the open-transition
        // length and IT load; we read the shelf's measured value) and
        // let the coordinator plan initial currents against the
        // breaker's available power (limit minus IT load).
        eventActive_ = true;
        ++eventCount_;
        DCBATT_COUNT("dynamo.charging_event_starts");
        initialDod_.clear();
        initialDod_.reserve(agents_.size());
        for (const RackAgent *agent : agents_)
            initialDod_.push_back(agent->rack().shelf().meanDod());
        if (coordinator_) {
            Watts available = limit() - measuredItLoad();
            issue(coordinator_->planInitial(snapshotRacks(), available));
        }
    } else if (!charging && eventActive_) {
        // Event over: clear overrides so the next event starts from
        // the local charger defaults.
        eventActive_ = false;
        initialDod_.clear();
        lastCommandTick_.clear();
        for (RackAgent *agent : agents_)
            agent->clearOverride();
    }

    Watts measured = node_->inputPower();
    Watts headroom = limit() - measured;

    if (eventActive_ && coordinator_)
        issue(coordinator_->onTick(snapshotRacks(), headroom));

    const bool events_on = obs::eventLoggingEnabled();

    // --- capping: the last resort --------------------------------
    if (headroom.value() < 0.0) {
        if (overloadSince_ < 0) {
            overloadSince_ = queue_->now();
            if (events_on) {
                obs::logEvent(
                    sim::toSeconds(overloadSince_).value(),
                    "overload_open",
                    {{"over_kw",
                      util::toKilowatts(-headroom)}},
                    {{"node", node_->name()}});
            }
        }
        bool coordinating = coordinator_ && coordinator_->managesCurrents();
        bool charge_relief_possible = charging
            && (!allChargingAtFloor() || overridesInFlight());
        // Charge-current relief gets one grace window from the start
        // of the overload episode; a coordinator issuing a fresh
        // command every tick must not defer capping forever while the
        // breaker heats toward its trip point.
        bool within_grace = queue_->now() - overloadSince_
            < sim::toTicks(config_.overrideGrace);
        if (coordinating && charge_relief_possible && within_grace) {
            // Give the charge-current reduction a chance to land.
        } else {
            DCBATT_COUNT("dynamo.cap_reductions");
            Watts applied = capping_.applyReduction(agents_, -headroom);
            if (events_on) {
                obs::logEvent(
                    sim::toSeconds(queue_->now()).value(),
                    "cap_reduction",
                    {{"needed_kw", util::toKilowatts(-headroom)},
                     {"applied_kw", util::toKilowatts(applied)}},
                    {{"node", node_->name()}});
            }
            if (applied + Watts(1.0) < -headroom) {
                util::warn(util::strf(
                    "controller %s: capping floor reached, breaker "
                    "still %0.1f kW over limit",
                    node_->name().c_str(),
                    util::toKilowatts(-headroom - applied)));
            }
        }
    } else {
        if (overloadSince_ >= 0) {
            // End of an overload episode: record how long the breaker
            // sat above its limit, in *sim time* — deterministic by
            // construction, unlike a wall-clock latency (which belongs
            // in a trace span, not the registry).
            DCBATT_COUNT("dynamo.overload_episodes");
            static obs::Histogram &relief_hist = obs::histogram(
                "dynamo.overload_relief_latency_s",
                {1.0, 5.0, 15.0, 60.0, 300.0, 1800.0});
            double relief_s =
                sim::toSeconds(queue_->now() - overloadSince_)
                    .value();
            relief_hist.observe(relief_s);
            if (events_on) {
                obs::logEvent(
                    sim::toSeconds(queue_->now()).value(),
                    "overload_close",
                    {{"duration_s", relief_s}},
                    {{"node", node_->name()}});
            }
        }
        overloadSince_ = -1;
        Watts margin = limit() * config_.releaseMarginFraction;
        if (headroom > margin && totalCap().value() > 0.0) {
            DCBATT_COUNT("dynamo.cap_releases");
            Watts before_release = totalCap();
            capping_.release(agents_, headroom - margin);
            if (events_on) {
                obs::logEvent(
                    sim::toSeconds(queue_->now()).value(),
                    "cap_release",
                    {{"released_kw",
                      util::toKilowatts(before_release
                                        - totalCap())}},
                    {{"node", node_->name()}});
            }
        }
    }
    maxCapObserved_ = util::max(maxCapObserved_, totalCap());
}

ControlPlane::ControlPlane(power::Topology &topology,
                           PowerNode &coordination_node,
                           sim::EventQueue &queue,
                           ChargingCoordinator *coordinator,
                           ControllerConfig config)
    : queue_(&queue), config_(config)
{
    (void)topology;
    // Agents for every rack under the coordination node.
    for (power::Rack *rack : coordination_node.racksBelow()) {
        agents_.push_back(std::make_unique<RackAgent>(
            *rack, queue, config_.actuationLag));
        agentById_[rack->id()] = agents_.back().get();
    }
    buildControllers(coordination_node, coordinator);
    if (controllers_.empty())
        util::fatal("ControlPlane: coordination node has no breaker "
                    "anywhere below it");
}

void
ControlPlane::buildControllers(PowerNode &node,
                               ChargingCoordinator *coordinator)
{
    if (node.breaker()) {
        std::vector<RackAgent *> scoped;
        for (power::Rack *rack : node.racksBelow())
            scoped.push_back(agentById_.at(rack->id()));
        controllers_.push_back(std::make_unique<BreakerController>(
            node, std::move(scoped), *queue_, coordinator, config_));
        coordinator = nullptr;  // only the topmost breaker coordinates
    }
    for (PowerNode *child : node.children())
        buildControllers(*child, coordinator);
}

void
ControlPlane::start()
{
    if (!task_) {
        task_ = std::make_unique<sim::PeriodicTask>(
            *queue_, sim::toTicks(config_.tickPeriod),
            [this](sim::Tick) { tickAll(); });
    }
    task_->start();
}

void
ControlPlane::stop()
{
    if (task_)
        task_->stop();
}

void
ControlPlane::tickAll()
{
    // One count per control-plane tick, not per controller — keeps the
    // registry visit off the per-breaker path.
    DCBATT_COUNT("dynamo.control_ticks");
    for (auto &controller : controllers_)
        controller->tick();
}

RackAgent &
ControlPlane::agentFor(int rack_id)
{
    return *agentById_.at(rack_id);
}

Watts
ControlPlane::totalCap() const
{
    Watts total(0.0);
    for (const auto &agent : agents_)
        total += agent->rack().capAmount();
    return total;
}

} // namespace dcbatt::dynamo
