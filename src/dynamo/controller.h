/**
 * @file
 * Dynamo controllers.
 *
 * Controllers mirror the power hierarchy: a controller protects one
 * circuit breaker and watches the racks beneath it through their
 * agents. One controller in the tree — the *coordination* controller,
 * the MSB in the paper's simulation experiments — additionally runs a
 * ChargingCoordinator that decides per-rack charging currents; every
 * controller (leaf RPP controllers included) independently monitors
 * its breaker and escalates to server power capping as the last
 * resort.
 *
 * Escalation order on overload, per the paper:
 *   1. the coordinator throttles charging currents (reverse
 *      lowest-priority-highest-discharge-first order, down to 1 A),
 *   2. only when every charging rack is already commanded to the
 *      floor — and no override is still in flight (20 s actuation
 *      lag) — does the controller cap servers,
 *   3. caps are released once headroom returns (with hysteresis).
 */

#ifndef DCBATT_DYNAMO_CONTROLLER_H_
#define DCBATT_DYNAMO_CONTROLLER_H_

#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dynamo/agent.h"
#include "dynamo/capping.h"
#include "dynamo/coordinator.h"
#include "power/topology.h"
#include "sim/event_queue.h"

namespace dcbatt::dynamo {

/** Tunables shared by the controllers of one control plane. */
struct ControllerConfig
{
    /** Dynamo polling cadence. */
    util::Seconds tickPeriod{3.0};
    /** Manual-override actuation latency (Fig. 11). */
    util::Seconds actuationLag{20.0};
    /**
     * Headroom (fraction of limit) kept before releasing caps. Must
     * sit below any coordinator-side hold margin, or released
     * capacity and held charging deadlock each other.
     */
    double releaseMarginFraction = 0.0025;
    /** Cap only after an override has had this long to act. */
    util::Seconds overrideGrace{26.0};
};

/** Controller protecting one breaker node. */
class BreakerController
{
  public:
    /**
     * @param node        power node carrying the protected breaker.
     * @param agents      agents of every rack beneath the node
     *                    (not owned).
     * @param queue       event queue (time source).
     * @param coordinator optional charging policy; null for pure
     *                    monitor/capping controllers.
     */
    BreakerController(power::PowerNode &node,
                      std::vector<RackAgent *> agents,
                      sim::EventQueue &queue,
                      ChargingCoordinator *coordinator,
                      ControllerConfig config = {});

    const power::PowerNode &node() const { return *node_; }

    /**
     * Effective power limit: the breaker rating, further clamped by
     * any budget ceiling a region-level splitter has imposed.
     */
    util::Watts limit() const;

    /**
     * Impose (or move) a budget ceiling below the breaker rating. The
     * region budget splitter calls this on MSB root controllers each
     * coordination tick; the controller then runs its normal
     * escalation (throttle charging, then cap servers) against
     * min(breaker limit, ceiling). Infinity — the default — disables
     * the ceiling.
     */
    void setLimitCeiling(util::Watts ceiling) { limitCeiling_ = ceiling; }
    util::Watts limitCeiling() const { return limitCeiling_; }

    /** Run one monitoring/decision cycle. */
    void tick();

    /** Whether a charging event is in progress under this breaker. */
    bool chargingEventActive() const { return eventActive_; }

    /** Total server power cap currently imposed by this controller. */
    util::Watts totalCap() const { return capping_.totalCap(); }

    /** Largest cap this controller ever imposed (Table III metric). */
    util::Watts maxCapObserved() const { return maxCapObserved_; }

    /** Number of charging events seen. */
    int chargingEventCount() const { return eventCount_; }

  private:
    /**
     * Rebuild and return the per-rack charge snapshot the coordinator
     * consumes. The buffer is a reused member: the snapshot is taken
     * every tick while an event is active, and returning a reference
     * into the controller avoids a vector allocation per tick. Valid
     * until the next snapshotRacks() call.
     */
    const std::vector<RackChargeInfo> &snapshotRacks() const;
    util::Watts measuredItLoad() const;
    bool anyCharging() const;
    bool overridesInFlight() const;
    bool allChargingAtFloor() const;
    void issue(const std::vector<OverrideCommand> &commands);

    power::PowerNode *node_;
    std::vector<RackAgent *> agents_;
    std::unordered_map<int, RackAgent *> agentById_;  // detlint: allow(unordered-container) -- keyed lookup only, never iterated
    sim::EventQueue *queue_;
    ChargingCoordinator *coordinator_;
    ControllerConfig config_;
    CappingEngine capping_;

    bool eventActive_ = false;
    int eventCount_ = 0;
    /** Tick at which the current overload episode began (-1: none). */
    sim::Tick overloadSince_ = -1;
    /**
     * Event-start mean DOD per agent, parallel to agents_; empty when
     * no event is active (snapshots then report 0, like the paper's
     * controllers before their first estimate).
     */
    std::vector<double> initialDod_;
    /**
     * Ordered by rack id: overridesInFlight() walks it, and walks in
     * deterministic modules must never follow hash-bucket order.
     */
    std::map<int, sim::Tick> lastCommandTick_;
    util::Watts maxCapObserved_{0.0};
    /** Budget ceiling on limit(); infinity = no ceiling imposed. */
    util::Watts limitCeiling_{
        std::numeric_limits<double>::infinity()};
    /** Reused snapshot buffer (see snapshotRacks). */
    mutable std::vector<RackChargeInfo> snapshotBuf_;
};

/**
 * The control plane for one experiment: one controller per breaker in
 * the subtree rooted at the coordination node; the root controller
 * carries the ChargingCoordinator. Drives all controllers from one
 * periodic task.
 */
class ControlPlane
{
  public:
    ControlPlane(power::Topology &topology,
                 power::PowerNode &coordination_node,
                 sim::EventQueue &queue,
                 ChargingCoordinator *coordinator,
                 ControllerConfig config = {});

    /** Arm the periodic tick (first tick after one period). */
    void start();
    void stop();

    /** Tick all controllers once (root first). */
    void tickAll();

    BreakerController &rootController() { return *controllers_.front(); }
    const std::vector<std::unique_ptr<BreakerController>> &
    controllers() const
    {
        return controllers_;
    }

    RackAgent &agentFor(int rack_id);
    const std::vector<std::unique_ptr<RackAgent>> &agents() const
    {
        return agents_;
    }

    /** Sum of caps across all racks (deduplicated by rack). */
    util::Watts totalCap() const;

  private:
    void buildControllers(power::PowerNode &node,
                          ChargingCoordinator *coordinator);

    sim::EventQueue *queue_;
    ControllerConfig config_;
    std::vector<std::unique_ptr<RackAgent>> agents_;
    std::unordered_map<int, RackAgent *> agentById_;  // detlint: allow(unordered-container) -- keyed lookup only, never iterated
    std::vector<std::unique_ptr<BreakerController>> controllers_;
    std::unique_ptr<sim::PeriodicTask> task_;
};

} // namespace dcbatt::dynamo

#endif // DCBATT_DYNAMO_CONTROLLER_H_
