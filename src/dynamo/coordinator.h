/**
 * @file
 * Interface between the Dynamo control plane and a charging policy.
 *
 * The control plane (controllers mirroring the power hierarchy) owns
 * measurement, actuation latency, and server capping; *what* charging
 * current each rack should get is delegated to a ChargingCoordinator.
 * The paper's contribution (the coordinated priority-aware algorithm),
 * the global equal-rate baseline, and the "no coordination" local
 * chargers are all implementations of this interface (see src/core).
 */

#ifndef DCBATT_DYNAMO_COORDINATOR_H_
#define DCBATT_DYNAMO_COORDINATOR_H_

#include <string>
#include <vector>

#include "power/priority.h"
#include "util/units.h"

namespace dcbatt::dynamo {

/** Snapshot of one rack's charging state, as a controller sees it. */
struct RackChargeInfo
{
    int rackId = -1;
    power::Priority priority = power::Priority::P2;
    /** DOD estimated at the start of the charging event. */
    double initialDod = 0.0;
    /** Present CC setpoint (amperes; 0 when not charging). */
    util::Amperes setpoint{0.0};
    /** Present recharge wall power. */
    util::Watts rechargePower{0.0};
    /** Whether charging is currently postponed (held). */
    bool held = false;
    /** Present IT load. */
    util::Watts itLoad{0.0};
    /** Server power cap currently imposed on this rack. */
    util::Watts capAmount{0.0};
    bool charging = false;
};

/** One override instruction for a rack. */
struct OverrideCommand
{
    /** What the instruction does. */
    enum class Kind
    {
        SetCurrent,  ///< manual override of the CC setpoint
        Hold,        ///< postpone charging entirely (extension)
        Resume,      ///< release a previous hold
    };

    int rackId = -1;
    util::Amperes current{0.0};
    Kind kind = Kind::SetCurrent;
};

/** Policy deciding per-rack charging currents. */
class ChargingCoordinator
{
  public:
    virtual ~ChargingCoordinator() = default;

    /** Short policy name for logs/benches. */
    virtual std::string name() const = 0;

    /**
     * Whether this policy actually commands charging currents. When
     * false (the "no coordination" stand-in), the control plane must
     * not wait for charge-current relief before capping servers.
     */
    virtual bool managesCurrents() const { return true; }

    /**
     * Called once when a charging event begins (first tick on which
     * racks are observed charging). @p available_power is the breaker
     * headroom measured at that instant: limit - IT load.
     * @returns override commands to issue (may be empty).
     */
    virtual std::vector<OverrideCommand>
    planInitial(const std::vector<RackChargeInfo> &racks,
                util::Watts available_power) = 0;

    /**
     * Called every controller tick while racks are charging.
     * @p headroom is limit minus *total* measured power (IT +
     * recharge); negative means the breaker is overloaded.
     * @returns override commands to issue (may be empty).
     */
    virtual std::vector<OverrideCommand>
    onTick(const std::vector<RackChargeInfo> &racks,
           util::Watts headroom) = 0;
};

} // namespace dcbatt::dynamo

#endif // DCBATT_DYNAMO_COORDINATOR_H_
