#include "obs/chrome_trace_writer.h"

#include <cstdio>

#include "util/logging.h"

namespace dcbatt::obs {

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += util::strf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

} // namespace

std::string
ChromeTraceWriter::toJson(const std::vector<SpanEvent> &events)
{
    std::string out;
    out.reserve(events.size() * 96 + 64);
    out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const SpanEvent &event : events) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "{\"name\": ";
        appendJsonString(out, event.name);
        // Timestamps are microseconds in the trace format.
        out += util::strf(
            ", \"cat\": \"dcbatt\", \"ph\": \"X\", \"pid\": 1, "
            "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
            event.tid, static_cast<double>(event.startNs) / 1e3,
            static_cast<double>(event.durNs) / 1e3);
        if (!event.args.empty()) {
            out += ", \"args\": {";
            for (size_t i = 0; i < event.args.size(); ++i) {
                if (i)
                    out += ", ";
                appendJsonString(out, event.args[i].key);
                out += util::strf(": %.17g", event.args[i].value);
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

void
ChromeTraceWriter::writeFile(const std::string &path,
                             const std::vector<SpanEvent> &events)
{
    std::string doc = toJson(events);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        util::fatal(util::strf("obs: cannot open %s for writing",
                               path.c_str()));
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
writeChromeTrace(const std::string &path)
{
    ChromeTraceWriter::writeFile(path, drainSpans());
}

} // namespace dcbatt::obs
