/**
 * @file
 * Chrome-trace / Perfetto JSON export of recorded spans.
 *
 * Emits the JSON object format consumed by `chrome://tracing` and by
 * https://ui.perfetto.dev (drag the file in, or "Open trace file"):
 * complete events (`"ph": "X"`) with microsecond timestamps, one
 * track per recording thread. Span args appear under each slice's
 * `args` pane in the UI.
 *
 * Trace output is strictly opt-in (`--trace-out`), lands in its own
 * file, and never touches stdout — artifact byte-identity is
 * unaffected by tracing (obs_determinism_test and the CI golden job
 * pin this).
 */

#ifndef DCBATT_OBS_CHROME_TRACE_WRITER_H_
#define DCBATT_OBS_CHROME_TRACE_WRITER_H_

#include <string>
#include <vector>

#include "obs/trace_span.h"

namespace dcbatt::obs {

class ChromeTraceWriter
{
  public:
    /** Render @p events as a Chrome trace JSON document. */
    static std::string toJson(const std::vector<SpanEvent> &events);

    /** Write toJson(events) to @p path (fatal on I/O error). */
    static void writeFile(const std::string &path,
                          const std::vector<SpanEvent> &events);
};

/** drainSpans() straight into @p path. */
void writeChromeTrace(const std::string &path);

} // namespace dcbatt::obs

#endif // DCBATT_OBS_CHROME_TRACE_WRITER_H_
