#include "obs/crash_bundle.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/logging.h"

namespace dcbatt::obs {

namespace {

struct CrashState
{
    util::Mutex mutex;
    std::string dir DCBATT_GUARDED_BY(mutex);
    size_t eventTail DCBATT_GUARDED_BY(mutex) = 256;
    std::map<std::string, std::string> context
        DCBATT_GUARDED_BY(mutex);
};

CrashState &
state()
{
    static CrashState *s = new CrashState();
    return *s;
}

thread_local std::function<double()> t_sim_time;

/** Reentrancy latch: a failure inside the dump must not recurse. */
thread_local bool t_dumping = false;

void
crashSink(const util::CheckFailure &failure)
{
    if (t_dumping)
        return;
    t_dumping = true;
    writeCrashBundle(failure);
    t_dumping = false;
}

/** mkdir -p without <filesystem> (this runs on the failure path). */
bool
makeDirs(const std::string &path)
{
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial.push_back(path[i]);
            continue;
        }
        if (!partial.empty()
            && mkdir(partial.c_str(), 0755) != 0
            && errno != EEXIST) {
            return false;
        }
        if (i < path.size())
            partial.push_back('/');
    }
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return true;
}

void
appendJsonString(std::string &out, const std::string &text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += util::strf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

} // namespace

void
setCrashBundleDir(std::string dir)
{
    CrashState &s = state();
    {
        util::MutexLock lock(s.mutex);
        s.dir = std::move(dir);
    }
    if (crashBundleArmed()) {
        // The bundle's event ring needs content regardless of
        // --events-out; the per-scope ring keeps memory bounded.
        setEventLoggingEnabled(true);
        util::setCheckFailureSink(&crashSink);
    } else {
        util::setCheckFailureSink(nullptr);
    }
}

std::string
crashBundleDir()
{
    CrashState &s = state();
    util::MutexLock lock(s.mutex);
    return s.dir;
}

bool
crashBundleArmed()
{
    return !crashBundleDir().empty();
}

void
setCrashBundleEventTail(size_t n)
{
    CrashState &s = state();
    util::MutexLock lock(s.mutex);
    s.eventTail = n;
}

void
setCrashContext(const std::string &key, const std::string &value)
{
    CrashState &s = state();
    util::MutexLock lock(s.mutex);
    s.context[key] = value;
}

void
clearCrashContext()
{
    CrashState &s = state();
    util::MutexLock lock(s.mutex);
    s.context.clear();
}

SimTimeGuard::SimTimeGuard(std::function<double()> provider)
    : previous_(std::move(t_sim_time))
{
    t_sim_time = std::move(provider);
}

SimTimeGuard::~SimTimeGuard()
{
    t_sim_time = std::move(previous_);
}

std::string
writeCrashBundle(const util::CheckFailure &failure)
{
    std::string dir;
    size_t tail;
    std::map<std::string, std::string> context;
    {
        CrashState &s = state();
        util::MutexLock lock(s.mutex);
        dir = s.dir;
        tail = s.eventTail;
        context = s.context;
    }
    if (dir.empty())
        return "";
    if (!makeDirs(dir)) {
        std::fprintf(stderr,
                     "[obs] crash bundle: cannot create %s: %s\n",
                     dir.c_str(), std::strerror(errno));
        return "";
    }

    double sim_time = t_sim_time ? t_sim_time() : -1.0;
    std::vector<EventRecord> events = lastEvents(tail);
    size_t dropped = droppedEventCount();

    std::string manifest = "{\n";
    manifest += util::strf("  \"schema\": \"%s\",\n",
                           kCrashBundleSchema);
    manifest += "  \"failure\": {";
    manifest += util::strf("\"kind\": \"%s\", ",
                           util::toString(failure.kind));
    manifest += "\"file\": ";
    appendJsonString(manifest, failure.file ? failure.file : "");
    manifest += util::strf(", \"line\": %d, \"condition\": ",
                           failure.line);
    appendJsonString(manifest,
                     failure.condition ? failure.condition : "");
    manifest += ", \"function\": ";
    appendJsonString(manifest,
                     failure.function ? failure.function : "");
    manifest += ", \"message\": ";
    appendJsonString(manifest, failure.message);
    manifest += "},\n";
    manifest += util::strf("  \"sim_time_s\": %.17g,\n", sim_time);
    manifest += "  \"scope\": ";
    appendJsonString(manifest, currentRunScope());
    manifest += ",\n  \"context\": {";
    bool first = true;
    for (const auto &[key, value] : context) {
        manifest += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(manifest, key);
        manifest += ": ";
        appendJsonString(manifest, value);
    }
    manifest += first ? "},\n" : "\n  },\n";
    manifest += util::strf(
        "  \"events\": %llu,\n  \"events_dropped\": %llu,\n",
        static_cast<unsigned long long>(events.size()),
        static_cast<unsigned long long>(dropped));
    manifest += "  \"files\": [\"failure.txt\", \"events.jsonl\", "
                "\"metrics.json\"]\n}\n";

    bool ok = writeFile(dir + "/manifest.json", manifest);
    ok = writeFile(dir + "/failure.txt", failure.describe() + "\n")
        && ok;
    ok = writeFile(dir + "/events.jsonl",
                   eventsToJsonl(events, dropped))
        && ok;
    ok = writeFile(dir + "/metrics.json",
                   snapshotMetrics().toJson())
        && ok;
    if (!ok) {
        std::fprintf(stderr,
                     "[obs] crash bundle: write into %s failed\n",
                     dir.c_str());
        return "";
    }
    std::fprintf(stderr, "[obs] crash bundle written: %s\n",
                 dir.c_str());
    return dir;
}

} // namespace dcbatt::obs
