/**
 * @file
 * Post-mortem crash bundles.
 *
 * When a DCBATT_REQUIRE / DCBATT_ASSERT / invariant-audit failure
 * fires with a crash-bundle directory armed, the observability layer
 * dumps everything an offline triage needs *before* the process
 * aborts (or a test handler unwinds):
 *
 *   <dir>/manifest.json  — schema kCrashBundleSchema: the failing
 *                          check (kind/file/line/condition/message),
 *                          current sim time, the crash-context map
 *                          (active config, RNG substream identifiers,
 *                          run scope), event/drop counts
 *   <dir>/failure.txt    — CheckFailure::describe(), one line
 *   <dir>/events.jsonl   — the last-N ring of logged events
 *   <dir>/metrics.json   — full metrics registry snapshot
 *
 * Read bundles with tools/postmortem_inspect.py.
 *
 * Arming (setCrashBundleDir) installs the util::setCheckFailureSink
 * hook and force-enables event logging so the ring has content; it is
 * a side channel like every other obs sink — stdout artifacts do not
 * change. Engines contribute triage context:
 *  - setCrashContext(key, value): process-wide key/value notes
 *    (policy, limits, seeds, shard substreams) written verbatim into
 *    the manifest;
 *  - SimTimeGuard: a thread-local "what is sim-now" provider, so the
 *    manifest can stamp the simulation clock of the failing thread.
 */

#ifndef DCBATT_OBS_CRASH_BUNDLE_H_
#define DCBATT_OBS_CRASH_BUNDLE_H_

#include <functional>
#include <string>

#include "util/check.h"

namespace dcbatt::obs {

/** Schema tag of manifest.json. */
inline constexpr const char *kCrashBundleSchema =
    "dcbatt-crash-bundle-v1";

/**
 * Arm crash bundles into @p dir (created on demand, parents too); an
 * empty string disarms. Arming enables event logging.
 */
void setCrashBundleDir(std::string dir);

/** The armed directory ("" when disarmed). */
std::string crashBundleDir();

bool crashBundleArmed();

/** Events kept in the bundle's last-N ring (default 256). */
void setCrashBundleEventTail(size_t n);

/**
 * Record a triage note for the manifest (last write per key wins).
 * Cheap but mutex-guarded: call at run setup, not per step.
 */
void setCrashContext(const std::string &key, const std::string &value);

/** Drop all triage notes. */
void clearCrashContext();

/**
 * Thread-local sim-time provider for the manifest's `sim_time_s`
 * field (-1 when no provider is installed on the failing thread).
 * Nests; the innermost guard wins.
 */
class SimTimeGuard
{
  public:
    explicit SimTimeGuard(std::function<double()> provider);
    ~SimTimeGuard();

    SimTimeGuard(const SimTimeGuard &) = delete;
    SimTimeGuard &operator=(const SimTimeGuard &) = delete;

  private:
    std::function<double()> previous_;
};

/**
 * Write a bundle for @p failure into the armed directory now.
 * Returns the directory written, or "" if disarmed or the write
 * failed (never throws — it runs inside the failure path). Exposed
 * for tests; normal operation goes through the check-failure sink.
 */
std::string writeCrashBundle(const util::CheckFailure &failure);

} // namespace dcbatt::obs

#endif // DCBATT_OBS_CRASH_BUNDLE_H_
