#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>

#include "util/annotations.h"
#include "util/logging.h"

namespace dcbatt::obs {

namespace detail {

std::atomic<bool> g_event_logging{false};

/**
 * One scope's journal. The mutex is effectively uncontended (a scope
 * has one serial owner at a time); it exists so a crash-bundle dump
 * on one thread can read another scope's tail safely.
 */
struct ScopeBuffer
{
    /** Immutable after registration (set under the registry lock). */
    std::string name;
    size_t capacity = 0;
    util::Mutex mutex;
    std::deque<EventRecord> events DCBATT_GUARDED_BY(mutex);
    uint64_t nextSeq DCBATT_GUARDED_BY(mutex) = 0;
    uint64_t dropped DCBATT_GUARDED_BY(mutex) = 0;
};

} // namespace detail

namespace {

struct EventLogState
{
    util::Mutex mutex;
    /** Ordered by name: snapshots iterate in merge order for free. */
    std::map<std::string, std::unique_ptr<detail::ScopeBuffer>,
             std::less<>>
        scopes DCBATT_GUARDED_BY(mutex);
    size_t capacityPerScope DCBATT_GUARDED_BY(mutex) = 65536;
};

EventLogState &
state()
{
    // Leaked like the metrics registry: scope frames cached in
    // thread-local storage may outlive main().
    static EventLogState *s = new EventLogState();
    return *s;
}

detail::ScopeBuffer &
scopeBuffer(std::string_view name)
{
    EventLogState &s = state();
    util::MutexLock lock(s.mutex);
    auto it = s.scopes.find(name);
    if (it == s.scopes.end()) {
        auto buffer = std::make_unique<detail::ScopeBuffer>();
        buffer->name = std::string(name);
        buffer->capacity = s.capacityPerScope;
        it = s.scopes.emplace(std::string(name), std::move(buffer))
                 .first;
    }
    return *it->second;
}

/**
 * The calling thread's scope stack. Frame buffers resolve lazily so
 * a RunScope costs nothing until something is actually logged.
 */
struct ScopeFrame
{
    std::string name;
    detail::ScopeBuffer *buffer = nullptr;
};

thread_local std::vector<ScopeFrame> t_scopes;

ScopeFrame &
currentFrame()
{
    if (t_scopes.empty())
        t_scopes.push_back(ScopeFrame{});
    return t_scopes.back();
}

void
appendJsonString(std::string &out, std::string_view text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += util::strf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

} // namespace

void
setEventLoggingEnabled(bool on)
{
    detail::g_event_logging.store(on, std::memory_order_relaxed);
}

void
setEventCapacityPerScope(size_t capacity)
{
    if (capacity < 1)
        util::fatal("obs: event capacity per scope must be >= 1");
    EventLogState &s = state();
    util::MutexLock lock(s.mutex);
    s.capacityPerScope = capacity;
}

void
logEvent(double t_seconds, std::string_view type,
         std::initializer_list<EventNum> nums,
         std::initializer_list<EventStr> labels)
{
    if (!eventLoggingEnabled())
        return;
    ScopeFrame &frame = currentFrame();
    if (!frame.buffer)
        frame.buffer = &scopeBuffer(frame.name);
    detail::ScopeBuffer &buffer = *frame.buffer;

    EventRecord record;
    record.scope = buffer.name;
    record.tSeconds = t_seconds;
    record.type = std::string(type);
    record.nums.reserve(nums.size());
    for (const EventNum &field : nums)
        record.nums.emplace_back(field.key, field.value);
    record.labels.reserve(labels.size());
    for (const EventStr &field : labels)
        record.labels.emplace_back(field.key,
                                   std::string(field.value));

    util::MutexLock lock(buffer.mutex);
    record.seq = buffer.nextSeq++;
    buffer.events.push_back(std::move(record));
    // Per-scope ring: the drop point depends only on this scope's own
    // append count, never on thread placement.
    while (buffer.events.size() > buffer.capacity) {
        buffer.events.pop_front();
        ++buffer.dropped;
    }
}

RunScope::RunScope(std::string name)
{
    t_scopes.push_back(ScopeFrame{std::move(name), nullptr});
}

RunScope::~RunScope()
{
    t_scopes.pop_back();
}

std::string
currentRunScope()
{
    return t_scopes.empty() ? std::string() : t_scopes.back().name;
}

size_t
eventCount()
{
    EventLogState &s = state();
    util::MutexLock lock(s.mutex);
    size_t total = 0;
    for (const auto &entry : s.scopes) {
        detail::ScopeBuffer &buffer = *entry.second;
        util::MutexLock buffer_lock(buffer.mutex);
        total += buffer.events.size();
    }
    return total;
}

size_t
droppedEventCount()
{
    EventLogState &s = state();
    util::MutexLock lock(s.mutex);
    size_t total = 0;
    for (const auto &entry : s.scopes) {
        detail::ScopeBuffer &buffer = *entry.second;
        util::MutexLock buffer_lock(buffer.mutex);
        total += buffer.dropped;
    }
    return total;
}

std::vector<EventRecord>
snapshotEvents()
{
    EventLogState &s = state();
    util::MutexLock lock(s.mutex);
    std::vector<EventRecord> merged;
    // The scope map is name-ordered and each deque is seq-ordered, so
    // concatenation *is* the (scope, seq) sort.
    for (const auto &entry : s.scopes) {
        detail::ScopeBuffer &buffer = *entry.second;
        util::MutexLock buffer_lock(buffer.mutex);
        merged.insert(merged.end(), buffer.events.begin(),
                      buffer.events.end());
    }
    return merged;
}

std::vector<EventRecord>
lastEvents(size_t n)
{
    std::vector<EventRecord> merged = snapshotEvents();
    std::stable_sort(merged.begin(), merged.end(),
                     [](const EventRecord &a, const EventRecord &b) {
                         if (a.tSeconds != b.tSeconds)
                             return a.tSeconds < b.tSeconds;
                         if (a.scope != b.scope)
                             return a.scope < b.scope;
                         return a.seq < b.seq;
                     });
    if (merged.size() > n)
        merged.erase(merged.begin(),
                     merged.end() - static_cast<ptrdiff_t>(n));
    return merged;
}

std::string
eventsToJsonl(const std::vector<EventRecord> &events, size_t dropped)
{
    std::string out = util::strf(
        "{\"schema\": \"%s\", \"events\": %llu, \"dropped\": %llu}\n",
        kEventSchema, static_cast<unsigned long long>(events.size()),
        static_cast<unsigned long long>(dropped));
    for (const EventRecord &event : events) {
        out += "{\"scope\": ";
        appendJsonString(out, event.scope);
        out += util::strf(", \"seq\": %llu, \"t_s\": %.17g, "
                          "\"type\": ",
                          static_cast<unsigned long long>(event.seq),
                          event.tSeconds);
        appendJsonString(out, event.type);
        for (const auto &[key, value] : event.labels) {
            out += ", ";
            appendJsonString(out, key);
            out += ": ";
            appendJsonString(out, value);
        }
        for (const auto &[key, value] : event.nums) {
            out += ", ";
            appendJsonString(out, key);
            out += util::strf(": %.17g", value);
        }
        out += "}\n";
    }
    return out;
}

void
writeEventsJsonl(const std::string &path)
{
    std::string doc =
        eventsToJsonl(snapshotEvents(), droppedEventCount());
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        util::fatal(util::strf("obs: cannot open %s for writing",
                               path.c_str()));
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
clearEvents()
{
    EventLogState &s = state();
    util::MutexLock lock(s.mutex);
    // Buffers stay registered (thread-local frames cache pointers to
    // them); only their contents reset.
    for (auto &entry : s.scopes) {
        detail::ScopeBuffer &buffer = *entry.second;
        util::MutexLock buffer_lock(buffer.mutex);
        buffer.events.clear();
        buffer.nextSeq = 0;
        buffer.dropped = 0;
    }
}

} // namespace dcbatt::obs
