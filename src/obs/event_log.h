/**
 * @file
 * Structured, deterministic event log (the flight recorder's journal).
 *
 * Discrete simulation events — charge start/finish, CC→CV
 * transitions, cap/release commands, overload episode open/close,
 * invariant-audit results — are appended as small typed records and
 * exported as JSONL with a versioned schema (kEventSchema). The log
 * follows the same discipline as the metrics registry (metrics.h):
 * only simulation-deterministic payloads (sim-time seconds, counts,
 * config labels — never wall clock), merged into an order that is
 * *byte-identical at any `--threads` value*.
 *
 * Ordering model: every event belongs to a named *scope* (RunScope).
 * A scope is owned by one logical task — SweepRunner wraps each sweep
 * task in a RunScope whose name embeds the task index — so events
 * within a scope are appended serially and carry a dense per-scope
 * sequence number. The merged view sorts by (scope, seq), which is a
 * total order independent of which worker thread ran which task.
 * Events logged outside any RunScope land in the default scope ""
 * (fine for single-threaded drivers; multi-threaded emitters must use
 * RunScope or their relative order in "" is scheduling-dependent).
 *
 * Memory is bounded per scope: past the capacity the oldest events of
 * that scope are dropped (a ring), which is again deterministic
 * because the drop decision depends only on the scope's own append
 * count. The drop tally is reported in the export header.
 *
 * Cost model: when disabled (the default), logEvent is one relaxed
 * atomic load and a branch. When enabled, one uncontended per-scope
 * mutex acquisition plus the record append — event granularity, not
 * per-step granularity, except for the rare per-rack transitions the
 * engine emits.
 */

#ifndef DCBATT_OBS_EVENT_LOG_H_
#define DCBATT_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dcbatt::obs {

/** Schema tag stamped on the first line of every JSONL export. */
inline constexpr const char *kEventSchema = "dcbatt-events-v1";

/** One logged event. Fields keep their call-site order. */
struct EventRecord
{
    /** Owning RunScope name ("" = default scope). */
    std::string scope;
    /** Dense per-scope sequence number (the merge sort key). */
    uint64_t seq = 0;
    /** Simulation time in seconds (never wall clock). */
    double tSeconds = 0.0;
    /** Event type, e.g. "charge_start" (schema's discriminator). */
    std::string type;
    /** Numeric payload fields. */
    std::vector<std::pair<std::string, double>> nums;
    /** String payload fields (e.g. policy names). */
    std::vector<std::pair<std::string, std::string>> labels;

    bool operator==(const EventRecord &other) const = default;
};

/** Named numeric field at a logEvent call site. */
struct EventNum
{
    const char *key;
    double value;
};

/** Named string field at a logEvent call site. */
struct EventStr
{
    const char *key;
    std::string_view value;
};

namespace detail {
struct ScopeBuffer;
/** Hot-path gate; read through eventLoggingEnabled(). */
extern std::atomic<bool> g_event_logging;
} // namespace detail

/**
 * Runtime switch; off by default. Arming the crash-bundle path
 * (crash_bundle.h) also turns this on so bundles always carry the
 * event tail.
 */
void setEventLoggingEnabled(bool on);

inline bool
eventLoggingEnabled()
{
    return detail::g_event_logging.load(std::memory_order_relaxed);
}

/**
 * Per-scope ring capacity; oldest events past it are dropped.
 * Applies to scopes created after the call. Must be >= 1.
 */
void setEventCapacityPerScope(size_t capacity);

/**
 * Append one event to the calling thread's current scope at sim time
 * @p t_seconds. No-op when event logging is disabled. Reserved field
 * keys (used by the JSONL envelope): "scope", "seq", "t_s", "type".
 */
void logEvent(double t_seconds, std::string_view type,
              std::initializer_list<EventNum> nums = {},
              std::initializer_list<EventStr> labels = {});

/**
 * RAII scope label for the calling thread. Nests (inner scope wins);
 * the name also labels published time series (time_series_recorder.h)
 * and the crash-bundle context. Re-entering a name continues that
 * scope's sequence numbering.
 */
class RunScope
{
  public:
    explicit RunScope(std::string name);
    ~RunScope();

    RunScope(const RunScope &) = delete;
    RunScope &operator=(const RunScope &) = delete;
};

/** The calling thread's innermost scope name ("" outside any). */
std::string currentRunScope();

/** Total events currently buffered across all scopes. */
size_t eventCount();

/** Total events dropped by per-scope rings so far. */
size_t droppedEventCount();

/** Merged deterministic view: sorted by (scope, seq). */
std::vector<EventRecord> snapshotEvents();

/**
 * The @p n most recent events by (tSeconds, scope, seq) — the crash
 * bundle's "last-N ring", deterministic like every other view.
 */
std::vector<EventRecord> lastEvents(size_t n);

/** Render records as JSONL (header line first). Byte-stable. */
std::string eventsToJsonl(const std::vector<EventRecord> &events,
                          size_t dropped = 0);

/** Write snapshotEvents() as JSONL to @p path (fatal on I/O error). */
void writeEventsJsonl(const std::string &path);

/**
 * Drop all buffered events and reset every scope's sequence counter.
 * Callers must ensure no thread is concurrently logging (tests and
 * per-run scoping only).
 */
void clearEvents();

} // namespace dcbatt::obs

#endif // DCBATT_OBS_EVENT_LOG_H_
