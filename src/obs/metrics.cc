#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <memory>

#include "util/annotations.h"
#include "util/logging.h"

namespace dcbatt::obs {

namespace detail {

/**
 * One thread's slot array. Cells are atomics only so that snapshot()
 * may read them while the owner writes: the owner is the sole writer
 * (store of load+n), so increments are never lost, and cross-thread
 * visibility at snapshot time is handled by the registry mutex the
 * snapshot takes (quiescent callers see exact values).
 */
struct Shard
{
    std::array<std::atomic<uint64_t>, MetricsRegistry::kMaxSlots>
        slots{};
};

namespace {

/** Owner-side increment: plain add, no RMW contention. */
inline void
bump(std::atomic<uint64_t> &cell, uint64_t n)
{
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

} // namespace
} // namespace detail

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Registry internals
// ---------------------------------------------------------------------

struct MetricsRegistry::Impl
{
    struct Entry
    {
        MetricKind kind;
        /** First slot (counter: 1 slot; histogram: edges+1 slots). */
        size_t slot = 0;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable util::Mutex mutex;
    /** Ordered by name so snapshots iterate deterministically. */
    std::map<std::string, Entry, std::less<>> entries
        DCBATT_GUARDED_BY(mutex);
    size_t nextSlot DCBATT_GUARDED_BY(mutex) = 0;
    /** Shards of live threads. */
    std::vector<detail::Shard *> live DCBATT_GUARDED_BY(mutex);
    /** Accumulated totals of exited threads. */
    detail::Shard retired DCBATT_GUARDED_BY(mutex);
};

namespace {

/** Sum one slot across retired + live shards; registry lock held. */
uint64_t
slotTotalLocked(const MetricsRegistry::Impl &impl, size_t slot)
    DCBATT_REQUIRES(impl.mutex)
{
    uint64_t total =
        impl.retired.slots[slot].load(std::memory_order_relaxed);
    for (const detail::Shard *shard : impl.live)
        total += shard->slots[slot].load(std::memory_order_relaxed);
    return total;
}

} // namespace

namespace {

/**
 * The calling thread's shard, created on first use and retired (its
 * totals folded into the registry) when the thread exits.
 */
struct ThreadShardOwner
{
    detail::Shard *shard = nullptr;
    ~ThreadShardOwner()
    {
        if (shard)
            MetricsRegistry::instance().retireShard(shard);
    }
};

thread_local ThreadShardOwner t_shard_owner;

inline detail::Shard &
threadShard()
{
    if (!t_shard_owner.shard)
        t_shard_owner.shard = MetricsRegistry::instance().adoptShard();
    return *t_shard_owner.shard;
}

} // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: worker threads may retire shards after main
    // returns; the registry must outlive every thread.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

detail::Shard *
MetricsRegistry::adoptShard()
{
    auto *shard = new detail::Shard();
    util::MutexLock lock(impl_->mutex);
    impl_->live.push_back(shard);
    return shard;
}

void
MetricsRegistry::retireShard(detail::Shard *shard)
{
    util::MutexLock lock(impl_->mutex);
    for (size_t i = 0; i < kMaxSlots; ++i) {
        uint64_t v = shard->slots[i].load(std::memory_order_relaxed);
        if (v)
            detail::bump(impl_->retired.slots[i], v);
    }
    std::erase(impl_->live, shard);
    delete shard;
}

uint64_t
MetricsRegistry::slotTotal(size_t slot) const
{
    util::MutexLock lock(impl_->mutex);
    return slotTotalLocked(*impl_, slot);
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it != impl_->entries.end()) {
        if (it->second.kind != MetricKind::Counter) {
            util::fatal(util::strf(
                "obs: metric '%.*s' already registered as %s",
                static_cast<int>(name.size()), name.data(),
                toString(it->second.kind)));
        }
        return *it->second.counter;
    }
    if (impl_->nextSlot + 1 > kMaxSlots)
        util::fatal("obs: metric slot space exhausted");
    Impl::Entry entry;
    entry.kind = MetricKind::Counter;
    entry.slot = impl_->nextSlot++;
    entry.counter.reset(new Counter(entry.slot));
    auto [pos, inserted] =
        impl_->entries.emplace(std::string(name), std::move(entry));
    (void)inserted;
    return *pos->second.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it != impl_->entries.end()) {
        if (it->second.kind != MetricKind::Gauge) {
            util::fatal(util::strf(
                "obs: metric '%.*s' already registered as %s",
                static_cast<int>(name.size()), name.data(),
                toString(it->second.kind)));
        }
        return *it->second.gauge;
    }
    Impl::Entry entry;
    entry.kind = MetricKind::Gauge;
    entry.gauge.reset(new Gauge());
    auto [pos, inserted] =
        impl_->entries.emplace(std::string(name), std::move(entry));
    (void)inserted;
    return *pos->second.gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<double> edges)
{
    for (size_t i = 1; i < edges.size(); ++i) {
        if (!(edges[i - 1] < edges[i])) {
            util::fatal(util::strf(
                "obs: histogram '%.*s' edges not strictly ascending",
                static_cast<int>(name.size()), name.data()));
        }
    }
    util::MutexLock lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it != impl_->entries.end()) {
        if (it->second.kind != MetricKind::Histogram
            || it->second.histogram->edges_ != edges) {
            util::fatal(util::strf(
                "obs: metric '%.*s' already registered with a "
                "different kind or edge set",
                static_cast<int>(name.size()), name.data()));
        }
        return *it->second.histogram;
    }
    size_t buckets = edges.size() + 1;
    if (impl_->nextSlot + buckets > kMaxSlots)
        util::fatal("obs: metric slot space exhausted");
    Impl::Entry entry;
    entry.kind = MetricKind::Histogram;
    entry.slot = impl_->nextSlot;
    impl_->nextSlot += buckets;
    entry.histogram.reset(
        new Histogram(entry.slot, std::move(edges)));
    auto [pos, inserted] =
        impl_->entries.emplace(std::string(name), std::move(entry));
    (void)inserted;
    return *pos->second.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    util::MutexLock lock(impl_->mutex);
    MetricsSnapshot snap;
    snap.metrics.reserve(impl_->entries.size());
    for (const auto &[name, entry] : impl_->entries) {
        MetricValue value;
        value.name = name;
        value.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::Counter:
            value.count = slotTotalLocked(*impl_, entry.slot);
            break;
          case MetricKind::Gauge:
            value.gauge = entry.gauge->value();
            break;
          case MetricKind::Histogram: {
            value.bucketEdges = entry.histogram->edges_;
            size_t buckets = value.bucketEdges.size() + 1;
            value.bucketCounts.resize(buckets);
            for (size_t b = 0; b < buckets; ++b) {
                value.bucketCounts[b] =
                    slotTotalLocked(*impl_, entry.slot + b);
                value.count += value.bucketCounts[b];
            }
            break;
          }
        }
        snap.metrics.push_back(std::move(value));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    util::MutexLock lock(impl_->mutex);
    for (size_t i = 0; i < kMaxSlots; ++i) {
        impl_->retired.slots[i].store(0, std::memory_order_relaxed);
        for (detail::Shard *shard : impl_->live)
            shard->slots[i].store(0, std::memory_order_relaxed);
    }
    for (auto &[name, entry] : impl_->entries) {
        if (entry.kind == MetricKind::Gauge)
            entry.gauge->set(0.0);
    }
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

void
Counter::add(uint64_t n)
{
    detail::bump(threadShard().slots[slot_], n);
}

uint64_t
Counter::value() const
{
    return MetricsRegistry::instance().slotTotal(slot_);
}

void
Histogram::observe(double x)
{
    // First edge >= x; an observation exactly at an edge lands in
    // that edge's bucket ((prev, edge] semantics).
    size_t bucket = static_cast<size_t>(
        std::lower_bound(edges_.begin(), edges_.end(), x)
        - edges_.begin());
    detail::bump(threadShard().slots[baseSlot_ + bucket], 1);
}

// ---------------------------------------------------------------------
// Snapshot rendering
// ---------------------------------------------------------------------

const MetricValue *
MetricsSnapshot::find(std::string_view name) const
{
    for (const MetricValue &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

namespace {

void
appendJsonString(std::string &out, std::string_view s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += util::strf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out;
    out += "{\n  \"schema\": \"dcbatt-metrics-v1\",\n  \"metrics\": {";
    bool first = true;
    for (const MetricValue &m : metrics) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, m.name);
        out += util::strf(": {\"kind\": \"%s\"", toString(m.kind));
        switch (m.kind) {
          case MetricKind::Counter:
            out += util::strf(
                ", \"value\": %llu",
                static_cast<unsigned long long>(m.count));
            break;
          case MetricKind::Gauge:
            out += util::strf(", \"value\": %.17g", m.gauge);
            break;
          case MetricKind::Histogram: {
            out += util::strf(
                ", \"total\": %llu, \"edges\": [",
                static_cast<unsigned long long>(m.count));
            for (size_t i = 0; i < m.bucketEdges.size(); ++i) {
                out += util::strf("%s%.17g", i ? ", " : "",
                                  m.bucketEdges[i]);
            }
            out += "], \"counts\": [";
            for (size_t i = 0; i < m.bucketCounts.size(); ++i) {
                out += util::strf(
                    "%s%llu", i ? ", " : "",
                    static_cast<unsigned long long>(
                        m.bucketCounts[i]));
            }
            out += "]";
            break;
          }
        }
        out += "}";
    }
    out += "\n  }\n}\n";
    return out;
}

// ---------------------------------------------------------------------
// Free functions
// ---------------------------------------------------------------------

Counter &
counter(std::string_view name)
{
    return MetricsRegistry::instance().counter(name);
}

Gauge &
gauge(std::string_view name)
{
    return MetricsRegistry::instance().gauge(name);
}

Histogram &
histogram(std::string_view name, std::vector<double> edges)
{
    return MetricsRegistry::instance().histogram(name,
                                                 std::move(edges));
}

MetricsSnapshot
snapshotMetrics()
{
    return MetricsRegistry::instance().snapshot();
}

void
writeMetricsJson(const std::string &path)
{
    std::string doc = snapshotMetrics().toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        util::fatal(util::strf("obs: cannot open %s for writing",
                               path.c_str()));
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace dcbatt::obs
