/**
 * @file
 * Lock-cheap process-wide metrics registry.
 *
 * Named counters, gauges, and fixed-bucket histograms. Counter and
 * histogram increments land in *per-thread shards* — the owning
 * thread is the only writer of its cells (plain relaxed store of
 * load+n), so the hot path is a TLS lookup plus one cache-line write,
 * with no contended atomics and no locks. A snapshot merges the
 * shards of every thread that ever incremented (live or exited) by
 * integer summation, which is commutative and associative: the merged
 * values are *identical at any thread count* for the same work, and
 * the snapshot lists metrics sorted by name — deterministic output,
 * byte for byte.
 *
 * Determinism contract (DESIGN.md §11): metrics record only
 * simulation-deterministic quantities — event counts, sim-time
 * durations, cache hit/miss tallies. Wall-clock timing never enters
 * the registry; it belongs to TraceSpan (trace_span.h), whose output
 * is opt-in and kept out of every artifact. This is what lets CI
 * assert that metrics snapshots are bit-identical across `--threads`
 * values.
 *
 * Registration (obs::counter("name") etc.) takes the registry mutex
 * and is meant to be amortized through a function-local static at the
 * call site — the DCBATT_COUNT macros below do exactly that.
 */

#ifndef DCBATT_OBS_METRICS_H_
#define DCBATT_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcbatt::obs {

enum class MetricKind { Counter, Gauge, Histogram };

const char *toString(MetricKind kind);

/** One merged metric in a snapshot. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** Counter value (Counter) or total observation count (Histogram). */
    uint64_t count = 0;
    /** Gauge value (Gauge only). */
    double gauge = 0.0;
    /** Histogram bucket upper edges (ascending; Histogram only). */
    std::vector<double> bucketEdges;
    /**
     * Per-bucket counts, size bucketEdges.size() + 1: bucket i counts
     * observations in (edge[i-1], edge[i]]; the final bucket is the
     * overflow (> last edge).
     */
    std::vector<uint64_t> bucketCounts;

    bool operator==(const MetricValue &other) const = default;
};

/** Deterministic merged view of the registry, sorted by name. */
struct MetricsSnapshot
{
    std::vector<MetricValue> metrics;

    /** The metric named @p name, or nullptr. */
    const MetricValue *find(std::string_view name) const;

    /**
     * Stable JSON rendering (sorted keys, %.17g doubles): equal
     * snapshots produce byte-equal documents.
     */
    std::string toJson() const;

    bool operator==(const MetricsSnapshot &other) const = default;
};

namespace detail {
struct Shard;
} // namespace detail

/** Cheap handle: increments go to the calling thread's shard. */
class Counter
{
  public:
    void add(uint64_t n = 1);
    /** Merged value across all shards (takes the registry lock). */
    uint64_t value() const;

  private:
    friend class MetricsRegistry;
    explicit Counter(size_t slot) : slot_(slot) {}
    size_t slot_;
};

/** Last-write-wins double; set it from one thread at a time. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    /**
     * Monotonic raise: keep the larger of the current value and @p v.
     * Max is commutative and associative, so concurrent raisers
     * converge to the same final value under any thread interleaving —
     * use this (never set()) when several threads report the same
     * gauge, or the snapshot would depend on write order.
     */
    void
    setMax(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (cur < v
               && !value_.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    Gauge() = default;
    std::atomic<double> value_{0.0};
};

/** Fixed-bucket histogram; bucket i is (edge[i-1], edge[i]]. */
class Histogram
{
  public:
    void observe(double x);

  private:
    friend class MetricsRegistry;
    Histogram(size_t base_slot, std::vector<double> edges)
        : baseSlot_(base_slot), edges_(std::move(edges))
    {
    }
    size_t baseSlot_;
    std::vector<double> edges_;
};

/**
 * The process-wide registry. A leaked singleton: it outlives every
 * thread, so shard retirement on thread exit is always safe.
 */
class MetricsRegistry
{
  public:
    /** Shard capacity; registering past it is fatal. */
    static constexpr size_t kMaxSlots = 4096;

    static MetricsRegistry &instance();

    /**
     * Register-or-fetch by name. Fatal on a kind mismatch with an
     * earlier registration (or different histogram edges). Returned
     * references are stable for the process lifetime.
     */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name,
                         std::vector<double> edges);

    /** Merge every shard; sorted by name, deterministic. */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every counter, gauge, and histogram. Callers must ensure
     * no thread is concurrently incrementing (tests and per-run
     * scoping only).
     */
    void reset();

    // Internal (Counter/Histogram/thread plumbing). Impl is named
    // here so metrics.cc helpers can carry thread-safety annotations
    // against its mutex.
    struct Impl;
    detail::Shard *adoptShard();
    void retireShard(detail::Shard *shard);
    uint64_t slotTotal(size_t slot) const;

  private:
    MetricsRegistry();
    Impl *impl_;
};

/** Convenience forwarders to MetricsRegistry::instance(). */
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(std::string_view name, std::vector<double> edges);

/** Snapshot the process registry. */
MetricsSnapshot snapshotMetrics();

/** Write snapshotMetrics().toJson() to @p path (fatal on I/O error). */
void writeMetricsJson(const std::string &path);

} // namespace dcbatt::obs

/**
 * Count one occurrence on the hot path: the registry lookup happens
 * once per call site (function-local static), the increment is a
 * thread-shard write.
 */
#define DCBATT_OBS_CONCAT2(a, b) a##b
#define DCBATT_OBS_CONCAT(a, b) DCBATT_OBS_CONCAT2(a, b)

#define DCBATT_COUNT(name) DCBATT_COUNT_N(name, 1)

#define DCBATT_COUNT_N(name, n)                                        \
    do {                                                               \
        static ::dcbatt::obs::Counter &dcbatt_obs_counter_ =           \
            ::dcbatt::obs::counter(name);                              \
        dcbatt_obs_counter_.add(                                       \
            static_cast<uint64_t>(n));                                 \
    } while (0)

#endif // DCBATT_OBS_METRICS_H_
