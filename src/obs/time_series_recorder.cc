#include "obs/time_series_recorder.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <set>

#include "obs/event_log.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/logging.h"

namespace dcbatt::obs {

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesOptions options)
    : options_(options), cadence_(options.cadenceSeconds),
      nextSample_(0.0)
{
    DCBATT_REQUIRE(options.cadenceSeconds > 0.0,
                   "time-series cadence %g s must be positive",
                   options.cadenceSeconds);
    DCBATT_REQUIRE(options.maxSamples >= 2,
                   "time-series capacity %zu must be >= 2",
                   options.maxSamples);
}

void
TimeSeriesRecorder::addProbe(std::string name,
                             std::function<double()> probe)
{
    DCBATT_REQUIRE(!started_,
                   "probe '%s' added after sampling started",
                   name.c_str());
    DCBATT_REQUIRE(static_cast<bool>(probe),
                   "probe '%s' has no body", name.c_str());
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
    columns_.emplace_back();
}

void
TimeSeriesRecorder::sampleAt(double t_seconds)
{
    if (started_ && t_seconds < nextSample_)
        return;
    if (!started_) {
        started_ = true;
        size_t hint = std::min(options_.maxSamples,
                               static_cast<size_t>(1024));
        times_.reserve(hint);
        for (auto &column : columns_)
            column.reserve(hint);
    }

    if (times_.size() >= options_.maxSamples) {
        switch (options_.bound) {
          case TimeSeriesBound::Decimate: {
            // Keep samples 0, 2, 4, ... and double the cadence: the
            // tape still spans the whole run at half resolution.
            size_t kept = 0;
            for (size_t i = 0; i < times_.size(); i += 2, ++kept) {
                times_[kept] = times_[i];
                for (auto &column : columns_)
                    column[kept] = column[i];
            }
            times_.resize(kept);
            for (auto &column : columns_)
                column.resize(kept);
            cadence_ *= 2.0;
            break;
          }
          case TimeSeriesBound::Ring:
            times_.erase(times_.begin());
            for (auto &column : columns_)
                column.erase(column.begin());
            break;
        }
    }

    times_.push_back(t_seconds);
    for (size_t i = 0; i < probes_.size(); ++i)
        columns_[i].push_back(probes_[i]());
    nextSample_ = t_seconds + cadence_;
}

// ---------------------------------------------------------------------
// Process-wide arming and publication
// ---------------------------------------------------------------------

namespace {

/** One published tape (a recorder's columnar store, detached). */
struct PublishedSeries
{
    double cadence = 0.0;
    std::vector<std::string> names;
    std::vector<double> times;
    std::vector<std::vector<double>> columns;
};

struct TimeSeriesState
{
    util::Mutex mutex;
    TimeSeriesOptions armedOptions DCBATT_GUARDED_BY(mutex);
    /** Ordered by scope: exports iterate deterministically. */
    std::map<std::string, PublishedSeries> published
        DCBATT_GUARDED_BY(mutex);
    /** Publish count per base scope, for the #n suffixing. */
    std::map<std::string, unsigned> publishCounts
        DCBATT_GUARDED_BY(mutex);
};

std::atomic<bool> g_armed{false};

TimeSeriesState &
state()
{
    static TimeSeriesState *s = new TimeSeriesState();
    return *s;
}

} // namespace

void
armTimeSeries(TimeSeriesOptions options)
{
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);
    s.armedOptions = options;
    g_armed.store(true, std::memory_order_relaxed);
}

void
disarmTimeSeries()
{
    g_armed.store(false, std::memory_order_relaxed);
}

bool
timeSeriesArmed()
{
    return g_armed.load(std::memory_order_relaxed);
}

TimeSeriesOptions
armedTimeSeriesOptions()
{
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);
    return s.armedOptions;
}

void
publishTimeSeries(TimeSeriesRecorder recorder)
{
    PublishedSeries series;
    series.cadence = recorder.cadenceSeconds();
    series.names = recorder.probeNames();
    series.times.reserve(recorder.sampleCount());
    for (size_t i = 0; i < recorder.sampleCount(); ++i)
        series.times.push_back(recorder.timeAt(i));
    series.columns.resize(series.names.size());
    for (size_t p = 0; p < series.names.size(); ++p) {
        series.columns[p].reserve(recorder.sampleCount());
        for (size_t i = 0; i < recorder.sampleCount(); ++i)
            series.columns[p].push_back(recorder.valueAt(p, i));
    }

    std::string scope = currentRunScope();
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);
    unsigned n = ++s.publishCounts[scope];
    std::string key =
        n == 1 ? scope : scope + util::strf("#%u", n);
    s.published[key] = std::move(series);
}

size_t
publishedTimeSeriesCount()
{
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);
    return s.published.size();
}

std::string
timeSeriesToCsv()
{
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);

    // Union of probe names across tapes, sorted: one stable header
    // even when different engines record different probe sets.
    std::set<std::string> name_set;
    for (const auto &[scope, series] : s.published)
        name_set.insert(series.names.begin(), series.names.end());
    std::vector<std::string> header(name_set.begin(), name_set.end());

    std::string out = "scope,t_s";
    for (const std::string &name : header)
        out += "," + name;
    out += "\n";

    for (const auto &[scope, series] : s.published) {
        // Column index per header name for this tape (-1 = absent).
        std::vector<ptrdiff_t> remap(header.size(), -1);
        for (size_t h = 0; h < header.size(); ++h) {
            auto it = std::find(series.names.begin(),
                                series.names.end(), header[h]);
            if (it != series.names.end())
                remap[h] = it - series.names.begin();
        }
        for (size_t i = 0; i < series.times.size(); ++i) {
            out += scope;
            out += util::strf(",%.17g", series.times[i]);
            for (size_t h = 0; h < header.size(); ++h) {
                out += ",";
                if (remap[h] >= 0) {
                    out += util::strf(
                        "%.17g",
                        series.columns[static_cast<size_t>(
                            remap[h])][i]);
                }
            }
            out += "\n";
        }
    }
    return out;
}

std::string
timeSeriesToJson()
{
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);

    std::string out = util::strf(
        "{\n  \"schema\": \"%s\",\n  \"runs\": [", kTimeSeriesSchema);
    bool first_run = true;
    for (const auto &[scope, series] : s.published) {
        out += first_run ? "\n    {" : ",\n    {";
        first_run = false;
        out += "\"scope\": \"" + scope + "\"";
        out += util::strf(", \"cadence_s\": %.17g", series.cadence);
        out += ", \"columns\": [\"t_s\"";
        for (const std::string &name : series.names)
            out += ", \"" + name + "\"";
        out += "], \"t_s\": [";
        for (size_t i = 0; i < series.times.size(); ++i) {
            out += util::strf("%s%.17g", i ? ", " : "",
                              series.times[i]);
        }
        out += "], \"values\": [";
        for (size_t p = 0; p < series.columns.size(); ++p) {
            out += p ? ", [" : "[";
            for (size_t i = 0; i < series.columns[p].size(); ++i) {
                out += util::strf("%s%.17g", i ? ", " : "",
                                  series.columns[p][i]);
            }
            out += "]";
        }
        out += "]}";
    }
    out += "\n  ]\n}\n";
    return out;
}

void
writeTimeSeries(const std::string &path)
{
    bool json = path.size() >= 5
        && path.compare(path.size() - 5, 5, ".json") == 0;
    std::string doc = json ? timeSeriesToJson() : timeSeriesToCsv();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        util::fatal(util::strf("obs: cannot open %s for writing",
                               path.c_str()));
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
clearTimeSeries()
{
    TimeSeriesState &s = state();
    util::MutexLock lock(s.mutex);
    s.published.clear();
    s.publishCounts.clear();
}

} // namespace dcbatt::obs
