/**
 * @file
 * Deterministic time-series telemetry (the flight recorder's tape).
 *
 * A TimeSeriesRecorder samples a set of registered probes — cheap
 * `double()` callables over live simulation state — on a *sim-time*
 * cadence into a columnar store. Because the sampling schedule is
 * driven by simulation time (sampleAt is called from the physics
 * loop), the recorded samples are a pure function of the simulated
 * work: byte-identical at any `--threads` value, exactly like the
 * metrics registry and event log. Wall clock never appears here.
 *
 * Memory is bounded by `maxSamples` with two policies:
 *  - Decimate (default): on overflow every second sample is dropped
 *    and the cadence doubles — the whole run stays covered at halving
 *    resolution (right for post-mortem archaeology over unknown-length
 *    runs);
 *  - Ring: oldest samples are dropped — the tail stays at full
 *    resolution (right when only the latest window matters).
 * Both policies decide drops from the sample count alone, so bounding
 * never breaks determinism.
 *
 * Process-wide plumbing: drivers *arm* recording (armTimeSeries);
 * the charging-event engine checks timeSeriesArmed(), builds a
 * recorder over its probes, and publishes the finished tape under the
 * thread's current RunScope name. writeTimeSeries renders every
 * published tape as CSV (or compact JSON for `.json` paths) sorted by
 * scope — deterministic output for `--timeseries-out`.
 */

#ifndef DCBATT_OBS_TIME_SERIES_RECORDER_H_
#define DCBATT_OBS_TIME_SERIES_RECORDER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace dcbatt::obs {

/** Schema tag stamped on the JSON export. */
inline constexpr const char *kTimeSeriesSchema =
    "dcbatt-timeseries-v1";

/** Bounded-memory policy once maxSamples is reached. */
enum class TimeSeriesBound
{
    /** Drop every 2nd sample, double the cadence (keeps coverage). */
    Decimate,
    /** Drop the oldest sample (keeps the tail at full resolution). */
    Ring,
};

struct TimeSeriesOptions
{
    /** Sampling cadence in *simulation* seconds. */
    double cadenceSeconds = 30.0;
    /** Sample capacity; reaching it triggers the bound policy. */
    size_t maxSamples = 4096;
    TimeSeriesBound bound = TimeSeriesBound::Decimate;
};

/** Columnar store of probe samples on a sim-time cadence. */
class TimeSeriesRecorder
{
  public:
    explicit TimeSeriesRecorder(TimeSeriesOptions options = {});

    /** Register a probe. Call before the first sampleAt. */
    void addProbe(std::string name, std::function<double()> probe);

    /**
     * Sample every probe iff @p t_seconds has reached the next
     * cadence point (the first call always samples). Must be called
     * with non-decreasing times.
     */
    void sampleAt(double t_seconds);

    size_t probeCount() const { return names_.size(); }
    const std::vector<std::string> &probeNames() const
    {
        return names_;
    }
    size_t sampleCount() const { return times_.size(); }
    /** Cadence now in effect (doubled by each decimation). */
    double cadenceSeconds() const { return cadence_; }
    double timeAt(size_t sample) const { return times_[sample]; }
    double valueAt(size_t probe, size_t sample) const
    {
        return columns_[probe][sample];
    }

  private:
    TimeSeriesOptions options_;
    double cadence_;
    double nextSample_;
    bool started_ = false;
    std::vector<std::string> names_;
    std::vector<std::function<double()>> probes_;
    std::vector<double> times_;
    /** One column per probe, aligned with times_. */
    std::vector<std::vector<double>> columns_;
};

/**
 * Arm process-wide recording with @p options. Instrumented engines
 * (core::runChargingEvent, fig12) build recorders only while armed,
 * so the default run pays nothing.
 */
void armTimeSeries(TimeSeriesOptions options = {});
void disarmTimeSeries();
bool timeSeriesArmed();
/** Options the recorder was armed with (defaults when disarmed). */
TimeSeriesOptions armedTimeSeriesOptions();

/**
 * Publish a finished tape under the calling thread's RunScope name.
 * A scope that publishes more than once gets `#2`, `#3`, ...
 * suffixes — deterministic, since a scope has one serial owner.
 */
void publishTimeSeries(TimeSeriesRecorder recorder);

/** Number of published tapes. */
size_t publishedTimeSeriesCount();

/**
 * CSV rendering of every published tape: header
 * `scope,t_s,<union of probe names, sorted>`, rows grouped by scope.
 * Byte-stable for identical recordings.
 */
std::string timeSeriesToCsv();

/** Compact columnar JSON rendering (schema kTimeSeriesSchema). */
std::string timeSeriesToJson();

/**
 * Write published tapes to @p path: JSON when the path ends in
 * `.json`, CSV otherwise (fatal on I/O error).
 */
void writeTimeSeries(const std::string &path);

/** Drop every published tape (tests and per-run scoping only). */
void clearTimeSeries();

} // namespace dcbatt::obs

#endif // DCBATT_OBS_TIME_SERIES_RECORDER_H_
