#include "obs/trace_span.h"

#include <atomic>
#include <chrono>

#include "util/annotations.h"

namespace dcbatt::obs {

namespace {

std::atomic<bool> g_tracing{false};

/** Buffer of completed spans; leaked so late thread exits stay safe. */
struct SpanBuffer
{
    util::Mutex mutex;
    std::vector<SpanEvent> events DCBATT_GUARDED_BY(mutex);
};

SpanBuffer &
buffer()
{
    static SpanBuffer *buf = new SpanBuffer();
    return *buf;
}

/** ns since the first span-related call in the process. */
uint64_t
nowNs()
{
    // Span timing is the one sanctioned wall-clock consumer: span
    // output is opt-in and never reaches an artifact (DESIGN.md §11).
    using clock = std::chrono::steady_clock;  // detlint: allow(wall-clock) -- span-only timing, kept out of every artifact
    static const clock::time_point epoch = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - epoch)
            .count());
}

uint32_t
threadId()
{
    static std::atomic<uint32_t> next{0};
    thread_local uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

void
setTracingEnabled(bool on)
{
    g_tracing.store(on, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return g_tracing.load(std::memory_order_relaxed);
}

std::vector<SpanEvent>
drainSpans()
{
    SpanBuffer &buf = buffer();
    util::MutexLock lock(buf.mutex);
    std::vector<SpanEvent> out = std::move(buf.events);
    buf.events.clear();
    return out;
}

void
clearSpans()
{
    SpanBuffer &buf = buffer();
    util::MutexLock lock(buf.mutex);
    buf.events.clear();
}

TraceSpan::TraceSpan(const char *name) : name_(name)
{
    if (!tracingEnabled())
        return;
    armed_ = true;
    startNs_ = nowNs();
}

TraceSpan::~TraceSpan()
{
    if (!armed_)
        return;
    SpanEvent event;
    event.name = name_;
    event.tid = threadId();
    event.startNs = startNs_;
    event.durNs = nowNs() - startNs_;
    event.args = std::move(args_);
    SpanBuffer &buf = buffer();
    util::MutexLock lock(buf.mutex);
    buf.events.push_back(std::move(event));
}

void
TraceSpan::arg(const char *key, double value)
{
    if (!armed_)
        return;
    args_.push_back({key, value});
}

} // namespace dcbatt::obs
