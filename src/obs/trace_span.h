/**
 * @file
 * Scoped wall-clock tracing spans.
 *
 * A TraceSpan records one named begin/end interval on the calling
 * thread into an in-memory buffer, later exported as a Chrome
 * `chrome://tracing` / Perfetto JSON document (chrome_trace_writer.h).
 * Spans carry *wall-clock* time and exist for performance archaeology
 * — they are the designated home for anything nondeterministic, which
 * is exactly why they are banned from the metrics registry (see the
 * determinism contract in metrics.h and DESIGN.md §11).
 *
 * Cost model:
 *  - compile-out: building with DCBATT_OBS=OFF defines
 *    DCBATT_OBS_ENABLED=0 and the DCBATT_SPAN macros expand to
 *    nothing at all;
 *  - runtime-off (the default): one relaxed atomic load and a
 *    predictable branch per span site;
 *  - runtime-on (--trace-out): a clock read at entry and a mutex push
 *    at exit. Span sites therefore live at event/phase granularity
 *    (a charging event, an AOR walk, a trace generation), never
 *    inside per-step physics loops.
 */

#ifndef DCBATT_OBS_TRACE_SPAN_H_
#define DCBATT_OBS_TRACE_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

#ifndef DCBATT_OBS_ENABLED
#define DCBATT_OBS_ENABLED 1
#endif

namespace dcbatt::obs {

/** One key/value annotation attached to a span. */
struct SpanArg
{
    std::string key;
    double value = 0.0;

    bool operator==(const SpanArg &other) const = default;
};

/** One completed span, on the process trace clock (ns since start). */
struct SpanEvent
{
    std::string name;
    /** Small sequential id of the recording thread. */
    uint32_t tid = 0;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    std::vector<SpanArg> args;
};

/** Runtime switch; off by default. Cheap to query. */
void setTracingEnabled(bool on);
bool tracingEnabled();

/**
 * Move out every span recorded so far (oldest first) and clear the
 * buffer. Call after worker threads have quiesced to get a complete
 * picture; spans still open are not included.
 */
std::vector<SpanEvent> drainSpans();

/** Drop all recorded spans. */
void clearSpans();

/** RAII span: records [construction, destruction) when tracing is on. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric annotation (no-op when tracing is off). */
    void arg(const char *key, double value);

  private:
    const char *name_;
    uint64_t startNs_ = 0;
    bool armed_ = false;
    std::vector<SpanArg> args_;
};

/** No-op stand-in the disabled macros expand to. */
struct NoopSpan
{
    void arg(const char *, double) {}
};

} // namespace dcbatt::obs

#ifndef DCBATT_OBS_CONCAT
#define DCBATT_OBS_CONCAT2(a, b) a##b
#define DCBATT_OBS_CONCAT(a, b) DCBATT_OBS_CONCAT2(a, b)
#endif

#if DCBATT_OBS_ENABLED
/** Anonymous scoped span. */
#define DCBATT_SPAN(name)                                              \
    ::dcbatt::obs::TraceSpan DCBATT_OBS_CONCAT(dcbatt_obs_span_,       \
                                               __LINE__)(name)
/** Named scoped span, for attaching args: var.arg("k", v). */
#define DCBATT_SPAN_NAMED(var, name)                                   \
    ::dcbatt::obs::TraceSpan var(name)
#else
#define DCBATT_SPAN(name) static_cast<void>(0)
#define DCBATT_SPAN_NAMED(var, name) ::dcbatt::obs::NoopSpan var
#endif

#endif // DCBATT_OBS_TRACE_SPAN_H_
