#include "power/breaker.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace dcbatt::power {

using util::Seconds;
using util::Watts;

CircuitBreaker::CircuitBreaker(std::string name, Watts limit,
                               BreakerTripCurve curve)
    : name_(std::move(name)), limit_(limit), curve_(curve)
{
    DCBATT_REQUIRE(limit_.value() > 0.0,
                   "breaker %s: nonpositive limit %g W", name_.c_str(),
                   limit_.value());
    DCBATT_REQUIRE(curve_.referenceOverload > 0.0
                       && curve_.referenceTime.value() > 0.0
                       && curve_.coolingTime.value() > 0.0,
                   "breaker %s: invalid trip curve", name_.c_str());
}

void
CircuitBreaker::setLimit(Watts limit)
{
    DCBATT_REQUIRE(limit.value() > 0.0,
                   "breaker %s: nonpositive limit %g W", name_.c_str(),
                   limit.value());
    limit_ = limit;
}

void
CircuitBreaker::resetTrip()
{
    tripped_ = false;
    accumulator_ = 0.0;
}

double
CircuitBreaker::tripThreshold() const
{
    return curve_.referenceOverload * curve_.referenceTime.value();
}

bool
CircuitBreaker::observe(Watts load, Seconds dt)
{
    if (tripped_ || dt.value() <= 0.0)
        return false;
    double overload = load / limit_ - 1.0;
    if (overload > 0.0) {
        accumulator_ += overload * dt.value();
    } else {
        double decay = std::exp(-dt.value()
                                / curve_.coolingTime.value());
        accumulator_ *= decay;
    }
    DCBATT_ASSERT(accumulator_ >= 0.0,
                  "breaker %s: negative thermal accumulator %g",
                  name_.c_str(), accumulator_);
    if (accumulator_ >= tripThreshold()) {
        tripped_ = true;
        util::warn(util::strf("circuit breaker %s TRIPPED "
                              "(load %.1f kW, limit %.1f kW)",
                              name_.c_str(), util::toKilowatts(load),
                              util::toKilowatts(limit_)));
        return true;
    }
    return false;
}

} // namespace dcbatt::power
