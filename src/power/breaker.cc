#include "power/breaker.h"

#include <cmath>

#include "util/logging.h"

namespace dcbatt::power {

using util::Seconds;
using util::Watts;

CircuitBreaker::CircuitBreaker(std::string name, Watts limit,
                               BreakerTripCurve curve)
    : name_(std::move(name)), limit_(limit), curve_(curve)
{
    if (limit_.value() <= 0.0)
        util::panic(util::strf("CircuitBreaker %s: nonpositive limit",
                               name_.c_str()));
}

void
CircuitBreaker::setLimit(Watts limit)
{
    if (limit.value() <= 0.0)
        util::panic(util::strf("CircuitBreaker %s: nonpositive limit",
                               name_.c_str()));
    limit_ = limit;
}

void
CircuitBreaker::resetTrip()
{
    tripped_ = false;
    accumulator_ = 0.0;
}

double
CircuitBreaker::tripThreshold() const
{
    return curve_.referenceOverload * curve_.referenceTime.value();
}

bool
CircuitBreaker::observe(Watts load, Seconds dt)
{
    if (tripped_ || dt.value() <= 0.0)
        return false;
    double overload = load / limit_ - 1.0;
    if (overload > 0.0) {
        accumulator_ += overload * dt.value();
    } else {
        double decay = std::exp(-dt.value()
                                / curve_.coolingTime.value());
        accumulator_ *= decay;
    }
    if (accumulator_ >= tripThreshold()) {
        tripped_ = true;
        util::warn(util::strf("circuit breaker %s TRIPPED "
                              "(load %.1f kW, limit %.1f kW)",
                              name_.c_str(), util::toKilowatts(load),
                              util::toKilowatts(limit_)));
        return true;
    }
    return false;
}

} // namespace dcbatt::power
