/**
 * @file
 * Circuit-breaker model with an inverse-time (thermal) trip curve.
 *
 * The paper's motivating hazard is that "a 30 % power overdraw at a
 * circuit breaker for more than 30 seconds could trip it". We model
 * the standard thermal trip behaviour behind that number: an overload
 * accumulator integrates the fractional overdraw over time and decays
 * while the breaker runs below its limit; the breaker trips when the
 * accumulator exceeds a threshold calibrated so a constant 30 %
 * overdraw trips in 30 s (larger overdraws trip proportionally
 * faster, small overdraws take longer — an inverse-time curve).
 */

#ifndef DCBATT_POWER_BREAKER_H_
#define DCBATT_POWER_BREAKER_H_

#include <string>

#include "util/units.h"

namespace dcbatt::power {

/** Parameters of the thermal trip model. */
struct BreakerTripCurve
{
    /** Overdraw fraction of the calibration point (0.3 = 30 %). */
    double referenceOverload = 0.3;
    /** Time at the calibration overdraw before tripping. */
    util::Seconds referenceTime{30.0};
    /** Accumulator decay time constant while under the limit. */
    util::Seconds coolingTime{60.0};
};

/** One circuit breaker (MSB, SB, or RPP level). */
class CircuitBreaker
{
  public:
    CircuitBreaker(std::string name, util::Watts limit,
                   BreakerTripCurve curve = {});

    const std::string &name() const { return name_; }
    util::Watts limit() const { return limit_; }
    void setLimit(util::Watts limit);

    bool tripped() const { return tripped_; }

    /** Close a tripped breaker again (repair complete). */
    void resetTrip();

    /**
     * Account for @p load flowing through the breaker for @p dt.
     * Updates the thermal accumulator and trips if it crosses the
     * threshold. @returns true if this call tripped the breaker.
     */
    bool observe(util::Watts load, util::Seconds dt);

    /** Whether a given load exceeds the limit. */
    bool overloaded(util::Watts load) const { return load > limit_; }

    /** Headroom below the limit (negative when overloaded). */
    util::Watts available(util::Watts load) const
    {
        return limit_ - load;
    }

    /** Current thermal accumulator in overload-fraction-seconds. */
    double thermalAccumulator() const { return accumulator_; }
    /** Trip threshold in overload-fraction-seconds. */
    double tripThreshold() const;

  private:
    std::string name_;
    util::Watts limit_;
    BreakerTripCurve curve_;
    double accumulator_ = 0.0;
    bool tripped_ = false;
};

} // namespace dcbatt::power

#endif // DCBATT_POWER_BREAKER_H_
