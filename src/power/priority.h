/**
 * @file
 * Rack service priorities.
 *
 * The paper categorizes racks into three priorities based on the
 * services they run: P1 (high; stateful services such as databases),
 * P2 (normal; e.g. web tier), P3 (low; stateless/batch). Priority
 * drives both the charging-time SLA (Table II) and the order in which
 * the coordinated algorithm grants or revokes charging current.
 */

#ifndef DCBATT_POWER_PRIORITY_H_
#define DCBATT_POWER_PRIORITY_H_

#include <array>

namespace dcbatt::power {

/** Service priority of a rack; lower enum value = more important. */
enum class Priority : int
{
    P1 = 0,  ///< high (stateful, e.g. database shards)
    P2 = 1,  ///< normal
    P3 = 2,  ///< low (stateless / batch)
};

inline constexpr std::array<Priority, 3> kAllPriorities{
    Priority::P1, Priority::P2, Priority::P3};

constexpr const char *
toString(Priority p)
{
    switch (p) {
      case Priority::P1:
        return "P1";
      case Priority::P2:
        return "P2";
      case Priority::P3:
        return "P3";
    }
    return "?";
}

/** Index into per-priority arrays. */
constexpr int
priorityIndex(Priority p)
{
    return static_cast<int>(p);
}

} // namespace dcbatt::power

#endif // DCBATT_POWER_PRIORITY_H_
