#include "power/rack.h"

#include "util/check.h"

namespace dcbatt::power {

using util::Seconds;
using util::Watts;

Rack::Rack(int id, std::string name, Priority priority,
           std::shared_ptr<const battery::ChargerPolicy> policy,
           battery::BbuParams params)
    : id_(id), name_(std::move(name)), priority_(priority),
      shelf_(std::move(policy), params)
{
}

void
Rack::setCapAmount(Watts amount)
{
    // A meaningfully negative cap is a control-plane bug, not a value
    // to clamp silently; tolerate only floating-point dust from the
    // capping engine's ledger arithmetic.
    DCBATT_REQUIRE(amount.value() >= -1e-6,
                   "negative cap %g W on rack %s", amount.value(),
                   name_.c_str());
    capAmount_ = util::max(amount, Watts(0.0));
}

Watts
Rack::itLoad() const
{
    return util::max(itDemand_ - capAmount_, Watts(0.0));
}

Watts
Rack::inputPower() const
{
    if (!inputPowerOn())
        return Watts(0.0);
    return itLoad() + shelf_.rechargePower();
}

void
Rack::step(Seconds dt)
{
    Watts carried = shelf_.step(dt, itLoad());
    if (!inputPowerOn() && carried + Watts(1e-6) < itLoad())
        sawOutage_ = true;
}

} // namespace dcbatt::power
