#include "power/rack.h"

#include "power/topology.h"
#include "util/check.h"

namespace dcbatt::power {

using util::Seconds;
using util::Watts;

Rack::Rack(int id, std::string name, Priority priority,
           std::shared_ptr<const battery::ChargerPolicy> policy,
           battery::BbuParams params)
    : id_(id), name_(std::move(name)), priority_(priority),
      shelf_(std::move(policy), params)
{
    // Shelf-level mutations (overrides, holds, failures, input-power
    // transitions) change this rack's draw; propagate them to the
    // cached topology aggregates. Racks live behind stable unique_ptrs
    // in Topology, so capturing `this` is safe.
    shelf_.setDirtyCallback([this] { markPowerDirty(); });
}

void
Rack::markPowerDirty()
{
    if (node_)
        node_->invalidatePower();
}

void
Rack::setCapAmount(Watts amount)
{
    // A meaningfully negative cap is a control-plane bug, not a value
    // to clamp silently; tolerate only floating-point dust from the
    // capping engine's ledger arithmetic.
    DCBATT_REQUIRE(amount.value() >= -1e-6,
                   "negative cap %g W on rack %s", amount.value(),
                   name_.c_str());
    Watts clamped = util::max(amount, Watts(0.0));
    if (clamped.value() != capAmount_.value()) {
        capAmount_ = clamped;
        markPowerDirty();
    }
}

void
Rack::step(Seconds dt)
{
    // Charging progress changes the recharge draw, so an active step
    // dirties the cached aggregates. Evaluated before stepping: the
    // step on which the last BBU completes must still invalidate.
    bool was_active = inputPowerOn() && shelf_.anyCharging();
    Watts carried = shelf_.step(dt, itLoad());
    if (!inputPowerOn() && carried + Watts(1e-6) < itLoad())
        sawOutage_ = true;
    if (was_active)
        markPowerDirty();
}

} // namespace dcbatt::power
