/**
 * @file
 * One server rack: IT load, priority, and the battery power shelf.
 *
 * A rack's input power draw is the sum of its IT load (while powered)
 * and its BBU recharge power. During an open transition the rack's
 * input power is cut: the IT load rides on the shelf's batteries; if
 * they run dry the rack browns out (a power outage for its servers).
 * Server power capping (Dynamo's last line of defense) is modelled as
 * a cap on the IT load.
 */

#ifndef DCBATT_POWER_RACK_H_
#define DCBATT_POWER_RACK_H_

#include <cstddef>
#include <memory>
#include <string>

#include "battery/power_shelf.h"
#include "power/priority.h"
#include "util/units.h"

namespace dcbatt::power {

class PowerNode;

/** A rack (leaf of the power hierarchy). */
class Rack
{
  public:
    /**
     * @param id      dense index, unique within a topology.
     * @param name    human-readable name ("msb0.sb1.rpp2.rack03").
     * @param priority service priority (drives the charging SLA).
     * @param policy  local charger policy shared across the fleet.
     * @param params  BBU calibration.
     */
    Rack(int id, std::string name, Priority priority,
         std::shared_ptr<const battery::ChargerPolicy> policy,
         battery::BbuParams params = {});

    int id() const { return id_; }
    const std::string &name() const { return name_; }
    Priority priority() const { return priority_; }
    void setPriority(Priority p) { priority_ = p; }

    battery::PowerShelf &shelf() { return shelf_; }
    const battery::PowerShelf &shelf() const { return shelf_; }

    /** Demand the servers would draw uncapped (trace-driven). */
    util::Watts itDemand() const { return itDemand_; }
    void
    setItDemand(util::Watts demand)
    {
        if (demand.value() != itDemand_.value()) {
            itDemand_ = demand;
            markPowerDirty();
        }
    }

    /** Power cap currently imposed by the control plane (0 = none). */
    util::Watts capAmount() const { return capAmount_; }
    /**
     * Cap the IT load by @p amount below demand. A meaningfully
     * negative amount is a precondition violation; sub-microwatt
     * negative dust is clamped to zero.
     */
    void setCapAmount(util::Watts amount);
    void
    uncap()
    {
        if (capAmount_.value() != 0.0) {
            capAmount_ = util::Watts(0.0);
            markPowerDirty();
        }
    }

    /** IT load after capping (what the servers actually draw). */
    util::Watts itLoad() const
    {
        return util::max(itDemand_ - capAmount_, util::Watts(0.0));
    }

    bool inputPowerOn() const { return shelf_.inputPowerOn(); }
    void loseInputPower() { shelf_.loseInputPower(); }
    void restoreInputPower() { shelf_.restoreInputPower(); }

    /**
     * Total power drawn from the rack's tap box: IT load plus battery
     * recharge power while input power is on; zero while it is off
     * (the load is on batteries).
     */
    util::Watts inputPower() const
    {
        if (!inputPowerOn())
            return util::Watts(0.0);
        return itLoad() + shelf_.rechargePower();
    }

    /** Battery recharge component of the input power. */
    util::Watts rechargePower() const
    {
        return inputPowerOn() ? shelf_.rechargePower()
                              : util::Watts(0.0);
    }

    /**
     * Advance rack state by dt: battery discharge while input is off
     * (tracking delivered vs demanded energy for brown-out detection),
     * charging dynamics while on.
     */
    void step(util::Seconds dt);

    /**
     * Batched stepping, part 1: stage this rack's lockstep charge lane
     * if the shelf's next step qualifies (see PowerShelf). A rack that
     * stages a lane must complete the step with applyBatchLane()
     * instead of step().
     */
    battery::BatchLaneKind
    tryExportBatchLane(util::Seconds dt,
                       battery::BatchChargeStage &stage)
    {
        return shelf_.tryExportBatchLane(dt, stage);
    }

    /**
     * Batched stepping, part 2: adopt the lane outputs and perform
     * step()'s bookkeeping for that path. Eligibility implies input
     * power is on (no outage check) and charging was active (the
     * cached power aggregates above this rack go stale).
     */
    void
    applyBatchLane(battery::BatchLaneKind kind, std::size_t lane,
                   const battery::BatchChargeStage &stage)
    {
        shelf_.applyBatchLane(kind, lane, stage);
        markPowerDirty();
    }

    /**
     * Whether the servers lost power at any point (batteries ran out
     * during an input-power loss). Sticky until clearOutageFlag().
     */
    bool sawOutage() const { return sawOutage_; }
    void clearOutageFlag() { sawOutage_ = false; }

    /**
     * Wire up the topology leaf node this rack feeds; every mutation
     * of the rack's power draw then invalidates the cached aggregates
     * on the leaf-to-root path. A free-standing rack (tests) runs
     * without one.
     */
    void attachNode(PowerNode *node) { node_ = node; }

  private:
    /** Invalidate the cached power sums above this rack (if wired). */
    void markPowerDirty();

    int id_;
    std::string name_;
    Priority priority_;
    battery::PowerShelf shelf_;
    PowerNode *node_ = nullptr;
    util::Watts itDemand_{0.0};
    util::Watts capAmount_{0.0};
    bool sawOutage_ = false;
};

} // namespace dcbatt::power

#endif // DCBATT_POWER_RACK_H_
