#include "power/region_spec.h"

#include "util/logging.h"

namespace dcbatt::power {

int
suiteCount(const RegionSpec &spec)
{
    return spec.buildings * spec.suitesPerBuilding;
}

int
msbsPerSuite(const RegionSpec &spec)
{
    int suites = suiteCount(spec);
    return (spec.msbs + suites - 1) / suites;
}

int
suiteOfMsb(const RegionSpec &spec, int msb)
{
    return msb / msbsPerSuite(spec);
}

int
buildingOfMsb(const RegionSpec &spec, int msb)
{
    return suiteOfMsb(spec, msb) / spec.suitesPerBuilding;
}

std::string
msbName(const RegionSpec &spec, int msb)
{
    return util::strf("%s/b%d/s%d/msb%03d", spec.name.c_str(),
                      buildingOfMsb(spec, msb), suiteOfMsb(spec, msb),
                      msb);
}

util::Watts
effectiveRegionBudget(const RegionSpec &spec)
{
    if (spec.regionBudget.value() > 0.0)
        return spec.regionBudget;
    return spec.msbLimit * (0.85 * static_cast<double>(spec.msbs));
}

std::vector<Priority>
msbPriorityMix(const RegionSpec &spec)
{
    int p1 = spec.p1RacksPerMsb >= 0 ? spec.p1RacksPerMsb
                                     : spec.racksPerMsb / 4;
    int p3 = spec.p3RacksPerMsb >= 0 ? spec.p3RacksPerMsb
                                     : spec.racksPerMsb / 4;
    int p2 = spec.racksPerMsb - p1 - p3;
    if (p1 < 0 || p3 < 0 || p2 < 0) {
        util::fatal(util::strf(
            "RegionSpec: priority mix %d+%d exceeds %d racks per MSB",
            p1, p3, spec.racksPerMsb));
    }
    return makePriorityMix(p1, p2, p3);
}

TopologySpec
msbTopologySpec(const RegionSpec &spec, int msb)
{
    TopologySpec topo;
    topo.rootKind = NodeKind::Msb;
    topo.rootName = msbName(spec, msb);
    topo.sbsPerMsb = spec.sbsPerMsb;
    topo.racksPerRpp = spec.racksPerRpp;
    int racks_per_sb =
        (spec.racksPerMsb + spec.sbsPerMsb - 1) / spec.sbsPerMsb;
    topo.rppsPerSb =
        (racks_per_sb + spec.racksPerRpp - 1) / spec.racksPerRpp;
    topo.totalRacks = spec.racksPerMsb;
    topo.msbLimit = spec.msbLimit;
    // As in the paper's single-MSB experiments, intra-MSB levels are
    // unconstrained; the binding limits are the MSB breaker and the
    // suite/building/region budgets the splitter enforces from above.
    topo.sbLimit = util::megawatts(50.0);
    topo.rppLimit = util::megawatts(50.0);
    topo.priorities = msbPriorityMix(spec);
    topo.bbuParams = spec.bbuParams;
    return topo;
}

void
validateRegionSpec(const RegionSpec &spec)
{
    if (spec.buildings <= 0 || spec.suitesPerBuilding <= 0)
        util::fatal("RegionSpec: need at least one building/suite");
    if (spec.msbs <= 0 || spec.racksPerMsb <= 0)
        util::fatal("RegionSpec: need at least one MSB and rack");
    if (spec.sbsPerMsb <= 0 || spec.racksPerRpp <= 0)
        util::fatal("RegionSpec: bad SB/RPP fan-out");
    if (spec.physicsStep.value() <= 0.0
        || spec.traceStep.value() <= 0.0)
        util::fatal("RegionSpec: nonpositive step");
    if (spec.coordinationPeriod.value() < spec.physicsStep.value())
        util::fatal(
            "RegionSpec: coordination period below physics step");
    if (spec.duration < spec.coordinationPeriod)
        util::fatal("RegionSpec: duration below coordination period");
    if (spec.targetMeanDod <= 0.0 || spec.targetMeanDod > 1.0)
        util::fatal("RegionSpec: target mean DOD outside (0, 1]");
    if (spec.windowSamples == 0 || spec.maxResidentWindows == 0)
        util::fatal("RegionSpec: streaming window knobs must be >= 1");
    if (spec.firstOutage.value() < 0.0
        || spec.outageStagger.value() < 0.0)
        util::fatal("RegionSpec: negative outage schedule");
    (void)msbPriorityMix(spec);  // validates the mix counts
}

} // namespace dcbatt::power
