/**
 * @file
 * Region-scale fleet shape: dozens of MSBs under suites and buildings.
 *
 * The paper's experiments stop at one MSB (316 racks); the region spec
 * describes the rest of the Fig. 1 hierarchy so the simulator can
 * light up a production-scale fleet: `msbs` MSB subtrees, distributed
 * round-robin-by-block across `buildings x suitesPerBuilding` suites,
 * each MSB carrying `racksPerMsb` racks with the usual SB/RPP fan-out.
 *
 * Power constraints exist at three levels above the MSB breaker:
 * per-suite and per-building feeder caps, and a single region-wide
 * budget (the oversubscription knob — by default 85% of the sum of
 * MSB ratings, so the region cannot simultaneously run every MSB at
 * its breaker limit and the budget splitter has real work to do).
 *
 * The spec is pure shape/ratings data: trace generation and event
 * scheduling parameters ride along as plain fields, interpreted by
 * sim::runRegion (the builder cannot depend on trace/, which sits
 * above power/ in the layer stack).
 */

#ifndef DCBATT_POWER_REGION_SPEC_H_
#define DCBATT_POWER_REGION_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "battery/bbu_params.h"
#include "power/topology.h"
#include "util/units.h"

namespace dcbatt::power {

/** Shape, ratings, and run parameters of a region-scale simulation. */
struct RegionSpec
{
    std::string name = "region0";

    // --- fleet shape -------------------------------------------------
    int buildings = 1;
    int suitesPerBuilding = 4;
    /** Total MSBs in the region (assigned to suites in blocks). */
    int msbs = 50;
    int racksPerMsb = 300;
    /** SB/RPP fan-out inside each MSB subtree. */
    int sbsPerMsb = 2;
    int racksPerRpp = 16;

    /**
     * Per-MSB priority mix as rack counts (p1 + p3 <= racksPerMsb;
     * the remainder is P2). Defaults approximate the paper's mix.
     */
    int p1RacksPerMsb = -1;  ///< -1: racksPerMsb / 4
    int p3RacksPerMsb = -1;  ///< -1: racksPerMsb / 4

    // --- ratings and budgets -----------------------------------------
    util::Watts msbLimit = util::megawatts(2.5);
    /** Suite feeder cap (infinity: unconstrained). */
    util::Watts suiteLimit{std::numeric_limits<double>::infinity()};
    /** Building feeder cap (infinity: unconstrained). */
    util::Watts buildingLimit{std::numeric_limits<double>::infinity()};
    /**
     * Region-wide power budget the splitter divides across MSBs each
     * coordination tick. <= 0 selects the default oversubscribed
     * budget: 85% of msbs * msbLimit.
     */
    util::Watts regionBudget{0.0};

    // --- time base ----------------------------------------------------
    uint64_t seed = 42;
    util::Seconds duration = util::hours(24.0);
    util::Seconds physicsStep{1.0};
    /** Budget-splitter cadence (the cross-MSB coordination tick). */
    util::Seconds coordinationPeriod{60.0};

    // --- load model (per MSB; see sim::runRegion) --------------------
    util::Seconds traceStep{3.0};
    util::Watts msbAggregateMean = util::megawatts(2.0);
    util::Watts msbAggregateAmplitude = util::megawatts(0.15);

    // --- outage campaign ---------------------------------------------
    /** Open transition of MSB 0 starts here. */
    util::Seconds firstOutage = util::hours(2.0);
    /** MSB i's open transition starts i * stagger later. */
    util::Seconds outageStagger = util::minutes(10.0);
    /** Sets the open-transition length (as in ChargingEventConfig). */
    double targetMeanDod = 0.5;
    /** Explicit open-transition length (overrides targetMeanDod). */
    std::optional<util::Seconds> openTransitionLength;

    // --- streaming-trace paging --------------------------------------
    size_t windowSamples = 1200;
    size_t maxResidentWindows = 2;

    /** Optional per-MSB physical-invariant auditing interval. */
    std::optional<util::Seconds> auditInterval;

    battery::BbuParams bbuParams;
};

/** Total suites in the region. */
int suiteCount(const RegionSpec &spec);

/** MSBs per suite (last suite may be short). */
int msbsPerSuite(const RegionSpec &spec);

/** Suite index (region-global) of MSB @p msb. */
int suiteOfMsb(const RegionSpec &spec, int msb);

/** Building index of MSB @p msb. */
int buildingOfMsb(const RegionSpec &spec, int msb);

/** Canonical MSB name: "<region>/b<building>/s<suite>/msb<index>". */
std::string msbName(const RegionSpec &spec, int msb);

/** The region budget with the <= 0 default resolved. */
util::Watts effectiveRegionBudget(const RegionSpec &spec);

/** Per-MSB priority mix with the -1 defaults resolved. */
std::vector<Priority> msbPriorityMix(const RegionSpec &spec);

/** Topology spec for one MSB subtree of the region. */
TopologySpec msbTopologySpec(const RegionSpec &spec, int msb);

/** Panics (util::fatal) unless the spec is internally consistent. */
void validateRegionSpec(const RegionSpec &spec);

} // namespace dcbatt::power

#endif // DCBATT_POWER_REGION_SPEC_H_
