#include "power/topology.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace dcbatt::power {

using util::Seconds;
using util::Watts;

const char *
toString(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Site:
        return "site";
      case NodeKind::Building:
        return "building";
      case NodeKind::Suite:
        return "suite";
      case NodeKind::Msb:
        return "msb";
      case NodeKind::Sb:
        return "sb";
      case NodeKind::Rpp:
        return "rpp";
      case NodeKind::RackNode:
        return "rack";
    }
    return "?";
}

PowerNode::PowerNode(std::string name, NodeKind kind)
    : name_(std::move(name)), kind_(kind)
{
}

void
PowerNode::addChild(PowerNode *child)
{
    DCBATT_REQUIRE(child != nullptr, "null child under node %s",
                   name_.c_str());
    DCBATT_REQUIRE(child->parent_ == nullptr,
                   "node %s already has parent %s", child->name_.c_str(),
                   child->parent_->name_.c_str());
    child->parent_ = this;
    children_.push_back(child);
}

void
PowerNode::attachBreaker(std::unique_ptr<CircuitBreaker> breaker)
{
    breaker_ = std::move(breaker);
}

void
PowerNode::attachRack(Rack *rack)
{
    DCBATT_REQUIRE(kind_ == NodeKind::RackNode,
                   "cannot attach a rack to %s node %s",
                   toString(kind_), name_.c_str());
    rack_ = rack;
}

Watts
PowerNode::inputPower() const
{
    if (powerCacheValid_)
        return Watts(cachedPowerW_);
    Watts total(0.0);
    if (rack_) {
        total = rack_->inputPower();
    } else {
        for (const PowerNode *child : children_)
            total += child->inputPower();
    }
    cachedPowerW_ = total.value();
    powerCacheValid_ = true;
    return total;
}

void
PowerNode::refreshPowerCache() const
{
    if (powerCacheValid_)
        return;
    Watts total(0.0);
    if (rack_) {
        total = rack_->inputPower();
    } else {
        // Children summed in child order, exactly like the recursive
        // path, so the cached value is bit-identical to it.
        for (const PowerNode *child : children_) {
            DCBATT_ASSERT(child->powerCacheValid_,
                          "stale child %s under %s in bottom-up refresh",
                          child->name_.c_str(), name_.c_str());
            total += Watts(child->cachedPowerW_);
        }
    }
    cachedPowerW_ = total.value();
    powerCacheValid_ = true;
}

void
PowerNode::invalidatePower()
{
    for (PowerNode *node = this; node && node->powerCacheValid_;
         node = node->parent_) {
        node->powerCacheValid_ = false;
    }
}

std::vector<Rack *>
PowerNode::racksBelow() const
{
    std::vector<Rack *> result;
    if (rack_) {
        result.push_back(rack_);
        return result;
    }
    for (const PowerNode *child : children_) {
        auto sub = child->racksBelow();
        result.insert(result.end(), sub.begin(), sub.end());
    }
    return result;
}

std::vector<Priority>
makePriorityMix(int p1, int p2, int p3)
{
    // Largest-remainder proportional interleave: walk an accumulator
    // per class and always emit the class that is most "behind". This
    // spreads every priority evenly through the rack order without
    // randomness.
    int total = p1 + p2 + p3;
    std::vector<Priority> out;
    out.reserve(static_cast<size_t>(total));
    std::array<int, 3> want{p1, p2, p3};
    std::array<double, 3> credit{0.0, 0.0, 0.0};
    std::array<int, 3> emitted{0, 0, 0};
    for (int i = 0; i < total; ++i) {
        int best = -1;
        double best_credit = -1.0;
        for (int c = 0; c < 3; ++c) {
            if (emitted[c] >= want[c])
                continue;
            credit[c] += static_cast<double>(want[c]) / total;
            if (credit[c] > best_credit) {
                best_credit = credit[c];
                best = c;
            }
        }
        if (best < 0)
            break;
        credit[best] -= 1.0;
        ++emitted[best];
        out.push_back(static_cast<Priority>(best));
    }
    return out;
}

PowerNode *
Topology::newNode(std::string name, NodeKind kind)
{
    nodes_.push_back(std::make_unique<PowerNode>(std::move(name), kind));
    return nodes_.back().get();
}

Topology
Topology::build(const TopologySpec &spec,
                std::shared_ptr<const battery::ChargerPolicy> policy)
{
    if (!policy)
        util::fatal("Topology::build: null charger policy");
    Topology topo;
    int rack_budget = spec.totalRacks;
    int next_rack_id = 0;

    auto priority_for = [&spec](int rack_id) {
        if (spec.priorities.empty())
            return Priority::P2;
        return spec.priorities[static_cast<size_t>(rack_id)
                               % spec.priorities.size()];
    };

    // Recursive lambdas via explicit structure: build each level.
    auto build_rack = [&](PowerNode &rpp, const std::string &name) {
        if (rack_budget == 0)
            return;
        if (rack_budget > 0)
            --rack_budget;
        int id = next_rack_id++;
        topo.racks_.push_back(std::make_unique<Rack>(
            id, name, priority_for(id), policy, spec.bbuParams));
        Rack *rack = topo.racks_.back().get();
        topo.rackPtrs_.push_back(rack);
        PowerNode *leaf = topo.newNode(name, NodeKind::RackNode);
        leaf->attachRack(rack);
        rack->attachNode(leaf);
        rpp.addChild(leaf);
    };

    auto build_rpp = [&](PowerNode &sb, const std::string &name) {
        PowerNode *rpp = topo.newNode(name, NodeKind::Rpp);
        rpp->attachBreaker(std::make_unique<CircuitBreaker>(
            name, spec.rppLimit));
        sb.addChild(rpp);
        for (int r = 0; r < spec.racksPerRpp; ++r)
            build_rack(*rpp, util::strf("%s.rack%02d", name.c_str(), r));
        return rpp;
    };

    auto build_sb = [&](PowerNode &msb, const std::string &name) {
        PowerNode *sb = topo.newNode(name, NodeKind::Sb);
        sb->attachBreaker(std::make_unique<CircuitBreaker>(
            name, spec.sbLimit));
        msb.addChild(sb);
        for (int r = 0; r < spec.rppsPerSb; ++r)
            build_rpp(*sb, util::strf("%s.rpp%d", name.c_str(), r));
        return sb;
    };

    auto build_msb = [&](PowerNode *parent, const std::string &name) {
        PowerNode *msb = topo.newNode(name, NodeKind::Msb);
        msb->attachBreaker(std::make_unique<CircuitBreaker>(
            name, spec.msbLimit));
        if (parent)
            parent->addChild(msb);
        for (int s = 0; s < spec.sbsPerMsb; ++s)
            build_sb(*msb, util::strf("%s.sb%d", name.c_str(), s));
        return msb;
    };

    auto build_suite = [&](PowerNode *parent, const std::string &name) {
        PowerNode *suite = topo.newNode(name, NodeKind::Suite);
        if (parent)
            parent->addChild(suite);
        for (int m = 0; m < spec.msbsPerSuite; ++m)
            build_msb(suite, util::strf("%s.msb%d", name.c_str(), m));
        return suite;
    };

    auto build_building = [&](PowerNode *parent,
                              const std::string &name) {
        PowerNode *bld = topo.newNode(name, NodeKind::Building);
        if (parent)
            parent->addChild(bld);
        for (int s = 0; s < spec.suitesPerBuilding; ++s)
            build_suite(bld, util::strf("%s.suite%d", name.c_str(), s));
        return bld;
    };

    switch (spec.rootKind) {
      case NodeKind::Site: {
        PowerNode *site = topo.newNode(spec.rootName, NodeKind::Site);
        for (int b = 0; b < spec.buildingsPerSite; ++b) {
            build_building(site, util::strf("%s.bld%d",
                                            spec.rootName.c_str(), b));
        }
        topo.root_ = site;
        break;
      }
      case NodeKind::Building:
        topo.root_ = build_building(nullptr, spec.rootName);
        break;
      case NodeKind::Suite:
        topo.root_ = build_suite(nullptr, spec.rootName);
        break;
      case NodeKind::Msb:
        topo.root_ = build_msb(nullptr, spec.rootName);
        break;
      case NodeKind::Sb: {
        PowerNode *sb = topo.newNode(spec.rootName, NodeKind::Sb);
        sb->attachBreaker(std::make_unique<CircuitBreaker>(
            spec.rootName, spec.sbLimit));
        for (int r = 0; r < spec.rppsPerSb; ++r) {
            build_rpp(*sb, util::strf("%s.rpp%d",
                                      spec.rootName.c_str(), r));
        }
        topo.root_ = sb;
        break;
      }
      case NodeKind::Rpp: {
        PowerNode *rpp = topo.newNode(spec.rootName, NodeKind::Rpp);
        rpp->attachBreaker(std::make_unique<CircuitBreaker>(
            spec.rootName, spec.rppLimit));
        for (int r = 0; r < spec.racksPerRpp; ++r) {
            build_rack(*rpp, util::strf("%s.rack%02d",
                                        spec.rootName.c_str(), r));
        }
        topo.root_ = rpp;
        break;
      }
      case NodeKind::RackNode:
        util::fatal("Topology::build: cannot root a topology at a rack");
    }
    if (topo.rackPtrs_.empty())
        util::fatal("Topology::build: topology has no racks");
    topo.fleet_ = std::make_unique<battery::FleetState>();
    topo.fleet_->resize(topo.rackPtrs_.size());
    return topo;
}

std::vector<PowerNode *>
Topology::nodesOfKind(NodeKind kind) const
{
    std::vector<PowerNode *> result;
    for (const auto &node : nodes_) {
        if (node->kind() == kind)
            result.push_back(node.get());
    }
    return result;
}

void
Topology::stepRacks(Seconds dt)
{
    battery::FleetState &fleet = *fleet_;
    DCBATT_ASSERT(fleet.size() == rackPtrs_.size(),
                  "fleet rows %zu != racks %zu", fleet.size(),
                  rackPtrs_.size());
    // Phase 1: stage every rack whose step is a lockstep integration
    // over one interior CC/CV segment; step the rest in place. Racks
    // are independent within a step, so reordering the staged racks'
    // integration after the stragglers' changes nothing.
    batchStage_.clear();
    batchLanes_.clear();
    const bool batching = battery::batchChargingEnabled();
    for (Rack *rack : rackPtrs_) {
        battery::BatchLaneKind kind = batching
            ? rack->tryExportBatchLane(dt, batchStage_)
            : battery::BatchLaneKind::None;
        if (kind == battery::BatchLaneKind::None)
            rack->step(dt);
        else
            batchLanes_.push_back({rack, kind});
    }
    // Phase 2: one dense sweep over all staged lanes, then write the
    // results back in staging order (lane index = per-kind ordinal).
    if (!batchLanes_.empty()) {
        DCBATT_COUNT_N("battery.batch_lanes", batchLanes_.size());
        if (!batchKernel_) {
            batchKernel_ = std::make_unique<battery::BatchChargeKernel>(
                rackPtrs_.front()->shelf().params());
        }
        batchKernel_->advance(batchStage_, dt.value());
        size_t cc = 0;
        size_t cv = 0;
        for (const BatchLaneRef &lane : batchLanes_) {
            size_t idx = lane.kind == battery::BatchLaneKind::Cc
                ? cc++
                : cv++;
            lane.rack->applyBatchLane(lane.kind, idx, batchStage_);
        }
    }
    // Phase 3: refresh the fleet rows from the post-step state.
    for (Rack *rack : rackPtrs_) {
        const Rack &r = *rack;
        auto i = static_cast<size_t>(r.id());
        fleet.itLoadW[i] = r.itLoad().value();
        fleet.rechargeW[i] = r.rechargePower().value();
        fleet.capW[i] = r.capAmount().value();
        fleet.inputOn[i] = r.inputPowerOn() ? 1 : 0;
        fleet.held[i] = r.shelf().chargingHeld() ? 1 : 0;
        fleet.fullyCharged[i] = r.shelf().fullyCharged() ? 1 : 0;
        fleet.chargingBbus[i] = r.shelf().chargingCount();
        fleet.cvBbus[i] = r.shelf().cvCount();
    }
    // Fold the fleet power sums while the rows are in cache, in row
    // order — bit-identical to the per-step walk the consumers
    // (charging_event_sim's sampler) used to run themselves.
    StepPowerTotals totals;
    const size_t n = fleet.size();
    for (size_t i = 0; i < n; ++i) {
        if (fleet.inputOn[i])
            totals.itW += fleet.itLoadW[i];
        totals.rechargeW += fleet.rechargeW[i];
        totals.capW += fleet.capW[i];
    }
    stepTotals_ = totals;
}

void
Topology::observeBreakers(Seconds dt)
{
    // Refresh every stale cache bottom-up first (children always sit
    // after their parents in creation order, so reverse order visits
    // children first); the observe pass then reads cache hits only,
    // never recursing.
    for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it)
        (*it)->refreshPowerCache();
    for (const auto &node : nodes_) {
        if (node->breaker())
            node->breaker()->observe(node->inputPower(), dt);
    }
}

void
Topology::startOpenTransition(PowerNode &node)
{
    for (Rack *rack : node.racksBelow())
        rack->loseInputPower();
}

void
Topology::endOpenTransition(PowerNode &node)
{
    for (Rack *rack : node.racksBelow())
        rack->restoreInputPower();
}

void
Topology::scheduleOpenTransition(sim::EventQueue &queue, PowerNode &node,
                                 sim::Tick at, sim::Tick duration)
{
    PowerNode *target = &node;
    queue.schedule(at, [target] { startOpenTransition(*target); });
    queue.schedule(at + duration,
                   [target] { endOpenTransition(*target); });
}

} // namespace dcbatt::power
