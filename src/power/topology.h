/**
 * @file
 * The data-center power-delivery hierarchy (Fig. 1).
 *
 * Power flows site -> building -> suite -> MSB -> SB -> RPP -> rack.
 * Each MSB/SB/RPP carries a circuit breaker with the Open Compute
 * ratings the paper quotes (2.5 MW / 1.25 MW / 190 kW). The topology
 * owns the node tree and the racks; power draw aggregates leaf-to-root.
 *
 * Open transitions (the brief input-power loss during source
 * switch-overs) can be injected at any node: every rack beneath it
 * falls onto its batteries and recharges when power returns.
 */

#ifndef DCBATT_POWER_TOPOLOGY_H_
#define DCBATT_POWER_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "battery/batch_charge_kernel.h"
#include "battery/charger_policy.h"
#include "battery/fleet_state.h"
#include "power/breaker.h"
#include "power/rack.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace dcbatt::power {

/** Level of a node in the power hierarchy. */
enum class NodeKind
{
    Site,
    Building,
    Suite,
    Msb,
    Sb,
    Rpp,
    RackNode,
};

const char *toString(NodeKind kind);

/** One node of the power tree. Leaves reference a Rack. */
class PowerNode
{
  public:
    PowerNode(std::string name, NodeKind kind);

    const std::string &name() const { return name_; }
    NodeKind kind() const { return kind_; }

    PowerNode *parent() const { return parent_; }
    const std::vector<PowerNode *> &children() const { return children_; }
    void addChild(PowerNode *child);

    /** Breaker protecting this node (null for site/building/rack). */
    CircuitBreaker *breaker() { return breaker_.get(); }
    const CircuitBreaker *breaker() const { return breaker_.get(); }
    void attachBreaker(std::unique_ptr<CircuitBreaker> breaker);

    Rack *rack() const { return rack_; }
    void attachRack(Rack *rack);

    /**
     * Aggregate input power of the subtree rooted here. Cached: the
     * recursive sum is only recomputed for subtrees whose racks were
     * dirtied since the last read (children are summed in child order
     * either way, so the cached value is bit-identical to a cold
     * recompute).
     */
    util::Watts inputPower() const;

    /**
     * Mark this node's cached aggregate stale, walking up to the
     * root. The walk stops at the first already-invalid ancestor:
     * invalidation always proceeds leaf-to-root, so an invalid node
     * implies invalid ancestors.
     */
    void invalidatePower();

    /**
     * Non-recursive cache refresh: recompute this node's aggregate
     * from its children's caches (or its rack), assuming every child
     * is already fresh. Callers must visit children first —
     * Topology::observeBreakers walks nodes in reverse creation order,
     * which is bottom-up because children are always created after
     * their parents.
     */
    void refreshPowerCache() const;

    /** All racks in this subtree (depth-first order). */
    std::vector<Rack *> racksBelow() const;

  private:
    std::string name_;
    NodeKind kind_;
    PowerNode *parent_ = nullptr;
    std::vector<PowerNode *> children_;
    std::unique_ptr<CircuitBreaker> breaker_;
    Rack *rack_ = nullptr;
    mutable double cachedPowerW_ = 0.0;
    mutable bool powerCacheValid_ = false;
};

/** Shape and ratings of a topology to build. */
struct TopologySpec
{
    NodeKind rootKind = NodeKind::Msb;
    std::string rootName = "msb0";

    int buildingsPerSite = 1;
    int suitesPerBuilding = 4;
    int msbsPerSuite = 3;
    int sbsPerMsb = 2;
    int rppsPerSb = 10;
    int racksPerRpp = 16;

    /** Stop creating racks after this many (-1 = fill the shape). */
    int totalRacks = -1;

    util::Watts msbLimit = util::megawatts(2.5);
    util::Watts sbLimit = util::megawatts(1.25);
    util::Watts rppLimit = util::kilowatts(190.0);

    /**
     * Per-rack priorities in creation order; cycled when shorter than
     * the rack count. Empty means everything is P2.
     */
    std::vector<Priority> priorities;

    battery::BbuParams bbuParams;
};

/**
 * Deterministic per-rack priority list with the given counts,
 * proportionally interleaved (so every row gets a representative mix,
 * like a production deployment).
 */
std::vector<Priority> makePriorityMix(int p1, int p2, int p3);

/** An owned power tree plus its racks. */
class Topology
{
  public:
    /** Build the tree described by @p spec. */
    static Topology build(
        const TopologySpec &spec,
        std::shared_ptr<const battery::ChargerPolicy> policy);

    Topology(Topology &&) = default;
    Topology &operator=(Topology &&) = default;

    PowerNode &root() { return *root_; }
    const PowerNode &root() const { return *root_; }

    const std::vector<Rack *> &racks() const { return rackPtrs_; }
    Rack &rack(int id) { return *rackPtrs_[static_cast<size_t>(id)]; }

    /** All nodes of the given kind, in creation order. */
    std::vector<PowerNode *> nodesOfKind(NodeKind kind) const;

    /**
     * Advance every rack's physics by dt in one batch pass, refreshing
     * the struct-of-arrays fleet snapshot as it goes.
     */
    void stepRacks(util::Seconds dt);

    /**
     * Per-rack hot-state rows (rack id == row index), refreshed by
     * stepRacks(). Valid between a stepRacks() call and the next
     * rack mutation.
     */
    const battery::FleetState &fleet() const { return *fleet_; }

    /**
     * Fleet-wide power sums of the last stepRacks() call, folded in
     * row order over the rows it just refreshed (the rows are hot in
     * cache there; per-step consumers would otherwise re-walk the
     * fleet every physics tick). itW counts powered racks only,
     * matching the per-row predicate `inputOn`.
     */
    struct StepPowerTotals
    {
        double itW = 0.0;
        double rechargeW = 0.0;
        double capW = 0.0;
    };

    const StepPowerTotals &stepPowerTotals() const { return stepTotals_; }

    /** Update breaker thermal state for every node with a breaker. */
    void observeBreakers(util::Seconds dt);

    /** Cut input power for every rack under @p node. */
    static void startOpenTransition(PowerNode &node);
    /** Restore input power for every rack under @p node. */
    static void endOpenTransition(PowerNode &node);

    /**
     * Schedule an open transition on @p queue: power lost at @p at,
     * restored @p duration later.
     */
    void scheduleOpenTransition(sim::EventQueue &queue, PowerNode &node,
                                sim::Tick at, sim::Tick duration);

  private:
    Topology() = default;

    PowerNode *newNode(std::string name, NodeKind kind);

    /** One rack staged for the batched lockstep charge sweep. */
    struct BatchLaneRef
    {
        Rack *rack;
        battery::BatchLaneKind kind;
    };

    std::vector<std::unique_ptr<PowerNode>> nodes_;
    std::vector<std::unique_ptr<Rack>> racks_;
    std::vector<Rack *> rackPtrs_;
    /** Owned via pointer so the rows stay put across Topology moves. */
    std::unique_ptr<battery::FleetState> fleet_;
    /**
     * Batched-charging scratch, reused across stepRacks() calls (the
     * vectors keep their capacity). The kernel is built lazily on the
     * first step — every rack shares one BbuParams by construction,
     * so the first rack's calibration covers the fleet.
     */
    std::unique_ptr<battery::BatchChargeKernel> batchKernel_;
    battery::BatchChargeStage batchStage_;
    std::vector<BatchLaneRef> batchLanes_;
    StepPowerTotals stepTotals_;
    PowerNode *root_ = nullptr;
};

} // namespace dcbatt::power

#endif // DCBATT_POWER_TOPOLOGY_H_
