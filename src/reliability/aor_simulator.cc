#include "reliability/aor_simulator.h"

#include <algorithm>

#include "obs/crash_bundle.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dcbatt::reliability {

using util::Seconds;

namespace {

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerYear = 8760.0 * 3600.0;
constexpr double kSecondsPerDay = 24.0 * 3600.0;

/** Expected loss-interval count of @p processes over @p horizon_s. */
size_t
expectedIntervals(const std::vector<FailureProcess> &processes,
                  double horizon_s)
{
    double expected = 0.0;
    for (const FailureProcess &proc : processes) {
        if (!(proc.mtbfHours > 0.0))
            continue;  // generation panics on these; keep the
                       // estimate finite regardless
        double per_event =
            proc.effect == FailureEffect::Outage ? 1.0 : 2.0;
        expected += per_event * horizon_s
            / (proc.mtbfHours * kSecondsPerHour);
    }
    return static_cast<size_t>(expected * 1.1) + 16;
}

/** Raw (unscaled) sums of one timeline walk. */
struct WalkSums
{
    double notFull = 0.0;
    double dark = 0.0;
    size_t events = 0;
};

/**
 * Walk one timeline over [0, horizon_s]: union of
 * [loss start, loss end + recharge] spans, where a loss that begins
 * during a recharge extends the span (the recharge restarts after the
 * new episode). Templated on the callable so the fixed-charge-time
 * path pays no per-interval std::function dispatch.
 */
template <typename ChargeTimeFn>
WalkSums
walkTimeline(const std::vector<LossInterval> &timeline, double horizon_s,
             const ChargeTimeFn &charge_time_fn)
{
    WalkSums sums;
    sums.events = timeline.size();
    double span_start = -1.0;
    double span_end = -1.0;
    for (const LossInterval &loss : timeline) {
        sums.dark +=
            std::min(loss.durationSeconds,
                     std::max(0.0, horizon_s - loss.startSeconds));
        double recharge = charge_time_fn(loss).value();
        double end = loss.endSeconds() + recharge;
        if (span_start < 0.0) {
            span_start = loss.startSeconds;
            span_end = end;
            continue;
        }
        if (loss.startSeconds <= span_end) {
            span_end = std::max(span_end, end);
        } else {
            sums.notFull += std::min(span_end, horizon_s) - span_start;
            span_start = loss.startSeconds;
            span_end = end;
        }
    }
    if (span_start >= 0.0)
        sums.notFull += std::min(span_end, horizon_s) - span_start;
    return sums;
}

/**
 * Walk every shard and reduce in shard order (shared by both public
 * entry points). The single-shard (legacy serial) case walks straight
 * into the result — no per-call partials vector, no pool round-trip —
 * which is also what keeps concurrent evaluations on one simulator
 * safe: all per-call state is on the caller's stack.
 */
template <typename ChargeTimeFn>
WalkSums
walkAllShards(const std::vector<std::vector<LossInterval>> &shards,
              double shard_horizon, util::ThreadPool *pool,
              const ChargeTimeFn &charge_time_fn)
{
    if (shards.size() == 1)
        return walkTimeline(shards.front(), shard_horizon,
                            charge_time_fn);

    std::vector<WalkSums> partial(shards.size());
    auto walk = [&](size_t s) {
        partial[s] =
            walkTimeline(shards[s], shard_horizon, charge_time_fn);
    };
    if (pool) {
        pool->parallelFor(shards.size(), walk);
    } else {
        for (size_t s = 0; s < shards.size(); ++s)
            walk(s);
    }

    WalkSums total;
    for (const WalkSums &sums : partial) {
        total.notFull += sums.notFull;
        total.dark += sums.dark;
        total.events += sums.events;
    }
    return total;
}

/** Scale raw walk sums into the per-year AorResult metrics. */
AorResult
finishResult(const WalkSums &total, const AorConfig &config)
{
    const double horizon = config.years * kSecondsPerYear;
    DCBATT_COUNT_N("reliability.loss_events_walked", total.events);
    AorResult result;
    // Each shard's loss-span union is clipped to its sub-horizon, so
    // the total not-fully-redundant time can never exceed the full
    // horizon.
    DCBATT_ASSERT(total.notFull >= 0.0 && total.notFull <= horizon,
                  "loss-span union %g s outside [0, %g] s",
                  total.notFull, horizon);
    result.aor = 1.0 - total.notFull / horizon;
    result.lossOfRedundancyHoursPerYear =
        total.notFull / kSecondsPerHour / config.years;
    result.lossEventsPerYear =
        static_cast<double>(total.events) / config.years;
    result.darkHoursPerYear =
        total.dark / kSecondsPerHour / config.years;
    return result;
}

} // namespace

AorSimulator::AorSimulator(std::vector<FailureProcess> processes,
                           AorConfig config, util::ThreadPool *pool)
    : config_(config), pool_(pool)
{
    DCBATT_REQUIRE(config_.years > 0.0, "nonpositive horizon %g",
                   config_.years);
    DCBATT_REQUIRE(config_.shards >= 1, "shard count %d < 1",
                   config_.shards);
    shards_.resize(static_cast<size_t>(config_.shards));
    if (obs::crashBundleArmed()) {
        // Identify the RNG substream scheme in any post-mortem: shard
        // s draws from Rng(seed).substream(s) (shards == 1 keeps the
        // legacy direct Rng(seed) stream).
        obs::setCrashContext(
            "reliability.aor_seed",
            util::strf("%llu", static_cast<unsigned long long>(
                                   config_.seed)));
        obs::setCrashContext("reliability.aor_shards",
                             util::strf("%d", config_.shards));
        obs::setCrashContext(
            "reliability.aor_substreams",
            config_.shards == 1
                ? "Rng(seed)"
                : util::strf("Rng(seed).substream(s), s in [0, %d)",
                             config_.shards));
        obs::setCrashContext("reliability.aor_years",
                             util::strf("%.6g", config_.years));
    }
    DCBATT_SPAN_NAMED(gen_span, "reliability.generate_timelines");
    gen_span.arg("shards", static_cast<double>(config_.shards));
    gen_span.arg("years", config_.years);
    // All shards cover the same sub-horizon, so the reserve estimate
    // is shared — computed once here, not once per shard.
    const size_t reserve_hint = expectedIntervals(
        processes, config_.years * kSecondsPerYear
                       / static_cast<double>(config_.shards));
    auto generate = [&](size_t shard) {
        generateShard(shard, processes, reserve_hint);
    };
    if (pool_ && config_.shards > 1) {
        pool_->parallelFor(shards_.size(), generate);
    } else {
        for (size_t s = 0; s < shards_.size(); ++s)
            generate(s);
    }
    DCBATT_COUNT_N("reliability.shards_generated", config_.shards);
}

const std::vector<LossInterval> &
AorSimulator::timeline() const
{
    DCBATT_REQUIRE(config_.shards == 1,
                   "timeline() is single-timeline only (shards = %d); "
                   "use shardTimeline()",
                   config_.shards);
    return shards_.front();
}

const std::vector<LossInterval> &
AorSimulator::shardTimeline(int shard) const
{
    DCBATT_REQUIRE(shard >= 0 && shard < config_.shards,
                   "shard %d outside [0, %d)", shard, config_.shards);
    return shards_[static_cast<size_t>(shard)];
}

void
AorSimulator::generateShard(size_t shard,
                            const std::vector<FailureProcess> &processes,
                            size_t reserve_hint)
{
    // Shard 0 of a single-timeline run uses the Rng(seed) stream
    // directly so the legacy serial history is preserved bit for bit;
    // sharded runs draw counter-based substreams, which are
    // independent of one another and of generation order (and hence of
    // thread count). SeededStream replays the exact Rng draw sequence
    // but shares each seed's engine warm-up through a cache, so the
    // per-(shard, process) stream setup that used to dominate sharded
    // generation is a table lookup here — sharding is free at one
    // shard and near-linear beyond.
    util::SeededStream rng(config_.shards == 1
                               ? config_.seed
                               : util::Rng::substreamSeed(config_.seed,
                                                          shard));
    const double horizon = config_.years * kSecondsPerYear
        / static_cast<double>(config_.shards);

    // Per-shard span: in a pooled build the shards land on different
    // tids, which is exactly what makes the trace's per-shard
    // years/sec lane readable in Perfetto.
    DCBATT_SPAN_NAMED(shard_span, "reliability.generateShard");
    shard_span.arg("shard", static_cast<double>(shard));
    shard_span.arg("years", horizon / kSecondsPerYear);

    std::vector<LossInterval> &timeline =
        shards_[shard];
    timeline.reserve(reserve_hint);

    for (const FailureProcess &proc : processes) {
        // Equivalent to Rng::fork(): the child seed is the parent's
        // next raw draw (pinned by SeededStream.NextRawMirrorsFork).
        util::SeededStream stream(rng.nextRaw());
        double mtbf_s = proc.mtbfHours * kSecondsPerHour;
        double mttr_s = proc.mttrHours * kSecondsPerHour;
        double t = 0.0;
        while (true) {
            double gap;
            if (proc.interval == IntervalModel::AnnualNormal) {
                gap = stream.truncatedNormal(
                    mtbf_s,
                    config_.annualSigmaDays * kSecondsPerDay,
                    kSecondsPerDay, 3.0 * mtbf_s);
            } else {
                gap = stream.exponential(mtbf_s);
            }
            t += gap;
            if (t >= horizon)
                break;
            double repair = stream.exponential(mttr_s);
            if (proc.effect == FailureEffect::Outage) {
                timeline.push_back({t, repair});
            } else {
                // Two open transitions: source drops, source returns.
                double ot1 = stream.exponential(
                    config_.meanOpenTransition.value());
                double ot2 = stream.exponential(
                    config_.meanOpenTransition.value());
                timeline.push_back({t, ot1});
                if (t + repair < horizon)
                    timeline.push_back({t + repair, ot2});
            }
        }
    }
    std::sort(timeline.begin(), timeline.end(),
              [](const LossInterval &a, const LossInterval &b) {
                  return a.startSeconds < b.startSeconds;
              });
    // One shard-sized increment (not one per draw); worker-thread
    // increments land in that thread's shard and merge exactly.
    DCBATT_COUNT_N("reliability.loss_intervals_generated",
                   timeline.size());
    shard_span.arg("intervals", static_cast<double>(timeline.size()));
    for (const LossInterval &loss : timeline) {
        DCBATT_ASSERT(loss.startSeconds >= 0.0
                          && loss.durationSeconds >= 0.0,
                      "malformed loss interval at %g s (duration %g s)",
                      loss.startSeconds, loss.durationSeconds);
    }
}

AorResult
AorSimulator::aorForChargeTime(Seconds charge_time) const
{
    DCBATT_COUNT("reliability.aor_evaluations");
    DCBATT_SPAN("reliability.aor_eval");
    // Inline lambda (not routed through aorForChargeModel) so the
    // per-interval recharge lookup is a constant load, not a
    // type-erased call — this is the Fig. 9a sweep's inner loop.
    return finishResult(
        walkAllShards(shards_,
                      config_.years * kSecondsPerYear
                          / static_cast<double>(config_.shards),
                      pool_,
                      [charge_time](const LossInterval &) {
                          return charge_time;
                      }),
        config_);
}

AorResult
AorSimulator::aorForChargeModel(
    const std::function<Seconds(const LossInterval &)> &charge_time_fn)
    const
{
    DCBATT_COUNT("reliability.aor_evaluations");
    DCBATT_SPAN("reliability.aor_eval");
    return finishResult(
        walkAllShards(shards_,
                      config_.years * kSecondsPerYear
                          / static_cast<double>(config_.shards),
                      pool_, charge_time_fn),
        config_);
}

} // namespace dcbatt::reliability
