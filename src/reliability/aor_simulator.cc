#include "reliability/aor_simulator.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"

namespace dcbatt::reliability {

using util::Seconds;

namespace {

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerYear = 8760.0 * 3600.0;
constexpr double kSecondsPerDay = 24.0 * 3600.0;

} // namespace

AorSimulator::AorSimulator(std::vector<FailureProcess> processes,
                           AorConfig config)
    : config_(config)
{
    DCBATT_REQUIRE(config_.years > 0.0, "nonpositive horizon %g",
                   config_.years);
    generateTimeline(processes);
}

void
AorSimulator::generateTimeline(
    const std::vector<FailureProcess> &processes)
{
    util::Rng rng(config_.seed);
    const double horizon = config_.years * kSecondsPerYear;

    for (const FailureProcess &proc : processes) {
        util::Rng stream = rng.fork();
        double mtbf_s = proc.mtbfHours * kSecondsPerHour;
        double mttr_s = proc.mttrHours * kSecondsPerHour;
        double t = 0.0;
        while (true) {
            double gap;
            if (proc.interval == IntervalModel::AnnualNormal) {
                gap = stream.truncatedNormal(
                    mtbf_s,
                    config_.annualSigmaDays * kSecondsPerDay,
                    kSecondsPerDay, 3.0 * mtbf_s);
            } else {
                gap = stream.exponential(mtbf_s);
            }
            t += gap;
            if (t >= horizon)
                break;
            double repair = stream.exponential(mttr_s);
            if (proc.effect == FailureEffect::Outage) {
                timeline_.push_back({t, repair});
            } else {
                // Two open transitions: source drops, source returns.
                double ot1 = stream.exponential(
                    config_.meanOpenTransition.value());
                double ot2 = stream.exponential(
                    config_.meanOpenTransition.value());
                timeline_.push_back({t, ot1});
                if (t + repair < horizon)
                    timeline_.push_back({t + repair, ot2});
            }
        }
    }
    std::sort(timeline_.begin(), timeline_.end(),
              [](const LossInterval &a, const LossInterval &b) {
                  return a.startSeconds < b.startSeconds;
              });
    for (const LossInterval &loss : timeline_) {
        DCBATT_ASSERT(loss.startSeconds >= 0.0
                          && loss.durationSeconds >= 0.0,
                      "malformed loss interval at %g s (duration %g s)",
                      loss.startSeconds, loss.durationSeconds);
    }
}

AorResult
AorSimulator::aorForChargeTime(Seconds charge_time) const
{
    return aorForChargeModel(
        [charge_time](const LossInterval &) { return charge_time; });
}

AorResult
AorSimulator::aorForChargeModel(
    const std::function<Seconds(const LossInterval &)> &charge_time_fn)
    const
{
    const double horizon = config_.years * kSecondsPerYear;
    double not_full = 0.0;
    double dark = 0.0;
    // Union of [loss start, loss end + recharge] spans; a loss that
    // begins during a recharge extends the span (the recharge
    // restarts after the new episode).
    double span_start = -1.0;
    double span_end = -1.0;
    for (const LossInterval &loss : timeline_) {
        dark += std::min(loss.durationSeconds,
                         std::max(0.0, horizon - loss.startSeconds));
        double recharge = charge_time_fn(loss).value();
        double end = loss.endSeconds() + recharge;
        if (span_start < 0.0) {
            span_start = loss.startSeconds;
            span_end = end;
            continue;
        }
        if (loss.startSeconds <= span_end) {
            span_end = std::max(span_end, end);
        } else {
            not_full += std::min(span_end, horizon) - span_start;
            span_start = loss.startSeconds;
            span_end = end;
        }
    }
    if (span_start >= 0.0)
        not_full += std::min(span_end, horizon) - span_start;

    AorResult result;
    // The union of loss spans is clipped to the horizon, so the
    // not-fully-redundant time can never exceed it.
    DCBATT_ASSERT(not_full >= 0.0 && not_full <= horizon,
                  "loss-span union %g s outside [0, %g] s", not_full,
                  horizon);
    result.aor = 1.0 - not_full / horizon;
    result.lossOfRedundancyHoursPerYear =
        not_full / kSecondsPerHour / config_.years;
    result.lossEventsPerYear =
        static_cast<double>(timeline_.size()) / config_.years;
    result.darkHoursPerYear = dark / kSecondsPerHour / config_.years;
    return result;
}

} // namespace dcbatt::reliability
