/**
 * @file
 * Monte Carlo availability-of-redundancy (AOR) simulator (Fig. 9a).
 *
 * AOR is the fraction of time a rack's battery is fully charged. The
 * simulator draws a timeline of rack input-power loss intervals from
 * the Table I renewal processes (each component/failure type an
 * independent block of a series system), then walks the Fig. 8(a)
 * battery state machine over it: the battery is not-fully-charged
 * from the start of each power loss until one full recharge time
 * after power returns, with overlapping episodes merged (a new loss
 * during recharge restarts the recharge).
 *
 * The timeline is generated once per simulator instance, so an AOR
 * sweep over battery charge times (the Fig. 9a x-axis) reuses the
 * identical failure history — the curve is smooth by construction,
 * not by sample-count brute force.
 *
 * Sharded mode (AorConfig::shards > 1) splits the horizon into
 * equal-length shards, each an independent renewal history drawn from
 * Rng(seed).substream(shard); generation and walks then fan across an
 * optional util::ThreadPool and the per-shard results are merged by a
 * time-weighted reduction in shard order. The shard count is
 * *semantic* — it selects which failure history is sampled — while
 * the thread count never is: results are bit-identical for a given
 * (seed, shards) at any worker count, including none.
 */

#ifndef DCBATT_RELIABILITY_AOR_SIMULATOR_H_
#define DCBATT_RELIABILITY_AOR_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "reliability/failure_data.h"
#include "util/units.h"

namespace dcbatt::util {
class ThreadPool;
}

namespace dcbatt::reliability {

/** One rack input-power loss episode. */
struct LossInterval
{
    double startSeconds = 0.0;
    double durationSeconds = 0.0;

    double endSeconds() const { return startSeconds + durationSeconds; }
};

/** Simulation horizon and distribution parameters. */
struct AorConfig
{
    /** Simulated horizon; the paper uses 1e5 years. */
    double years = 1e5;
    /** Mean open-transition duration (exponential). */
    util::Seconds meanOpenTransition{45.0};
    /** Stddev of the annual-maintenance interval, in days. */
    double annualSigmaDays = 41.0;
    uint64_t seed = 7;
    /**
     * Number of equal-length horizon shards (>= 1). 1 is the legacy
     * single-timeline mode, bit-compatible with the original serial
     * simulator. Shard count changes which failure history is drawn
     * (each shard is an independent substream over years/shards), so
     * AOR values are comparable only at equal shard counts; thread
     * count never changes them.
     */
    int shards = 1;
};

/** Result of one AOR evaluation. */
struct AorResult
{
    double aor = 1.0;
    double lossOfRedundancyHoursPerYear = 0.0;
    /** Power-loss episodes per year (open transitions + outages). */
    double lossEventsPerYear = 0.0;
    /** Hours per year the rack input is actually dark. */
    double darkHoursPerYear = 0.0;
};

/** Monte Carlo AOR engine over the Table I processes. */
class AorSimulator
{
  public:
    /**
     * Generates the loss history up front. @p pool, when non-null,
     * parallelizes generation (shards > 1) and every subsequent walk;
     * it is borrowed, not owned, and must outlive the simulator.
     */
    AorSimulator(std::vector<FailureProcess> processes,
                 AorConfig config = {},
                 util::ThreadPool *pool = nullptr);

    /**
     * The generated loss timeline (sorted by start). Only meaningful
     * in single-timeline mode (shards == 1).
     */
    const std::vector<LossInterval> &timeline() const;

    /** Shard @p shard 's loss timeline, on the shard-local clock. */
    const std::vector<LossInterval> &shardTimeline(int shard) const;

    int shardCount() const { return config_.shards; }

    /** AOR when every recharge takes a fixed @p charge_time. */
    AorResult aorForChargeTime(util::Seconds charge_time) const;

    /**
     * AOR with a recharge time that depends on the loss episode:
     * @p charge_time_fn maps the loss duration to the recharge time
     * (e.g. via the CC-CV charge-time model and a rack load). Used by
     * the charger-aware AOR extension bench. With a pool attached the
     * function is called concurrently from several threads and must
     * be thread-safe (the charge-time models are: const and
     * stateless).
     */
    AorResult aorForChargeModel(
        const std::function<util::Seconds(const LossInterval &)>
            &charge_time_fn) const;

    double horizonYears() const { return config_.years; }

  private:
    /** @p reserve_hint: expected interval count per shard (shared). */
    void generateShard(size_t shard,
                       const std::vector<FailureProcess> &processes,
                       size_t reserve_hint);

    AorConfig config_;
    util::ThreadPool *pool_ = nullptr;
    /** One timeline per shard; shard clocks start at 0. */
    std::vector<std::vector<LossInterval>> shards_;
};

} // namespace dcbatt::reliability

#endif // DCBATT_RELIABILITY_AOR_SIMULATOR_H_
