/**
 * @file
 * Monte Carlo availability-of-redundancy (AOR) simulator (Fig. 9a).
 *
 * AOR is the fraction of time a rack's battery is fully charged. The
 * simulator draws a timeline of rack input-power loss intervals from
 * the Table I renewal processes (each component/failure type an
 * independent block of a series system), then walks the Fig. 8(a)
 * battery state machine over it: the battery is not-fully-charged
 * from the start of each power loss until one full recharge time
 * after power returns, with overlapping episodes merged (a new loss
 * during recharge restarts the recharge).
 *
 * The timeline is generated once per simulator instance, so an AOR
 * sweep over battery charge times (the Fig. 9a x-axis) reuses the
 * identical failure history — the curve is smooth by construction,
 * not by sample-count brute force.
 */

#ifndef DCBATT_RELIABILITY_AOR_SIMULATOR_H_
#define DCBATT_RELIABILITY_AOR_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "reliability/failure_data.h"
#include "util/units.h"

namespace dcbatt::reliability {

/** One rack input-power loss episode. */
struct LossInterval
{
    double startSeconds = 0.0;
    double durationSeconds = 0.0;

    double endSeconds() const { return startSeconds + durationSeconds; }
};

/** Simulation horizon and distribution parameters. */
struct AorConfig
{
    /** Simulated horizon; the paper uses 1e5 years. */
    double years = 1e5;
    /** Mean open-transition duration (exponential). */
    util::Seconds meanOpenTransition{45.0};
    /** Stddev of the annual-maintenance interval, in days. */
    double annualSigmaDays = 41.0;
    uint64_t seed = 7;
};

/** Result of one AOR evaluation. */
struct AorResult
{
    double aor = 1.0;
    double lossOfRedundancyHoursPerYear = 0.0;
    /** Power-loss episodes per year (open transitions + outages). */
    double lossEventsPerYear = 0.0;
    /** Hours per year the rack input is actually dark. */
    double darkHoursPerYear = 0.0;
};

/** Monte Carlo AOR engine over the Table I processes. */
class AorSimulator
{
  public:
    AorSimulator(std::vector<FailureProcess> processes,
                 AorConfig config = {});

    /** The generated loss timeline (sorted by start). */
    const std::vector<LossInterval> &timeline() const
    {
        return timeline_;
    }

    /** AOR when every recharge takes a fixed @p charge_time. */
    AorResult aorForChargeTime(util::Seconds charge_time) const;

    /**
     * AOR with a recharge time that depends on the loss episode:
     * @p charge_time_fn maps the loss duration to the recharge time
     * (e.g. via the CC-CV charge-time model and a rack load). Used by
     * the charger-aware AOR extension bench.
     */
    AorResult aorForChargeModel(
        const std::function<util::Seconds(const LossInterval &)>
            &charge_time_fn) const;

    double horizonYears() const { return config_.years; }

  private:
    void generateTimeline(const std::vector<FailureProcess> &processes);

    AorConfig config_;
    std::vector<LossInterval> timeline_;
};

} // namespace dcbatt::reliability

#endif // DCBATT_RELIABILITY_AOR_SIMULATOR_H_
