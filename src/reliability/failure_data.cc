#include "reliability/failure_data.h"

namespace dcbatt::reliability {

std::vector<FailureProcess>
paperFailureData()
{
    using enum FailureEffect;
    using enum IntervalModel;
    return {
        // Utility failure (IEEE 3006.8 industrial utility supply).
        {"utility", "utility", 6.39e3, 0.6, OpenTransitionPair,
         Exponential},
        // Corrective maintenance.
        {"corrective", "sub/msg", 5.87e4, 8.0, OpenTransitionPair,
         Exponential},
        {"corrective", "msb", 4.12e4, 20.2, OpenTransitionPair,
         Exponential},
        {"corrective", "sb", 1.51e5, 8.7, OpenTransitionPair,
         Exponential},
        {"corrective", "rpp", 6.31e5, 5.5, OpenTransitionPair,
         Exponential},
        // Annual preventive maintenance (MTBF 8760 h = 1 year).
        {"annual", "msb", 8.76e3, 12.8, OpenTransitionPair,
         AnnualNormal},
        {"annual", "sb", 8.76e3, 7.4, OpenTransitionPair, AnnualNormal},
        {"annual", "rpp", 8.76e3, 9.9, OpenTransitionPair,
         AnnualNormal},
        // Power outages (rack input dark until repair).
        {"outage", "msb", 2.93e5, 6.4, Outage, Exponential},
        {"outage", "sb", 5.20e5, 4.6, Outage, Exponential},
        {"outage", "rpp", 6.25e6, 10.9, Outage, Exponential},
    };
}

double
totalEventsPerYear(const std::vector<FailureProcess> &processes)
{
    double rate = 0.0;
    for (const FailureProcess &p : processes)
        rate += 8760.0 / p.mtbfHours;
    return rate;
}

} // namespace dcbatt::reliability
