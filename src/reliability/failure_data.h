/**
 * @file
 * Component failure/repair data (Table I of the paper).
 *
 * Each row is an independent renewal process affecting the power path
 * to a rack (Fig. 8b): utility failures, corrective maintenance,
 * annual preventive maintenance, and outright power outages. Utility
 * failures and maintenance cause *two* open transitions each (one
 * when the primary source drops, one when it returns); power outages
 * keep the rack dark until the repair completes.
 *
 * All failure interarrivals and repair durations are exponential with
 * the Table I means, except annual maintenance which the paper models
 * as Normal(mu = 1 year, sigma = 41 days).
 */

#ifndef DCBATT_RELIABILITY_FAILURE_DATA_H_
#define DCBATT_RELIABILITY_FAILURE_DATA_H_

#include <string>
#include <vector>

namespace dcbatt::reliability {

/** How a process's event manifests at the rack input. */
enum class FailureEffect
{
    /** Two brief open transitions (start and end of the episode). */
    OpenTransitionPair,
    /** Rack input power lost for the whole repair duration. */
    Outage,
};

/** How interarrival times are drawn. */
enum class IntervalModel
{
    Exponential,
    AnnualNormal,
};

/** One Table I row. */
struct FailureProcess
{
    std::string failureType;
    std::string component;
    double mtbfHours = 0.0;
    double mttrHours = 0.0;
    FailureEffect effect = FailureEffect::OpenTransitionPair;
    IntervalModel interval = IntervalModel::Exponential;
};

/** The full Table I. */
std::vector<FailureProcess> paperFailureData();

/** Sum of event rates (events/year) over a process set. */
double totalEventsPerYear(const std::vector<FailureProcess> &processes);

} // namespace dcbatt::reliability

#endif // DCBATT_RELIABILITY_FAILURE_DATA_H_
