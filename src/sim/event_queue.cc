#include "sim/event_queue.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dcbatt::sim {

EventId
EventQueue::schedule(Tick when, Callback callback)
{
    DCBATT_REQUIRE(when >= now_,
                   "tick %lld is in the past (now %lld)",
                   static_cast<long long>(when),
                   static_cast<long long>(now_));
    EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id, std::move(callback)});
    pending_.insert(id);
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback callback)
{
    return schedule(now_ + delay, std::move(callback));
}

bool
EventQueue::cancel(EventId id)
{
    return pending_.erase(id) > 0;
}

size_t
EventQueue::execute(Tick until)
{
    size_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= until) {
        Entry entry = queue_.top();
        queue_.pop();
        if (pending_.erase(entry.id) == 0)
            continue;  // cancelled while queued
        // The heap order and the schedule-in-the-past precondition
        // together guarantee monotonic event time; a violation here
        // means the queue state is corrupted.
        DCBATT_ASSERT(entry.when >= now_,
                      "event time moved backwards: %lld after %lld",
                      static_cast<long long>(entry.when),
                      static_cast<long long>(now_));
        now_ = entry.when;
        entry.callback();
        ++executed;
    }
    return executed;
}

size_t
EventQueue::runUntil(Tick until)
{
    size_t executed = execute(until);
    // The horizon was simulated even if no event landed exactly on it.
    now_ = std::max(now_, until);
    return executed;
}

size_t
EventQueue::run()
{
    return execute(std::numeric_limits<Tick>::max());
}

PeriodicTask::PeriodicTask(EventQueue &queue, Tick period,
                           Callback callback)
    : queue_(queue), period_(period), callback_(std::move(callback))
{
    DCBATT_REQUIRE(period_ > 0, "period must be positive, got %lld",
                   static_cast<long long>(period_));
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start(Tick phase)
{
    if (armed_)
        stop();
    armed_ = true;
    Tick first = phase < 0 ? period_ : phase;
    pending_ = queue_.scheduleAfter(first, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!armed_)
        return;
    armed_ = false;
    queue_.cancel(pending_);
    pending_ = 0;
}

void
PeriodicTask::fire()
{
    if (!armed_)
        return;
    // Re-arm before invoking the callback so the callback may stop()
    // the task and have that take effect.
    pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
    callback_(queue_.now());
}

} // namespace dcbatt::sim
