#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace dcbatt::sim {

namespace {

constexpr size_t kMinBuckets = 64;
constexpr int kMaxWidthShift = 40;
/** Below this population, compaction churn costs more than residue. */
constexpr size_t kCompactMinStored = 16;

/** Bucket width for an observed gap: widest power of two <= gap. */
int
widthShiftForGap(Tick gap)
{
    if (gap < 1)
        gap = 1;
    int shift =
        static_cast<int>(std::bit_width(static_cast<uint64_t>(gap)))
        - 1;
    return std::min(shift, kMaxWidthShift);
}

} // namespace

EventQueue::Backend
EventQueue::defaultBackend()
{
    static const Backend kChoice = [] {
        const char *env = std::getenv("DCBATT_EVENT_QUEUE");
        if (!env || !*env)
            return Backend::Calendar;
        std::string_view choice(env);
        if (choice == "heap")
            return Backend::Heap;
        DCBATT_REQUIRE(choice == "calendar",
                       "DCBATT_EVENT_QUEUE must be 'calendar' or "
                       "'heap', got '%s'",
                       env);
        return Backend::Calendar;
    }();
    return kChoice;
}

EventQueue::EventQueue(Backend backend) : backend_(backend)
{
    if (backend_ == Backend::Calendar) {
        buckets_.resize(kMinBuckets);
        bucketMask_ = kMinBuckets - 1;
    } else {
        buckets_.resize(1);
    }
}

void
EventQueue::placeEntry(Entry &&entry)
{
    size_t idx = (static_cast<uint64_t>(entry.when) >> widthShift_)
        & bucketMask_;
    buckets_[idx].push_back(std::move(entry));
}

EventId
EventQueue::schedule(Tick when, Callback callback)
{
    DCBATT_REQUIRE(when >= now_,
                   "tick %lld is in the past (now %lld)",
                   static_cast<long long>(when),
                   static_cast<long long>(now_));
    EventId id = nextId_++;
    idFlags_.push_back(1);
    ++pendingCount_;
    ++storedCount_;
    if (backend_ == Backend::Heap) {
        std::vector<Entry> &heap = buckets_[0];
        heap.push_back(Entry{when, nextSeq_++, id, std::move(callback)});
        std::push_heap(heap.begin(), heap.end(), std::greater<Entry>{});
    } else {
        if (!widthSeeded_) {
            // Seed the bucket width from the very first delay; resizes
            // re-derive it from the observed population.
            widthShift_ = widthShiftForGap(when - now_);
            widthSeeded_ = true;
        }
        // An insert behind the scan cursor's window would be missed.
        if (scanCacheValid_
            && when < scanWindowEnd_ - (Tick(1) << widthShift_))
            scanCacheValid_ = false;
        // Emplaced, not routed through placeEntry: the extra Entry
        // move would drag the std::function's manager call with it.
        size_t idx = (static_cast<uint64_t>(when) >> widthShift_)
            & bucketMask_;
        buckets_[idx].emplace_back(when, nextSeq_++, id,
                                   std::move(callback));
        if (pendingCount_ > 2 * buckets_.size())
            resizeCalendar(buckets_.size() * 2);
    }
    // Executed ids leave zero flags behind; trim the window when it
    // far outgrows the pending set.
    if (idFlags_.size() > 1024
        && idFlags_.size() > 8 * (pendingCount_ + 1))
        compactIdWindow();
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback callback)
{
    return schedule(now_ + delay, std::move(callback));
}

bool
EventQueue::cancel(EventId id)
{
    if (!idPending(id))
        return false;
    clearId(id);
    --pendingCount_;
    ++cancelledResidue_;
    maybeCompact();
    return true;
}

void
EventQueue::maybeCompact()
{
    // Lazy-cancellation leak gate: never let dead entries outnumber
    // live ones (beyond a trivial floor).
    if (storedCount_ >= kCompactMinStored
        && cancelledResidue_ > pendingCount_)
        compactStorage();
}

void
EventQueue::compactStorage()
{
    for (std::vector<Entry> &bucket : buckets_) {
        std::erase_if(bucket, [this](const Entry &entry) {
            return !idPending(entry.id);
        });
    }
    if (backend_ == Backend::Heap) {
        // The heap property does not survive arbitrary erasure; the
        // rebuild restores the same (when, seq) pop order.
        std::make_heap(buckets_[0].begin(), buckets_[0].end(),
                       std::greater<Entry>{});
    }
    storedCount_ = pendingCount_;
    cancelledResidue_ = 0;
    scanCacheValid_ = false;
    compactIdWindow();
}

void
EventQueue::compactIdWindow()
{
    EventId min_live = nextId_;
    for (const std::vector<Entry> &bucket : buckets_)
        for (const Entry &entry : bucket)
            if (idPending(entry.id))
                min_live = std::min(min_live, entry.id);
    std::vector<uint8_t> flags(static_cast<size_t>(nextId_ - min_live),
                               0);
    for (const std::vector<Entry> &bucket : buckets_)
        for (const Entry &entry : bucket)
            if (idPending(entry.id))
                flags[entry.id - min_live] = 1;
    idBase_ = min_live;
    idFlags_ = std::move(flags);
}

void
EventQueue::resizeCalendar(size_t nbuckets)
{
    // Gather live entries; cancelled residue is dropped for free.
    std::vector<Entry> live;
    live.reserve(pendingCount_);
    Tick min_when = std::numeric_limits<Tick>::max();
    Tick max_when = std::numeric_limits<Tick>::min();
    for (std::vector<Entry> &bucket : buckets_) {
        for (Entry &entry : bucket) {
            if (!idPending(entry.id))
                continue;
            min_when = std::min(min_when, entry.when);
            max_when = std::max(max_when, entry.when);
            live.push_back(std::move(entry));
        }
        bucket.clear();
    }
    buckets_.clear();
    buckets_.resize(nbuckets);
    bucketMask_ = nbuckets - 1;
    // Width tracks the average inter-event gap so the population
    // spreads about one event per bucket. Derived from event content
    // only, so the layout (and everything else) stays deterministic.
    if (live.size() >= 2 && max_when > min_when)
        widthShift_ = widthShiftForGap(
            (max_when - min_when)
            / static_cast<Tick>(live.size() - 1));
    for (Entry &entry : live)
        placeEntry(std::move(entry));
    storedCount_ = pendingCount_;
    cancelledResidue_ = 0;
    scanCacheValid_ = false;
}

bool
EventQueue::findNext(size_t &bucket_out, size_t &slot_out)
{
    if (storedCount_ == 0)
        return false;
    const Tick width = Tick(1) << widthShift_;
    size_t b;
    Tick window_end;
    if (scanCacheValid_ && scanCacheNow_ == now_) {
        b = scanBucket_;
        window_end = scanWindowEnd_;
    } else {
        uint64_t wq = static_cast<uint64_t>(now_) >> widthShift_;
        b = wq & bucketMask_;
        window_end = static_cast<Tick>((wq + 1) << widthShift_);
    }
    const size_t nb = buckets_.size();
    for (size_t i = 0; i < nb; ++i) {
        const std::vector<Entry> &vec = buckets_[b];
        size_t best = vec.size();
        for (size_t s = 0; s < vec.size(); ++s) {
            if (vec[s].when >= window_end)
                continue; // a later revolution of this bucket
            if (best == vec.size() || vec[best] > vec[s])
                best = s;
        }
        if (best != vec.size()) {
            scanCacheValid_ = true;
            scanCacheNow_ = now_;
            scanBucket_ = b;
            scanWindowEnd_ = window_end;
            bucket_out = b;
            slot_out = best;
            return true;
        }
        b = (b + 1) & bucketMask_;
        window_end += width;
    }
    // A full revolution saw nothing: the population is sparser than
    // one table span. Direct-search the whole table for the minimum.
    size_t best_bucket = nb;
    size_t best_slot = 0;
    for (size_t bb = 0; bb < nb; ++bb) {
        const std::vector<Entry> &vec = buckets_[bb];
        for (size_t s = 0; s < vec.size(); ++s) {
            if (best_bucket == nb
                || buckets_[best_bucket][best_slot] > vec[s]) {
                best_bucket = bb;
                best_slot = s;
            }
        }
    }
    DCBATT_ASSERT(best_bucket != nb,
                  "calendar lost entries (stored %zu)", storedCount_);
    uint64_t wq = static_cast<uint64_t>(
                      buckets_[best_bucket][best_slot].when)
        >> widthShift_;
    scanCacheValid_ = true;
    scanCacheNow_ = now_;
    scanBucket_ = best_bucket;
    scanWindowEnd_ = static_cast<Tick>((wq + 1) << widthShift_);
    bucket_out = best_bucket;
    slot_out = best_slot;
    return true;
}

size_t
EventQueue::execute(Tick until)
{
    size_t executed = 0;
    while (pendingCount_ > 0) {
        Entry entry{};
        if (backend_ == Backend::Heap) {
            std::vector<Entry> &heap = buckets_[0];
            if (heap.front().when > until)
                break;
            std::pop_heap(heap.begin(), heap.end(),
                          std::greater<Entry>{});
            entry = std::move(heap.back());
            heap.pop_back();
            --storedCount_;
        } else {
            size_t b = 0;
            size_t s = 0;
            bool found = findNext(b, s);
            DCBATT_ASSERT(found,
                          "pending events missing from calendar");
            std::vector<Entry> &vec = buckets_[b];
            if (vec[s].when > until)
                break;
            // Swap-remove in place (not a helper returning by value:
            // every extra Entry move costs a std::function manager
            // call on this per-event path).
            entry = std::move(vec[s]);
            if (s != vec.size() - 1)
                vec[s] = std::move(vec.back());
            vec.pop_back();
            --storedCount_;
        }
        if (!idPending(entry.id)) {
            --cancelledResidue_; // cancelled while queued
            continue;
        }
        clearId(entry.id);
        --pendingCount_;
        // The pop order and the schedule-in-the-past precondition
        // together guarantee monotonic event time; a violation here
        // means the queue state is corrupted.
        DCBATT_ASSERT(entry.when >= now_,
                      "event time moved backwards: %lld after %lld",
                      static_cast<long long>(entry.when),
                      static_cast<long long>(now_));
        // Re-key the scan cursor to the tick being advanced to so the
        // next dequeue resumes in this window.
        if (backend_ == Backend::Calendar && scanCacheValid_)
            scanCacheNow_ = entry.when;
        now_ = entry.when;
        entry.callback();
        ++executed;
        if (backend_ == Backend::Calendar
            && buckets_.size() > kMinBuckets
            && pendingCount_ < buckets_.size() / 8)
            resizeCalendar(buckets_.size() / 2);
    }
    return executed;
}

size_t
EventQueue::runUntil(Tick until)
{
    size_t executed = execute(until);
    // The horizon was simulated even if no event landed exactly on it.
    now_ = std::max(now_, until);
    return executed;
}

size_t
EventQueue::run()
{
    return execute(std::numeric_limits<Tick>::max());
}

PeriodicTask::PeriodicTask(EventQueue &queue, Tick period,
                           Callback callback)
    : queue_(queue), period_(period), callback_(std::move(callback))
{
    DCBATT_REQUIRE(period_ > 0, "period must be positive, got %lld",
                   static_cast<long long>(period_));
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start(Tick phase)
{
    if (armed_)
        stop();
    armed_ = true;
    Tick first = phase < 0 ? period_ : phase;
    pending_ = queue_.scheduleAfter(first, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!armed_)
        return;
    armed_ = false;
    queue_.cancel(pending_);
    pending_ = 0;
}

void
PeriodicTask::fire()
{
    if (!armed_)
        return;
    // Re-arm before invoking the callback so the callback may stop()
    // the task and have that take effect.
    pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
    callback_(queue_.now());
}

} // namespace dcbatt::sim
