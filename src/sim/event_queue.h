/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue in the gem5 tradition: events are
 * (tick, callback) pairs; ties break in scheduling order so runs are
 * deterministic. Events can be cancelled through the handle returned
 * at scheduling time. Periodic activity (controller polling, physics
 * integration steps) is built on top via PeriodicTask.
 */

#ifndef DCBATT_SIM_EVENT_QUEUE_H_
#define DCBATT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/sim_time.h"

namespace dcbatt::sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = uint64_t;

/** Single-threaded deterministic event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     * Scheduling in the past is a programming error (panics).
     */
    EventId schedule(Tick when, Callback callback);

    /** Schedule a callback @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, Callback callback);

    /**
     * Cancel a scheduled event. Returns true if the event was pending;
     * false if it already ran, was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** Whether any events remain pending. */
    bool empty() const { return pending_.empty(); }

    /** Number of pending (non-cancelled) events. */
    size_t pendingCount() const { return pending_.size(); }

    /**
     * Run all events scheduled at or before @p until, then advance the
     * clock to @p until (the horizon has been simulated even if no
     * event landed exactly on it).
     * @returns the number of events executed.
     */
    size_t runUntil(Tick until);

    /**
     * Run to quiescence; the clock stops at the last executed event.
     * @returns the number of events executed.
     */
    size_t run();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;  // FIFO tie-break for same-tick events
        EventId id;
        Callback callback;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    size_t execute(Tick until);

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    // Ids of scheduled-but-not-yet-executed events. Cancellation just
    // removes the id; the queue entry is skipped when it surfaces.
    std::unordered_set<EventId> pending_;  // detlint: allow(unordered-container) -- membership test only, never iterated
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
};

/**
 * Fixed-interval repeating task on an EventQueue. The task starts when
 * start() is called and re-arms itself until stop() or queue teardown.
 * The callback receives the current tick.
 */
class PeriodicTask
{
  public:
    using Callback = std::function<void(Tick)>;

    PeriodicTask(EventQueue &queue, Tick period, Callback callback);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Arm the task; first firing at now + phase (default: one period). */
    void start(Tick phase = -1);
    /** Disarm the task; safe to call when not running. */
    void stop();

    bool running() const { return armed_; }
    Tick period() const { return period_; }

  private:
    void fire();

    EventQueue &queue_;
    Tick period_;
    Callback callback_;
    EventId pending_ = 0;
    bool armed_ = false;
};

} // namespace dcbatt::sim

#endif // DCBATT_SIM_EVENT_QUEUE_H_
