/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue in the gem5 tradition: events are
 * (tick, callback) pairs; ties break in scheduling order so runs are
 * deterministic. Events can be cancelled through the handle returned
 * at scheduling time. Periodic activity (controller polling, physics
 * integration steps) is built on top via PeriodicTask.
 *
 * Two interchangeable backends implement the pending set (see
 * DESIGN.md §14 for the policy discussion):
 *
 *  - Calendar (default): a calendar queue — a power-of-two ring of
 *    buckets, each one bucket-width of ticks wide, with the width
 *    adapted to the observed inter-event gap at resize points.
 *    schedule() is an O(1) append into the target bucket; dequeue
 *    scans forward from now's bucket one window at a time and falls
 *    back to a direct whole-table search after a fruitless
 *    revolution. Amortized O(1) per event for the simulator's
 *    workloads (a handful of periodic streams).
 *  - Heap: the original binary-heap ordering, kept as an escape hatch
 *    and as the reference for the differential tests.
 *
 * Both backends execute events in exactly the same (when, seq) order —
 * the calendar layout changes where entries are stored, never which
 * entry is next — which the randomized differential fuzz test pins.
 * Select with DCBATT_EVENT_QUEUE=calendar|heap (backend choice only
 * affects speed, never event order, so the env read is not a
 * determinism hazard).
 *
 * Cancellation is lazy: cancel() clears the event's pending flag and
 * the stored entry becomes residue that is dropped when it surfaces.
 * So that long-lived PeriodicTask churn stays memory-bounded, the
 * queue compacts its storage whenever cancelled residue outnumbers
 * live entries (over half the stored entries are dead).
 */

#ifndef DCBATT_SIM_EVENT_QUEUE_H_
#define DCBATT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_time.h"

namespace dcbatt::sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = uint64_t;

/** Single-threaded deterministic event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Pending-set implementation (see file comment). */
    enum class Backend
    {
        Calendar,
        Heap,
    };

    /** Backend selected by $DCBATT_EVENT_QUEUE (default Calendar). */
    static Backend defaultBackend();

    EventQueue() : EventQueue(defaultBackend()) {}
    explicit EventQueue(Backend backend);

    Backend backend() const { return backend_; }

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     * Scheduling in the past is a programming error (panics).
     */
    EventId schedule(Tick when, Callback callback);

    /** Schedule a callback @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, Callback callback);

    /**
     * Cancel a scheduled event. Returns true if the event was pending;
     * false if it already ran, was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** Whether any events remain pending. */
    bool empty() const { return pendingCount_ == 0; }

    /** Number of pending (non-cancelled) events. */
    size_t pendingCount() const { return pendingCount_; }

    /**
     * Entries physically stored, including cancelled residue awaiting
     * compaction. Tests assert internalEntryCount() stays within a
     * small factor of pendingCount() (the lazy-cancellation leak
     * gate); it is never needed for scheduling decisions.
     */
    size_t internalEntryCount() const { return storedCount_; }

    /**
     * Run all events scheduled at or before @p until, then advance the
     * clock to @p until (the horizon has been simulated even if no
     * event landed exactly on it).
     * @returns the number of events executed.
     */
    size_t runUntil(Tick until);

    /**
     * Run to quiescence; the clock stops at the last executed event.
     * @returns the number of events executed.
     */
    size_t run();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;  // FIFO tie-break for same-tick events
        EventId id;
        Callback callback;

        /** Strict (when, seq) event order shared by both backends. */
        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    size_t execute(Tick until);

    /** Locate the next live entry; false when none. Does not pop. */
    bool findNext(size_t &bucket, size_t &slot);

    // --- id flag window (pending/cancelled state per event id) ------
    bool
    idPending(EventId id) const
    {
        return id >= idBase_ && id - idBase_ < idFlags_.size()
            && idFlags_[id - idBase_] != 0;
    }
    void
    clearId(EventId id)
    {
        idFlags_[id - idBase_] = 0;
    }
    void compactIdWindow();

    // --- storage maintenance ----------------------------------------
    void maybeCompact();
    void compactStorage();
    void resizeCalendar(size_t buckets);
    void placeEntry(Entry &&entry);

    Backend backend_;

    /**
     * Calendar backend: bucket b stores entries whose
     * (when >> widthShift_) ≡ b (mod bucket count). Buckets are
     * unsorted; the dequeue scan takes the (when, seq) minimum within
     * the bucket's current window. Also used (bucket 0 only, heap
     * ordered) by the Heap backend.
     */
    std::vector<std::vector<Entry>> buckets_;
    size_t bucketMask_ = 0;
    int widthShift_ = 0;
    bool widthSeeded_ = false;

    /** Dequeue scan cursor (valid while cacheNow_ == now_). */
    bool scanCacheValid_ = false;
    Tick scanCacheNow_ = 0;
    size_t scanBucket_ = 0;
    Tick scanWindowEnd_ = 0;

    /**
     * Pending flags for ids in [idBase_, idBase_ + size): 1 while the
     * event is scheduled-but-not-executed. Compacted alongside the
     * entry storage so the window stays proportional to the pending
     * count, not the total ids ever issued.
     */
    std::vector<uint8_t> idFlags_;
    EventId idBase_ = 1;

    size_t pendingCount_ = 0;
    size_t storedCount_ = 0;      // live + cancelled residue
    size_t cancelledResidue_ = 0; // stored entries already cancelled

    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
};

/**
 * Fixed-interval repeating task on an EventQueue. The task starts when
 * start() is called and re-arms itself until stop() or queue teardown.
 * The callback receives the current tick.
 */
class PeriodicTask
{
  public:
    using Callback = std::function<void(Tick)>;

    PeriodicTask(EventQueue &queue, Tick period, Callback callback);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Arm the task; first firing at now + phase (default: one period). */
    void start(Tick phase = -1);
    /** Disarm the task; safe to call when not running. */
    void stop();

    bool running() const { return armed_; }
    Tick period() const { return period_; }

  private:
    void fire();

    EventQueue &queue_;
    Tick period_;
    Callback callback_;
    EventId pending_ = 0;
    bool armed_ = false;
};

} // namespace dcbatt::sim

#endif // DCBATT_SIM_EVENT_QUEUE_H_
