#include "sim/invariant_auditor.h"

#include "obs/event_log.h"
#include "sim/sim_time.h"
#include "util/check.h"

namespace dcbatt::sim {

void
AuditContext::fail(std::string detail)
{
    violations_.push_back({invariant_, std::move(detail), now_});
}

bool
AuditContext::expect(bool ok, std::string detail)
{
    if (!ok)
        fail(std::move(detail));
    return ok;
}

namespace {

void
defaultViolationHandler(const AuditViolation &violation)
{
    ::dcbatt::util::detail::checkFailed(
        util::CheckKind::Assert, violation.invariant.c_str(),
        "invariant_auditor", 0, "audit",
        util::strf("tick %lld: %s",
                   static_cast<long long>(violation.when),
                   violation.detail.c_str()));
}

} // namespace

InvariantAuditor::InvariantAuditor(EventQueue &queue, Tick interval)
    : queue_(queue),
      task_(queue, interval, [this](Tick now) { runAudit(now); }),
      handler_(defaultViolationHandler)
{
    DCBATT_REQUIRE(interval > 0,
                   "audit interval must be positive, got %lld",
                   static_cast<long long>(interval));
}

InvariantAuditor::~InvariantAuditor() = default;

void
InvariantAuditor::addInvariant(std::string name, Check check)
{
    DCBATT_REQUIRE(static_cast<bool>(check),
                   "invariant '%s' has no check body", name.c_str());
    invariants_.push_back({std::move(name), std::move(check)});
}

void
InvariantAuditor::setViolationHandler(ViolationHandler handler)
{
    handler_ = handler ? std::move(handler) : defaultViolationHandler;
}

void
InvariantAuditor::start()
{
    task_.start();
}

void
InvariantAuditor::stop()
{
    task_.stop();
}

void
InvariantAuditor::auditNow()
{
    runAudit(queue_.now());
}

void
InvariantAuditor::runAudit(Tick now)
{
    // The kernel invariant: simulated time never moves backwards
    // between audits. This would catch a corrupted event queue (or a
    // future parallel scheduler violating the ordering contract).
    ++auditCount_;
    if (lastAuditTick_ >= 0 && now < lastAuditTick_) {
        AuditViolation violation{
            "monotonic-event-time",
            util::strf("audit time went backwards: %lld after %lld",
                       static_cast<long long>(now),
                       static_cast<long long>(lastAuditTick_)),
            now};
        ++violationCount_;
        handler_(violation);
    }
    lastAuditTick_ = now;

    const bool events_on = obs::eventLoggingEnabled();
    uint64_t violations_this_pass = 0;
    for (const NamedCheck &invariant : invariants_) {
        AuditContext context(invariant.name, now);
        invariant.check(context);
        for (const AuditViolation &violation : context.violations()) {
            ++violationCount_;
            ++violations_this_pass;
            // Journal the violation *before* the handler runs: the
            // default handler aborts through the contract machinery,
            // and the crash bundle's event tail should name the
            // failing invariant.
            if (events_on) {
                obs::logEvent(
                    toSeconds(violation.when).value(),
                    "audit_violation", {},
                    {{"invariant", violation.invariant},
                     {"detail", violation.detail}});
            }
            handler_(violation);
        }
    }
    if (events_on) {
        obs::logEvent(
            toSeconds(now).value(), "audit_pass",
            {{"invariants",
              static_cast<double>(invariants_.size())},
             {"violations",
              static_cast<double>(violations_this_pass)}});
    }
}

} // namespace dcbatt::sim
