/**
 * @file
 * Periodic physical-invariant auditing for simulations.
 *
 * An InvariantAuditor rides an EventQueue as a periodic task and runs
 * a set of registered invariant checks at a configurable interval.
 * The auditor itself owns the simulation-kernel invariant — audit
 * time (and therefore event time) is monotonically nondecreasing —
 * and higher layers register the physics: state-of-charge bounds,
 * CC-CV phase direction, breaker thermal limits, per-node power
 * conservation, and priority-aware charging order (see
 * core/charging_invariants.h).
 *
 * Checks report violations through an AuditContext instead of failing
 * directly, so one audit pass can collect every broken invariant and
 * so tests can inject deliberate violations and observe them. The
 * auditor's violation handler decides what a violation means: the
 * default forwards to the DCBATT contract machinery (print + abort);
 * tests install a recording handler.
 */

#ifndef DCBATT_SIM_INVARIANT_AUDITOR_H_
#define DCBATT_SIM_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace dcbatt::sim {

/** One detected invariant violation. */
struct AuditViolation
{
    /** Name of the invariant that failed. */
    std::string invariant;
    /** Human-readable description of the violation. */
    std::string detail;
    /** Simulation tick at which the audit observed it. */
    Tick when = 0;
};

/** Reporting surface handed to each invariant check. */
class AuditContext
{
  public:
    AuditContext(std::string_view invariant, Tick now)
        : invariant_(invariant), now_(now)
    {
    }

    /** Record a violation of the current invariant. */
    void fail(std::string detail);

    /** Record a violation if @p ok is false. Returns @p ok. */
    bool expect(bool ok, std::string detail);

    Tick now() const { return now_; }
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }
    bool clean() const { return violations_.empty(); }

  private:
    std::string invariant_;
    Tick now_;
    std::vector<AuditViolation> violations_;
};

/** Runs registered invariants at a fixed interval on an EventQueue. */
class InvariantAuditor
{
  public:
    /** Invariant body: inspect state, report through the context. */
    using Check = std::function<void(AuditContext &)>;
    /** Called once per violation, in detection order. */
    using ViolationHandler = std::function<void(const AuditViolation &)>;

    /**
     * @param queue    simulation whose state is audited.
     * @param interval audit period in ticks (> 0).
     */
    InvariantAuditor(EventQueue &queue, Tick interval);
    ~InvariantAuditor();

    InvariantAuditor(const InvariantAuditor &) = delete;
    InvariantAuditor &operator=(const InvariantAuditor &) = delete;

    /** Register a named invariant; audited in registration order. */
    void addInvariant(std::string name, Check check);

    /**
     * Replace the violation handler. The default forwards to the
     * DCBATT contract fail handler (print + abort).
     */
    void setViolationHandler(ViolationHandler handler);

    /** Arm the periodic audit (first audit after one interval). */
    void start();
    /** Disarm; safe when not running. */
    void stop();

    /** Run one audit pass immediately (also advances the stats). */
    void auditNow();

    /** Number of audit passes executed. */
    uint64_t auditCount() const { return auditCount_; }
    /** Total violations detected across all passes. */
    uint64_t violationCount() const { return violationCount_; }
    /** Number of registered invariants. */
    size_t invariantCount() const { return invariants_.size(); }

  private:
    struct NamedCheck
    {
        std::string name;
        Check check;
    };

    void runAudit(Tick now);

    EventQueue &queue_;
    PeriodicTask task_;
    std::vector<NamedCheck> invariants_;
    ViolationHandler handler_;
    Tick lastAuditTick_ = -1;
    uint64_t auditCount_ = 0;
    uint64_t violationCount_ = 0;
};

} // namespace dcbatt::sim

#endif // DCBATT_SIM_INVARIANT_AUDITOR_H_
