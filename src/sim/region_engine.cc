#include "sim/region_engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include "battery/charger_policy.h"
#include "core/charging_invariants.h"
#include "core/priority_aware_coordinator.h"
#include "core/region_budget.h"
#include "core/sla.h"
#include "dynamo/controller.h"
#include "obs/metrics.h"
#include "obs/time_series_recorder.h"
#include "obs/trace_span.h"
#include "sim/event_queue.h"
#include "sim/invariant_auditor.h"
#include "trace/streaming_trace_source.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace dcbatt::sim {

using power::RegionSpec;
using util::Seconds;
using util::Watts;

namespace {

/** Tolerance separating budget overshoot from float fuzz. */
constexpr double kBudgetSlackW = 1e3;

/**
 * One MSB shard: its own topology, control plane, streaming trace
 * source, and (sharded mode) its own event queue. All mutable state
 * is confined to the shard; the driver touches it only between
 * chunks, in shard-index order.
 */
class MsbShard
{
  public:
    /**
     * @p shared_queue null: shard owns a queue (sharded mode);
     * non-null: events ride the caller's queue (single-queue mode).
     * Construction schedules everything the shard will ever schedule
     * from the outside: control-plane ticks, the open transition, the
     * charge-start snapshot, optional auditing, and the physics task
     * (first firing at tick 0).
     */
    MsbShard(const RegionSpec &spec, int index,
             EventQueue *shared_queue)
        : spec_(&spec), index_(index),
          ownQueue_(shared_queue
                        ? nullptr
                        : std::make_unique<EventQueue>()),
          queue_(shared_queue ? shared_queue : ownQueue_.get()),
          source_(streamingSpec(spec, index)),
          topo_(power::Topology::build(
              power::msbTopologySpec(spec, index),
              battery::makeVariableCharger(spec.bbuParams)))
    {
        const int racks = spec.racksPerMsb;
        done_.assign(static_cast<size_t>(racks), 0);
        everCapped_.assign(static_cast<size_t>(racks), 0);
        everHeld_.assign(static_cast<size_t>(racks), 0);
        initialDod_.assign(static_cast<size_t>(racks), 0.0);
        sawOutage_.assign(static_cast<size_t>(racks), 0);
        chargeDurationS_.assign(static_cast<size_t>(racks), -1.0);

        // Prefetch sample 0 so the tick-0 budget split sees real IT
        // demand instead of an all-zero fleet (a zero grant would cap
        // every server before the first physics step).
        applyTraceSample(0);

        // Control plane: the paper's priority-aware policy under each
        // MSB root, monitoring/capping controllers below.
        core::SlaCurrentCalculator calc(
            battery::ChargeTimeModel(spec.bbuParams),
            core::SlaTable::paperDefault());
        coordinator_ = std::make_unique<core::PriorityAwareCoordinator>(
            std::move(calc), core::PriorityAwareOptions{});
        plane_ = std::make_unique<dynamo::ControlPlane>(
            topo_, topo_.root(), *queue_, coordinator_.get());
        plane_->start();

        // Staggered open transition, then the charge-start snapshot
        // (scheduled after the restore event, so same-tick FIFO order
        // guarantees the batteries have flipped to charging but not
        // yet absorbed anything — exactly like runChargingEvent).
        otStart_ = spec.firstOutage
            + spec.outageStagger * static_cast<double>(index);
        util::Joules rack_energy = spec.bbuParams.fullDischargeEnergy
            * static_cast<double>(spec.bbuParams.bbusPerRack);
        Watts mean_rack_power = spec.msbAggregateMean
            / static_cast<double>(spec.racksPerMsb);
        otLength_ = spec.openTransitionLength.value_or(
            rack_energy * spec.targetMeanDod / mean_rack_power);
        chargeStart_ = otStart_ + otLength_;
        if (chargeStart_ >= spec.duration) {
            util::fatal(util::strf(
                "runRegion: MSB %d open transition [%.0f, %.0f]s "
                "ends outside the %.0f s run",
                index, otStart_.value(), chargeStart_.value(),
                spec.duration.value()));
        }
        topo_.scheduleOpenTransition(*queue_, topo_.root(),
                                     toTicks(otStart_),
                                     toTicks(otLength_));
        queue_->schedule(toTicks(chargeStart_), [this] {
            const int racks = spec_->racksPerMsb;
            double dod_sum = 0.0;
            for (int i = 0; i < racks; ++i) {
                auto idx = static_cast<size_t>(i);
                double dod = topo_.rack(i).shelf().meanDod();
                initialDod_[idx] = dod;
                sawOutage_[idx] = topo_.rack(i).sawOutage() ? 1 : 0;
                dod_sum += dod;
            }
            meanInitialDod_ = dod_sum / racks;
        });

        if (spec.auditInterval) {
            auditor_ = std::make_unique<InvariantAuditor>(
                *queue_, toTicks(*spec.auditInterval));
            core::registerChargingInvariants(*auditor_, topo_,
                                             coordinator_.get());
            auditor_->start();
        }

        physics_ = std::make_unique<PeriodicTask>(
            *queue_, toTicks(spec.physicsStep),
            [this](Tick now) { step(now); });
        physics_->start(0);
    }

    EventQueue &queue() { return *queue_; }

    /** Budget-splitter input; called between chunks only. */
    core::MsbBudgetReport
    report() const
    {
        core::MsbBudgetReport r;
        r.msbIndex = index_;
        r.suite = power::suiteOfMsb(*spec_, index_);
        r.building = power::buildingOfMsb(*spec_, index_);
        r.breakerLimitW = spec_->msbLimit.value();
        // IT demand, not measured draw: during an open transition the
        // grid sees nothing, but the grant must already cover the
        // load for the restore instant.
        double per_rack_charge_w =
            battery::rackWattsPerAmpere(spec_->bbuParams).value()
            * spec_->bbuParams.maxCurrent.value();
        for (const power::Rack *rack : topo_.racks()) {
            r.itW += rack->itLoad().value();
            if (!rack->shelf().fullyCharged()) {
                r.demandW[static_cast<size_t>(
                    power::priorityIndex(rack->priority()))] +=
                    per_rack_charge_w;
            }
        }
        return r;
    }

    /** Impose this tick's budget ceiling; called between chunks. */
    void
    applyGrant(double grant_w)
    {
        grantW_ = grant_w;
        plane_->rootController().setLimitCeiling(Watts(grant_w));
        grantSumW_ += grant_w;
        grantMinW_ = std::min(grantMinW_, grant_w);
        grantMaxW_ = std::max(grantMaxW_, grant_w);
        ++grantTicks_;
    }

    /** Grid draw of the shard's last physics step (W). */
    double
    lastItW() const
    {
        return topo_.stepPowerTotals().itW;
    }
    double
    lastRechargeW() const
    {
        return topo_.stepPowerTotals().rechargeW;
    }
    double
    lastCapW() const
    {
        return topo_.stepPowerTotals().capW;
    }

    uint64_t
    physicalAudits() const
    {
        return auditor_ ? auditor_->auditCount() : 0;
    }

    /** Fold the run into the outcome row (driving thread only). */
    RegionMsbOutcome
    finalize()
    {
        physics_->stop();
        plane_->stop();
        if (auditor_) {
            auditor_->stop();
            auditor_->auditNow();
        }

        RegionMsbOutcome out;
        out.msbIndex = index_;
        out.name = power::msbName(*spec_, index_);
        out.racks = spec_->racksPerMsb;
        out.suite = power::suiteOfMsb(*spec_, index_);
        out.building = power::buildingOfMsb(*spec_, index_);
        out.peakMw = util::toMegawatts(Watts(peakW_));
        out.overloadSteps = overloadSteps_;
        out.budgetOverSteps = budgetOverSteps_;
        out.breakerTripped = topo_.root().breaker()->tripped();
        out.meanInitialDod = meanInitialDod_;

        core::SlaTable sla_table = core::SlaTable::paperDefault();
        for (int i = 0; i < spec_->racksPerMsb; ++i) {
            auto idx = static_cast<size_t>(i);
            auto pri = static_cast<size_t>(
                power::priorityIndex(topo_.rack(i).priority()));
            ++out.racksByPriority[pri];
            double duration_s = chargeDurationS_[idx];
            if (duration_s >= 0.0
                && duration_s <= sla_table
                                     .chargeTimeSla(
                                         topo_.rack(i).priority())
                                     .value())
                ++out.slaMetByPriority[pri];
            out.outages += sawOutage_[idx];
            out.everCapped += everCapped_[idx];
            out.everHeld += everHeld_[idx];
        }

        out.meanGrantMw = grantTicks_ > 0
            ? util::toMegawatts(
                  Watts(grantSumW_ / static_cast<double>(grantTicks_)))
            : 0.0;
        out.minGrantMw = grantTicks_ > 0
            ? util::toMegawatts(Watts(grantMinW_))
            : 0.0;
        out.maxGrantMw = util::toMegawatts(Watts(grantMaxW_));
        out.itEnergyMwh = itWs_ / 3.6e9;
        out.rechargeEnergyMwh = rechargeWs_ / 3.6e9;

        const trace::StreamingTraceStats &ts = source_.stats();
        out.traceWindowsGenerated = ts.windowsGenerated;
        out.traceRefetches = ts.refetches;
        out.traceEvictions = ts.evictions;
        out.tracePeakResidentBytes = ts.peakResidentBytes;
        return out;
    }

  private:
    static trace::StreamingTraceSpec
    streamingSpec(const RegionSpec &spec, int index)
    {
        trace::StreamingTraceSpec streaming;
        trace::TraceGenSpec &base = streaming.base;
        base.rackCount = spec.racksPerMsb;
        // One trailing step of margin so the zero-order hold at the
        // final physics tick still lands inside the trace.
        base.duration = spec.duration + spec.traceStep;
        base.step = spec.traceStep;
        base.startTime = Seconds(0.0);
        // Per-MSB seed substream: shard count is part of the spec, so
        // this is a semantic input, never a function of --threads.
        base.seed = util::Rng::substreamSeed(
            spec.seed, static_cast<uint64_t>(index));
        base.aggregateMean = spec.msbAggregateMean;
        base.aggregateAmplitude = spec.msbAggregateAmplitude;
        base.priorities = power::msbPriorityMix(spec);
        streaming.windowSamples = spec.windowSamples;
        streaming.maxResidentWindows = spec.maxResidentWindows;
        return streaming;
    }

    /** Push trace sample @p idx into every rack's IT demand. */
    void
    applyTraceSample(size_t idx)
    {
        const trace::TraceWindow &window = source_.windowFor(idx);
        const double *row = window.row(idx);
        const int racks = spec_->racksPerMsb;
        for (int i = 0; i < racks; ++i)
            topo_.rack(i).setItDemand(Watts(row[static_cast<size_t>(i)]));
        lastTraceIdx_ = idx;
    }

    /** Per-physics-step body (runs on whichever worker owns the chunk). */
    void
    step(Tick now)
    {
        Seconds sim_now = toSeconds(now);
        size_t idx = source_.sampleIndexAt(sim_now);
        if (idx != lastTraceIdx_)
            applyTraceSample(idx);

        const Seconds dt = spec_->physicsStep;
        topo_.stepRacks(dt);
        topo_.observeBreakers(dt);

        const power::Topology::StepPowerTotals &totals =
            topo_.stepPowerTotals();
        double msb_w = totals.itW + totals.rechargeW;
        peakW_ = std::max(peakW_, msb_w);
        if (msb_w > spec_->msbLimit.value())
            ++overloadSteps_;
        if (msb_w > grantW_ + kBudgetSlackW)
            ++budgetOverSteps_;
        itWs_ += totals.itW * dt.value();
        rechargeWs_ += totals.rechargeW * dt.value();

        const battery::FleetState &fleet = topo_.fleet();
        const bool after_start = sim_now > chargeStart_;
        const int racks = spec_->racksPerMsb;
        for (int i = 0; i < racks; ++i) {
            auto row = static_cast<size_t>(i);
            if (fleet.capW[row] > 0.0)
                everCapped_[row] = 1;
            if (fleet.held[row])
                everHeld_[row] = 1;
            if (!after_start || done_[row])
                continue;
            if (fleet.fullyCharged[row]) {
                done_[row] = 1;
                chargeDurationS_[row] =
                    (sim_now - chargeStart_).value();
            }
        }
    }

    const RegionSpec *spec_;
    int index_;
    /** Owned queue (sharded mode); destroyed after every task below. */
    std::unique_ptr<EventQueue> ownQueue_;
    EventQueue *queue_;
    trace::StreamingTraceSource source_;
    power::Topology topo_;
    std::unique_ptr<core::PriorityAwareCoordinator> coordinator_;
    std::unique_ptr<dynamo::ControlPlane> plane_;
    std::unique_ptr<InvariantAuditor> auditor_;
    std::unique_ptr<PeriodicTask> physics_;

    Seconds otStart_{0.0};
    Seconds otLength_{0.0};
    Seconds chargeStart_{0.0};
    size_t lastTraceIdx_ = std::numeric_limits<size_t>::max();

    std::vector<uint8_t> done_;
    std::vector<uint8_t> everCapped_;
    std::vector<uint8_t> everHeld_;
    std::vector<double> initialDod_;
    std::vector<uint8_t> sawOutage_;
    /** Seconds from charge start to fully charged; -1 = never. */
    std::vector<double> chargeDurationS_;
    double meanInitialDod_ = 0.0;

    double peakW_ = 0.0;
    int overloadSteps_ = 0;
    int budgetOverSteps_ = 0;
    double itWs_ = 0.0;
    double rechargeWs_ = 0.0;

    double grantW_ = std::numeric_limits<double>::infinity();
    double grantSumW_ = 0.0;
    double grantMinW_ = std::numeric_limits<double>::infinity();
    double grantMaxW_ = 0.0;
    uint64_t grantTicks_ = 0;
};

} // namespace

RegionResult
runRegion(const RegionSpec &spec, const RegionRunOptions &options)
{
    DCBATT_SPAN_NAMED(region_span, "sim.runRegion");
    power::validateRegionSpec(spec);
    const int n_msbs = spec.msbs;
    region_span.arg("msbs", static_cast<double>(n_msbs));
    region_span.arg("racks",
                    static_cast<double>(n_msbs * spec.racksPerMsb));

    const Tick horizon = toTicks(spec.duration);
    const Tick cadence = toTicks(spec.coordinationPeriod);
    DCBATT_REQUIRE(cadence > 0, "coordination period under one tick");

    // Budget-splitter configuration (static for the whole run).
    core::RegionBudgetConfig budget;
    budget.regionBudgetW = power::effectiveRegionBudget(spec).value();
    if (spec.suiteLimit.value()
        < std::numeric_limits<double>::infinity()) {
        budget.suiteLimitW.assign(
            static_cast<size_t>(power::suiteCount(spec)),
            spec.suiteLimit.value());
    }
    if (spec.buildingLimit.value()
        < std::numeric_limits<double>::infinity()) {
        budget.buildingLimitW.assign(
            static_cast<size_t>(spec.buildings),
            spec.buildingLimit.value());
    }

    // Single-queue mode: the shared queue must outlive the shards,
    // and the splitter events must be scheduled BEFORE any shard is
    // built so that, at a shared tick, the split always runs first
    // (lowest seq). Sharded mode gets the same ordering from the
    // chunk boundaries below.
    std::unique_ptr<EventQueue> shared_queue;
    if (options.singleQueue)
        shared_queue = std::make_unique<EventQueue>();

    RegionResult result;
    result.itMw = util::TimeSeries(Seconds(0.0),
                                   spec.coordinationPeriod);
    result.demandItMw = result.itMw;
    result.rechargeMw = result.itMw;
    result.capMw = result.itMw;
    result.grantMw = result.itMw;
    result.unmetMw = result.itMw;
    result.regionPowerMw = result.itMw;

    std::vector<std::unique_ptr<MsbShard>> shards;
    shards.reserve(static_cast<size_t>(n_msbs));

    std::vector<core::MsbBudgetReport> reports(
        static_cast<size_t>(n_msbs));

    // Rollup snapshot of the latest coordination tick, feeding the
    // armed time-series tape (side channel; stdout never reads it).
    struct Rollup
    {
        double itW = 0.0;
        double demandItW = 0.0;
        double rechargeW = 0.0;
        double capW = 0.0;
        double grantW = 0.0;
        double unmetW = 0.0;
        double powerW = 0.0;
    } rollup;

    std::unique_ptr<obs::TimeSeriesRecorder> recorder;
    if (obs::timeSeriesArmed()) {
        recorder = std::make_unique<obs::TimeSeriesRecorder>(
            obs::armedTimeSeriesOptions());
        recorder->addProbe("region_power_mw", [&rollup] {
            return rollup.powerW / 1e6;
        });
        recorder->addProbe("region_it_mw", [&rollup] {
            return rollup.itW / 1e6;
        });
        recorder->addProbe("region_recharge_mw", [&rollup] {
            return rollup.rechargeW / 1e6;
        });
        recorder->addProbe("region_cap_mw", [&rollup] {
            return rollup.capW / 1e6;
        });
        recorder->addProbe("region_grant_mw", [&rollup] {
            return rollup.grantW / 1e6;
        });
        recorder->addProbe("region_unmet_mw", [&rollup] {
            return rollup.unmetW / 1e6;
        });
    }

    // Everything the splitter does at one coordination tick: collect
    // reports, split, audit, apply grants, roll up — all in
    // shard-index order on the driving thread, so the artifacts are
    // independent of worker count.
    auto coordinate = [&](Tick at) {
        for (int i = 0; i < n_msbs; ++i)
            reports[static_cast<size_t>(i)] =
                shards[static_cast<size_t>(i)]->report();
        core::RegionBudgetOutcome outcome =
            core::splitRegionBudget(budget, reports);
        core::auditRegionBudget(budget, reports, outcome);
        ++result.budgetAudits;

        rollup = Rollup{};
        for (int i = 0; i < n_msbs; ++i) {
            auto idx = static_cast<size_t>(i);
            shards[idx]->applyGrant(outcome.grantW[idx]);
            rollup.itW += shards[idx]->lastItW();
            rollup.rechargeW += shards[idx]->lastRechargeW();
            rollup.capW += shards[idx]->lastCapW();
            rollup.demandItW += reports[idx].itW;
            rollup.grantW += outcome.grantW[idx];
        }
        rollup.powerW = rollup.itW + rollup.rechargeW;
        rollup.unmetW = outcome.itUnmetW + outcome.classUnmetW[0]
            + outcome.classUnmetW[1] + outcome.classUnmetW[2];

        result.itMw.append(rollup.itW / 1e6);
        result.demandItMw.append(rollup.demandItW / 1e6);
        result.rechargeMw.append(rollup.rechargeW / 1e6);
        result.capMw.append(rollup.capW / 1e6);
        result.grantMw.append(rollup.grantW / 1e6);
        result.unmetMw.append(rollup.unmetW / 1e6);
        result.regionPowerMw.append(rollup.powerW / 1e6);
        ++result.coordinationTicks;
        if (recorder)
            recorder->sampleAt(toSeconds(at).value());
    };

    if (options.singleQueue) {
        for (Tick t = 0; t < horizon; t += cadence)
            shared_queue->schedule(t, [&coordinate, t] {
                coordinate(t);
            });
    }

    for (int i = 0; i < n_msbs; ++i) {
        shards.push_back(std::make_unique<MsbShard>(
            spec, i, shared_queue.get()));
    }

    if (options.singleQueue) {
        shared_queue->runUntil(horizon - 1);
    } else {
        util::ThreadPool pool(std::max(options.threads, 1u));
        for (Tick t = 0; t < horizon; t += cadence) {
            coordinate(t);
            Tick chunk_end = std::min(t + cadence, horizon);
            // runUntil is inclusive: events AT the boundary tick must
            // wait for the next split, exactly as the splitter's
            // lower seq arranges in single-queue mode.
            pool.parallelFor(
                static_cast<size_t>(n_msbs), [&](size_t shard) {
                    shards[shard]->queue().runUntil(chunk_end - 1);
                });
        }
    }

    // --- fold outcomes (shard-index order, driving thread) ----------
    uint64_t sla_met = 0;
    uint64_t racks_total = 0;
    for (int i = 0; i < n_msbs; ++i) {
        result.physicalAudits +=
            shards[static_cast<size_t>(i)]->physicalAudits();
        RegionMsbOutcome out =
            shards[static_cast<size_t>(i)]->finalize();
        sla_met += static_cast<uint64_t>(out.slaMetTotal());
        racks_total += static_cast<uint64_t>(out.racks);
        result.tracePeakResidentBytes += out.tracePeakResidentBytes;
        result.msbs.push_back(std::move(out));
    }
    result.peakRegionMw = result.regionPowerMw.size() > 0
        ? result.regionPowerMw.maxValue()
        : 0.0;

    // --- obs layer ---------------------------------------------------
    // One registry visit after the run; every value is
    // simulation-deterministic, so snapshots are identical at any
    // --threads (gauges below max-merge for the same reason).
    DCBATT_COUNT("region.runs");
    DCBATT_COUNT_N("region.msbs_simulated",
                   static_cast<uint64_t>(n_msbs));
    DCBATT_COUNT_N("region.racks_simulated", racks_total);
    DCBATT_COUNT_N("region.coordination_ticks",
                   result.coordinationTicks);
    DCBATT_COUNT_N("region.budget_audits", result.budgetAudits);
    DCBATT_COUNT_N("region.sla_met", sla_met);
    DCBATT_COUNT_N("region.sla_missed", racks_total - sla_met);
    {
        static obs::Gauge &peak_gauge =
            obs::gauge("region.peak_power_mw");
        peak_gauge.setMax(result.peakRegionMw);
        static obs::Gauge &resident_gauge =
            obs::gauge("region.trace_resident_bytes_peak");
        resident_gauge.setMax(
            static_cast<double>(result.tracePeakResidentBytes));
    }
    for (const RegionMsbOutcome &msb : result.msbs) {
        obs::gauge(util::strf("region.msb%03d.peak_mw", msb.msbIndex))
            .setMax(msb.peakMw);
        obs::gauge(
            util::strf("region.msb%03d.sla_met", msb.msbIndex))
            .setMax(static_cast<double>(msb.slaMetTotal()));
        obs::gauge(
            util::strf("region.msb%03d.outages", msb.msbIndex))
            .setMax(static_cast<double>(msb.outages));
    }
    if (recorder) {
        recorder->sampleAt(spec.duration.value());
        obs::publishTimeSeries(std::move(*recorder));
    }

    region_span.arg("coordination_ticks",
                    static_cast<double>(result.coordinationTicks));
    region_span.arg("peak_mw", result.peakRegionMw);
    return result;
}

} // namespace dcbatt::sim
