/**
 * @file
 * Region-scale simulation engine: dozens of MSBs, one deterministic
 * run.
 *
 * Each MSB of a power::RegionSpec becomes an independent *shard*: its
 * own Topology, Dynamo control plane, streaming trace source, and —
 * in the default sharded mode — its own EventQueue. Shards only
 * interact through the cross-MSB budget splitter
 * (core::splitRegionBudget), which runs every coordination tick on
 * the driving thread and imposes per-MSB power ceilings via
 * dynamo::BreakerController::setLimitCeiling.
 *
 * Determinism contract (DESIGN.md §15; pinned by
 * sim_region_engine_test):
 *
 *  - Shard count equals the MSB count and is part of the spec, never
 *    derived from --threads. Shard i's trace seed is substream i of
 *    the region seed.
 *  - Sharded mode advances every shard queue in lockstep chunks of
 *    one coordination period on a util::ThreadPool; all cross-shard
 *    reads (budget reports, rollups) happen between chunks, on the
 *    driving thread, in shard-index order. Results are therefore
 *    bit-identical at any --threads.
 *  - Single-queue mode (RegionRunOptions::singleQueue) runs the same
 *    spec through ONE EventQueue carrying every shard's events plus
 *    the splitter as highest-priority same-tick events. It is the
 *    reference implementation for the differential test: both modes
 *    must produce byte-identical artifacts. The chunked runUntil
 *    boundary sits at (tick - 1) precisely so that boundary-tick
 *    physics runs after the splitter in both modes.
 *
 * Artifacts: a per-MSB outcome table and a region rollup tape sampled
 * at the coordination cadence, plus obs-layer per-MSB gauges and the
 * region time-series tape when armed.
 */

#ifndef DCBATT_SIM_REGION_ENGINE_H_
#define DCBATT_SIM_REGION_ENGINE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "power/region_spec.h"
#include "util/time_series.h"

namespace dcbatt::sim {

/** Execution knobs (never simulation semantics). */
struct RegionRunOptions
{
    /** Worker threads for the sharded mode (>= 1). */
    unsigned threads = 1;
    /**
     * Run every shard through one shared EventQueue instead of
     * per-shard queues (the differential-test reference; forces
     * single-threaded execution).
     */
    bool singleQueue = false;
};

/** Outcome of one MSB shard. */
struct RegionMsbOutcome
{
    int msbIndex = -1;
    std::string name;
    int racks = 0;
    int suite = 0;
    int building = 0;

    double peakMw = 0.0;
    /** Physics steps above the MSB breaker rating. */
    int overloadSteps = 0;
    /** Physics steps above the granted budget ceiling (+1 kW). */
    int budgetOverSteps = 0;
    bool breakerTripped = false;

    double meanInitialDod = 0.0;
    std::array<int, 3> racksByPriority{0, 0, 0};
    std::array<int, 3> slaMetByPriority{0, 0, 0};
    /** Racks whose batteries emptied during the open transition. */
    int outages = 0;
    int everCapped = 0;
    int everHeld = 0;

    double meanGrantMw = 0.0;
    double minGrantMw = 0.0;
    double maxGrantMw = 0.0;

    double itEnergyMwh = 0.0;
    double rechargeEnergyMwh = 0.0;

    uint64_t traceWindowsGenerated = 0;
    uint64_t traceRefetches = 0;
    uint64_t traceEvictions = 0;
    size_t tracePeakResidentBytes = 0;

    int slaMetTotal() const
    {
        return slaMetByPriority[0] + slaMetByPriority[1]
            + slaMetByPriority[2];
    }
};

/** Region-level result: per-MSB outcomes plus the rollup tape. */
struct RegionResult
{
    std::vector<RegionMsbOutcome> msbs;

    /**
     * Rollup series sampled once per coordination tick (start 0,
     * step = coordinationPeriod). Power values are MW. "it"/"recharge"
     * are grid draw folded from the shards' last physics step;
     * "demand" is the uncurtailed IT demand the splitter saw;
     * "grant"/"unmet" come from the budget split of that tick.
     */
    util::TimeSeries itMw;
    util::TimeSeries demandItMw;
    util::TimeSeries rechargeMw;
    util::TimeSeries capMw;
    util::TimeSeries grantMw;
    util::TimeSeries unmetMw;
    util::TimeSeries regionPowerMw;

    double peakRegionMw = 0.0;
    uint64_t coordinationTicks = 0;
    /** Splitter audits run (one per coordination tick). */
    uint64_t budgetAudits = 0;
    /** Per-shard physical-invariant audit passes (if enabled). */
    uint64_t physicalAudits = 0;
    /** Sum over shards of each trace source's peak resident bytes. */
    size_t tracePeakResidentBytes = 0;

    int racksTotal() const
    {
        int n = 0;
        for (const RegionMsbOutcome &msb : msbs)
            n += msb.racks;
        return n;
    }
};

/**
 * Run the region described by @p spec for its full duration.
 * Byte-identical output for any options.threads; singleQueue selects
 * the reference execution mode (same artifacts, one queue).
 */
RegionResult runRegion(const power::RegionSpec &spec,
                       const RegionRunOptions &options = {});

} // namespace dcbatt::sim

#endif // DCBATT_SIM_REGION_ENGINE_H_
