/**
 * @file
 * Simulation time.
 *
 * The event kernel runs on integer microsecond ticks so event ordering
 * is exact and runs are bit-reproducible; physics code uses
 * util::Seconds. Conversions between the two live here.
 */

#ifndef DCBATT_SIM_SIM_TIME_H_
#define DCBATT_SIM_SIM_TIME_H_

#include <cstdint>

#include "util/units.h"

namespace dcbatt::sim {

/** Simulation tick count; one tick is one microsecond. */
using Tick = int64_t;

/** Ticks per second. */
inline constexpr Tick kTicksPerSecond = 1'000'000;

/** Convert a physical duration to ticks (rounding to nearest). */
constexpr Tick
toTicks(util::Seconds s)
{
    double t = s.value() * static_cast<double>(kTicksPerSecond);
    return static_cast<Tick>(t + (t >= 0 ? 0.5 : -0.5));
}

/** Convert ticks to a physical duration. */
constexpr util::Seconds
toSeconds(Tick t)
{
    return util::Seconds(static_cast<double>(t)
                         / static_cast<double>(kTicksPerSecond));
}

} // namespace dcbatt::sim

#endif // DCBATT_SIM_SIM_TIME_H_
