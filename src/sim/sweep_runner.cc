#include "sim/sweep_runner.h"

#include <exception>
#include <future>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dcbatt::sim {

std::vector<core::ChargingEventResult>
SweepRunner::run(const std::vector<SweepTask> &tasks) const
{
    DCBATT_COUNT("sweep.runs");
    DCBATT_COUNT_N("sweep.tasks", tasks.size());
    DCBATT_SPAN_NAMED(sweep_span, "sweep.run");
    sweep_span.arg("tasks", static_cast<double>(tasks.size()));
    std::vector<std::future<core::ChargingEventResult>> futures;
    futures.reserve(tasks.size());
    for (size_t task_idx = 0; task_idx < tasks.size(); ++task_idx) {
        const SweepTask &task = tasks[task_idx];
        const trace::TraceSet *traces =
            task.traces ? task.traces : task.sharedTraces.get();
        DCBATT_REQUIRE(traces != nullptr,
                       "sweep task '%s' has no trace set",
                       task.label.c_str());
        // The config is copied into the closure; the trace set is
        // shared read-only across tasks (the shared_ptr, when that is
        // the handle given, keeps the set alive for the task's
        // lifetime). Warm its lazy aggregate/peak caches here, on the
        // submitting thread, so the workers never write them.
        traces->warmCaches();
        // The flight-recorder scope embeds the submission index, so
        // event logs and time-series tapes merge into task order no
        // matter which worker thread runs which task.
        futures.push_back(pool_->submit(
            [config = task.config, traces,
             owner = task.sharedTraces,
             scope = util::strf("%04zu:%s", task_idx,
                                task.label.c_str())] {
                obs::RunScope run_scope(scope);
                return core::runChargingEvent(config, *traces);
            }));
    }

    // Collect in task order. Every future is drained before any
    // rethrow so no task is left running against a caller frame that
    // is already unwinding.
    std::vector<core::ChargingEventResult> results(tasks.size());
    std::exception_ptr first_error;
    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            results[i] = futures[i].get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace dcbatt::sim
