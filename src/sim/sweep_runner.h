/**
 * @file
 * Parallel charging-event sweep runner.
 *
 * The evaluation artifacts (Figs. 13-15, the ablation, the CLI's
 * multi-limit sweeps) all run vectors of independent full charging
 * events — same engine, different configs. SweepRunner fans such a
 * vector across a util::ThreadPool and collects the results *in task
 * order*, so a bench's printed output is byte-identical at any thread
 * count: parallelism changes wall time, never content.
 *
 * Each task carries its own trace handle. Tasks may share one
 * trace set (e.g. bench::paperMsbTraces(), a const process-wide
 * singleton, or a trace::sharedTraces() cache entry) because
 * runChargingEvent only reads traces; anything a task mutates lives in
 * its own topology/event-queue instance.
 */

#ifndef DCBATT_SIM_SWEEP_RUNNER_H_
#define DCBATT_SIM_SWEEP_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/charging_event_sim.h"
#include "trace/trace_set.h"

namespace dcbatt::util {
class ThreadPool;
}

namespace dcbatt::sim {

/**
 * One charging event to run: a config plus its trace handle. Exactly
 * one of `traces` (borrowed) or `sharedTraces` (owned) must be set;
 * `traces` wins when both are.
 */
struct SweepTask
{
    /** Free-form tag the caller uses to identify the result. */
    std::string label;
    core::ChargingEventConfig config;
    /** Borrowed; must outlive the run() call. */
    const trace::TraceSet *traces = nullptr;
    /**
     * Owning alternative to `traces`, e.g. a trace::sharedTraces()
     * cache entry; kept alive by the task closure for the whole run.
     */
    std::shared_ptr<const trace::TraceSet> sharedTraces;
};

/** Fans charging events across a pool; results come back in order. */
class SweepRunner
{
  public:
    /** @p pool is borrowed and must outlive the runner. */
    explicit SweepRunner(util::ThreadPool &pool) : pool_(&pool) {}

    /**
     * Run every task and return the results in task order. The first
     * exception a task throws is rethrown after all tasks finish.
     * Must not be called from inside a task of the same pool.
     */
    std::vector<core::ChargingEventResult>
    run(const std::vector<SweepTask> &tasks) const;

  private:
    util::ThreadPool *pool_;
};

} // namespace dcbatt::sim

#endif // DCBATT_SIM_SWEEP_RUNNER_H_
