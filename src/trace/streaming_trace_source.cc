#include "trace/streaming_trace_source.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"

namespace dcbatt::trace {

using power::Priority;
using util::Seconds;

namespace {

/** Diurnal shape: cosine peaking at the configured time of day. */
double
diurnalShape(double t_s, double peak_s, double phase_shift_h)
{
    constexpr double day = 24.0 * 3600.0;
    double shifted = t_s - peak_s - phase_shift_h * 3600.0;
    return std::cos(2.0 * std::numbers::pi * shifted / day);
}

/** Weekly modulation: weekends run flatter/lower. */
double
weeklyScale(double t_s, double weekend_dip)
{
    constexpr double day = 24.0 * 3600.0;
    int day_index = static_cast<int>(t_s / day) % 7;
    bool weekend = day_index >= 5;
    return weekend ? 1.0 - weekend_dip : 1.0;
}

} // namespace

StreamingTraceSource::StreamingTraceSource(StreamingTraceSpec spec)
    : spec_(std::move(spec))
{
    const TraceGenSpec &base = spec_.base;
    if (base.rackCount <= 0)
        util::fatal("StreamingTraceSource: rack count must be positive");
    if (base.step.value() <= 0.0 || base.duration < base.step)
        util::fatal("StreamingTraceSource: bad step/duration");
    if (spec_.windowSamples == 0)
        util::fatal("StreamingTraceSource: windowSamples must be >= 1");
    if (spec_.maxResidentWindows == 0)
        util::fatal(
            "StreamingTraceSource: maxResidentWindows must be >= 1");

    totalSamples_ = static_cast<size_t>(base.duration / base.step);
    windowCount_ =
        (totalSamples_ + spec_.windowSamples - 1) / spec_.windowSamples;

    // Per-rack static parameters and the initial AR(1) state, drawn
    // from substream 0 in the exact order generateTraces uses for its
    // setup loop. Kept for the source's lifetime: the fleet shape is
    // O(racks), not O(samples).
    auto racks = static_cast<size_t>(base.rackCount);
    params_.base.resize(racks);
    params_.amplitude.resize(racks);
    params_.phase.resize(racks);
    params_.noiseSigma.resize(racks);
    params_.noiseRho.resize(racks);
    std::vector<double> ar(racks);
    util::Rng rng(util::Rng::substreamSeed(base.seed, 0));
    for (size_t i = 0; i < racks; ++i) {
        Priority p = base.priorities.empty()
            ? Priority::P2
            : base.priorities[i % base.priorities.size()];
        const RackProfile &prof =
            base.profiles[power::priorityIndex(p)];
        params_.base[i] = prof.baseMean.value()
            + rng.uniform(-prof.baseSpread.value(),
                          prof.baseSpread.value());
        params_.amplitude[i] =
            prof.diurnalAmplitude * rng.uniform(0.7, 1.3);
        params_.phase[i] =
            prof.diurnalPhaseShift + rng.uniform(-1.0, 1.0);
        params_.noiseSigma[i] = prof.noiseSigma;
        params_.noiseRho[i] = prof.noisePersistence;
        ar[i] = rng.normal(0.0, prof.noiseSigma);
    }
    checkpoints_.push_back(std::move(ar));
    generated_.assign(windowCount_, 0);
}

std::unique_ptr<TraceWindow>
StreamingTraceSource::generateWindow(size_t w)
{
    const TraceGenSpec &base = spec_.base;
    const size_t first = w * spec_.windowSamples;
    const size_t count =
        std::min(spec_.windowSamples, totalSamples_ - first);
    const auto racks = static_cast<size_t>(base.rackCount);

    DCBATT_ASSERT(w < checkpoints_.size(),
                  "window %zu generated before its checkpoint", w);
    // The carry-over AR(1) state is the only cross-window coupling;
    // all noise inside the window comes from the window's own
    // substream, so (spec, w) fully determine the bytes below.
    std::vector<double> ar = checkpoints_[w];
    util::Rng rng(util::Rng::substreamSeed(base.seed, w + 1));

    auto window = std::make_unique<TraceWindow>(
        first, count, base.rackCount);
    double *data = window->mutableData();
    const double peak_s = base.peakTimeOfDay.value();
    for (size_t s = 0; s < count; ++s) {
        double t = base.startTime.value()
            + static_cast<double>(first + s) * base.step.value();
        double weekly = weeklyScale(t, base.weekendDip);
        double *row = data + s * racks;
        double raw_sum = 0.0;
        for (size_t i = 0; i < racks; ++i) {
            double rho = params_.noiseRho[i];
            double innovation = rng.normal(
                0.0,
                params_.noiseSigma[i] * std::sqrt(1.0 - rho * rho));
            ar[i] = rho * ar[i] + innovation;
            double shape = 1.0
                + params_.amplitude[i] * weekly
                    * diurnalShape(t, peak_s, params_.phase[i])
                + ar[i];
            double watts = std::clamp(params_.base[i] * shape,
                                      base.rackMinPower.value(),
                                      base.rackMaxPower.value());
            row[i] = watts;
            raw_sum += watts;
        }
        // Calibrate the column so the aggregate tracks the target
        // diurnal band exactly (preserves rack-to-rack ratios).
        double target = base.aggregateMean.value()
            + base.aggregateAmplitude.value() * weekly
                * diurnalShape(t, peak_s, 0.0)
            + rng.normal(0.0, base.aggregateMean.value()
                                  * base.aggregateNoiseFraction);
        double scale = raw_sum > 0.0 ? target / raw_sum : 1.0;
        for (size_t i = 0; i < racks; ++i) {
            row[i] = std::clamp(row[i] * scale,
                                base.rackMinPower.value(),
                                base.rackMaxPower.value());
        }
    }

    if (checkpoints_.size() == w + 1 && w + 1 < windowCount_)
        checkpoints_.push_back(std::move(ar));

    if (generated_[w]) {
        ++stats_.refetches;
        DCBATT_COUNT("trace.stream_refetches");
    }
    generated_[w] = 1;
    ++stats_.windowsGenerated;
    DCBATT_COUNT("trace.stream_windows_generated");
    return window;
}

void
StreamingTraceSource::ensureCheckpoint(size_t w)
{
    // Checkpoints grow strictly left to right: generating window k is
    // what produces checkpoint k+1. Windows generated here purely to
    // advance the AR state are dropped (they are cheap relative to
    // the simulation consuming them, and re-fetching later is the
    // common case anyway).
    while (checkpoints_.size() <= w)
        generateWindow(checkpoints_.size() - 1);
}

size_t
StreamingTraceSource::residentBytes() const
{
    size_t bytes = 0;
    for (const auto &window : resident_)
        bytes += window->memoryBytes();
    return bytes;
}

void
StreamingTraceSource::noteResidentBytes()
{
    size_t bytes = residentBytes();
    stats_.peakResidentBytes =
        std::max(stats_.peakResidentBytes, bytes);
    // Max-merged across sources and threads, so the snapshot is
    // identical at any worker count.
    static obs::Gauge &resident_gauge =
        obs::gauge("trace.stream_resident_bytes_peak");
    resident_gauge.setMax(static_cast<double>(bytes));
}

const TraceWindow &
StreamingTraceSource::windowFor(size_t sample_index)
{
    DCBATT_REQUIRE(sample_index < totalSamples_,
                   "sample %zu outside trace of %zu samples",
                   sample_index, totalSamples_);
    const size_t w = windowIndexFor(sample_index);
    for (const auto &window : resident_) {
        if (window->firstSample() == w * spec_.windowSamples)
            return *window;
    }

    ensureCheckpoint(w);
    std::unique_ptr<TraceWindow> window = generateWindow(w);
    while (resident_.size() >= spec_.maxResidentWindows) {
        resident_.erase(resident_.begin());
        ++stats_.evictions;
        DCBATT_COUNT("trace.stream_evictions");
    }
    resident_.push_back(std::move(window));
    noteResidentBytes();
    return *resident_.back();
}

TraceSet
StreamingTraceSource::materialize()
{
    TraceSet set(spec_.base.startTime, spec_.base.step,
                 spec_.base.rackCount);
    for (size_t s = 0; s < totalSamples_; ++s) {
        const TraceWindow &window = windowFor(s);
        set.appendSample(std::span<const double>(
            window.row(s), static_cast<size_t>(rackCount())));
    }
    return set;
}

} // namespace dcbatt::trace
