/**
 * @file
 * Streaming, windowed trace source with bounded memory.
 *
 * A region-scale run (50 MSBs x 300 racks x a day at 3 s) would
 * materialize ~3.5 GB of per-rack samples through TraceSet; almost all
 * of it is read exactly once, in time order. StreamingTraceSource
 * generalizes the TraceGenerator/TraceCache pair into a demand-paged
 * source: samples are produced one fixed-size *window* at a time,
 * only a bounded number of windows stay resident, and an evicted
 * window can be re-fetched bit-identically at any later point.
 *
 * Determinism contract (pinned by trace_streaming_test):
 *  - Window w's samples are a pure function of (spec, w): per-window
 *    noise comes from util::Rng substream w+1 of the spec seed, and
 *    the AR(1) carry-over state entering each window is checkpointed
 *    the first time the generator crosses that boundary. Checkpoints
 *    are tiny (one double per rack per window) and are never evicted,
 *    so any access pattern — forward walk, random seeks, re-fetch
 *    after eviction — yields the same bytes.
 *  - The sequence therefore differs from generateTraces() (which
 *    draws from one sequential stream); the streaming source is its
 *    own generator, with the same per-priority load model, aggregate
 *    calibration, and envelope clamps.
 *
 * Thread-safety: a source is confined to one shard/thread (the
 * region engine gives each MSB its own source). Concurrent use of a
 * single instance is not supported — unlike the immutable TraceSet,
 * fetching mutates the resident-window ring.
 */

#ifndef DCBATT_TRACE_STREAMING_TRACE_SOURCE_H_
#define DCBATT_TRACE_STREAMING_TRACE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace_generator.h"
#include "trace/trace_set.h"
#include "util/units.h"

namespace dcbatt::trace {

/** Streaming-source shape: the generator spec plus paging knobs. */
struct StreamingTraceSpec
{
    /** Load model, fleet shape, seed — same meaning as in generate. */
    TraceGenSpec base;

    /** Samples per window (a paging unit, not a physics quantity). */
    size_t windowSamples = 1200;

    /**
     * Resident-window cap (>= 1). A fetch that would exceed it evicts
     * the oldest resident window first; memory is thereby bounded at
     * maxResidentWindows * windowSamples * rackCount doubles
     * regardless of run length.
     */
    size_t maxResidentWindows = 2;
};

/**
 * One resident window of samples, sample-major: row s holds every
 * rack's power at absolute sample index firstSample() + s, which is
 * the access order of the physics loop (all racks at one instant).
 */
class TraceWindow
{
  public:
    TraceWindow(size_t first_sample, size_t samples, int racks)
        : firstSample_(first_sample), samples_(samples), racks_(racks),
          data_(samples * static_cast<size_t>(racks))
    {
    }

    size_t firstSample() const { return firstSample_; }
    size_t sampleCount() const { return samples_; }
    int rackCount() const { return racks_; }

    /** Power of @p rack at absolute sample @p index (in watts). */
    double
    at(size_t index, int rack) const
    {
        return data_[(index - firstSample_)
                         * static_cast<size_t>(racks_)
                     + static_cast<size_t>(rack)];
    }

    /** Row for absolute sample @p index: one value per rack. */
    const double *
    row(size_t index) const
    {
        return data_.data()
            + (index - firstSample_) * static_cast<size_t>(racks_);
    }

    double *mutableData() { return data_.data(); }

    /** Heap footprint of the sample storage. */
    size_t memoryBytes() const { return data_.size() * sizeof(double); }

  private:
    size_t firstSample_;
    size_t samples_;
    int racks_;
    std::vector<double> data_;
};

/** Paging/generation counters (per source). */
struct StreamingTraceStats
{
    uint64_t windowsGenerated = 0;
    /** Generations of a window that had been generated before. */
    uint64_t refetches = 0;
    uint64_t evictions = 0;
    /** High-water mark of resident sample bytes. */
    size_t peakResidentBytes = 0;
};

/** Demand-paged deterministic trace generator (see file comment). */
class StreamingTraceSource
{
  public:
    explicit StreamingTraceSource(StreamingTraceSpec spec);

    int rackCount() const { return spec_.base.rackCount; }
    util::Seconds step() const { return spec_.base.step; }
    util::Seconds start() const { return spec_.base.startTime; }
    /** Total samples the spec describes (the virtual trace length). */
    size_t sampleCount() const { return totalSamples_; }
    size_t windowSamples() const { return spec_.windowSamples; }
    /** Number of windows covering the trace (last may be short). */
    size_t windowCount() const { return windowCount_; }

    /**
     * The window containing absolute sample @p sample_index,
     * generating (or re-generating) it if not resident. The returned
     * pointer stays valid until maxResidentWindows further *distinct*
     * windows have been fetched; the forward-walking physics loop
     * holds at most one at a time.
     */
    const TraceWindow &windowFor(size_t sample_index);

    /** Window index covering @p sample_index. */
    size_t
    windowIndexFor(size_t sample_index) const
    {
        return sample_index / spec_.windowSamples;
    }

    /** Absolute sample index at time @p t (zero-order hold). */
    size_t
    sampleIndexAt(util::Seconds t) const
    {
        double rel = (t - spec_.base.startTime).value()
            / spec_.base.step.value();
        if (rel <= 0.0)
            return 0;
        auto idx = static_cast<size_t>(rel);
        return idx >= totalSamples_ ? totalSamples_ - 1 : idx;
    }

    /** Convenience point read (fetches the window as needed). */
    double
    power(int rack, size_t sample_index)
    {
        return windowFor(sample_index).at(sample_index, rack);
    }

    /** Resident sample bytes right now. */
    size_t residentBytes() const;

    const StreamingTraceStats &stats() const { return stats_; }

    /**
     * Materialize the whole trace as a TraceSet (tests and small
     * runs). Walks windows in order through the normal paging path,
     * so the result is exactly what a streaming consumer would read.
     */
    TraceSet materialize();

  private:
    /** Per-rack static load parameters (drawn once from substream 0). */
    struct RackParams
    {
        std::vector<double> base;
        std::vector<double> amplitude;
        std::vector<double> phase;
        std::vector<double> noiseSigma;
        std::vector<double> noiseRho;
    };

    /** Generate window @p w assuming checkpoints_[w] is populated. */
    std::unique_ptr<TraceWindow> generateWindow(size_t w);
    /** Ensure the AR-state checkpoint for window @p w exists. */
    void ensureCheckpoint(size_t w);
    void noteResidentBytes();

    StreamingTraceSpec spec_;
    size_t totalSamples_ = 0;
    size_t windowCount_ = 0;
    RackParams params_;
    /**
     * checkpoints_[w] = per-rack AR(1) state entering window w
     * (checkpoints_[0] is the post-init state). Grown left-to-right,
     * never evicted: windowCount * rackCount doubles total.
     */
    std::vector<std::vector<double>> checkpoints_;
    /** 1 once window w has ever been generated (refetch detection). */
    std::vector<uint8_t> generated_;
    /** Resident windows, oldest first (FIFO eviction). */
    std::vector<std::unique_ptr<TraceWindow>> resident_;
    StreamingTraceStats stats_;
};

} // namespace dcbatt::trace

#endif // DCBATT_TRACE_STREAMING_TRACE_SOURCE_H_
