#include "trace/trace_cache.h"

#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/annotations.h"
#include "util/logging.h"

namespace dcbatt::trace {

namespace {

/**
 * Exact textual key for a spec. %.17g round-trips every double, so
 * two specs map to the same key iff every field is bit-equal (minus
 * the -0.0/0.0 distinction, which the generator cannot observe).
 */
std::string
specKey(const TraceGenSpec &spec)
{
    std::string key = util::strf(
        "n=%d dur=%.17g step=%.17g t0=%.17g seed=%llu mean=%.17g "
        "amp=%.17g noise=%.17g peak=%.17g dip=%.17g max=%.17g "
        "min=%.17g",
        spec.rackCount, spec.duration.value(), spec.step.value(),
        spec.startTime.value(),
        static_cast<unsigned long long>(spec.seed),
        spec.aggregateMean.value(), spec.aggregateAmplitude.value(),
        spec.aggregateNoiseFraction, spec.peakTimeOfDay.value(),
        spec.weekendDip, spec.rackMaxPower.value(),
        spec.rackMinPower.value());
    for (const RackProfile &p : spec.profiles) {
        key += util::strf(
            " p[%.17g %.17g %.17g %.17g %.17g %.17g]",
            p.baseMean.value(), p.baseSpread.value(),
            p.diurnalAmplitude, p.diurnalPhaseShift, p.noiseSigma,
            p.noisePersistence);
    }
    key += " pri=";
    for (power::Priority pri : spec.priorities)
        key += static_cast<char>('0' + power::priorityIndex(pri));
    return key;
}

/**
 * The hit/miss tallies live in the metrics registry (the process-wide
 * source of truth the --metrics-json export reads); the cache itself
 * only remembers the counter values at the last clearTraceCache() so
 * traceCacheStats() can keep its since-last-clear semantics.
 */
struct CacheState
{
    util::Mutex mutex;
    std::map<std::string, std::shared_ptr<const TraceSet>> entries
        DCBATT_GUARDED_BY(mutex);
    uint64_t hitsBase DCBATT_GUARDED_BY(mutex) = 0;
    uint64_t missesBase DCBATT_GUARDED_BY(mutex) = 0;
    /** Running sum of entry footprints (feeds trace.cache_bytes). */
    uint64_t bytes DCBATT_GUARDED_BY(mutex) = 0;
};

CacheState &
cache()
{
    static CacheState state;
    return state;
}

obs::Counter &
hitCounter()
{
    static obs::Counter &c = obs::counter("trace.cache_hits");
    return c;
}

obs::Counter &
missCounter()
{
    static obs::Counter &c = obs::counter("trace.cache_misses");
    return c;
}

obs::Gauge &
entriesGauge()
{
    static obs::Gauge &g = obs::gauge("trace.cache_entries");
    return g;
}

obs::Gauge &
bytesGauge()
{
    static obs::Gauge &g = obs::gauge("trace.cache_bytes");
    return g;
}

} // namespace

std::shared_ptr<const TraceSet>
sharedTraces(const TraceGenSpec &spec)
{
    std::string key = specKey(spec);
    CacheState &state = cache();
    {
        util::MutexLock lock(state.mutex);
        auto it = state.entries.find(key);
        if (it != state.entries.end()) {
            hitCounter().add(1);
            util::debug(util::strf(
                "trace cache hit (%llu hits, %llu misses): %d racks, "
                "seed %llu",
                static_cast<unsigned long long>(hitCounter().value()
                                                - state.hitsBase),
                static_cast<unsigned long long>(missCounter().value()
                                                - state.missesBase),
                spec.rackCount,
                static_cast<unsigned long long>(spec.seed)));
            return it->second;
        }
    }
    // Generate outside the lock: generation takes seconds and two
    // concurrent first requests for the same key are harmless (last
    // insert wins; both results are identical by determinism). Warm
    // the lazy aggregate/peak caches before publishing so every
    // thread that receives the shared set only ever reads it.
    auto traces = std::make_shared<const TraceSet>(generateTraces(spec));
    traces->warmCaches();
    util::MutexLock lock(state.mutex);
    auto [it, inserted] = state.entries.emplace(key, std::move(traces));
    if (inserted) {
        missCounter().add(1);
        state.bytes += it->second->memoryBytes();
    } else {
        hitCounter().add(1);
    }
    entriesGauge().set(static_cast<double>(state.entries.size()));
    bytesGauge().set(static_cast<double>(state.bytes));
    return it->second;
}

TraceCacheStats
traceCacheStats()
{
    CacheState &state = cache();
    util::MutexLock lock(state.mutex);
    return TraceCacheStats{hitCounter().value() - state.hitsBase,
                           missCounter().value() - state.missesBase};
}

void
clearTraceCache()
{
    CacheState &state = cache();
    util::MutexLock lock(state.mutex);
    state.entries.clear();
    state.hitsBase = hitCounter().value();
    state.missesBase = missCounter().value();
    state.bytes = 0;
    entriesGauge().set(0.0);
    bytesGauge().set(0.0);
}

} // namespace dcbatt::trace
