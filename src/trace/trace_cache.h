/**
 * @file
 * Process-wide cache of generated trace sets.
 *
 * Trace generation is the single most expensive setup step of the
 * experiments (316 racks x a week at 3 s is ~64M samples), and sweep
 * drivers — fig14's limit sweep, the CLI's --limit-mw list, benchmark
 * repetitions — replay the *same* deterministic traces for every
 * configuration. The cache keys on an exact serialization of every
 * TraceGenSpec field (doubles printed at full precision), so two specs
 * share a TraceSet if and only if the generator would produce
 * bit-identical output for them.
 *
 * Entries are immutable (`shared_ptr<const TraceSet>`), so concurrent
 * SweepRunner tasks can replay one instance without synchronization;
 * the cache map itself is mutex-guarded.
 */

#ifndef DCBATT_TRACE_TRACE_CACHE_H_
#define DCBATT_TRACE_TRACE_CACHE_H_

#include <cstdint>
#include <memory>

#include "trace/trace_generator.h"

namespace dcbatt::trace {

/** Hit/miss counters for the process-wide trace cache. */
struct TraceCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/**
 * The TraceSet for @p spec, generating and caching it on first use.
 * Returns a shared, immutable instance: callers on any thread may
 * replay it concurrently. Cache hits are logged at debug level.
 */
std::shared_ptr<const TraceSet> sharedTraces(const TraceGenSpec &spec);

/** Counters since process start (or the last clearTraceCache). */
TraceCacheStats traceCacheStats();

/** Drop every cached trace set and zero the counters (tests). */
void clearTraceCache();

} // namespace dcbatt::trace

#endif // DCBATT_TRACE_TRACE_CACHE_H_
