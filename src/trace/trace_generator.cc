#include "trace/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "obs/metrics.h"
#include "power/topology.h"
#include "util/arena.h"
#include "util/logging.h"
#include "util/random.h"

namespace dcbatt::trace {

using power::Priority;
using util::Seconds;
using util::Watts;

namespace {

/** Diurnal shape: cosine peaking at the configured time of day. */
double
diurnalShape(double t_s, double peak_s, double phase_shift_h)
{
    constexpr double day = 24.0 * 3600.0;
    double shifted = t_s - peak_s - phase_shift_h * 3600.0;
    return std::cos(2.0 * std::numbers::pi * shifted / day);
}

/** Weekly modulation: weekends run flatter/lower. */
double
weeklyScale(double t_s, double weekend_dip)
{
    constexpr double day = 24.0 * 3600.0;
    int day_index = static_cast<int>(t_s / day) % 7;
    bool weekend = day_index >= 5;
    return weekend ? 1.0 - weekend_dip : 1.0;
}

} // namespace

std::vector<Priority>
paperMsbPriorities()
{
    return power::makePriorityMix(89, 142, 85);
}

TraceSet
generateTraces(const TraceGenSpec &spec)
{
    if (spec.rackCount <= 0)
        util::fatal("generateTraces: rack count must be positive");
    if (spec.step.value() <= 0.0 || spec.duration < spec.step)
        util::fatal("generateTraces: bad step/duration");

    util::Rng rng(spec.seed);
    auto samples = static_cast<size_t>(spec.duration / spec.step);
    auto racks = static_cast<size_t>(spec.rackCount);

    // Per-rack static parameters, staged in a bump arena that is
    // rewound per call (allocate-per-event / reset-per-event,
    // util/arena.h): repeated generation reuses the same blocks with
    // zero heap traffic. The buffers are fully written below before
    // any read, so results cannot depend on which thread's arena
    // served them.
    // detlint: allow(thread-local) -- per-thread scratch, fully
    // reinitialized per call; outputs are a function of spec alone.
    static thread_local util::Arena arena;
    arena.reset();
    double *base = arena.allocateArray<double>(racks);
    double *amplitude = arena.allocateArray<double>(racks);
    double *phase = arena.allocateArray<double>(racks);
    double *noise_sigma = arena.allocateArray<double>(racks);
    double *noise_rho = arena.allocateArray<double>(racks);
    double *ar_state = arena.allocateArray<double>(racks);
    for (size_t i = 0; i < racks; ++i) {
        Priority p = spec.priorities.empty()
            ? Priority::P2
            : spec.priorities[i % spec.priorities.size()];
        const RackProfile &prof =
            spec.profiles[power::priorityIndex(p)];
        base[i] = prof.baseMean.value()
            + rng.uniform(-prof.baseSpread.value(),
                          prof.baseSpread.value());
        amplitude[i] = prof.diurnalAmplitude
            * rng.uniform(0.7, 1.3);
        phase[i] = prof.diurnalPhaseShift + rng.uniform(-1.0, 1.0);
        noise_sigma[i] = prof.noiseSigma;
        noise_rho[i] = prof.noisePersistence;
        ar_state[i] = rng.normal(0.0, prof.noiseSigma);
    }

    TraceSet set(spec.startTime, spec.step, spec.rackCount);
    double peak_s = spec.peakTimeOfDay.value();
    double *row = arena.allocateArray<double>(racks);
    for (size_t s = 0; s < samples; ++s) {
        double t = spec.startTime.value()
            + static_cast<double>(s) * spec.step.value();
        double weekly = weeklyScale(t, spec.weekendDip);
        double raw_sum = 0.0;
        for (size_t i = 0; i < racks; ++i) {
            double innovation = rng.normal(
                0.0, noise_sigma[i]
                    * std::sqrt(1.0 - noise_rho[i] * noise_rho[i]));
            ar_state[i] = noise_rho[i] * ar_state[i] + innovation;
            double shape = 1.0
                + amplitude[i] * weekly
                    * diurnalShape(t, peak_s, phase[i])
                + ar_state[i];
            double watts = std::clamp(base[i] * shape,
                                      spec.rackMinPower.value(),
                                      spec.rackMaxPower.value());
            row[i] = watts;
            raw_sum += watts;
        }
        // Calibrate the column so the aggregate tracks the target
        // diurnal band exactly (preserves rack-to-rack ratios).
        double target = spec.aggregateMean.value()
            + spec.aggregateAmplitude.value() * weekly
                * diurnalShape(t, peak_s, 0.0)
            + rng.normal(0.0, spec.aggregateMean.value()
                                  * spec.aggregateNoiseFraction);
        double scale = raw_sum > 0.0 ? target / raw_sum : 1.0;
        for (size_t i = 0; i < racks; ++i) {
            row[i] = std::clamp(row[i] * scale,
                                spec.rackMinPower.value(),
                                spec.rackMaxPower.value());
        }
        set.appendSample(std::span<const double>(row, racks));
    }
    {
        // Max-merged so the snapshot is thread-count-independent.
        static obs::Gauge &arena_gauge =
            obs::gauge("trace.arena_high_water_bytes");
        arena_gauge.setMax(static_cast<double>(arena.usedBytes()));
    }
    return set;
}

} // namespace dcbatt::trace
