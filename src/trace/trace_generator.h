/**
 * @file
 * Synthetic production rack-power trace generator.
 *
 * Substitutes for the Facebook production traces the paper replays
 * (Section V-B1): 316 racks under one MSB whose aggregate power shows
 * diurnal cycles between 1.9 MW and 2.1 MW at 3 s granularity
 * (Fig. 12).
 *
 * Generation is two-stage:
 *  1. Per-rack raw series: a priority-dependent base load and diurnal
 *     amplitude (stateful P1 racks are flat, web-tier P2 racks swing
 *     with the day, batch P3 racks run partly anti-cyclic), plus AR(1)
 *     noise, clamped to the rack's power envelope.
 *  2. Aggregate calibration: every sample column is rescaled so that
 *     the fleet total exactly tracks the target diurnal band. This
 *     pins the statistics the charging experiments consume (aggregate
 *     mean/band and the per-rack spread at the peak) while keeping
 *     rack-to-rack heterogeneity.
 */

#ifndef DCBATT_TRACE_TRACE_GENERATOR_H_
#define DCBATT_TRACE_TRACE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "power/priority.h"
#include "trace/trace_set.h"
#include "util/units.h"

namespace dcbatt::trace {

/** Shape parameters for one priority class's load profile. */
struct RackProfile
{
    util::Watts baseMean{6500.0};
    util::Watts baseSpread{1200.0};  ///< uniform half-range around mean
    double diurnalAmplitude = 0.2;   ///< fraction of base
    double diurnalPhaseShift = 0.0;  ///< hours relative to fleet peak
    double noiseSigma = 0.02;        ///< AR(1) innovation, fraction
    double noisePersistence = 0.97;  ///< AR(1) coefficient per step
};

/** Full generator specification. */
struct TraceGenSpec
{
    int rackCount = 316;
    util::Seconds duration = util::hours(24.0 * 7.0);
    util::Seconds step{3.0};
    /** Absolute time of the first sample (sets the diurnal phase). */
    util::Seconds startTime{0.0};
    uint64_t seed = 42;

    /** Target aggregate: mean +/- amplitude diurnal band (Fig. 12). */
    util::Watts aggregateMean = util::megawatts(2.0);
    util::Watts aggregateAmplitude = util::megawatts(0.1);
    /** Small high-frequency noise on the aggregate target. */
    double aggregateNoiseFraction = 0.002;
    /** Time of day of the daily peak. */
    util::Seconds peakTimeOfDay = util::hours(14.0);
    /** Weekly modulation of the diurnal amplitude (weekend dip). */
    double weekendDip = 0.3;

    /** Per-rack priorities (cycled); empty means all P2. */
    std::vector<power::Priority> priorities;

    /** Physical rack envelope (Open Rack V2 limit). */
    util::Watts rackMaxPower = util::kilowatts(12.6);
    util::Watts rackMinPower = util::kilowatts(0.5);

    /** Per-priority load profiles, indexed by priorityIndex(). */
    RackProfile profiles[3] = {
        // P1: stateful, high flat load.
        {util::Watts(7200.0), util::Watts(900.0), 0.06, 0.0, 0.01,
         0.985},
        // P2: web tier, strongly diurnal.
        {util::Watts(6400.0), util::Watts(1400.0), 0.28, 0.0, 0.025,
         0.97},
        // P3: batch, moderate and partly anti-cyclic.
        {util::Watts(5300.0), util::Watts(1600.0), 0.15, 9.0, 0.035,
         0.95},
    };
};

/** Generate a TraceSet per @p spec (deterministic in the seed). */
TraceSet generateTraces(const TraceGenSpec &spec);

/**
 * The rack-priority mix of the paper's MSB experiment:
 * 89 P1, 142 P2, 85 P3 = 316 racks, proportionally interleaved.
 */
std::vector<power::Priority> paperMsbPriorities();

} // namespace dcbatt::trace

#endif // DCBATT_TRACE_TRACE_GENERATOR_H_
