#include "trace/trace_set.h"

#include <algorithm>
#include <cstdlib>

#include "util/csv.h"
#include "util/logging.h"

namespace dcbatt::trace {

using util::Seconds;
using util::TimeSeries;

TraceSet::TraceSet(Seconds start, Seconds step, int rack_count)
    : start_(start), step_(step)
{
    if (rack_count <= 0)
        util::panic("TraceSet: rack count must be positive");
    racks_.assign(static_cast<size_t>(rack_count),
                  TimeSeries(start, step));
}

const TimeSeries &
TraceSet::aggregate() const
{
    if (aggValid_)
        return aggCache_;
    if (racks_.empty())
        util::panic("TraceSet::aggregate: no racks");
    TimeSeries total = racks_.front();
    for (size_t i = 1; i < racks_.size(); ++i)
        total += racks_[i];
    aggCache_ = std::move(total);
    aggValid_ = true;
    return aggCache_;
}

size_t
TraceSet::firstPeakIndex() const
{
    if (peakCached_)
        return peakCache_;
    const TimeSeries &agg = aggregate();
    // Smooth over ~15 minutes to ignore sample noise, then find the
    // first index whose smoothed value is not exceeded for a sustained
    // window afterwards (a genuine diurnal crest, not a blip).
    size_t window = std::max<size_t>(
        1, static_cast<size_t>(900.0 / step_.value()));
    TimeSeries smooth = agg.downsample(window);
    size_t guard = std::max<size_t>(
        1, static_cast<size_t>(4 * 3600.0 / smooth.step().value()));
    for (size_t i = 1; i + 1 < smooth.size(); ++i) {
        if (smooth[i] < smooth[i - 1])
            continue;
        bool is_peak = true;
        size_t hi = std::min(smooth.size(), i + 1 + guard);
        for (size_t j = i + 1; j < hi; ++j) {
            if (smooth[j] > smooth[i]) {
                is_peak = false;
                break;
            }
        }
        if (is_peak) {
            peakCache_ = std::min(agg.size() - 1,
                                  i * window + window / 2);
            peakCached_ = true;
            return peakCache_;
        }
    }
    peakCache_ = agg.argMax();
    peakCached_ = true;
    return peakCache_;
}

void
TraceSet::appendSample(std::span<const double> rack_watts)
{
    if (rack_watts.size() != racks_.size())
        util::panic("TraceSet::appendSample: wrong rack count");
    aggValid_ = false;
    peakCached_ = false;
    for (size_t i = 0; i < racks_.size(); ++i)
        racks_[i].append(rack_watts[i]);
}

void
TraceSet::save(const std::string &path) const
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header;
    header.push_back("time_s");
    for (size_t i = 0; i < racks_.size(); ++i)
        header.push_back(util::strf("rack%zu_w", i));
    rows.push_back(std::move(header));
    for (size_t s = 0; s < sampleCount(); ++s) {
        std::vector<std::string> row;
        row.push_back(util::strf(
            "%.3f", racks_.front().timeAt(s).value()));
        for (const auto &series : racks_)
            row.push_back(util::strf("%.3f", series[s]));
        rows.push_back(std::move(row));
    }
    util::writeCsvFile(path, rows);
}

TraceSet
TraceSet::load(const std::string &path)
{
    auto rows = util::readCsvFile(path);
    if (rows.size() < 3)
        util::fatal(util::strf("trace file too short: %s", path.c_str()));
    size_t cols = rows[0].size();
    if (cols < 2)
        util::fatal(util::strf("trace file has no racks: %s",
                               path.c_str()));
    double t0 = std::atof(rows[1][0].c_str());
    double t1 = std::atof(rows[2][0].c_str());
    TraceSet set(Seconds(t0), Seconds(t1 - t0),
                 static_cast<int>(cols - 1));
    std::vector<double> sample(cols - 1);
    for (size_t r = 1; r < rows.size(); ++r) {
        if (rows[r].size() != cols) {
            util::fatal(util::strf("trace row %zu has %zu fields, "
                                   "expected %zu",
                                   r, rows[r].size(), cols));
        }
        for (size_t c = 1; c < cols; ++c)
            sample[c - 1] = std::atof(rows[r][c].c_str());
        set.appendSample(sample);
    }
    return set;
}

} // namespace dcbatt::trace
