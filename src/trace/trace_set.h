/**
 * @file
 * A set of per-rack power traces sampled on a common clock.
 *
 * The paper's simulation experiments replay "rack power trace[s] at
 * 3 second granularity for racks under an MSB" (Section V-B). TraceSet
 * is that object: one fixed-step series per rack, plus aggregate and
 * peak-finding helpers and CSV round-trip.
 */

#ifndef DCBATT_TRACE_TRACE_SET_H_
#define DCBATT_TRACE_TRACE_SET_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/time_series.h"
#include "util/units.h"

namespace dcbatt::trace {

/** Per-rack power traces on a shared clock. */
class TraceSet
{
  public:
    TraceSet() = default;
    TraceSet(util::Seconds start, util::Seconds step, int rack_count);

    int rackCount() const { return static_cast<int>(racks_.size()); }
    size_t sampleCount() const
    {
        return racks_.empty() ? 0 : racks_.front().size();
    }
    util::Seconds step() const { return step_; }
    util::Seconds start() const { return start_; }

    util::TimeSeries &rack(int i)
    {
        // The caller may mutate the series through this reference, so
        // conservatively drop the cached aggregate.
        aggValid_ = false;
        peakCached_ = false;
        return racks_[static_cast<size_t>(i)];
    }
    const util::TimeSeries &rack(int i) const
    {
        return racks_[static_cast<size_t>(i)];
    }

    /** Rack i's power at time t (zero-order hold), in watts. */
    util::Watts rackPower(int i, util::Seconds t) const
    {
        return util::Watts(rack(i).sample(t));
    }

    /**
     * Sum of all rack series. Cached: the traces are generated (or
     * loaded) once and replayed read-only by every experiment, so the
     * sum is computed on first use and invalidated by mutation.
     */
    const util::TimeSeries &aggregate() const;

    /**
     * Index of the first local maximum of the day-smoothed aggregate —
     * "the first peak in the trace", where the paper injects its open
     * transitions because available power is most constrained.
     */
    size_t firstPeakIndex() const;

    /**
     * Populate the lazy aggregate/peak caches now. The caches are not
     * synchronized (a mutex member would make TraceSet non-copyable),
     * so a set that will be read by several threads at once must be
     * warmed on one thread first — SweepRunner and the trace cache do
     * this before sharing; after warming, every const accessor is a
     * pure read.
     */
    void warmCaches() const
    {
        aggregate();
        firstPeakIndex();
    }

    /**
     * Approximate heap footprint of the sample storage in bytes
     * (per-rack series plus the cached aggregate) — the quantity
     * behind the trace cache's `trace.cache_bytes` gauge.
     */
    size_t memoryBytes() const
    {
        size_t samples = 0;
        for (const util::TimeSeries &series : racks_)
            samples += series.size();
        samples += aggCache_.size();
        return samples * sizeof(double);
    }

    /**
     * Append one sample per rack (values in watts). Takes a span so
     * callers can stage rows in arena-backed buffers (util/arena.h)
     * without copying into a std::vector first.
     */
    void appendSample(std::span<const double> rack_watts);
    void
    appendSample(std::initializer_list<double> rack_watts)
    {
        appendSample(
            std::span<const double>(rack_watts.begin(),
                                    rack_watts.size()));
    }

    /** CSV persistence: header row, then time + one column per rack. */
    void save(const std::string &path) const;
    static TraceSet load(const std::string &path);

  private:
    util::Seconds start_{0.0};
    util::Seconds step_{3.0};
    std::vector<util::TimeSeries> racks_;
    /** Lazily computed caches (invalidated by any mutation). */
    mutable util::TimeSeries aggCache_;
    mutable bool aggValid_ = false;
    mutable size_t peakCache_ = 0;
    mutable bool peakCached_ = false;
};

} // namespace dcbatt::trace

#endif // DCBATT_TRACE_TRACE_SET_H_
