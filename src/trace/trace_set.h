/**
 * @file
 * A set of per-rack power traces sampled on a common clock.
 *
 * The paper's simulation experiments replay "rack power trace[s] at
 * 3 second granularity for racks under an MSB" (Section V-B). TraceSet
 * is that object: one fixed-step series per rack, plus aggregate and
 * peak-finding helpers and CSV round-trip.
 */

#ifndef DCBATT_TRACE_TRACE_SET_H_
#define DCBATT_TRACE_TRACE_SET_H_

#include <string>
#include <vector>

#include "util/time_series.h"
#include "util/units.h"

namespace dcbatt::trace {

/** Per-rack power traces on a shared clock. */
class TraceSet
{
  public:
    TraceSet() = default;
    TraceSet(util::Seconds start, util::Seconds step, int rack_count);

    int rackCount() const { return static_cast<int>(racks_.size()); }
    size_t sampleCount() const
    {
        return racks_.empty() ? 0 : racks_.front().size();
    }
    util::Seconds step() const { return step_; }
    util::Seconds start() const { return start_; }

    util::TimeSeries &rack(int i)
    {
        return racks_[static_cast<size_t>(i)];
    }
    const util::TimeSeries &rack(int i) const
    {
        return racks_[static_cast<size_t>(i)];
    }

    /** Rack i's power at time t (zero-order hold), in watts. */
    util::Watts rackPower(int i, util::Seconds t) const
    {
        return util::Watts(rack(i).sample(t));
    }

    /** Sum of all rack series. */
    util::TimeSeries aggregate() const;

    /**
     * Index of the first local maximum of the day-smoothed aggregate —
     * "the first peak in the trace", where the paper injects its open
     * transitions because available power is most constrained.
     */
    size_t firstPeakIndex() const;

    /** Append one sample per rack (values in watts). */
    void appendSample(const std::vector<double> &rack_watts);

    /** CSV persistence: header row, then time + one column per rack. */
    void save(const std::string &path) const;
    static TraceSet load(const std::string &path);

  private:
    util::Seconds start_{0.0};
    util::Seconds step_{3.0};
    std::vector<util::TimeSeries> racks_;
};

} // namespace dcbatt::trace

#endif // DCBATT_TRACE_TRACE_SET_H_
