/**
 * @file
 * Clang thread-safety annotations and the capability-annotated mutex.
 *
 * The determinism contract (DESIGN.md §9/§11/§13) is only as strong
 * as the lock discipline of the shared-state plumbing underneath it:
 * the thread pool's queue, the metrics registry's shard list, the
 * flight recorder's scope buffers. This header moves that discipline
 * from comments to the type system. Every mutex-guarded field in the
 * tree is declared DCBATT_GUARDED_BY(its mutex), every lock-requiring
 * helper DCBATT_REQUIRES(it), and Clang's -Wthread-safety analysis
 * (enforced as an error by the lint preset and the static-analysis CI
 * job) rejects any access that does not hold the right capability.
 *
 * Under GCC (which has no thread-safety analysis) every macro expands
 * to nothing, so the annotations cost nothing in any local build; the
 * clang legs of CI are the enforcement point.
 *
 * The wrapper types:
 *  - util::Mutex      — a std::mutex carrying the `capability`
 *                       attribute so the analysis can track it;
 *  - util::MutexLock  — scoped acquisition (a std::scoped_lock with
 *                       the `scoped_lockable` attribute), with an
 *                       audited early release() for
 *                       unlock-before-notify patterns;
 *  - util::CondVar    — a std::condition_variable bound to MutexLock,
 *                       with a runtime DCBATT_REQUIRE that the lock
 *                       is actually held at wait time.
 *
 * Use the TSA-friendly explicit wait loop, not the predicate
 * overload, so guarded reads stay inside the function the analysis
 * can see:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_)         // ready_ is DCBATT_GUARDED_BY(mutex_)
 *         cv_.wait(lock);
 */

#ifndef DCBATT_UTIL_ANNOTATIONS_H_
#define DCBATT_UTIL_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#include "util/check.h"

#if defined(__clang__)
#define DCBATT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DCBATT_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define DCBATT_CAPABILITY(x) DCBATT_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime equals a capability hold. */
#define DCBATT_SCOPED_CAPABILITY \
    DCBATT_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define DCBATT_GUARDED_BY(x) DCBATT_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define DCBATT_PT_GUARDED_BY(x) \
    DCBATT_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that acquires the given capabilities and holds on exit. */
#define DCBATT_ACQUIRE(...) \
    DCBATT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the given capabilities. */
#define DCBATT_RELEASE(...) \
    DCBATT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires iff it returns the given value. */
#define DCBATT_TRY_ACQUIRE(...) \
    DCBATT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Callable only while already holding the given capabilities. */
#define DCBATT_REQUIRES(...) \
    DCBATT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Callable only while NOT holding the given capabilities. */
#define DCBATT_EXCLUDES(...) \
    DCBATT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares that the function returns a reference to @p x. */
#define DCBATT_RETURN_CAPABILITY(x) \
    DCBATT_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use carries a written justification. */
#define DCBATT_NO_THREAD_SAFETY_ANALYSIS \
    DCBATT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dcbatt::util {

class MutexLock;
class CondVar;

/**
 * std::mutex with the `capability` attribute: fields declared
 * DCBATT_GUARDED_BY(one of these) are compile-time checked under
 * clang. Prefer MutexLock over manual lock()/unlock().
 */
class DCBATT_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() DCBATT_ACQUIRE() { raw_.lock(); }
    void unlock() DCBATT_RELEASE() { raw_.unlock(); }
    bool tryLock() DCBATT_TRY_ACQUIRE(true)
    {
        return raw_.try_lock();
    }

  private:
    friend class MutexLock;
    std::mutex raw_;
};

/**
 * Scoped acquisition of a util::Mutex. Holds from construction to
 * destruction unless release() gives the capability up early (the
 * unlock-before-notify pattern in ThreadPool).
 */
class DCBATT_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) DCBATT_ACQUIRE(mutex)
        : lock_(mutex.raw_)
    {
    }

    ~MutexLock() DCBATT_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /**
     * Release before end of scope. Fatal if already released: a
     * double release is a lock-discipline bug, not a recoverable
     * condition.
     */
    void release() DCBATT_RELEASE()
    {
        DCBATT_REQUIRE(lock_.owns_lock(),
                       "MutexLock::release() without the lock held");
        lock_.unlock();
    }

    /** Whether this guard still holds its mutex. */
    bool ownsLock() const { return lock_.owns_lock(); }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable bound to MutexLock. Only the explicit wait form
 * is offered (no predicate overload): the caller's wait loop keeps
 * guarded-field reads inside the annotated function, where the
 * thread-safety analysis can verify them.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Atomically release @p lock and sleep; the lock is reacquired
     * before returning. Fatal if @p lock does not hold its mutex.
     */
    void wait(MutexLock &lock)
    {
        DCBATT_REQUIRE(lock.ownsLock(),
                       "CondVar::wait on a released MutexLock");
        cv_.wait(lock.lock_);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_ANNOTATIONS_H_
