/**
 * @file
 * Monotonic bump allocator for hot-loop staging buffers.
 *
 * An Arena hands out pointer-bumped slices of a few large blocks and
 * frees everything at once on reset(). The intended pattern — used by
 * the charging-event inner loops and trace assembly — is
 * allocate-per-event / reset-per-event: after the first event every
 * allocation is served from already-owned blocks, so steady-state hot
 * loops do zero heap traffic.
 *
 * Lifetime rules (DESIGN.md §14):
 *  - Allocations live until the next reset(); no individual frees.
 *  - Destructors are never run, so payloads must be trivially
 *    destructible (the typed helpers enforce this at compile time).
 *  - reset() retains the blocks for reuse; memory is returned to the
 *    system only when the Arena itself is destroyed.
 *
 * Not thread-safe: one Arena per thread of execution, like the
 * simulators that own them.
 */

#ifndef DCBATT_UTIL_ARENA_H_
#define DCBATT_UTIL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace dcbatt::util {

/** Bump allocator; see file comment for the lifetime contract. */
class Arena
{
  public:
    static constexpr size_t kDefaultBlockBytes = 64 * 1024;

    explicit Arena(size_t block_bytes = kDefaultBlockBytes)
        : blockBytes_(block_bytes)
    {
        DCBATT_REQUIRE(block_bytes > 0,
                       "arena block size must be positive");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes aligned to @p alignment (a power of two).
     * Requests larger than the block size fall back to a dedicated
     * block, which is retained and reused like any other.
     */
    void *
    allocate(size_t bytes, size_t alignment = alignof(std::max_align_t))
    {
        DCBATT_ASSERT(alignment > 0
                          && (alignment & (alignment - 1)) == 0,
                      "alignment %zu is not a power of two", alignment);
        if (bytes == 0)
            bytes = 1;
        for (;;) {
            if (blockIdx_ < blocks_.size()) {
                Block &block = blocks_[blockIdx_];
                auto base =
                    reinterpret_cast<uintptr_t>(block.data.get());
                uintptr_t cursor = base + offset_;
                uintptr_t aligned = (cursor + alignment - 1)
                    & ~static_cast<uintptr_t>(alignment - 1);
                if (aligned + bytes <= base + block.size) {
                    offset_ = aligned + bytes - base;
                    used_ += bytes + (aligned - cursor);
                    highWater_ = std::max(highWater_, used_);
                    return reinterpret_cast<void *>(aligned);
                }
                // Doesn't fit; move on (retained blocks keep their
                // earlier allocations until reset).
                ++blockIdx_;
                offset_ = 0;
                continue;
            }
            size_t size = std::max(blockBytes_, bytes + alignment);
            blocks_.push_back(
                Block{std::make_unique<std::byte[]>(size), size});
            footprint_ += size;
            offset_ = 0;
        }
    }

    /**
     * Allocate a value-initialized array of a trivially destructible
     * type (zeroed for arithmetic types, matching the std::vector
     * staging buffers this replaces).
     */
    template <typename T>
    T *
    allocateArray(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        T *data = static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
        std::fill_n(data, count, T{});
        return data;
    }

    /** Rewind to empty, retaining all blocks for reuse. */
    void
    reset()
    {
        blockIdx_ = 0;
        offset_ = 0;
        used_ = 0;
    }

    /** Bytes handed out (incl. alignment padding) since last reset. */
    size_t usedBytes() const { return used_; }

    /** Maximum usedBytes() ever reached (across resets). */
    size_t highWaterBytes() const { return highWater_; }

    /** Total bytes owned by the arena's blocks. */
    size_t footprintBytes() const { return footprint_; }

    size_t blockBytes() const { return blockBytes_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        size_t size;
    };

    size_t blockBytes_;
    std::vector<Block> blocks_;
    size_t blockIdx_ = 0;
    size_t offset_ = 0; // bump offset within blocks_[blockIdx_]
    size_t used_ = 0;
    size_t highWater_ = 0;
    size_t footprint_ = 0;
};

/**
 * std::allocator adapter so standard containers can stage in an
 * Arena. deallocate() is a no-op — storage is reclaimed wholesale by
 * Arena::reset() — so reserve() up front to avoid growth waste.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena &arena) : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other)
        : arena_(other.arena())
    {
    }

    T *
    allocate(size_t count)
    {
        return static_cast<T *>(
            arena_->allocate(count * sizeof(T), alignof(T)));
    }

    void deallocate(T *, size_t) {}

    Arena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_;
};

/** Arena-backed std::vector alias for staging buffers. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace dcbatt::util

#endif // DCBATT_UTIL_ARENA_H_
