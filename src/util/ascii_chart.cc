#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace dcbatt::util {

ChartSeries
seriesFromTimeSeries(const TimeSeries &ts, const std::string &label,
                     char glyph, double xScale, double yScale)
{
    ChartSeries s;
    s.label = label;
    s.glyph = glyph;
    s.xs.reserve(ts.size());
    s.ys.reserve(ts.size());
    for (size_t i = 0; i < ts.size(); ++i) {
        s.xs.push_back(ts.timeAt(i).value() * xScale);
        s.ys.push_back(ts[i] * yScale);
    }
    return s;
}

std::string
renderChart(const std::vector<ChartSeries> &series,
            const ChartOptions &options)
{
    double x_min = std::numeric_limits<double>::infinity();
    double x_max = -x_min;
    double y_min = std::numeric_limits<double>::infinity();
    double y_max = -y_min;
    bool any = false;
    for (const auto &s : series) {
        for (size_t i = 0; i < s.xs.size(); ++i) {
            any = true;
            x_min = std::min(x_min, s.xs[i]);
            x_max = std::max(x_max, s.xs[i]);
            y_min = std::min(y_min, s.ys[i]);
            y_max = std::max(y_max, s.ys[i]);
        }
    }
    if (!any)
        return "(empty chart)\n";
    if (options.yMin != options.yMax) {
        y_min = options.yMin;
        y_max = options.yMax;
    }
    if (x_max == x_min)
        x_max = x_min + 1.0;
    if (y_max == y_min)
        y_max = y_min + 1.0;

    size_t w = std::max<size_t>(options.width, 8);
    size_t h = std::max<size_t>(options.height, 4);
    std::vector<std::string> grid(h, std::string(w, ' '));

    for (const auto &s : series) {
        for (size_t i = 0; i < s.xs.size(); ++i) {
            double tx = (s.xs[i] - x_min) / (x_max - x_min);
            double ty = (s.ys[i] - y_min) / (y_max - y_min);
            if (ty < 0.0 || ty > 1.0)
                continue;
            auto col = static_cast<size_t>(std::round(
                tx * static_cast<double>(w - 1)));
            auto row = static_cast<size_t>(std::round(
                (1.0 - ty) * static_cast<double>(h - 1)));
            grid[row][col] = s.glyph;
        }
    }

    std::ostringstream out;
    if (!options.title.empty())
        out << options.title << '\n';
    if (!options.yLabel.empty())
        out << options.yLabel << '\n';
    std::string top_label = strf("%.4g", y_max);
    std::string bottom_label = strf("%.4g", y_min);
    size_t label_w = std::max(top_label.size(), bottom_label.size());
    for (size_t r = 0; r < h; ++r) {
        std::string label;
        if (r == 0)
            label = top_label;
        else if (r == h - 1)
            label = bottom_label;
        out << strf("%*s |", static_cast<int>(label_w), label.c_str())
            << grid[r] << '\n';
    }
    out << std::string(label_w + 2, ' ') << std::string(w, '-') << '\n';
    out << std::string(label_w + 2, ' ')
        << strf("%-*.4g%*.4g", static_cast<int>(w / 2), x_min,
                static_cast<int>(w - w / 2), x_max)
        << '\n';
    if (!options.xLabel.empty()) {
        out << std::string(label_w + 2, ' ') << options.xLabel << '\n';
    }
    for (const auto &s : series) {
        out << "  " << s.glyph << " = " << s.label << '\n';
    }
    return out.str();
}

} // namespace dcbatt::util
