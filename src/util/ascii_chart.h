/**
 * @file
 * Text line chart for the figure-reproduction benches: renders a small
 * set of series into a fixed-size character grid with axis labels, so a
 * `bench/figNN` binary can show the *shape* of the paper's figure in a
 * terminal.
 */

#ifndef DCBATT_UTIL_ASCII_CHART_H_
#define DCBATT_UTIL_ASCII_CHART_H_

#include <string>
#include <vector>

#include "util/time_series.h"

namespace dcbatt::util {

/** One plotted series: a label, a glyph, and (x, y) points. */
struct ChartSeries
{
    std::string label;
    char glyph = '*';
    std::vector<double> xs;
    std::vector<double> ys;
};

/** Rendering options for AsciiChart. */
struct ChartOptions
{
    size_t width = 72;   ///< plot area columns
    size_t height = 18;  ///< plot area rows
    std::string xLabel;
    std::string yLabel;
    std::string title;
    /// Force the y range; if min == max the range is auto-scaled.
    double yMin = 0.0;
    double yMax = 0.0;
};

/** Render the series into a multi-line string. */
std::string renderChart(const std::vector<ChartSeries> &series,
                        const ChartOptions &options);

/** Convenience: plot a TimeSeries against minutes on the x axis. */
ChartSeries seriesFromTimeSeries(const TimeSeries &ts,
                                 const std::string &label, char glyph,
                                 double xScale = 1.0 / 60.0,
                                 double yScale = 1.0);

} // namespace dcbatt::util

#endif // DCBATT_UTIL_ASCII_CHART_H_
