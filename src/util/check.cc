#include "util/check.h"

#include <cstdlib>
#include <iostream>

namespace dcbatt::util {

const char *
toString(CheckKind kind)
{
    switch (kind) {
      case CheckKind::Require:
        return "REQUIRE";
      case CheckKind::Assert:
        return "ASSERT";
      case CheckKind::Unreachable:
        return "UNREACHABLE";
    }
    return "?";
}

std::string
CheckFailure::describe() const
{
    std::string text = strf("%s:%d: %s failed", file, line,
                            toString(kind));
    if (condition && condition[0] != '\0')
        text += strf(": (%s)", condition);
    if (!message.empty()) {
        text += ": ";
        text += message;
    }
    if (function && function[0] != '\0')
        text += strf(" [in %s]", function);
    return text;
}

namespace {

void
defaultFailHandler(const CheckFailure &failure)
{
    std::cerr << "check: " << failure.describe() << "\n";
}

CheckFailHandler g_handler = defaultFailHandler;
CheckFailureSink g_sink = nullptr;

} // namespace

CheckFailHandler
setCheckFailHandler(CheckFailHandler handler)
{
    CheckFailHandler previous = g_handler;
    g_handler = handler ? handler : defaultFailHandler;
    return previous;
}

CheckFailHandler
checkFailHandler()
{
    return g_handler;
}

void
resetCheckFailHandler()
{
    g_handler = defaultFailHandler;
}

CheckFailureSink
setCheckFailureSink(CheckFailureSink sink)
{
    CheckFailureSink previous = g_sink;
    g_sink = sink;
    return previous;
}

namespace detail {

void
checkFailed(CheckKind kind, const char *condition, const char *file,
            int line, const char *function, std::string message)
{
    CheckFailure failure;
    failure.kind = kind;
    failure.condition = condition;
    failure.file = file;
    failure.line = line;
    failure.function = function;
    failure.message = std::move(message);
    // The sink runs before the handler: a throwing test handler
    // unwinds past us, and the post-mortem dump must already exist.
    if (g_sink)
        g_sink(failure);
    g_handler(failure);
    // A handler that wants to survive must throw; returning means the
    // invariant is broken and the process state untrustworthy.
    std::abort();
}

} // namespace detail
} // namespace dcbatt::util
