/**
 * @file
 * Contract-checking macros for dcbatt.
 *
 * Three levels of machine-checked contracts, replacing the silent
 * clamps and comment-only preconditions that used to guard the physics
 * code:
 *
 *  - DCBATT_REQUIRE(cond, fmt, ...): precondition on a public API.
 *    Always compiled in; violations indicate a caller bug.
 *  - DCBATT_ASSERT(cond, fmt, ...): internal invariant. Compiled in
 *    only when DCBATT_ENABLE_CHECKS is defined to a nonzero value
 *    (the default for Debug/RelWithDebInfo; release builds pass
 *    -DDCBATT_ENABLE_CHECKS=0 and the condition is not evaluated).
 *  - DCBATT_UNREACHABLE(fmt, ...): marks control flow that must never
 *    execute (e.g. an exhaustive switch's fall-through). Always
 *    compiled in.
 *
 * The message is printf-style and only formatted on failure, so a
 * check on a hot path costs one branch.
 *
 * Failures route through a process-wide fail handler. The default
 * handler prints the failure and aborts; tests install a capturing
 * handler (which may throw to unwind out of the failing scope — the
 * macros abort only if the handler returns).
 */

#ifndef DCBATT_UTIL_CHECK_H_
#define DCBATT_UTIL_CHECK_H_

#include <string>

#include "util/logging.h"

#ifndef DCBATT_ENABLE_CHECKS
#define DCBATT_ENABLE_CHECKS 1
#endif

/** Whether DCBATT_ASSERT is active in this build (for tests/#if). */
#if DCBATT_ENABLE_CHECKS
#define DCBATT_CHECKS_ENABLED 1
#else
#define DCBATT_CHECKS_ENABLED 0
#endif

namespace dcbatt::util {

/** Which macro a failure came from. */
enum class CheckKind
{
    Require,
    Assert,
    Unreachable,
};

const char *toString(CheckKind kind);

/** Everything known about one contract violation. */
struct CheckFailure
{
    CheckKind kind = CheckKind::Assert;
    /** Stringified condition ("" for DCBATT_UNREACHABLE). */
    const char *condition = "";
    const char *file = "";
    int line = 0;
    const char *function = "";
    /** Formatted user message. */
    std::string message;

    /** One-line rendering ("file:line: ASSERT failed: ..."). */
    std::string describe() const;
};

/**
 * Handler invoked on contract violation. If it returns, the process
 * aborts; a test handler may throw instead to unwind.
 */
using CheckFailHandler = void (*)(const CheckFailure &);

/** Install a fail handler; returns the previous one. */
CheckFailHandler setCheckFailHandler(CheckFailHandler handler);

/** The handler currently installed (never null). */
CheckFailHandler checkFailHandler();

/** Restore the default print-and-abort handler. */
void resetCheckFailHandler();

/**
 * Pre-handler observer of contract violations. Invoked on every
 * failure *before* the fail handler runs, so it fires even when a
 * test handler throws to unwind — the hook the observability layer
 * uses to dump crash bundles (obs/crash_bundle.h). Must not throw.
 */
using CheckFailureSink = void (*)(const CheckFailure &);

/** Install a failure sink; returns the previous one (null = none). */
CheckFailureSink setCheckFailureSink(CheckFailureSink sink);

namespace detail {

/**
 * Dispatch a failure to the installed handler; aborts if the handler
 * returns. Out of line so the macro expansion stays small.
 */
[[noreturn]] void checkFailed(CheckKind kind, const char *condition,
                              const char *file, int line,
                              const char *function,
                              std::string message);

} // namespace detail
} // namespace dcbatt::util

/** Precondition: always checked. */
#define DCBATT_REQUIRE(cond, ...)                                       \
    do {                                                                \
        if (!(cond)) [[unlikely]] {                                     \
            ::dcbatt::util::detail::checkFailed(                        \
                ::dcbatt::util::CheckKind::Require, #cond, __FILE__,    \
                __LINE__, __func__, ::dcbatt::util::strf(__VA_ARGS__)); \
        }                                                               \
    } while (0)

/** Internal invariant: compiled out when checks are disabled. */
#if DCBATT_CHECKS_ENABLED
#define DCBATT_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) [[unlikely]] {                                     \
            ::dcbatt::util::detail::checkFailed(                        \
                ::dcbatt::util::CheckKind::Assert, #cond, __FILE__,     \
                __LINE__, __func__, ::dcbatt::util::strf(__VA_ARGS__)); \
        }                                                               \
    } while (0)
#else
#define DCBATT_ASSERT(cond, ...)                                        \
    do {                                                                \
    } while (0)
#endif

/** Unreachable control flow: always checked. */
#define DCBATT_UNREACHABLE(...)                                         \
    ::dcbatt::util::detail::checkFailed(                                \
        ::dcbatt::util::CheckKind::Unreachable, "", __FILE__, __LINE__, \
        __func__, ::dcbatt::util::strf(__VA_ARGS__))

#endif // DCBATT_UTIL_CHECK_H_
