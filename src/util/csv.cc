#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace dcbatt::util {

namespace {

bool
needsQuoting(const std::string &field)
{
    return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string
quoteField(const std::string &field)
{
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << (needsQuoting(fields[i]) ? quoteField(fields[i])
                                         : fields[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &values)
{
    std::vector<std::string> fields;
    fields.reserve(values.size());
    for (double v : values)
        fields.push_back(strf("%.10g", v));
    writeRow(fields);
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (c == '\r') {
            // Tolerate CRLF line endings.
        } else {
            current += c;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

std::vector<std::vector<std::string>>
readCsv(std::istream &in)
{
    std::vector<std::vector<std::string>> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line == "\r")
            continue;
        rows.push_back(parseCsvLine(line));
    }
    return rows;
}

std::vector<std::vector<std::string>>
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal(strf("cannot open CSV file for reading: %s", path.c_str()));
    return readCsv(in);
}

void
writeCsvFile(const std::string &path,
             const std::vector<std::vector<std::string>> &rows)
{
    std::ofstream out(path);
    if (!out)
        fatal(strf("cannot open CSV file for writing: %s", path.c_str()));
    CsvWriter writer(out);
    for (const auto &row : rows)
        writer.writeRow(row);
    if (!out)
        fatal(strf("I/O error writing CSV file: %s", path.c_str()));
}

} // namespace dcbatt::util
