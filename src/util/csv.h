/**
 * @file
 * Small CSV reader/writer.
 *
 * Used to persist synthetic traces and benchmark outputs. Supports the
 * RFC-4180 subset the project produces: comma separation, optional
 * double-quote quoting with "" escapes, and one record per line.
 */

#ifndef DCBATT_UTIL_CSV_H_
#define DCBATT_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace dcbatt::util {

/** Writes rows to an output stream, quoting only when required. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    void writeRow(const std::vector<std::string> &fields);
    /** Convenience for numeric rows; formatted with %.10g. */
    void writeNumericRow(const std::vector<double> &values);

  private:
    std::ostream &out_;
};

/** Parse one CSV line into fields (handles quoted fields). */
std::vector<std::string> parseCsvLine(const std::string &line);

/** Read all records from a stream; skips completely empty lines. */
std::vector<std::vector<std::string>> readCsv(std::istream &in);

/** Read a CSV file from disk; fatal() if the file cannot be opened. */
std::vector<std::vector<std::string>> readCsvFile(const std::string &path);

/** Write rows to a CSV file on disk; fatal() on I/O failure. */
void writeCsvFile(const std::string &path,
                  const std::vector<std::vector<std::string>> &rows);

} // namespace dcbatt::util

#endif // DCBATT_UTIL_CSV_H_
