#include "util/interpolate.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dcbatt::util {

namespace {

void
checkIncreasing(const std::vector<double> &axis, const char *what)
{
    if (axis.size() < 2)
        panic(strf("%s: axis needs >= 2 samples", what));
    for (size_t i = 1; i < axis.size(); ++i) {
        if (axis[i] <= axis[i - 1])
            panic(strf("%s: axis not strictly increasing at %zu", what, i));
    }
}

} // namespace

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

size_t
intervalIndex(const std::vector<double> &axis, double x)
{
    if (x <= axis.front())
        return 0;
    if (x >= axis[axis.size() - 2])
        return axis.size() - 2;
    auto it = std::upper_bound(axis.begin(), axis.end(), x);
    return static_cast<size_t>(it - axis.begin()) - 1;
}

Grid1D::Grid1D(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    checkIncreasing(xs_, "Grid1D");
    if (ys_.size() != xs_.size())
        panic("Grid1D: xs/ys size mismatch");
}

double
Grid1D::operator()(double x) const
{
    if (x <= xs_.front())
        return ys_.front();
    if (x >= xs_.back())
        return ys_.back();
    size_t i = intervalIndex(xs_, x);
    double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
    return lerp(ys_[i], ys_[i + 1], t);
}

double
Grid1D::invert(double y) const
{
    bool increasing = ys_.back() > ys_.front();
    // Verify monotonicity once per call; the grids involved are tiny.
    for (size_t i = 1; i < ys_.size(); ++i) {
        bool step_up = ys_[i] > ys_[i - 1];
        if (step_up != increasing)
            panic("Grid1D::invert: values not strictly monotone");
    }
    double lo_val = increasing ? ys_.front() : ys_.back();
    double hi_val = increasing ? ys_.back() : ys_.front();
    if (y <= lo_val)
        return increasing ? xs_.front() : xs_.back();
    if (y >= hi_val)
        return increasing ? xs_.back() : xs_.front();
    for (size_t i = 1; i < ys_.size(); ++i) {
        double a = ys_[i - 1], b = ys_[i];
        bool inside = increasing ? (y >= a && y <= b)
                                 : (y <= a && y >= b);
        if (inside) {
            double t = (y - a) / (b - a);
            return lerp(xs_[i - 1], xs_[i], t);
        }
    }
    return xs_.back(); // unreachable given the range checks above
}

Grid2D::Grid2D(std::vector<double> xs, std::vector<double> ys,
               std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values))
{
    checkIncreasing(xs_, "Grid2D x");
    checkIncreasing(ys_, "Grid2D y");
    if (values_.size() != xs_.size() * ys_.size())
        panic("Grid2D: values size != rows * cols");
}

double
Grid2D::operator()(double x, double y) const
{
    double cx = std::clamp(x, xs_.front(), xs_.back());
    double cy = std::clamp(y, ys_.front(), ys_.back());
    size_t i = intervalIndex(xs_, cx);
    size_t j = intervalIndex(ys_, cy);
    double tx = (cx - xs_[i]) / (xs_[i + 1] - xs_[i]);
    double ty = (cy - ys_[j]) / (ys_[j + 1] - ys_[j]);
    double v00 = at(i, j), v01 = at(i, j + 1);
    double v10 = at(i + 1, j), v11 = at(i + 1, j + 1);
    return lerp(lerp(v00, v01, ty), lerp(v10, v11, ty), tx);
}

} // namespace dcbatt::util
