/**
 * @file
 * Interpolation helpers for tabulated models.
 *
 * The paper's charging-time data (Fig. 5) and SLA-current data
 * (Fig. 9b) are tables; the simulation interpolates them linearly (the
 * paper does the same: "by linearly interpolating the BBU charging time
 * data in Fig. 5"). Grid1D/Grid2D provide clamped linear and bilinear
 * interpolation over monotonically increasing axes.
 */

#ifndef DCBATT_UTIL_INTERPOLATE_H_
#define DCBATT_UTIL_INTERPOLATE_H_

#include <cstddef>
#include <vector>

namespace dcbatt::util {

/**
 * Piecewise-linear function on an increasing axis.
 * Queries outside the axis range clamp to the end values.
 */
class Grid1D
{
  public:
    Grid1D() = default;
    /** @param xs strictly increasing sample positions.
     *  @param ys values at those positions (same length, >= 2). */
    Grid1D(std::vector<double> xs, std::vector<double> ys);

    double operator()(double x) const;

    /**
     * Invert a monotone grid: find x with f(x) == y. Requires the ys
     * to be strictly monotone (either direction). Clamped to the axis
     * range when y is outside the value range.
     */
    double invert(double y) const;

    const std::vector<double> &xs() const { return xs_; }
    const std::vector<double> &ys() const { return ys_; }

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

/**
 * Bilinear interpolation over a rectangular grid. Values are stored
 * row-major: value(i, j) is at (xs[i], ys[j]). Queries clamp to the
 * grid boundary.
 */
class Grid2D
{
  public:
    Grid2D() = default;
    Grid2D(std::vector<double> xs, std::vector<double> ys,
           std::vector<double> values);

    double operator()(double x, double y) const;

    size_t rows() const { return xs_.size(); }
    size_t cols() const { return ys_.size(); }
    double at(size_t i, size_t j) const { return values_[i * cols() + j]; }

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
    std::vector<double> values_;
};

/** Index of the interval containing x in increasing axis (clamped). */
size_t intervalIndex(const std::vector<double> &axis, double x);

/** Scalar linear interpolation helper. */
double lerp(double a, double b, double t);

} // namespace dcbatt::util

#endif // DCBATT_UTIL_INTERPOLATE_H_
