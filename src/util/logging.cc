#include "util/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dcbatt::util {

namespace {

// Atomic so worker threads (SweepRunner tasks log warnings) can read
// the level while a test on another thread adjusts it.
std::atomic<LogLevel> g_level{LogLevel::Info};

void
emit(const char *prefix, std::string_view msg)
{
    // Compose first and write once, straight to the C stderr stream.
    // Not std::cerr: it is tied to std::cout, so every insertion
    // first flushes whatever partial line the caller has buffered on
    // stdout — under --verbose during a sweep that spliced
    // diagnostics into the middle of the artifact stream. stderr is
    // unbuffered, so the single fwrite stays one atomic-enough write
    // and never touches stdout's buffer.
    std::string line;
    line.reserve(msg.size() + 16);
    line.append(prefix);
    line.append(msg);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

std::string
strf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void
debug(std::string_view msg)
{
    if (g_level <= LogLevel::Debug)
        emit("debug: ", msg);
}

void
inform(std::string_view msg)
{
    if (g_level <= LogLevel::Info)
        emit("info: ", msg);
}

void
warn(std::string_view msg)
{
    if (g_level <= LogLevel::Warn)
        emit("warn: ", msg);
}

void
fatal(std::string_view msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panic(std::string_view msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace dcbatt::util
