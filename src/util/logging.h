/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * Severity model follows gem5's logging conventions:
 *  - inform(): normal operating status, no connotation of a problem.
 *  - warn():   something is off but the run can continue.
 *  - fatal():  the user asked for something impossible (bad config,
 *              bad arguments); exits with status 1.
 *  - panic():  an internal invariant is broken (a dcbatt bug); aborts.
 */

#ifndef DCBATT_UTIL_LOGGING_H_
#define DCBATT_UTIL_LOGGING_H_

#include <string>
#include <string_view>

namespace dcbatt::util {

/** printf-style formatting into a std::string. */
std::string strf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Log verbosity levels, ordered by increasing severity. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Set the minimum level that is actually emitted to stderr.
 * Defaults to Info. Tests lower it to Error to keep output quiet.
 */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a debug-level message (suppressed by default). */
void debug(std::string_view msg);
/** Emit an informational status message. */
void inform(std::string_view msg);
/** Emit a warning; the simulation continues. */
void warn(std::string_view msg);

/** User error: print the message and exit(1). */
[[noreturn]] void fatal(std::string_view msg);
/** Internal invariant violation: print the message and abort(). */
[[noreturn]] void panic(std::string_view msg);

} // namespace dcbatt::util

#endif // DCBATT_UTIL_LOGGING_H_
