#include "util/random.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace dcbatt::util {

namespace {

// ---------------------------------------------------------------------
// Shared distribution bodies. Rng and SeededStream must produce the
// same doubles from the same underlying uint64 stream, so both call
// through these templates — the expressions (and therefore the draw
// counts and rounding) cannot drift apart.
// ---------------------------------------------------------------------

template <typename Engine>
double
drawUniform(Engine &engine, double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine);
}

template <typename Engine>
double
drawExponential(Engine &engine, double mean)
{
    if (mean <= 0.0)
        panic(strf("Rng::exponential: nonpositive mean %g", mean));
    return std::exponential_distribution<double>(1.0 / mean)(engine);
}

template <typename Engine>
double
drawNormal(Engine &engine, double mean, double stddev)
{
    // A fresh distribution per draw: no carried Box-Muller state, so
    // the result is a pure function of the engine stream.
    return std::normal_distribution<double>(mean, stddev)(engine);
}

template <typename Engine>
double
drawTruncatedNormal(Engine &engine, double mean, double stddev,
                    double lo, double hi)
{
    if (lo > hi)
        panic("Rng::truncatedNormal: lo > hi");
    for (int attempt = 0; attempt < 64; ++attempt) {
        double x = drawNormal(engine, mean, stddev);
        if (x >= lo && x <= hi)
            return x;
    }
    return std::clamp(mean, lo, hi);
}

// ---------------------------------------------------------------------
// MT19937-64 core (matches std::mt19937_64's parameters; the
// CachedSeedEngine differential test pins equality). Only the seeding
// and twist live here — tempering is inline in the header.
// ---------------------------------------------------------------------

constexpr size_t kMtN = 312;
constexpr size_t kMtM = 156;
constexpr uint64_t kMtMatrixA = 0xB5026F5AA96619E9ULL;
constexpr uint64_t kMtUpperMask = 0xFFFFFFFF80000000ULL;
constexpr uint64_t kMtLowerMask = 0x7FFFFFFFULL;

void
mtSeedState(uint64_t seed, std::array<uint64_t, kMtN> &mt)
{
    mt[0] = seed;
    for (size_t i = 1; i < kMtN; ++i)
        mt[i] = 6364136223846793005ULL * (mt[i - 1] ^ (mt[i - 1] >> 62))
            + i;
}

void
mtTwistState(std::array<uint64_t, kMtN> &mt)
{
    for (size_t i = 0; i < kMtN; ++i) {
        uint64_t y = (mt[i] & kMtUpperMask)
            | (mt[(i + 1) % kMtN] & kMtLowerMask);
        mt[i] = mt[(i + kMtM) % kMtN] ^ (y >> 1)
            ^ ((y & 1) ? kMtMatrixA : 0);
    }
}

} // namespace

std::shared_ptr<const CachedSeedEngine::Block>
CachedSeedEngine::blockForSeed(uint64_t seed)
{
    // Pure memoization of seed -> first output block. Thread-local so
    // pool workers never contend; shard results stay a function of the
    // seed alone, never of which thread computed them.
    thread_local std::unordered_map<uint64_t,
                                    std::shared_ptr<const Block>>
        cache;
    // detlint note: the map is lookup-only memoization, never
    // iterated, so its ordering cannot leak into results.
    if (auto it = cache.find(seed); it != cache.end())
        return it->second;
    if (cache.size() >= 1024)
        cache.clear(); // engines hold shared_ptrs; eviction is safe
    auto block = std::make_shared<Block>();
    mtSeedState(seed, block->state);
    mtTwistState(block->state);
    for (size_t i = 0; i < kStateWords; ++i)
        block->out[i] = temper(block->state[i]);
    cache.emplace(seed, block);
    return block;
}

void
CachedSeedEngine::advanceBlock()
{
    if (!materialized_) {
        mt_ = block_->state;
        materialized_ = true;
    }
    mtTwistState(mt_);
    idx_ = 0;
}

double
Rng::uniform()
{
    return drawUniform(engine_, 0.0, 1.0);
}

double
Rng::uniform(double lo, double hi)
{
    return drawUniform(engine_, lo, hi);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double
Rng::exponential(double mean)
{
    return drawExponential(engine_, mean);
}

double
Rng::normal(double mean, double stddev)
{
    return drawNormal(engine_, mean, stddev);
}

double
Rng::truncatedNormal(double mean, double stddev, double lo, double hi)
{
    return drawTruncatedNormal(engine_, mean, stddev, lo, hi);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream so that forked
    // generators are independent but still fully determined by the
    // original seed.
    return Rng(engine_());
}

namespace {

/** SplitMix64 finalizer (Steele, Lea & Flood; public domain). */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
Rng::substreamSeed(uint64_t seed, uint64_t index)
{
    // Two SplitMix64 rounds keyed on (seed, index); a pure function of
    // the construction seed and the counter.
    return splitmix64(splitmix64(seed) ^ splitmix64(index));
}

Rng
Rng::substream(uint64_t index) const
{
    // Never touches engine_, so the mapping is independent of how many
    // draws the parent has made.
    return Rng(substreamSeed(seed_, index));
}

double
SeededStream::uniform(double lo, double hi)
{
    return drawUniform(engine_, lo, hi);
}

double
SeededStream::exponential(double mean)
{
    return drawExponential(engine_, mean);
}

double
SeededStream::normal(double mean, double stddev)
{
    return drawNormal(engine_, mean, stddev);
}

double
SeededStream::truncatedNormal(double mean, double stddev, double lo,
                              double hi)
{
    return drawTruncatedNormal(engine_, mean, stddev, lo, hi);
}

} // namespace dcbatt::util
