#include "util/random.h"

#include <algorithm>

#include "util/logging.h"

namespace dcbatt::util {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic(strf("Rng::exponential: nonpositive mean %g", mean));
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::truncatedNormal(double mean, double stddev, double lo, double hi)
{
    if (lo > hi)
        panic("Rng::truncatedNormal: lo > hi");
    for (int attempt = 0; attempt < 64; ++attempt) {
        double x = normal(mean, stddev);
        if (x >= lo && x <= hi)
            return x;
    }
    return std::clamp(mean, lo, hi);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream so that forked
    // generators are independent but still fully determined by the
    // original seed.
    return Rng(engine_());
}

namespace {

/** SplitMix64 finalizer (Steele, Lea & Flood; public domain). */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

Rng
Rng::substream(uint64_t index) const
{
    // Two SplitMix64 rounds keyed on (seed, index); never touches
    // engine_, so the mapping is a pure function of the construction
    // seed and the counter.
    return Rng(splitmix64(splitmix64(seed_) ^ splitmix64(index)));
}

} // namespace dcbatt::util
