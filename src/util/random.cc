#include "util/random.h"

#include <algorithm>

#include "util/logging.h"

namespace dcbatt::util {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic(strf("Rng::exponential: nonpositive mean %g", mean));
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::truncatedNormal(double mean, double stddev, double lo, double hi)
{
    if (lo > hi)
        panic("Rng::truncatedNormal: lo > hi");
    for (int attempt = 0; attempt < 64; ++attempt) {
        double x = normal(mean, stddev);
        if (x >= lo && x <= hi)
            return x;
    }
    return std::clamp(mean, lo, hi);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream so that forked
    // generators are independent but still fully determined by the
    // original seed.
    return Rng(engine_());
}

} // namespace dcbatt::util
