/**
 * @file
 * Deterministic random-number generation for the simulators.
 *
 * Every stochastic component takes an explicit Rng so experiments are
 * reproducible from a seed. The distributions offered are exactly those
 * the paper's models need: uniform, exponential (failure/repair/open-
 * transition processes), and normal (annual-maintenance scheduling and
 * trace noise).
 */

#ifndef DCBATT_UTIL_RANDOM_H_
#define DCBATT_UTIL_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace dcbatt::util {

/** Seeded pseudo-random generator with the distributions dcbatt uses. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : engine_(seed), seed_(seed)
    {
    }

    /** Uniform double in [0, 1). */
    double uniform();
    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);
    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);
    /** Exponential with the given mean (not rate). */
    double exponential(double mean);
    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);
    /**
     * Normal truncated to [lo, hi] by resampling (up to a bounded
     * number of attempts, then clamped). Used for annual-maintenance
     * intervals, which must stay positive.
     */
    double truncatedNormal(double mean, double stddev, double lo,
                           double hi);
    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Fork an independent stream (stable given the parent's state). */
    Rng fork();

    /**
     * Counter-based child stream @p index: the child seed is a
     * SplitMix64 mix of (seed, index) only, so — unlike fork() — the
     * result is independent of how many draws the parent has made.
     * This is the substream scheme the parallel shards use: shard i
     * of a simulation seeded s always sees Rng(s).substream(i),
     * regardless of generation order or thread count.
     */
    Rng substream(uint64_t index) const;

    /** The seed this generator was constructed with. */
    uint64_t seed() const { return seed_; }

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    uint64_t seed_ = 0;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_RANDOM_H_
