/**
 * @file
 * Deterministic random-number generation for the simulators.
 *
 * Every stochastic component takes an explicit Rng so experiments are
 * reproducible from a seed. The distributions offered are exactly those
 * the paper's models need: uniform, exponential (failure/repair/open-
 * transition processes), and normal (annual-maintenance scheduling and
 * trace noise).
 */

#ifndef DCBATT_UTIL_RANDOM_H_
#define DCBATT_UTIL_RANDOM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

namespace dcbatt::util {

/**
 * Drop-in mt19937_64 facade with O(1) construction.
 *
 * std::mt19937_64 pays ~2 µs per construction (312-word seeding plus
 * the first twist), which dominates workloads that build thousands of
 * short-lived streams — the sharded AOR generator constructs one per
 * (shard, failure process). This engine produces the exact same output
 * sequence as std::mt19937_64{seed} (pinned by a differential test)
 * but serves the first 312 outputs from a per-seed cache shared by
 * every engine with that seed; only streams that outlive the first
 * block copy any state. The cache is pure memoization of a pure
 * function of the seed, so determinism is unaffected; it is
 * thread-local, so worker threads never contend.
 */
class CachedSeedEngine
{
  public:
    using result_type = uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    explicit CachedSeedEngine(uint64_t seed)
        : block_(blockForSeed(seed))
    {
    }

    result_type
    operator()()
    {
        if (idx_ == kStateWords)
            advanceBlock();
        if (materialized_)
            return temper(mt_[idx_++]);
        return block_->out[idx_++];
    }

  private:
    static constexpr size_t kStateWords = 312;

    struct Block
    {
        std::array<uint64_t, kStateWords> out;   // tempered outputs
        std::array<uint64_t, kStateWords> state; // post-twist state
    };

    static std::shared_ptr<const Block> blockForSeed(uint64_t seed);

    /** MT19937-64 tempering transform. */
    static uint64_t
    temper(uint64_t y)
    {
        y ^= (y >> 29) & 0x5555555555555555ULL;
        y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
        y ^= (y << 37) & 0xFFF7EEE000000000ULL;
        y ^= y >> 43;
        return y;
    }

    void advanceBlock();

    std::shared_ptr<const Block> block_;
    size_t idx_ = 0;
    bool materialized_ = false;
    std::array<uint64_t, kStateWords> mt_; // used once materialized_
};

/** Seeded pseudo-random generator with the distributions dcbatt uses. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : engine_(seed), seed_(seed)
    {
    }

    /** Uniform double in [0, 1). */
    double uniform();
    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);
    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);
    /** Exponential with the given mean (not rate). */
    double exponential(double mean);
    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);
    /**
     * Normal truncated to [lo, hi] by resampling (up to a bounded
     * number of attempts, then clamped). Used for annual-maintenance
     * intervals, which must stay positive.
     */
    double truncatedNormal(double mean, double stddev, double lo,
                           double hi);
    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Fork an independent stream (stable given the parent's state). */
    Rng fork();

    /**
     * Counter-based child stream @p index: the child seed is a
     * SplitMix64 mix of (seed, index) only, so — unlike fork() — the
     * result is independent of how many draws the parent has made.
     * This is the substream scheme the parallel shards use: shard i
     * of a simulation seeded s always sees Rng(s).substream(i),
     * regardless of generation order or thread count.
     */
    Rng substream(uint64_t index) const;

    /**
     * The seed substream(index) would construct its child with — a
     * pure function of (seed, index), exposed so callers can feed it
     * to a SeededStream without building the intermediate Rng.
     */
    static uint64_t substreamSeed(uint64_t seed, uint64_t index);

    /** The seed this generator was constructed with. */
    uint64_t seed() const { return seed_; }

    /** Shuffle a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    uint64_t seed_ = 0;
};

/**
 * Forward-only distribution stream over a CachedSeedEngine — the
 * cheap-construction path for the thousands of short-lived per-process
 * streams the sharded AOR generator creates. Draw-for-draw
 * bit-identical to Rng(seed) for the distributions it offers (pinned
 * by util_random_test), so swapping one in never changes a timeline.
 */
class SeededStream
{
  public:
    explicit SeededStream(uint64_t seed) : engine_(seed) {}

    /** Uniform double in [lo, hi); matches Rng::uniform. */
    double uniform(double lo, double hi);
    /** Exponential with the given mean; matches Rng::exponential. */
    double exponential(double mean);
    /** Normal draw; matches Rng::normal. */
    double normal(double mean, double stddev);
    /** Truncated normal; matches Rng::truncatedNormal. */
    double truncatedNormal(double mean, double stddev, double lo,
                           double hi);

    /**
     * Next raw engine draw — what Rng::fork() seeds its child with,
     * so SeededStream(parent.nextRaw()) mirrors parent.fork().
     */
    uint64_t nextRaw() { return engine_(); }

  private:
    CachedSeedEngine engine_;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_RANDOM_H_
