#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcbatt::util {

void
RunningStats::add(double x)
{
    ++count_;
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    DCBATT_REQUIRE(!values.empty(), "empty sample");
    DCBATT_REQUIRE(p >= 0.0 && p <= 100.0, "p out of range: %g", p);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values[0];
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    auto lo_idx = static_cast<size_t>(rank);
    if (lo_idx >= values.size() - 1)
        return values.back();
    double frac = rank - static_cast<double>(lo_idx);
    return values[lo_idx] + frac * (values[lo_idx + 1] - values[lo_idx]);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    DCBATT_REQUIRE(bins > 0, "invalid bin count 0");
    DCBATT_REQUIRE(hi > lo, "invalid range [%g, %g)", lo, hi);
}

void
Histogram::add(double x)
{
    double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<int64_t>(t * static_cast<double>(bins()));
    idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(bins()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i)
        / static_cast<double>(bins());
}

double
Histogram::binHigh(size_t i) const
{
    return binLow(i + 1);
}

} // namespace dcbatt::util
