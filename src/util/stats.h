/**
 * @file
 * Summary statistics used by the benchmarks and the reliability
 * simulator: streaming moments (Welford), percentiles, and a fixed-bin
 * histogram.
 */

#ifndef DCBATT_UTIL_STATS_H_
#define DCBATT_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcbatt::util {

/** Streaming count/mean/variance/min/max accumulator. */
class RunningStats
{
  public:
    void add(double x);
    void merge(const RunningStats &other);

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile of a sample set with linear interpolation between order
 * statistics. @param p in [0, 100]. The input is copied and sorted.
 */
double percentile(std::vector<double> values, double p);

/** Fixed-width-bin histogram over [lo, hi); out-of-range values clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);
    uint64_t binCount(size_t i) const { return counts_[i]; }
    size_t bins() const { return counts_.size(); }
    double binLow(size_t i) const;
    double binHigh(size_t i) const;
    uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_STATS_H_
