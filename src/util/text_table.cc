#include "util/text_table.h"

#include <algorithm>
#include <sstream>

namespace dcbatt::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            out << row[i];
            if (i + 1 < row.size()) {
                out << std::string(widths[i] - row[i].size() + 2, ' ');
            }
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

} // namespace dcbatt::util
