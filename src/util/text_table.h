/**
 * @file
 * ASCII table rendering for the benchmark harnesses. Each bench binary
 * prints the paper's tables/series as aligned text so the reproduction
 * can be compared against the paper by eye.
 */

#ifndef DCBATT_UTIL_TEXT_TABLE_H_
#define DCBATT_UTIL_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace dcbatt::util {

/** Simple column-aligned text table with an optional header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header = {});

    void addRow(std::vector<std::string> row);

    /** Render with columns padded to the widest cell. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_TEXT_TABLE_H_
