#include "util/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/check.h"

namespace dcbatt::util {

unsigned
ThreadPool::hardwareThreads()
{
    unsigned hc = std::thread::hardware_concurrency();  // detlint: allow(raw-thread) -- capacity probe inside the sanctioned pool
    return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notifyAll();
    for (std::thread &worker : workers_)  // detlint: allow(raw-thread) -- joining the pool's own workers
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        MutexLock lock(mutex_);
        DCBATT_REQUIRE(!stopping_,
                       "submit on a ThreadPool being destroyed");
        queue_.push_back(std::move(job));
    }
    cv_.notifyOne();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            MutexLock lock(mutex_);
            // Explicit wait loop (not the predicate overload) so the
            // guarded reads sit where -Wthread-safety can see the
            // lock held.
            while (!stopping_ && queue_.empty())
                cv_.wait(lock);
            if (queue_.empty())
                return;  // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task catches the task's exception into its future;
        // a bare job that throws would terminate, which is the right
        // default for the pool's own plumbing.
        job();
    }
}

namespace {

/** Shared state of one parallelFor call. */
struct ForState
{
    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    Mutex mutex;
    std::exception_ptr error DCBATT_GUARDED_BY(mutex);
};

void
drainRange(ForState &state, size_t n,
           const std::function<void(size_t)> &fn)
{
    while (!state.abort.load(std::memory_order_relaxed)) {
        size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        try {
            fn(i);
        } catch (...) {
            {
                MutexLock lock(state.mutex);
                if (!state.error)
                    state.error = std::current_exception();
            }
            state.abort.store(true, std::memory_order_relaxed);
            return;
        }
    }
}

} // namespace

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    auto state = std::make_shared<ForState>();
    // One helper per worker, capped by the range (the calling thread
    // drains too, so the loop completes even on a saturated pool and
    // the caller always takes at least one index).
    size_t helpers = std::min<size_t>(workers_.size(), n - 1);
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (size_t h = 0; h < helpers; ++h) {
        futures.push_back(
            submit([state, n, &fn] { drainRange(*state, n, fn); }));
    }
    drainRange(*state, n, fn);
    for (std::future<void> &future : futures)
        future.get();
    // Every drainer has returned; the lock is uncontended and keeps
    // the guarded read visible to the thread-safety analysis.
    MutexLock lock(state->mutex);
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace dcbatt::util
