/**
 * @file
 * Fixed-size worker pool for deterministic parallel execution.
 *
 * The execution engine under the parallel Monte Carlo AOR simulator
 * and the charging-event sweep runner. Design rules:
 *
 *  - Parallelism must never change results. The pool provides raw
 *    fan-out only; callers shard their work deterministically (fixed
 *    shard counts, per-shard seed substreams, ordered reduction) so
 *    that output is bit-identical for any worker count.
 *  - Exceptions propagate. A task that throws delivers its exception
 *    to whoever waits on it: submit() through the returned future,
 *    parallelFor() by rethrowing the first captured exception after
 *    the loop drains.
 *  - The pool is reusable: submit/parallelFor may be called any
 *    number of times, including after a task has thrown.
 *
 * parallelFor() has the calling thread participate in draining the
 * index range, so it completes even when every worker is busy; it
 * still must not be called from inside a task of the same pool that
 * the outer call waits on through submit() futures (the usual nested
 * fork-join deadlock).
 */

#ifndef DCBATT_UTIL_THREAD_POOL_H_
#define DCBATT_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
// The pool is the one sanctioned owner of raw threads in the tree;
// everything else fans out through it so worker count stays a
// non-semantic knob (DESIGN.md §9).
#include <thread>  // detlint: allow(raw-thread) -- ThreadPool is the sanctioned std::thread owner
#include <type_traits>
#include <vector>

#include "util/annotations.h"

namespace dcbatt::util {

/** Fixed worker pool with a FIFO work queue. */
class ThreadPool
{
  public:
    /** Spawns @p threads workers (0 is clamped to 1). */
    explicit ThreadPool(unsigned threads = hardwareThreads());
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareThreads();

    /**
     * Enqueue @p fn and return a future for its result. An exception
     * thrown by @p fn is delivered by the future's get().
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run fn(0), ..., fn(n-1) across the workers plus the calling
     * thread; returns once every index has run (indices after a
     * thrown exception may be skipped). Rethrows the first exception.
     * Iterations must be independent: they run in unspecified order
     * and concurrently, so determinism is the caller's job (write to
     * disjoint slots, reduce in index order afterwards).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    Mutex mutex_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ DCBATT_GUARDED_BY(mutex_);
    /** Written only by the constructor; joined by the destructor. */
    std::vector<std::thread> workers_;  // detlint: allow(raw-thread) -- the pool's own workers
    bool stopping_ DCBATT_GUARDED_BY(mutex_) = false;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_THREAD_POOL_H_
