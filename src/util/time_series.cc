#include "util/time_series.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace dcbatt::util {

size_t
TimeSeries::indexAt(Seconds t) const
{
    if (empty())
        panic("TimeSeries::indexAt on empty series");
    double raw = (t - start_) / step_;
    if (raw <= 0.0)
        return 0;
    auto idx = static_cast<size_t>(raw);
    return std::min(idx, size() - 1);
}

double
TimeSeries::sample(Seconds t) const
{
    return values_[indexAt(t)];
}

double
TimeSeries::maxValue() const
{
    if (empty())
        panic("TimeSeries::maxValue on empty series");
    return *std::max_element(values_.begin(), values_.end());
}

double
TimeSeries::minValue() const
{
    if (empty())
        panic("TimeSeries::minValue on empty series");
    return *std::min_element(values_.begin(), values_.end());
}

size_t
TimeSeries::argMax() const
{
    if (empty())
        panic("TimeSeries::argMax on empty series");
    auto it = std::max_element(values_.begin(), values_.end());
    return static_cast<size_t>(it - values_.begin());
}

double
TimeSeries::mean() const
{
    if (empty())
        return 0.0;
    double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
    return sum / static_cast<double>(size());
}

double
TimeSeries::integral() const
{
    double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
    return sum * step_.value();
}

TimeSeries &
TimeSeries::operator+=(const TimeSeries &other)
{
    if (size() != other.size() || std::abs((step_ - other.step_).value())
        > 1e-9 || std::abs((start_ - other.start_).value()) > 1e-9) {
        panic("TimeSeries::operator+=: incompatible series");
    }
    for (size_t i = 0; i < size(); ++i)
        values_[i] += other.values_[i];
    return *this;
}

TimeSeries
TimeSeries::slice(size_t from, size_t to) const
{
    if (from > to || to > size())
        panic(strf("TimeSeries::slice: bad range [%zu, %zu)", from, to));
    TimeSeries out(timeAt(from), step_);
    out.values_.assign(values_.begin() + static_cast<ptrdiff_t>(from),
                       values_.begin() + static_cast<ptrdiff_t>(to));
    return out;
}

TimeSeries
TimeSeries::downsample(size_t factor) const
{
    if (factor == 0)
        panic("TimeSeries::downsample: zero factor");
    TimeSeries out(start_, step_ * static_cast<double>(factor));
    for (size_t i = 0; i < size(); i += factor) {
        size_t hi = std::min(i + factor, size());
        double sum = std::accumulate(values_.begin()
                                         + static_cast<ptrdiff_t>(i),
                                     values_.begin()
                                         + static_cast<ptrdiff_t>(hi),
                                     0.0);
        out.append(sum / static_cast<double>(hi - i));
    }
    return out;
}

} // namespace dcbatt::util
