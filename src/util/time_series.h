/**
 * @file
 * Uniformly sampled time series.
 *
 * Power traces, recharge-power curves, and benchmark outputs are all
 * fixed-step series (the production traces in the paper are sampled at
 * 3 s). TimeSeries stores a start time, a step, and the samples, and
 * offers zero-order-hold sampling, peak search, integration, and
 * element-wise combination.
 */

#ifndef DCBATT_UTIL_TIME_SERIES_H_
#define DCBATT_UTIL_TIME_SERIES_H_

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace dcbatt::util {

/** Fixed-step sampled series of doubles indexed by Seconds. */
class TimeSeries
{
  public:
    TimeSeries() : start_(0.0), step_(1.0) {}
    TimeSeries(Seconds start, Seconds step) : start_(start), step_(step) {}
    TimeSeries(Seconds start, Seconds step, std::vector<double> values)
        : start_(start), step_(step), values_(std::move(values)) {}

    void append(double v) { values_.push_back(v); }

    /** Pre-size the backing store for n upcoming append() calls. */
    void reserve(size_t n) { values_.reserve(n); }

    size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    Seconds start() const { return start_; }
    Seconds step() const { return step_; }
    Seconds end() const
    {
        return start_ + step_ * static_cast<double>(size());
    }

    double operator[](size_t i) const { return values_[i]; }
    double &operator[](size_t i) { return values_[i]; }
    const std::vector<double> &values() const { return values_; }

    /** Time of sample i. */
    Seconds timeAt(size_t i) const
    {
        return start_ + step_ * static_cast<double>(i);
    }

    /**
     * Zero-order-hold sample at time t: the value of the most recent
     * sample at or before t. Clamps to the first/last sample outside
     * the series range.
     */
    double sample(Seconds t) const;

    /** Index of the sample covering time t (clamped). */
    size_t indexAt(Seconds t) const;

    double maxValue() const;
    double minValue() const;
    /** Index of the maximum value (first occurrence). */
    size_t argMax() const;
    double mean() const;

    /** Integral of the series (sum * step), e.g. watts -> joules. */
    double integral() const;

    /** Element-wise sum; series must share start/step/size. */
    TimeSeries &operator+=(const TimeSeries &other);

    /** Contiguous slice [from, to) by sample index. */
    TimeSeries slice(size_t from, size_t to) const;

    /**
     * Downsample by integer factor, averaging each group of samples.
     * A trailing partial group is averaged over its actual length.
     */
    TimeSeries downsample(size_t factor) const;

  private:
    Seconds start_;
    Seconds step_;
    std::vector<double> values_;
};

} // namespace dcbatt::util

#endif // DCBATT_UTIL_TIME_SERIES_H_
