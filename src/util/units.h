/**
 * @file
 * Strong-typed physical quantities used throughout dcbatt.
 *
 * The simulator mixes electrical (volts, amperes), energetic (watts,
 * joules, coulombs) and temporal quantities. Mixing them up silently is
 * the classic failure mode of power-modelling code, so each carries its
 * own type. Only the physically meaningful cross products are defined
 * (e.g. Volts * Amperes = Watts); everything else is a compile error.
 *
 * This is deliberately not a general dimensional-analysis library: the
 * handful of units below cover the whole project, and an explicit list
 * of conversions is easier to audit than a template metaprogram.
 */

#ifndef DCBATT_UTIL_UNITS_H_
#define DCBATT_UTIL_UNITS_H_

#include <compare>
#include <cmath>

namespace dcbatt::util {

/**
 * Strong numeric wrapper parameterized by a tag type.
 *
 * Supports the closed arithmetic of a one-dimensional vector space:
 * addition/subtraction with the same unit, scaling by dimensionless
 * doubles, and ordering. Construction from a raw double is explicit.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /** Underlying value in the unit's base scale (SI). */
    constexpr double value() const { return value_; }

    constexpr auto operator<=>(const Quantity &) const = default;

    constexpr Quantity operator+(Quantity other) const
    {
        return Quantity(value_ + other.value_);
    }
    constexpr Quantity operator-(Quantity other) const
    {
        return Quantity(value_ - other.value_);
    }
    constexpr Quantity operator-() const { return Quantity(-value_); }
    constexpr Quantity operator*(double scale) const
    {
        return Quantity(value_ * scale);
    }
    constexpr Quantity operator/(double scale) const
    {
        return Quantity(value_ / scale);
    }
    /** Ratio of two like quantities is dimensionless. */
    constexpr double operator/(Quantity other) const
    {
        return value_ / other.value_;
    }

    constexpr Quantity &operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }
    constexpr Quantity &operator*=(double scale)
    {
        value_ *= scale;
        return *this;
    }

  private:
    double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double scale, Quantity<Tag> q)
{
    return q * scale;
}

/** Electrical power in watts. */
using Watts = Quantity<struct WattsTag>;
/** Energy in joules. */
using Joules = Quantity<struct JoulesTag>;
/** Electrical current in amperes. */
using Amperes = Quantity<struct AmperesTag>;
/** Electrical potential in volts. */
using Volts = Quantity<struct VoltsTag>;
/** Electrical charge in coulombs. */
using Coulombs = Quantity<struct CoulombsTag>;
/** Physical duration in seconds (simulation ticks live in sim/). */
using Seconds = Quantity<struct SecondsTag>;

// Scale helpers. Base scale is always SI; these exist so call sites can
// say megawatts(2.5) instead of Watts(2.5e6).
constexpr Watts kilowatts(double kw) { return Watts(kw * 1e3); }
constexpr Watts megawatts(double mw) { return Watts(mw * 1e6); }
constexpr double toKilowatts(Watts w) { return w.value() / 1e3; }
constexpr double toMegawatts(Watts w) { return w.value() / 1e6; }
constexpr Joules kilojoules(double kj) { return Joules(kj * 1e3); }
constexpr double toKilojoules(Joules j) { return j.value() / 1e3; }
constexpr Seconds minutes(double m) { return Seconds(m * 60.0); }
constexpr Seconds hours(double h) { return Seconds(h * 3600.0); }
constexpr double toMinutes(Seconds s) { return s.value() / 60.0; }
constexpr double toHours(Seconds s) { return s.value() / 3600.0; }

// Physically meaningful cross products.
constexpr Watts operator*(Volts v, Amperes i)
{
    return Watts(v.value() * i.value());
}
constexpr Watts operator*(Amperes i, Volts v) { return v * i; }
constexpr Joules operator*(Watts p, Seconds t)
{
    return Joules(p.value() * t.value());
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Coulombs operator*(Amperes i, Seconds t)
{
    return Coulombs(i.value() * t.value());
}
constexpr Coulombs operator*(Seconds t, Amperes i) { return i * t; }
constexpr Seconds operator/(Joules e, Watts p)
{
    return Seconds(e.value() / p.value());
}
constexpr Watts operator/(Joules e, Seconds t)
{
    return Watts(e.value() / t.value());
}
constexpr Seconds operator/(Coulombs q, Amperes i)
{
    return Seconds(q.value() / i.value());
}
constexpr Amperes operator/(Coulombs q, Seconds t)
{
    return Amperes(q.value() / t.value());
}
constexpr Coulombs operator/(Joules e, Volts v)
{
    return Coulombs(e.value() / v.value());
}
constexpr Amperes operator/(Watts p, Volts v)
{
    return Amperes(p.value() / v.value());
}
constexpr Volts operator/(Watts p, Amperes i)
{
    return Volts(p.value() / i.value());
}

/** Clamp a quantity into [lo, hi]. */
template <typename Tag>
constexpr Quantity<Tag>
clamp(Quantity<Tag> q, Quantity<Tag> lo, Quantity<Tag> hi)
{
    if (q < lo) return lo;
    if (q > hi) return hi;
    return q;
}

template <typename Tag>
constexpr Quantity<Tag>
min(Quantity<Tag> a, Quantity<Tag> b)
{
    return a < b ? a : b;
}

template <typename Tag>
constexpr Quantity<Tag>
max(Quantity<Tag> a, Quantity<Tag> b)
{
    return a > b ? a : b;
}

} // namespace dcbatt::util

#endif // DCBATT_UTIL_UNITS_H_
