/**
 * @file
 * Bit-parity contract of the batched CC-CV lanes
 * (battery/batch_charge_kernel.h):
 *
 *  1. export -> batch advance -> apply must leave a pack in exactly
 *     the state BbuModel::step() would have produced (every double
 *     bit-equal), across CC, CV, and the boundary steps that fall
 *     back to the scalar path;
 *  2. the AVX2 lanes must be bit-identical to the scalar lanes;
 *  3. a Topology stepped with batching on and off must produce
 *     byte-identical fleet rows.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <vector>

#include "battery/batch_charge_kernel.h"
#include "battery/batch_charge_kernel_internal.h"
#include "battery/bbu.h"
#include "obs/metrics.h"
#include "power/topology.h"
#include "util/random.h"

namespace dcbatt::battery {
namespace {

using util::Amperes;
using util::Seconds;

/** a and b must agree on every dynamic field, bit for bit. */
void
expectBitEqual(const BbuModel &a, const BbuModel &b, int where)
{
    BbuModel::ChargeState sa = a.chargeState();
    BbuModel::ChargeState sb = b.chargeState();
    ASSERT_EQ(sa.state, sb.state) << "step " << where;
    ASSERT_EQ(std::bit_cast<uint64_t>(sa.dod),
              std::bit_cast<uint64_t>(sb.dod))
        << "step " << where;
    ASSERT_EQ(std::bit_cast<uint64_t>(sa.cvElapsedS),
              std::bit_cast<uint64_t>(sb.cvElapsedS))
        << "step " << where;
    ASSERT_EQ(sa.inCv, sb.inCv) << "step " << where;
    ASSERT_EQ(
        std::bit_cast<uint64_t>(a.chargingCurrent().value()),
        std::bit_cast<uint64_t>(b.chargingCurrent().value()))
        << "step " << where;
    ASSERT_EQ(std::bit_cast<uint64_t>(a.inputPower().value()),
              std::bit_cast<uint64_t>(b.inputPower().value()))
        << "step " << where;
}

TEST(BatchLane, ExportApplyMatchesScalarStepBitExact)
{
    BbuParams params;
    BatchChargeKernel kernel(params);
    int cc_lanes = 0;
    int cv_lanes = 0;
    int scalar_steps = 0;
    for (double dod : {0.95, 0.6, 0.3, 0.15}) {
        for (double sp : {1.0, 2.5, 5.0}) {
            for (double dt : {1.0, 4.0, 37.5}) {
                BbuModel scalar(params);
                BbuModel batched(params);
                scalar.forceDod(dod);
                batched.forceDod(dod);
                scalar.startCharging(Amperes(sp));
                batched.startCharging(Amperes(sp));
                BatchChargeStage stage;
                for (int i = 0; i < 100000 && scalar.charging();
                     ++i) {
                    scalar.step(Seconds(dt));
                    stage.clear();
                    BatchLaneKind kind =
                        batched.tryExportBatchLane(dt, stage);
                    if (kind == BatchLaneKind::None) {
                        ++scalar_steps;
                        batched.step(Seconds(dt));
                    } else {
                        kind == BatchLaneKind::Cc ? ++cc_lanes
                                                  : ++cv_lanes;
                        kernel.advanceWithMode(stage, dt,
                                               SimdMode::Scalar);
                        batched.applyBatchLane(kind, 0, stage);
                    }
                    expectBitEqual(scalar, batched, i);
                }
                EXPECT_TRUE(scalar.fullyCharged());
                EXPECT_TRUE(batched.fullyCharged());
            }
        }
    }
    // Every path must actually have been exercised.
    EXPECT_GT(cc_lanes, 100);
    EXPECT_GT(cv_lanes, 100);
    EXPECT_GT(scalar_steps, 10);
}

TEST(BatchLane, IneligibleConfigurationsStayScalar)
{
    BbuParams params;
    BatchChargeStage stage;

    BbuModel idle(params);
    EXPECT_EQ(idle.tryExportBatchLane(4.0, stage),
              BatchLaneKind::None);

    BbuModel paused(params);
    paused.forceDod(0.8);
    paused.startCharging(Amperes(5.0));
    paused.setPaused(true);
    EXPECT_EQ(paused.tryExportBatchLane(4.0, stage),
              BatchLaneKind::None);

    BbuParams numeric = params;
    numeric.integrator = CcCvIntegrator::NumericReference;
    BbuModel reference(numeric);
    reference.forceDod(0.8);
    reference.startCharging(Amperes(5.0));
    EXPECT_EQ(reference.tryExportBatchLane(4.0, stage),
              BatchLaneKind::None);

    // A step that crosses the CC->CV handover must not stage.
    BbuModel near_handover(params);
    near_handover.forceDod(0.8);
    near_handover.startCharging(Amperes(5.0));
    EXPECT_EQ(near_handover.tryExportBatchLane(1e9, stage),
              BatchLaneKind::None);

    EXPECT_EQ(stage.ccLanes(), 0u);
    EXPECT_EQ(stage.cvLanes(), 0u);
}

TEST(BatchKernel, Avx2LanesMatchScalarBitExact)
{
    if (!internal::cpuHasAvx2())
        GTEST_SKIP() << "CPU has no AVX2";
    BbuParams params;
    BatchChargeKernel kernel(params);
    util::Rng rng(0x5eed);
    // Odd lane count: the last three CC / CV lanes take the scalar
    // tail inside the AVX2 mode, which must splice seamlessly.
    constexpr size_t kLanes = 1003;
    BatchChargeStage scalar_stage;
    for (size_t i = 0; i < kLanes; ++i) {
        scalar_stage.ccDod.push_back(rng.uniform(0.25, 1.0));
        scalar_stage.ccSetpointA.push_back(rng.uniform(1.0, 5.0));
        scalar_stage.cvDod.push_back(rng.uniform(0.0, 0.2));
        scalar_stage.cvI0A.push_back(rng.uniform(0.4, 5.0));
        scalar_stage.cvSetpointA.push_back(rng.uniform(1.0, 5.0));
        scalar_stage.cvElapsedS.push_back(rng.uniform(0.0, 900.0));
    }
    BatchChargeStage avx_stage = scalar_stage;
    for (double dt : {1.0, 4.0, 37.5}) {
        kernel.advanceWithMode(scalar_stage, dt, SimdMode::Scalar);
        kernel.advanceWithMode(avx_stage, dt, SimdMode::Avx2);
        for (size_t i = 0; i < kLanes; ++i) {
            ASSERT_EQ(
                std::bit_cast<uint64_t>(scalar_stage.ccDodOut[i]),
                std::bit_cast<uint64_t>(avx_stage.ccDodOut[i]))
                << i;
            ASSERT_EQ(
                std::bit_cast<uint64_t>(scalar_stage.ccInputW[i]),
                std::bit_cast<uint64_t>(avx_stage.ccInputW[i]))
                << i;
            ASSERT_EQ(
                std::bit_cast<uint64_t>(scalar_stage.cvDodOut[i]),
                std::bit_cast<uint64_t>(avx_stage.cvDodOut[i]))
                << i;
            ASSERT_EQ(std::bit_cast<uint64_t>(
                          scalar_stage.cvElapsedOutS[i]),
                      std::bit_cast<uint64_t>(
                          avx_stage.cvElapsedOutS[i]))
                << i;
            ASSERT_EQ(
                std::bit_cast<uint64_t>(scalar_stage.cvCurrentA[i]),
                std::bit_cast<uint64_t>(avx_stage.cvCurrentA[i]))
                << i;
            ASSERT_EQ(
                std::bit_cast<uint64_t>(scalar_stage.cvInputW[i]),
                std::bit_cast<uint64_t>(avx_stage.cvInputW[i]))
                << i;
        }
    }
}

/**
 * End-to-end differential: a topology recharging after an outage must
 * produce byte-identical fleet rows whether or not stepRacks() batches
 * the lockstep lanes (DCBATT_BATCH=off forces the per-rack walk).
 */
std::vector<uint64_t>
runRechargeSeries()
{
    power::TopologySpec spec;
    spec.rootKind = power::NodeKind::Rpp;
    spec.rootName = "rpp0";
    spec.racksPerRpp = 9;
    power::Topology topo =
        power::Topology::build(spec, makeVariableCharger());
    const size_t racks = topo.racks().size();
    for (power::Rack *rack : topo.racks())
        rack->setItDemand(util::kilowatts(8.0));
    power::Topology::startOpenTransition(topo.root());
    // Per-rack DODs so the staged lanes differ (and complete at
    // different steps, exercising the scalar boundary fallbacks).
    for (size_t r = 0; r < racks; ++r) {
        topo.racks()[r]->shelf().forceUniformDod(
            0.1 + 0.8 * static_cast<double>(r)
                / static_cast<double>(racks - 1));
    }
    power::Topology::endOpenTransition(topo.root());
    std::vector<uint64_t> series;
    for (int step = 0; step < 1200; ++step) {
        topo.stepRacks(Seconds(4.0));
        const FleetState &fleet = topo.fleet();
        double recharge_sum = 0.0;
        for (size_t r = 0; r < racks; ++r)
            recharge_sum += fleet.rechargeW[r];
        series.push_back(std::bit_cast<uint64_t>(recharge_sum));
        series.push_back(std::bit_cast<uint64_t>(fleet.rechargeW[0]));
        series.push_back(
            std::bit_cast<uint64_t>(fleet.rechargeW[racks - 1]));
        series.push_back(
            static_cast<uint64_t>(fleet.chargingBbus[0]));
        series.push_back(static_cast<uint64_t>(fleet.cvBbus[0]));
        series.push_back(
            static_cast<uint64_t>(fleet.fullyCharged[racks - 1]));
    }
    return series;
}

TEST(TopologyBatch, FleetRowsMatchScalarWalkByteExact)
{
    obs::Counter &lanes = obs::counter("battery.batch_lanes");
    ASSERT_EQ(setenv("DCBATT_BATCH", "off", 1), 0);
    std::vector<uint64_t> scalar_series = runRechargeSeries();
    uint64_t lanes_before = lanes.value();
    ASSERT_EQ(setenv("DCBATT_BATCH", "on", 1), 0);
    std::vector<uint64_t> batched_series = runRechargeSeries();
    unsetenv("DCBATT_BATCH");
    // The batched run must actually have staged lanes (the comparison
    // would pass vacuously if everything fell back to the walk).
    EXPECT_GT(lanes.value(), lanes_before + 1000);
    ASSERT_EQ(scalar_series.size(), batched_series.size());
    for (size_t i = 0; i < scalar_series.size(); ++i)
        ASSERT_EQ(scalar_series[i], batched_series[i]) << i;
}

} // namespace
} // namespace dcbatt::battery
