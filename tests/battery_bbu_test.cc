/**
 * @file
 * Tests of the dynamic BBU model: state machine, discharge accounting,
 * CC-CV stepping, override semantics, and exact agreement with the
 * closed-form charge-time model.
 */

#include <gtest/gtest.h>

#include "battery/bbu.h"
#include "battery/charge_time_model.h"

namespace dcbatt::battery {
namespace {

using util::Amperes;
using util::Joules;
using util::Seconds;
using util::Watts;

TEST(Bbu, StartsFullyCharged)
{
    BbuModel bbu;
    EXPECT_EQ(bbu.state(), BbuState::FullyCharged);
    EXPECT_DOUBLE_EQ(bbu.dod(), 0.0);
    EXPECT_DOUBLE_EQ(bbu.chargingCurrent().value(), 0.0);
    EXPECT_DOUBLE_EQ(bbu.inputPower().value(), 0.0);
}

TEST(Bbu, StateNames)
{
    EXPECT_STREQ(toString(BbuState::FullyCharged), "fully_charged");
    EXPECT_STREQ(toString(BbuState::Discharging), "discharging");
    EXPECT_STREQ(toString(BbuState::FullyDischarged),
                 "fully_discharged");
    EXPECT_STREQ(toString(BbuState::Charging), "charging");
}

TEST(Bbu, DischargeTracksDod)
{
    BbuModel bbu;
    // Paper footnote: 3,300 W for 90 s == 100% DOD.
    Joules delivered = bbu.discharge(Watts(3300.0), Seconds(45.0));
    EXPECT_EQ(bbu.state(), BbuState::Discharging);
    EXPECT_NEAR(bbu.dod(), 0.5, 1e-9);
    EXPECT_NEAR(delivered.value(), 3300.0 * 45.0, 1e-6);
}

TEST(Bbu, FullDischargeInNinetySecondsAtRatedPower)
{
    BbuModel bbu;
    bbu.discharge(Watts(3300.0), Seconds(90.0));
    EXPECT_EQ(bbu.state(), BbuState::FullyDischarged);
    EXPECT_DOUBLE_EQ(bbu.dod(), 1.0);
}

TEST(Bbu, DischargeBeyondCapacityDeliversPartial)
{
    BbuModel bbu;
    Joules delivered = bbu.discharge(Watts(3300.0), Seconds(120.0));
    EXPECT_EQ(bbu.state(), BbuState::FullyDischarged);
    EXPECT_NEAR(delivered.value(), 297000.0, 1e-6);
    // Further discharge delivers nothing.
    EXPECT_DOUBLE_EQ(bbu.discharge(Watts(100.0), Seconds(1.0)).value(),
                     0.0);
}

TEST(Bbu, ZeroPowerDischargeIsNoop)
{
    BbuModel bbu;
    EXPECT_DOUBLE_EQ(bbu.discharge(Watts(0.0), Seconds(10.0)).value(),
                     0.0);
    EXPECT_EQ(bbu.state(), BbuState::FullyCharged);
}

TEST(BbuDeathTest, NegativeDischargePanics)
{
    BbuModel bbu;
    EXPECT_DEATH(bbu.discharge(Watts(-1.0), Seconds(1.0)), "negative");
}

TEST(Bbu, StartChargingOnFullPackIsNoop)
{
    BbuModel bbu;
    bbu.startCharging(Amperes(5.0));
    EXPECT_EQ(bbu.state(), BbuState::FullyCharged);
}

TEST(Bbu, SetpointClampedToHardwareRange)
{
    BbuModel bbu;
    bbu.forceDod(0.5);
    bbu.startCharging(Amperes(9.0));
    EXPECT_DOUBLE_EQ(bbu.setpoint().value(), 5.0);
    bbu.setSetpoint(Amperes(0.2));
    EXPECT_DOUBLE_EQ(bbu.setpoint().value(), 1.0);
}

TEST(Bbu, DeepDischargeStartsInCcPhase)
{
    BbuModel bbu;
    bbu.forceDod(1.0);
    bbu.startCharging(Amperes(5.0));
    EXPECT_TRUE(bbu.charging());
    EXPECT_FALSE(bbu.inCvPhase());
    EXPECT_DOUBLE_EQ(bbu.chargingCurrent().value(), 5.0);
}

TEST(Bbu, ShallowDischargeStartsInCvPhase)
{
    BbuModel bbu;
    bbu.forceDod(0.05);
    bbu.startCharging(Amperes(5.0));
    EXPECT_TRUE(bbu.inCvPhase());
}

TEST(Bbu, InitialChargePowerIs260WattsAtFullDod)
{
    // Paper Fig. 3/4: initial charging power ~260 W at 5 A.
    BbuModel bbu;
    bbu.forceDod(1.0);
    bbu.startCharging(Amperes(5.0));
    EXPECT_NEAR(bbu.inputPower().value(), 260.0, 5.0);
}

TEST(Bbu, VoltageRisesThroughCcAndHoldsInCv)
{
    BbuModel bbu;
    bbu.forceDod(1.0);
    bbu.startCharging(Amperes(5.0));
    double v0 = bbu.terminalVoltage().value();
    EXPECT_NEAR(v0, 42.6, 0.1);
    bbu.step(Seconds(600.0));
    double v_mid = bbu.terminalVoltage().value();
    EXPECT_GT(v_mid, v0);
    EXPECT_LT(v_mid, 52.1);
    // Run into CV.
    while (!bbu.inCvPhase() && !bbu.fullyCharged())
        bbu.step(Seconds(10.0));
    EXPECT_NEAR(bbu.terminalVoltage().value(), 52.5, 1e-9);
}

TEST(Bbu, CvCurrentDecaysExponentially)
{
    BbuModel bbu;
    bbu.forceDod(0.05);
    bbu.startCharging(Amperes(5.0));
    ASSERT_TRUE(bbu.inCvPhase());
    double i0 = bbu.chargingCurrent().value();
    EXPECT_DOUBLE_EQ(i0, 5.0);
    bbu.step(Seconds(373.0));  // one time constant
    EXPECT_NEAR(bbu.chargingCurrent().value(), 5.0 / std::exp(1.0),
                0.02);
}

TEST(Bbu, ChargingCompletesAtCutoff)
{
    BbuModel bbu;
    bbu.forceDod(0.3);
    bbu.startCharging(Amperes(2.0));
    for (int i = 0; i < 10000 && !bbu.fullyCharged(); ++i)
        bbu.step(Seconds(1.0));
    EXPECT_TRUE(bbu.fullyCharged());
    EXPECT_DOUBLE_EQ(bbu.dod(), 0.0);
    EXPECT_DOUBLE_EQ(bbu.chargingCurrent().value(), 0.0);
}

TEST(Bbu, DischargeDuringChargingRestartsCleanly)
{
    BbuModel bbu;
    bbu.forceDod(0.6);
    bbu.startCharging(Amperes(3.0));
    bbu.step(Seconds(300.0));
    double dod_mid = bbu.dod();
    EXPECT_LT(dod_mid, 0.6);
    // A second open transition hits mid-charge.
    bbu.discharge(Watts(2000.0), Seconds(30.0));
    EXPECT_EQ(bbu.state(), BbuState::Discharging);
    EXPECT_GT(bbu.dod(), dod_mid);
    bbu.startCharging(Amperes(5.0));
    EXPECT_TRUE(bbu.charging());
}

TEST(Bbu, ResetRestoresFullCharge)
{
    BbuModel bbu;
    bbu.forceDod(0.8);
    bbu.reset();
    EXPECT_TRUE(bbu.fullyCharged());
    EXPECT_DOUBLE_EQ(bbu.dod(), 0.0);
}

TEST(BbuDeathTest, ForceDodRejectsOutOfRange)
{
    BbuModel bbu;
    EXPECT_DEATH(bbu.forceDod(-0.1), "bad DOD");
    EXPECT_DEATH(bbu.forceDod(1.5), "bad DOD");
}

TEST(Bbu, StepWhileIdleIsNoop)
{
    BbuModel bbu;
    bbu.step(Seconds(100.0));
    EXPECT_TRUE(bbu.fullyCharged());
    bbu.forceDod(0.5);  // Discharging state, not charging
    bbu.step(Seconds(100.0));
    EXPECT_NEAR(bbu.dod(), 0.5, 1e-12);
}

// --- agreement with the closed form --------------------------------

struct AgreementCase
{
    double dod;
    double amps;
};

class BbuAgreementTest : public ::testing::TestWithParam<AgreementCase>
{
};

TEST_P(BbuAgreementTest, SteppedTimeMatchesClosedForm)
{
    auto [dod, amps] = GetParam();
    ChargeTimeModel model;
    BbuModel bbu;
    bbu.forceDod(dod);
    bbu.startCharging(Amperes(amps));
    double elapsed = 0.0;
    const double dt = 1.0;
    while (!bbu.fullyCharged() && elapsed < 4.0 * 3600.0) {
        bbu.step(Seconds(dt));
        elapsed += dt;
    }
    ASSERT_TRUE(bbu.fullyCharged());
    double expected = model.chargeTime(dod, Amperes(amps)).value();
    EXPECT_NEAR(elapsed, expected, 2.0 * dt)
        << "dod=" << dod << " amps=" << amps;
}

TEST_P(BbuAgreementTest, EnergyConservationInCc)
{
    auto [dod, amps] = GetParam();
    ChargeTimeModel model;
    double cc_s = model.ccDuration(dod, Amperes(amps)).value();
    if (cc_s < 60.0)
        return;  // pure-CV cases have no CC charge to check
    BbuModel bbu;
    bbu.forceDod(dod);
    bbu.startCharging(Amperes(amps));
    bbu.step(Seconds(cc_s / 2.0));
    // Charge delivered at constant current for cc_s/2 seconds.
    double delivered_c = amps * cc_s / 2.0;
    double expected_dod = dod
        - delivered_c / bbu.params().refillCharge.value();
    EXPECT_NEAR(bbu.dod(), expected_dod, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbuAgreementTest,
    ::testing::Values(AgreementCase{1.0, 5.0}, AgreementCase{1.0, 1.0},
                      AgreementCase{0.7, 3.2}, AgreementCase{0.5, 2.0},
                      AgreementCase{0.3, 2.0}, AgreementCase{0.1, 5.0},
                      AgreementCase{0.05, 1.0},
                      AgreementCase{0.9, 4.5}),
    [](const ::testing::TestParamInfo<AgreementCase> &point) {
        return "dod" + std::to_string(int(point.param.dod * 100))
            + "_amps" + std::to_string(int(point.param.amps * 10));
    });

} // namespace
} // namespace dcbatt::battery
