/**
 * @file
 * Property tests of the analytic CC-CV fast-forward kernel against the
 * numeric reference integrator.
 *
 * The parity contract (DESIGN.md section 10): while both integrators
 * are in flight they agree on every discrete outcome exactly — state,
 * CV phase (the CC phase is linear, so the rectangle rule is exact
 * there and the CC->CV handover lands on the same step bit for bit) —
 * and completion lands within one substep of the closed form. The
 * numeric SoC may *lead* the analytic one (the left-endpoint
 * rectangle over-delivers against a decaying current), by at most
 * maxCurrent * substep / refillCharge. The sweep covers the DOD range
 * the experiments visit, setpoint changes mid-CC and mid-CV, and the
 * tau/cutoff edge values.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "battery/bbu.h"
#include "battery/charge_time_model.h"

namespace dcbatt::battery {
namespace {

using util::Amperes;
using util::Seconds;

/**
 * Worst-case accumulated DOD gap between the rectangle-rule reference
 * and the exact integral: the per-substep excess is
 * i0*h - i0*tau*(1 - e^{-h/tau}) <= i0*h^2/(2*tau), which summed over
 * the whole CV tail is bounded by one substep of charge at the
 * maximum setpoint.
 */
double
dodTolerance(const BbuParams &params)
{
    return params.maxCurrent.value() * params.numericSubstep
        / params.refillCharge.value() + 1e-12;
}

BbuModel
makeCharging(CcCvIntegrator integrator, double dod, double setpoint_a,
             BbuParams params = {})
{
    params.integrator = integrator;
    BbuModel bbu(params);
    bbu.forceDod(dod);
    bbu.startCharging(Amperes(setpoint_a));
    return bbu;
}

/**
 * Step both integrators in lockstep until both complete, asserting the
 * parity contract at every observation point. @p mutate, when set, is
 * applied to both models at the given step index (setpoint change,
 * pause, ...).
 */
void
runParity(double dod, double setpoint_a, BbuParams params = {},
          int mutate_step = -1,
          const std::function<void(BbuModel &)> &mutate = nullptr)
{
    BbuModel analytic =
        makeCharging(CcCvIntegrator::Analytic, dod, setpoint_a, params);
    BbuModel numeric = makeCharging(CcCvIntegrator::NumericReference,
                                    dod, setpoint_a, params);
    const Seconds dt(1.0);
    double last_analytic_dod = analytic.dod();
    int analytic_done = -1;
    int numeric_done = -1;
    // Generous horizon: the longest charge (100 % DOD at 1 A) takes
    // ~2.6 h + the CV tail.
    for (int step = 0; step < 6 * 3600; ++step) {
        if (step == mutate_step && mutate) {
            mutate(analytic);
            mutate(numeric);
        }
        analytic.step(dt);
        numeric.step(dt);
        if (analytic_done < 0 && analytic.fullyCharged())
            analytic_done = step;
        if (numeric_done < 0 && numeric.fullyCharged())
            numeric_done = step;

        if (analytic_done < 0 && numeric_done < 0) {
            // In flight: discrete outcomes agree exactly...
            ASSERT_EQ(analytic.state(), numeric.state())
                << "step " << step << " dod " << dod << " setpoint "
                << setpoint_a;
            ASSERT_EQ(analytic.inCvPhase(), numeric.inCvPhase())
                << "step " << step;
            // ...and the numeric SoC leads the analytic one (the
            // rectangle rule over-delivers) by at most the documented
            // bound.
            ASSERT_LE(numeric.dod(), analytic.dod() + 1e-12)
                << "step " << step;
            ASSERT_NEAR(analytic.dod(), numeric.dod(),
                        dodTolerance(analytic.params()))
                << "step " << step;
        }

        // Monotone SoC: an unpaused charge never loses ground.
        if (!analytic.paused()) {
            ASSERT_LE(analytic.dod(), last_analytic_dod + 1e-15)
                << "step " << step;
        }
        last_analytic_dod = analytic.dod();

        if (analytic_done >= 0 && numeric_done >= 0) {
            // Completion lands within one substep, and both clamp the
            // residual deficit to exactly zero.
            EXPECT_LE(std::abs(analytic_done - numeric_done), 1)
                << "analytic " << analytic_done << " numeric "
                << numeric_done;
            EXPECT_EQ(analytic.dod(), 0.0);
            EXPECT_EQ(numeric.dod(), 0.0);
            return;
        }
    }
    FAIL() << "charge did not complete: dod " << dod << " setpoint "
           << setpoint_a;
}

TEST(CcCvKernelParity, DodSweepAtEverySetpoint)
{
    for (double dod : {0.3, 0.5, 0.7}) {
        for (double setpoint : {1.0, 2.0, 3.5, 5.0}) {
            runParity(dod, setpoint);
        }
    }
}

TEST(CcCvKernelParity, SetpointChangeMidCc)
{
    // 0.7 DOD at 5 A stays in CC for ~14 min; drop to 2 A at t = 120 s
    // (still CC) and re-check the whole trajectory.
    runParity(0.7, 5.0, {}, 120, [](BbuModel &bbu) {
        ASSERT_FALSE(bbu.inCvPhase());
        bbu.setSetpoint(Amperes(2.0));
    });
    // And an increase mid-CC.
    runParity(0.7, 2.0, {}, 120, [](BbuModel &bbu) {
        ASSERT_FALSE(bbu.inCvPhase());
        bbu.setSetpoint(Amperes(5.0));
    });
}

TEST(CcCvKernelParity, SetpointChangeMidCv)
{
    // 0.3 DOD at 5 A is below the CC threshold: the pack enters CV on
    // the first step. Change the setpoint deep in the CV tail.
    runParity(0.3, 5.0, {}, 600, [](BbuModel &bbu) {
        ASSERT_TRUE(bbu.inCvPhase());
        bbu.setSetpoint(Amperes(2.0));
    });
}

TEST(CcCvKernelParity, PauseAndResumeMidCharge)
{
    BbuModel analytic = makeCharging(CcCvIntegrator::Analytic, 0.5, 3.0);
    BbuModel numeric =
        makeCharging(CcCvIntegrator::NumericReference, 0.5, 3.0);
    const Seconds dt(1.0);
    for (int step = 0; step < 4 * 3600; ++step) {
        if (step == 100) {
            analytic.setPaused(true);
            numeric.setPaused(true);
        }
        if (step == 400) {
            // No progress was made while paused.
            ASSERT_EQ(analytic.dod(), numeric.dod());
            analytic.setPaused(false);
            numeric.setPaused(false);
        }
        analytic.step(dt);
        numeric.step(dt);
        if (step > 100 && step < 400) {
            ASSERT_EQ(analytic.chargingCurrent().value(), 0.0);
            ASSERT_EQ(numeric.chargingCurrent().value(), 0.0);
        }
        ASSERT_EQ(analytic.state(), numeric.state()) << "step " << step;
        if (analytic.fullyCharged() && numeric.fullyCharged())
            return;
    }
    FAIL() << "paused charge did not complete";
}

TEST(CcCvKernelParity, TauEdgeValues)
{
    // Short tau: the CV tail is a sliver, exercising the boundary
    // split right at the handover. Long tau: almost the whole charge
    // is CV decay.
    for (double tau : {30.0, 373.0, 2000.0}) {
        BbuParams params;
        params.cvTimeConstant = Seconds(tau);
        runParity(0.5, 3.0, params);
    }
}

TEST(CcCvKernelParity, CutoffNearSetpoint)
{
    // Cutoff just below the setpoint: totalCv = tau*ln(s/cutoff) is
    // tiny, so completion lands within the first CV substep.
    BbuParams params;
    params.cutoffCurrent = Amperes(0.95);
    runParity(0.4, 1.0, params);
}

TEST(CcCvKernelParity, CompletionClampsDodExactly)
{
    for (auto integrator : {CcCvIntegrator::Analytic,
                            CcCvIntegrator::NumericReference}) {
        BbuModel bbu = makeCharging(integrator, 0.5, 5.0);
        for (int step = 0; step < 4 * 3600 && !bbu.fullyCharged();
             ++step)
            bbu.step(Seconds(1.0));
        EXPECT_TRUE(bbu.fullyCharged());
        EXPECT_EQ(bbu.dod(), 0.0);
        EXPECT_EQ(bbu.chargingCurrent().value(), 0.0);
        EXPECT_EQ(bbu.inputPower().value(), 0.0);
    }
}

TEST(CcCvKernelParity, AnalyticLargeStepMatchesSmallSteps)
{
    // The analytic path is step-size consistent: one 600 s step lands
    // on the same discrete state as 600 one-second steps, with the
    // SoC differing only by floating-point accumulation order (one
    // applyCharge of 600 s of charge vs 600 of 1 s each) — there is
    // no O(h) integration bias to amortize.
    BbuModel coarse = makeCharging(CcCvIntegrator::Analytic, 0.6, 4.0);
    BbuModel fine = makeCharging(CcCvIntegrator::Analytic, 0.6, 4.0);
    for (int window = 0; window < 12; ++window) {
        coarse.step(Seconds(600.0));
        for (int s = 0; s < 600; ++s)
            fine.step(Seconds(1.0));
        ASSERT_EQ(coarse.state(), fine.state()) << "window " << window;
        ASSERT_EQ(coarse.inCvPhase(), fine.inCvPhase())
            << "window " << window;
        ASSERT_NEAR(coarse.dod(), fine.dod(), 1e-11)
            << "window " << window;
        ASSERT_NEAR(coarse.chargingCurrent().value(),
                    fine.chargingCurrent().value(), 1e-11)
            << "window " << window;
    }
}

TEST(CcCvKernelParity, ChargeTimeModelCrossCheck)
{
    // Stepping the analytic model to completion takes the closed-form
    // charge time, within one step.
    ChargeTimeModel model;
    for (double dod : {0.3, 0.5, 0.7}) {
        for (double setpoint : {2.0, 5.0}) {
            BbuModel bbu =
                makeCharging(CcCvIntegrator::Analytic, dod, setpoint);
            double t = 0.0;
            while (!bbu.fullyCharged() && t < 6.0 * 3600.0) {
                bbu.step(Seconds(1.0));
                t += 1.0;
            }
            double predicted =
                model.chargeTime(dod, Amperes(setpoint)).value();
            EXPECT_NEAR(t, predicted, 1.0 + 1e-9)
                << "dod " << dod << " setpoint " << setpoint;
        }
    }
}

} // namespace
} // namespace dcbatt::battery
