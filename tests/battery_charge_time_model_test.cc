/**
 * @file
 * Tests of the closed-form CC-CV charge-time model, including the
 * paper-pinned calibration points and property sweeps over the whole
 * (DOD, current) grid.
 */

#include <gtest/gtest.h>

#include "battery/charge_time_model.h"
#include "util/units.h"

namespace dcbatt::battery {
namespace {

using util::Amperes;
using util::Seconds;
using util::minutes;
using util::toMinutes;

class ChargeTimeModelTest : public ::testing::Test
{
  protected:
    ChargeTimeModel model_;
};

// --- paper calibration points -------------------------------------

TEST_F(ChargeTimeModelTest, FullChargeAtFiveAmpsTakes36Minutes)
{
    // Fig. 3: the entire charging sequence completes in ~36 minutes.
    EXPECT_NEAR(toMinutes(model_.chargeTime(1.0, Amperes(5.0))), 36.0,
                0.5);
}

TEST_F(ChargeTimeModelTest, CcPhaseAtFiveAmpsTakes20Minutes)
{
    // Fig. 3: CC at 5 A up to 52 V takes about 20 minutes.
    EXPECT_NEAR(toMinutes(model_.ccDuration(1.0, Amperes(5.0))), 20.0,
                0.6);
}

TEST_F(ChargeTimeModelTest, WorstCaseWithinOriginal45MinuteBound)
{
    // "the worst-case charge time for the original 5A charger is
    // within 45 minutes"
    EXPECT_LT(toMinutes(model_.chargeTime(1.0, Amperes(5.0))), 45.0);
}

TEST_F(ChargeTimeModelTest, FlatThresholdAtFiveAmpsIs22Percent)
{
    // "charging time remains constant below a certain DOD (for
    // example, below 22% DOD)"
    EXPECT_NEAR(model_.flatDodThreshold(Amperes(5.0)), 0.22, 0.005);
}

TEST_F(ChargeTimeModelTest, OneAmpIsConsiderablySlower)
{
    // Fig. 5: 1 A "has a considerably high charging time".
    EXPECT_GT(toMinutes(model_.chargeTime(1.0, Amperes(1.0))), 100.0);
}

TEST_F(ChargeTimeModelTest, HalfDischargeAtTwoAmpsWithin45Minutes)
{
    // "if the BBU was less than 50% discharged, a 2A charging current
    // would suffice to charge it back at around the same time"
    double t = toMinutes(model_.chargeTime(0.5, Amperes(2.0)));
    EXPECT_LT(t, 45.0);
    EXPECT_GT(t, 30.0);
}

TEST_F(ChargeTimeModelTest, CvDecayMatchesPaperExponent)
{
    // The paper fits the CV power as 1.9*e^{-0.18 t} kW (t in
    // minutes); our tau must give an exponent near 0.18/min.
    double tau_min = model_.params().cvTimeConstant.value() / 60.0;
    EXPECT_NEAR(1.0 / tau_min, 0.18, 0.03);
}

// --- structural properties ----------------------------------------

TEST_F(ChargeTimeModelTest, CvDurationIndependentOfDod)
{
    // "the difference in time spent in the CV phase, for different
    // DOD, is small" — in the model it is exactly zero.
    Seconds cv = model_.cvDuration(Amperes(3.0));
    EXPECT_GT(cv.value(), 0.0);
    for (double dod : {0.1, 0.5, 1.0}) {
        Seconds total = model_.chargeTime(dod, Amperes(3.0));
        Seconds cc = model_.ccDuration(dod, Amperes(3.0));
        EXPECT_NEAR((total - cc).value(), cv.value(), 1e-9) << dod;
    }
}

TEST_F(ChargeTimeModelTest, FlatBelowThreshold)
{
    for (double amps : {1.0, 2.0, 3.0, 5.0}) {
        double threshold = model_.flatDodThreshold(Amperes(amps));
        Seconds at_threshold =
            model_.chargeTime(threshold, Amperes(amps));
        Seconds below = model_.chargeTime(threshold * 0.3,
                                          Amperes(amps));
        EXPECT_NEAR(at_threshold.value(), below.value(), 1e-9) << amps;
    }
}

TEST_F(ChargeTimeModelTest, ZeroDodStillPaysCvTime)
{
    // The charger walks the full CV tail even for a shallow discharge
    // (this is the paper's observed behaviour of the real hardware).
    EXPECT_NEAR(model_.chargeTime(0.0, Amperes(5.0)).value(),
                model_.cvDuration(Amperes(5.0)).value(), 1e-9);
}

TEST_F(ChargeTimeModelTest, CurrentForDeadlineExactlyMeets)
{
    for (double dod : {0.4, 0.6, 0.8, 1.0}) {
        auto current = model_.currentForDeadline(dod, minutes(40.0));
        ASSERT_TRUE(current.has_value()) << dod;
        EXPECT_LE(model_.chargeTime(dod, *current).value(),
                  minutes(40.0).value() + 1.0)
            << dod;
    }
}

TEST_F(ChargeTimeModelTest, CurrentForDeadlineUnattainable)
{
    // 100% DOD cannot be charged in 30 minutes even at 5 A (the
    // hardware limitation the paper acknowledges for P1 racks).
    EXPECT_FALSE(
        model_.currentForDeadline(1.0, minutes(30.0)).has_value());
}

TEST_F(ChargeTimeModelTest, CurrentForDeadlineReturnsMinWhenEasy)
{
    auto current = model_.currentForDeadline(0.05, minutes(90.0));
    ASSERT_TRUE(current.has_value());
    EXPECT_DOUBLE_EQ(current->value(),
                     model_.params().minCurrent.value());
}

TEST_F(ChargeTimeModelTest, LabTableMatchesModelOnGridPoints)
{
    util::Grid2D table = model_.defaultLabTable();
    EXPECT_NEAR(table(1.0, 5.0),
                model_.chargeTime(1.0, Amperes(5.0)).value(), 1e-9);
    EXPECT_NEAR(table(0.5, 2.0),
                model_.chargeTime(0.5, Amperes(2.0)).value(), 1e-9);
}

TEST_F(ChargeTimeModelTest, LabTableInterpolatesBetweenPoints)
{
    util::Grid2D table = model_.labTable({0.2, 0.8}, {2.0, 4.0});
    double interp = table(0.5, 3.0);
    double lo = model_.chargeTime(0.2, Amperes(2.0)).value();
    double hi = model_.chargeTime(0.8, Amperes(4.0)).value();
    EXPECT_GT(interp, std::min(lo, hi));
    EXPECT_LT(interp, std::max(lo, hi));
}

TEST_F(ChargeTimeModelTest, DeathOnBadInputs)
{
    EXPECT_DEATH(model_.chargeTime(-0.1, Amperes(3.0)), "DOD");
    EXPECT_DEATH(model_.chargeTime(1.1, Amperes(3.0)), "DOD");
    EXPECT_DEATH(model_.chargeTime(0.5, Amperes(0.2)), "cutoff");
}

// --- property sweep over the full grid -----------------------------

struct GridPoint
{
    double dod;
    double amps;
};

class ChargeTimeGridTest : public ::testing::TestWithParam<GridPoint>
{
  protected:
    ChargeTimeModel model_;
};

TEST_P(ChargeTimeGridTest, MonotoneIncreasingInDod)
{
    auto [dod, amps] = GetParam();
    if (dod <= 0.02)
        return;
    Seconds lower = model_.chargeTime(dod - 0.02, Amperes(amps));
    Seconds here = model_.chargeTime(dod, Amperes(amps));
    EXPECT_GE(here.value() + 1e-9, lower.value());
}

TEST_P(ChargeTimeGridTest, CcPlusCvDecomposition)
{
    auto [dod, amps] = GetParam();
    Seconds total = model_.chargeTime(dod, Amperes(amps));
    Seconds parts = model_.ccDuration(dod, Amperes(amps))
        + model_.cvDuration(Amperes(amps));
    EXPECT_NEAR(total.value(), parts.value(), 1e-9);
}

TEST_P(ChargeTimeGridTest, HigherCurrentNeverSlowerAboveFlatRegion)
{
    auto [dod, amps] = GetParam();
    if (amps >= 5.0)
        return;
    // Above both currents' flat regions, more current is faster.
    double threshold = model_.flatDodThreshold(Amperes(amps + 0.5));
    if (dod <= threshold)
        return;
    Seconds here = model_.chargeTime(dod, Amperes(amps));
    Seconds faster = model_.chargeTime(dod, Amperes(amps + 0.5));
    EXPECT_LE(faster.value(), here.value() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChargeTimeGridTest,
    ::testing::ValuesIn([] {
        std::vector<GridPoint> points;
        for (double dod = 0.05; dod <= 1.0; dod += 0.19) {
            for (double amps = 1.0; amps <= 5.0; amps += 1.0)
                points.push_back({dod, amps});
        }
        return points;
    }()),
    [](const ::testing::TestParamInfo<GridPoint> &point) {
        return "dod" + std::to_string(int(point.param.dod * 100))
            + "_amps" + std::to_string(int(point.param.amps * 10));
    });

} // namespace
} // namespace dcbatt::battery
