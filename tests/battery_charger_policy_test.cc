/**
 * @file
 * Tests of the local charger policies (original 5 A and Eq. 1), and
 * the variable charger's key guarantees: power reduction at shallow
 * DOD and the 45-minute worst-case recharge bound.
 */

#include <gtest/gtest.h>

#include "battery/charge_time_model.h"
#include "battery/charger_policy.h"

namespace dcbatt::battery {
namespace {

using util::Amperes;

TEST(OriginalCharger, AlwaysMaximumCurrent)
{
    OriginalChargerPolicy policy;
    for (double dod : {0.0, 0.1, 0.5, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(policy.initialCurrent(dod).value(), 5.0) << dod;
    EXPECT_EQ(policy.name(), "original-5A");
}

TEST(VariableCharger, Equation1BelowHalf)
{
    VariableChargerPolicy policy;
    // I_C = 2 if DOD < 50%.
    for (double dod : {0.0, 0.2, 0.49})
        EXPECT_DOUBLE_EQ(policy.initialCurrent(dod).value(), 2.0) << dod;
}

TEST(VariableCharger, Equation1LinearAboveHalf)
{
    VariableChargerPolicy policy;
    // I_C = 2 + (DOD - 0.5) * 6 if DOD >= 50%.
    EXPECT_DOUBLE_EQ(policy.initialCurrent(0.5).value(), 2.0);
    EXPECT_DOUBLE_EQ(policy.initialCurrent(0.6).value(), 2.6);
    EXPECT_DOUBLE_EQ(policy.initialCurrent(0.75).value(), 3.5);
    EXPECT_DOUBLE_EQ(policy.initialCurrent(1.0).value(), 5.0);
    EXPECT_EQ(policy.name(), "variable");
}

TEST(VariableCharger, MonotoneNondecreasingInDod)
{
    VariableChargerPolicy policy;
    double prev = 0.0;
    for (double dod = 0.0; dod <= 1.0; dod += 0.01) {
        double amps = policy.initialCurrent(dod).value();
        EXPECT_GE(amps, prev);
        prev = amps;
    }
}

TEST(VariableCharger, ReducesRechargePowerBy60PercentAtShallowDod)
{
    // "The recharge power is decreased by as much as 60% (if DOD is
    // less than 50%)": 2 A vs 5 A is exactly a 60% reduction in CC
    // power.
    VariableChargerPolicy variable;
    OriginalChargerPolicy original;
    double ratio = variable.initialCurrent(0.3).value()
        / original.initialCurrent(0.3).value();
    EXPECT_NEAR(1.0 - ratio, 0.6, 1e-12);
}

TEST(VariableCharger, AlwaysChargesWithin45Minutes)
{
    // The design objective of the variable charger: for every DOD the
    // selected current charges the battery within the 45-minute bound
    // of the original charger.
    VariableChargerPolicy policy;
    ChargeTimeModel model;
    for (double dod = 0.0; dod <= 1.0; dod += 0.005) {
        Amperes amps = policy.initialCurrent(dod);
        double minutes = util::toMinutes(model.chargeTime(dod, amps));
        EXPECT_LE(minutes, 45.0) << "dod=" << dod;
    }
}

TEST(ChargerFactories, ProduceCorrectTypes)
{
    auto original = makeOriginalCharger();
    auto variable = makeVariableCharger();
    EXPECT_EQ(original->name(), "original-5A");
    EXPECT_EQ(variable->name(), "variable");
    EXPECT_DOUBLE_EQ(original->initialCurrent(0.1).value(), 5.0);
    EXPECT_DOUBLE_EQ(variable->initialCurrent(0.1).value(), 2.0);
}

TEST(VariableCharger, CustomParamsRespectFloorAndMax)
{
    BbuParams params;
    params.variableFloorCurrent = Amperes(1.5);
    params.maxCurrent = Amperes(4.0);
    VariableChargerPolicy policy(params);
    EXPECT_DOUBLE_EQ(policy.initialCurrent(0.2).value(), 1.5);
    EXPECT_DOUBLE_EQ(policy.initialCurrent(1.0).value(), 4.0);
}

} // namespace
} // namespace dcbatt::battery
