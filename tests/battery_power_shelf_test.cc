/**
 * @file
 * Tests of the 6-BBU rack power shelf: load sharing, discharge,
 * charging orchestration, overrides, and BBU failure handling.
 */

#include <gtest/gtest.h>

#include "battery/power_shelf.h"

namespace dcbatt::battery {
namespace {

using util::Amperes;
using util::Seconds;
using util::Watts;

PowerShelf
makeShelf(bool variable = true)
{
    return PowerShelf(variable ? makeVariableCharger()
                               : makeOriginalCharger());
}

TEST(PowerShelf, InitialState)
{
    PowerShelf shelf = makeShelf();
    EXPECT_TRUE(shelf.inputPowerOn());
    EXPECT_TRUE(shelf.fullyCharged());
    EXPECT_FALSE(shelf.anyCharging());
    EXPECT_EQ(shelf.bbuCount(), 6);
    EXPECT_DOUBLE_EQ(shelf.rechargePower().value(), 0.0);
    EXPECT_DOUBLE_EQ(shelf.maxDod(), 0.0);
    EXPECT_TRUE(shelf.canCarryLoad());
}

TEST(PowerShelf, LoadSharedAcrossSixBbus)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    // 6 kW rack for 60 s: each BBU sees 1 kW for 60 s = 60 kJ
    // = 60/297 of full DOD.
    Watts carried = shelf.step(Seconds(60.0), util::kilowatts(6.0));
    EXPECT_NEAR(carried.value(), 6000.0, 1.0);
    EXPECT_NEAR(shelf.meanDod(), 60.0 / 297.0, 1e-6);
    EXPECT_NEAR(shelf.maxDod(), shelf.meanDod(), 1e-9);
}

TEST(PowerShelf, RestoreStartsChargingAtPolicyCurrent)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));  // ~20% DOD
    shelf.restoreInputPower();
    EXPECT_EQ(shelf.chargingCount(), 6);
    // Variable charger: DOD < 50% => 2 A.
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 2.0);
}

TEST(PowerShelf, OriginalChargerRestoresAtFiveAmps)
{
    PowerShelf shelf = makeShelf(false);
    shelf.loseInputPower();
    shelf.step(Seconds(10.0), util::kilowatts(6.0));
    shelf.restoreInputPower();
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 5.0);
}

TEST(PowerShelf, RackCcPowerMatchesPaperAtFiveAmps)
{
    // "The initial recharge power for a rack can be up to 1.9 kW".
    PowerShelf shelf = makeShelf(false);
    shelf.loseInputPower();
    // Deep discharge at rated power.
    shelf.step(Seconds(85.0), Watts(3300.0 * 6.0));
    shelf.restoreInputPower();
    // Step to mid-CC where voltage approaches the CC end value.
    shelf.step(Seconds(15.0 * 60.0), Watts(0.0));
    EXPECT_GT(shelf.rechargePower().value(), 1700.0);
    EXPECT_LT(shelf.rechargePower().value(), 1950.0);
}

TEST(PowerShelf, FullyChargesAfterRestore)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    shelf.step(Seconds(45.0), util::kilowatts(6.0));
    shelf.restoreInputPower();
    for (int i = 0; i < 7200 && !shelf.fullyCharged(); ++i)
        shelf.step(Seconds(1.0), util::kilowatts(6.0));
    EXPECT_TRUE(shelf.fullyCharged());
    EXPECT_DOUBLE_EQ(shelf.rechargePower().value(), 0.0);
}

TEST(PowerShelf, OverrideAppliesToChargingBbus)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    shelf.restoreInputPower();
    shelf.setOverride(Amperes(1.0));
    EXPECT_TRUE(shelf.overrideActive());
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 1.0);
}

TEST(PowerShelf, OverrideClampedToHardwareRange)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    shelf.restoreInputPower();
    shelf.setOverride(Amperes(0.1));
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 1.0);
    shelf.setOverride(Amperes(99.0));
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 5.0);
}

TEST(PowerShelf, OverrideBeforeRestoreAppliesAtChargeStart)
{
    // "Also applies to BBUs that *start* charging later while the
    // override is active."
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    shelf.setOverride(Amperes(1.5));
    shelf.restoreInputPower();
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 1.5);
}

TEST(PowerShelf, ClearOverrideRestoresPolicyForNewStarts)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    shelf.setOverride(Amperes(1.0));
    shelf.clearOverride();
    EXPECT_FALSE(shelf.overrideActive());
    shelf.restoreInputPower();
    EXPECT_DOUBLE_EQ(shelf.chargeSetpoint().value(), 2.0);
}

TEST(PowerShelf, BatteriesRunOutCausesBrownout)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    // 12 kW rack: each BBU at 2 kW, runtime = 297 kJ / 2 kW = 148.5 s.
    Watts carried(0.0);
    for (int i = 0; i < 150; ++i)
        carried = shelf.step(Seconds(1.0), util::kilowatts(12.0));
    EXPECT_LT(carried.value(), 12000.0);
    EXPECT_FALSE(shelf.canCarryLoad());
    EXPECT_DOUBLE_EQ(shelf.maxDod(), 1.0);
}

TEST(PowerShelf, PerBbuDischargeRatingRespected)
{
    PowerShelf shelf = makeShelf();
    shelf.loseInputPower();
    // 60 kW rack demand: each BBU would see 10 kW but is limited to
    // its 3.3 kW rating; the carried power reflects the brown-out.
    Watts carried = shelf.step(Seconds(1.0), util::kilowatts(60.0));
    EXPECT_NEAR(carried.value(), 6.0 * 3300.0, 1.0);
}

TEST(PowerShelf, FailedBbuDropsFromSharing)
{
    PowerShelf shelf = makeShelf();
    shelf.failBbu(0);
    EXPECT_FALSE(shelf.bbuHealthy(0));
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    // Zone 0 has 2 healthy BBUs sharing 3 kW: 1.5 kW each; zone 1 has
    // 3 sharing: 1 kW each. DODs differ accordingly.
    EXPECT_NEAR(shelf.bbu(1).dod(), 1.5 * 60.0 / 297.0, 1e-6);
    EXPECT_NEAR(shelf.bbu(3).dod(), 1.0 * 60.0 / 297.0, 1e-6);
    // Failed BBU untouched.
    EXPECT_DOUBLE_EQ(shelf.bbu(0).dod(), 0.0);
}

TEST(PowerShelf, ZoneWithAllBbusFailedCannotCarry)
{
    PowerShelf shelf = makeShelf();
    shelf.failBbu(0);
    shelf.failBbu(1);
    shelf.failBbu(2);
    shelf.loseInputPower();
    EXPECT_FALSE(shelf.canCarryLoad());
    Watts carried = shelf.step(Seconds(1.0), util::kilowatts(6.0));
    // Only zone 1's half of the load is carried.
    EXPECT_NEAR(carried.value(), 3000.0, 1.0);
}

TEST(PowerShelf, RepairRestoresBbu)
{
    PowerShelf shelf = makeShelf();
    shelf.failBbu(2);
    shelf.repairBbu(2);
    EXPECT_TRUE(shelf.bbuHealthy(2));
    EXPECT_TRUE(shelf.bbu(2).fullyCharged());
}

TEST(PowerShelfDeathTest, NullPolicyPanics)
{
    EXPECT_DEATH(PowerShelf(nullptr), "null charger policy");
}

TEST(PowerShelfDeathTest, BadGeometryPanics)
{
    BbuParams params;
    params.bbusPerRack = 5;  // not divisible by 2 zones
    EXPECT_DEATH(PowerShelf(makeVariableCharger(), params),
                 "geometry");
}

TEST(PowerShelf, ForceUniformDod)
{
    PowerShelf shelf = makeShelf();
    shelf.forceUniformDod(0.42);
    EXPECT_NEAR(shelf.meanDod(), 0.42, 1e-12);
    EXPECT_NEAR(shelf.maxDod(), 0.42, 1e-12);
}

} // namespace
} // namespace dcbatt::battery
