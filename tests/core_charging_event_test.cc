/**
 * @file
 * Integration tests of the charging-event engine: full trace replay +
 * open transition + control plane, on a reduced fleet for speed. The
 * 316-rack paper-scale checks live in integration_paper_test.cc.
 */

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "trace/trace_generator.h"

namespace dcbatt::core {
namespace {

using power::Priority;
using util::Seconds;
using util::Watts;

class ChargingEventTest : public ::testing::Test
{
  protected:
    static const trace::TraceSet &
    traces()
    {
        static trace::TraceSet set = [] {
            trace::TraceGenSpec spec;
            spec.rackCount = 48;
            spec.startTime = util::hours(10.0);
            spec.duration = util::hours(7.0);
            spec.step = Seconds(3.0);
            spec.aggregateMean = util::kilowatts(300.0);
            spec.aggregateAmplitude = util::kilowatts(15.0);
            spec.priorities = priorities();
            return trace::generateTraces(spec);
        }();
        return set;
    }

    static std::vector<Priority>
    priorities()
    {
        return power::makePriorityMix(16, 16, 16);
    }

    static ChargingEventConfig
    baseConfig()
    {
        ChargingEventConfig config;
        config.priorities = priorities();
        config.msbLimit = util::kilowatts(360.0);
        config.targetMeanDod = 0.5;
        config.postEventDuration = util::hours(2.0);
        return config;
    }
};

TEST_F(ChargingEventTest, MeanDodLandsOnTarget)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::VariableLocal;
    auto result = runChargingEvent(config, traces());
    EXPECT_NEAR(result.meanInitialDod, 0.5, 0.05);
}

TEST_F(ChargingEventTest, ExplicitOtLengthRespected)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::VariableLocal;
    config.openTransitionLength = Seconds(45.0);
    auto result = runChargingEvent(config, traces());
    EXPECT_DOUBLE_EQ(result.otLength.value(), 45.0);
    // 45 s at ~6 kW mean rack load: DOD ~= 45 * 6250 / 1782000.
    EXPECT_NEAR(result.meanInitialDod, 0.16, 0.05);
}

TEST_F(ChargingEventTest, PowerDipsDuringOtThenSpikes)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::OriginalLocal;
    config.msbLimit = util::kilowatts(1000.0);  // unconstrained
    auto result = runChargingEvent(config, traces());
    size_t during_ot = result.msbPower.indexAt(
        result.otStart + result.otLength * 0.5);
    EXPECT_NEAR(result.msbPower[during_ot], 0.0, 1.0);
    // After restore, power exceeds IT alone: recharge spike.
    size_t after = result.msbPower.indexAt(result.chargeStart
                                           + Seconds(60.0));
    EXPECT_GT(result.msbPower[after], result.itPower[after] + 10e3);
}

TEST_F(ChargingEventTest, OriginalChargerSpikesHardestAndCaps)
{
    ChargingEventConfig original = baseConfig();
    original.policy = PolicyKind::OriginalLocal;
    auto orig = runChargingEvent(original, traces());

    ChargingEventConfig variable = baseConfig();
    variable.policy = PolicyKind::VariableLocal;
    auto vari = runChargingEvent(variable, traces());

    // Original charger: every rack at 5 A -> much bigger spike.
    EXPECT_GT(orig.maxCap.value(), vari.maxCap.value());
    EXPECT_GT(orig.maxCap.value(), 0.0);
    EXPECT_GT(orig.peakPower.value(), 0.9 * orig.limit.value());
}

TEST_F(ChargingEventTest, CoordinatedPoliciesAvoidCapping)
{
    for (PolicyKind kind :
         {PolicyKind::GlobalRate, PolicyKind::PriorityAware}) {
        ChargingEventConfig config = baseConfig();
        config.policy = kind;
        auto result = runChargingEvent(config, traces());
        EXPECT_DOUBLE_EQ(result.maxCap.value(), 0.0)
            << toString(kind);
        EXPECT_FALSE(result.breakerTripped) << toString(kind);
    }
}

TEST_F(ChargingEventTest, PriorityAwareMeetsAllP1WithModerateBudget)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::PriorityAware;
    auto result = runChargingEvent(config, traces());
    EXPECT_EQ(result.racksByPriority[0], 16);
    EXPECT_EQ(result.slaMetByPriority[0], result.racksByPriority[0]);
    // P3's 90-minute SLA is satisfiable at the floor for DOD ~0.5.
    EXPECT_EQ(result.slaMetByPriority[2], result.racksByPriority[2]);
}

TEST_F(ChargingEventTest, PriorityAwareBeatsGlobalOnP1)
{
    // Tight budget: global spreads current evenly and starves P1.
    ChargingEventConfig pa = baseConfig();
    pa.msbLimit = util::kilowatts(345.0);
    pa.policy = PolicyKind::PriorityAware;
    auto pa_result = runChargingEvent(pa, traces());

    ChargingEventConfig global = pa;
    global.policy = PolicyKind::GlobalRate;
    auto global_result = runChargingEvent(global, traces());

    EXPECT_GE(pa_result.slaMetByPriority[0],
              global_result.slaMetByPriority[0]);
    EXPECT_GT(pa_result.slaMetByPriority[0], 0);
}

TEST_F(ChargingEventTest, RacksChargeToCompletion)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::VariableLocal;
    auto result = runChargingEvent(config, traces());
    for (const RackOutcome &outcome : result.racks) {
        ASSERT_TRUE(outcome.chargeDuration.has_value())
            << outcome.rackId;
        // Variable charger bound: everything within 45 minutes plus
        // sampling slack.
        EXPECT_LE(util::toMinutes(*outcome.chargeDuration), 46.0);
    }
}

TEST_F(ChargingEventTest, SlaAccountingConsistent)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::PriorityAware;
    auto result = runChargingEvent(config, traces());
    std::array<int, 3> met{0, 0, 0};
    std::array<int, 3> total{0, 0, 0};
    for (const RackOutcome &outcome : result.racks) {
        int pri = power::priorityIndex(outcome.priority);
        ++total[static_cast<size_t>(pri)];
        if (outcome.slaMet)
            ++met[static_cast<size_t>(pri)];
        if (outcome.slaMet) {
            EXPECT_LE(outcome.chargeDuration->value(),
                      config.slaTable.chargeTimeSla(outcome.priority)
                          .value());
        }
    }
    EXPECT_EQ(met, result.slaMetByPriority);
    EXPECT_EQ(total, result.racksByPriority);
    EXPECT_EQ(result.slaMetTotal(), met[0] + met[1] + met[2]);
}

TEST_F(ChargingEventTest, HighDischargeDeepensDod)
{
    ChargingEventConfig low = baseConfig();
    low.policy = PolicyKind::VariableLocal;
    low.targetMeanDod = 0.3;
    ChargingEventConfig high = low;
    high.targetMeanDod = 0.7;
    auto low_result = runChargingEvent(low, traces());
    auto high_result = runChargingEvent(high, traces());
    EXPECT_NEAR(low_result.meanInitialDod, 0.3, 0.05);
    EXPECT_NEAR(high_result.meanInitialDod, 0.7, 0.07);
    EXPECT_GT(high_result.otLength.value(),
              low_result.otLength.value());
}

TEST_F(ChargingEventTest, PolicyNames)
{
    EXPECT_STREQ(toString(PolicyKind::OriginalLocal), "original-5A");
    EXPECT_STREQ(toString(PolicyKind::VariableLocal), "variable");
    EXPECT_STREQ(toString(PolicyKind::GlobalRate), "global");
    EXPECT_STREQ(toString(PolicyKind::PriorityAware),
                 "priority-aware");
}

TEST_F(ChargingEventTest, WindowOutsideTraceIsFatal)
{
    ChargingEventConfig config = baseConfig();
    config.postEventDuration = util::hours(200.0);
    EXPECT_EXIT(runChargingEvent(config, traces()),
                testing::ExitedWithCode(1), "outside trace");
}

} // namespace
} // namespace dcbatt::core
