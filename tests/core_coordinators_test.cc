/**
 * @file
 * Unit tests of the charging coordinators (Algorithm 1, the global
 * equal-rate baseline, and the local no-op), driven with synthetic
 * RackChargeInfo snapshots — no simulator in the loop.
 */

#include <gtest/gtest.h>

#include "core/global_coordinator.h"
#include "core/local_coordinator.h"
#include "core/priority_aware_coordinator.h"

namespace dcbatt::core {
namespace {

using dynamo::OverrideCommand;
using dynamo::RackChargeInfo;
using power::Priority;
using util::Amperes;
using util::Watts;
using util::kilowatts;

RackChargeInfo
rack(int id, Priority priority, double dod, double setpoint = 2.0,
     bool charging = true)
{
    RackChargeInfo info;
    info.rackId = id;
    info.priority = priority;
    info.initialDod = dod;
    info.setpoint = Amperes(setpoint);
    info.itLoad = kilowatts(6.0);
    info.charging = charging;
    return info;
}

double
commandFor(const std::vector<OverrideCommand> &commands, int id)
{
    for (const auto &cmd : commands) {
        if (cmd.rackId == id)
            return cmd.current.value();
    }
    return -1.0;
}

// Rack-level CC wall watts per ampere with default BbuParams: ~384 W.
const double kWpa = battery::rackWattsPerAmpere({}).value();

PriorityAwareCoordinator
makePa(PriorityAwareOptions options = {})
{
    SlaCurrentCalculator calc(battery::ChargeTimeModel(),
                              SlaTable::paperDefault());
    return PriorityAwareCoordinator(std::move(calc), options);
}

// --- local ----------------------------------------------------------

TEST(LocalCoordinator, NeverIssuesCommands)
{
    LocalOnlyCoordinator local("variable");
    std::vector<RackChargeInfo> racks{rack(0, Priority::P1, 0.5)};
    EXPECT_TRUE(local.planInitial(racks, kilowatts(100.0)).empty());
    EXPECT_TRUE(local.onTick(racks, kilowatts(-50.0)).empty());
    EXPECT_EQ(local.name(), "variable");
    EXPECT_FALSE(local.managesCurrents());
}

// --- global ----------------------------------------------------------

TEST(GlobalCoordinator, UniformRateFromAvailablePower)
{
    GlobalRateCoordinator global;
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.9), rack(1, Priority::P2, 0.1),
        rack(2, Priority::P3, 0.5)};
    // Budget for exactly 3 racks * 3 A * wpa.
    auto commands =
        global.planInitial(racks, Watts(3.0 * 3.0 * kWpa));
    ASSERT_EQ(commands.size(), 3u);
    for (const auto &cmd : commands)
        EXPECT_DOUBLE_EQ(cmd.current.value(), 3.0);
    EXPECT_DOUBLE_EQ(global.currentRate().value(), 3.0);
    EXPECT_TRUE(global.managesCurrents());
}

TEST(GlobalCoordinator, RateClampedToHardwareRange)
{
    GlobalRateCoordinator global;
    std::vector<RackChargeInfo> racks{rack(0, Priority::P2, 0.5)};
    global.planInitial(racks, kilowatts(1000.0));
    EXPECT_DOUBLE_EQ(global.currentRate().value(), 5.0);
    global.planInitial(racks, Watts(10.0));
    EXPECT_DOUBLE_EQ(global.currentRate().value(), 1.0);
}

TEST(GlobalCoordinator, IgnoresNonChargingRacks)
{
    GlobalRateCoordinator global;
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P2, 0.5),
        rack(1, Priority::P2, 0.0, 0.0, false)};
    auto commands =
        global.planInitial(racks, Watts(2.0 * kWpa));
    ASSERT_EQ(commands.size(), 1u);
    EXPECT_EQ(commands[0].rackId, 0);
    EXPECT_DOUBLE_EQ(global.currentRate().value(), 2.0);
}

TEST(GlobalCoordinator, ReducesOnOverload)
{
    GlobalRateCoordinator global;
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P2, 0.5, 4.0), rack(1, Priority::P2, 0.5,
                                              4.0)};
    global.planInitial(racks, Watts(2.0 * 4.0 * kWpa));
    ASSERT_DOUBLE_EQ(global.currentRate().value(), 4.0);
    // Overload of one amp-equivalent per rack.
    auto commands = global.onTick(racks, Watts(-2.0 * kWpa));
    ASSERT_EQ(commands.size(), 2u);
    EXPECT_NEAR(global.currentRate().value(), 3.0, 0.1001);
}

TEST(GlobalCoordinator, NoReductionWhileCommandsInFlight)
{
    GlobalRateCoordinator global;
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P2, 0.5, 4.0), rack(1, Priority::P2, 0.5,
                                              4.0)};
    global.planInitial(racks, Watts(2.0 * 2.0 * kWpa));
    ASSERT_DOUBLE_EQ(global.currentRate().value(), 2.0);
    // Measured setpoints still 4 A (commands not landed): the deficit
    // is already covered by the in-flight reduction.
    EXPECT_TRUE(global.onTick(racks, Watts(-2.0 * kWpa)).empty());
}

TEST(GlobalCoordinator, NeverRaisesRate)
{
    GlobalRateCoordinator global;
    std::vector<RackChargeInfo> racks{rack(0, Priority::P2, 0.5, 2.0)};
    global.planInitial(racks, Watts(2.0 * kWpa));
    EXPECT_TRUE(global.onTick(racks, kilowatts(500.0)).empty());
    EXPECT_DOUBLE_EQ(global.currentRate().value(), 2.0);
}

// --- priority-aware (Algorithm 1) ------------------------------------

TEST(PriorityAware, GrantsSlaCurrentsWhenBudgetAmple)
{
    auto pa = makePa();
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.5), rack(1, Priority::P2, 0.5),
        rack(2, Priority::P3, 0.5)};
    auto commands = pa.planInitial(racks, kilowatts(100.0));
    ASSERT_EQ(commands.size(), 3u);
    // P1 at DOD 0.5 needs ~3 A for the 30-min SLA; P2 ~1.4 A for
    // 60 min; P3 meets 90 min at the 1 A floor.
    EXPECT_GT(commandFor(commands, 0), 2.5);
    EXPECT_GT(commandFor(commands, 1), 1.0);
    EXPECT_LT(commandFor(commands, 1), 2.0);
    EXPECT_DOUBLE_EQ(commandFor(commands, 2), 1.0);
}

TEST(PriorityAware, EverythingAtFloorWhenNoBudget)
{
    auto pa = makePa();
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.5), rack(1, Priority::P2, 0.5)};
    auto commands = pa.planInitial(racks, Watts(0.0));
    ASSERT_EQ(commands.size(), 2u);
    EXPECT_DOUBLE_EQ(commandFor(commands, 0), 1.0);
    EXPECT_DOUBLE_EQ(commandFor(commands, 1), 1.0);
}

TEST(PriorityAware, HighestPriorityLowestDodFirst)
{
    auto pa = makePa();
    // Budget covers the floor of all four plus ONE upgrade of ~2 A.
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P2, 0.3), rack(1, Priority::P1, 0.8),
        rack(2, Priority::P1, 0.4), rack(3, Priority::P3, 0.2)};
    double p1_low_extra =
        (makePa().calculator().requiredCurrent(0.4, Priority::P1)
             .value()
         - 1.0)
        * kWpa;
    auto commands = pa.planInitial(
        racks, Watts(4.0 * kWpa + p1_low_extra + 1.0));
    // Only rack 2 (P1, lowest DOD) gets its SLA current; the strict
    // greedy stops at rack 1 (P1, higher DOD, bigger ask).
    EXPECT_GT(commandFor(commands, 2), 2.0);
    EXPECT_DOUBLE_EQ(commandFor(commands, 1), 1.0);
    EXPECT_DOUBLE_EQ(commandFor(commands, 0), 1.0);
    EXPECT_DOUBLE_EQ(commandFor(commands, 3), 1.0);
}

TEST(PriorityAware, SkipGreedyKeepsGranting)
{
    PriorityAwareOptions options;
    options.strictGreedy = false;
    auto pa = makePa(options);
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.9), rack(1, Priority::P2, 0.5)};
    // Budget: floors + the P2 upgrade only (P1's big ask won't fit).
    double p2_extra =
        (makePa().calculator().requiredCurrent(0.5, Priority::P2)
             .value()
         - 1.0)
        * kWpa;
    auto commands =
        pa.planInitial(racks, Watts(2.0 * kWpa + p2_extra + 1.0));
    EXPECT_DOUBLE_EQ(commandFor(commands, 0), 1.0);
    EXPECT_GT(commandFor(commands, 1), 1.0);
}

TEST(PriorityAware, OverloadDemotesReverseOrder)
{
    auto pa = makePa();
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.5), rack(1, Priority::P2, 0.5),
        rack(2, Priority::P3, 0.6)};
    auto plan = pa.planInitial(racks, kilowatts(100.0));
    // Pretend all commands landed.
    for (auto &info : racks)
        info.setpoint = Amperes(commandFor(plan, info.rackId));
    // Small deficit: only the P3 rack should be demoted... but it is
    // already at the floor, so the P2 rack goes next.
    auto commands = pa.onTick(racks, Watts(-10.0));
    ASSERT_EQ(commands.size(), 1u);
    EXPECT_EQ(commands[0].rackId, 1);
    EXPECT_DOUBLE_EQ(commands[0].current.value(), 1.0);
}

TEST(PriorityAware, BigOverloadReachesP1Last)
{
    auto pa = makePa();
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.5), rack(1, Priority::P2, 0.5)};
    auto plan = pa.planInitial(racks, kilowatts(100.0));
    for (auto &info : racks)
        info.setpoint = Amperes(commandFor(plan, info.rackId));
    auto commands = pa.onTick(racks, kilowatts(-50.0));
    // Both demoted; P2 first in the command order.
    ASSERT_EQ(commands.size(), 2u);
    EXPECT_EQ(commands[0].rackId, 1);
    EXPECT_EQ(commands[1].rackId, 0);
}

TEST(PriorityAware, PendingRelieveSuppressesDemotion)
{
    auto pa = makePa();
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.5, 2.0), rack(1, Priority::P3, 0.5,
                                              5.0)};
    pa.planInitial(racks, Watts(2.0 * kWpa + 800.0));
    // P3 was commanded to 1 A but still measures 5 A: the in-flight
    // relief (4 A * wpa) covers this deficit; nothing new is issued.
    auto commands = pa.onTick(racks, Watts(-3.0 * kWpa));
    EXPECT_TRUE(commands.empty());
}

TEST(PriorityAware, NoActionWithPositiveHeadroomByDefault)
{
    auto pa = makePa();
    std::vector<RackChargeInfo> racks{rack(0, Priority::P1, 0.9)};
    pa.planInitial(racks, Watts(0.0));
    EXPECT_TRUE(pa.onTick(racks, kilowatts(300.0)).empty());
}

TEST(PriorityAware, RestoreOnHeadroomRegrants)
{
    PriorityAwareOptions options;
    options.restoreOnHeadroom = true;
    options.restoreMargin = kilowatts(1.0);
    auto pa = makePa(options);
    std::vector<RackChargeInfo> racks{rack(0, Priority::P1, 0.5, 1.0)};
    pa.planInitial(racks, Watts(0.0));  // floored
    ASSERT_DOUBLE_EQ(pa.planStates().at(0).commanded.value(), 1.0);
    auto commands = pa.onTick(racks, kilowatts(50.0));
    ASSERT_EQ(commands.size(), 1u);
    EXPECT_GT(commands[0].current.value(), 2.0);
}

TEST(PriorityAware, AblationIgnoreDodSortsByIdWithinPriority)
{
    PriorityAwareOptions options;
    options.ignoreDod = true;
    auto pa = makePa(options);
    // Two P1 racks; higher-DOD rack has the lower id, so with DOD
    // ignored it is granted first and exhausts the budget.
    std::vector<RackChargeInfo> racks{
        rack(0, Priority::P1, 0.7), rack(1, Priority::P1, 0.2)};
    double rack0_extra =
        (makePa().calculator().requiredCurrent(0.7, Priority::P1)
             .value()
         - 1.0)
        * kWpa;
    auto commands =
        pa.planInitial(racks, Watts(2.0 * kWpa + rack0_extra + 1.0));
    EXPECT_GT(commandFor(commands, 0), 2.0);
    EXPECT_DOUBLE_EQ(commandFor(commands, 1), 1.0);
}

TEST(PriorityAware, NameAndManagement)
{
    auto pa = makePa();
    EXPECT_EQ(pa.name(), "priority-aware");
    EXPECT_TRUE(pa.managesCurrents());
}

} // namespace
} // namespace dcbatt::core
