/**
 * @file
 * Cross-MSB budget splitter: priority semantics, caps, and the audit.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/region_budget.h"

namespace dcbatt::core {
namespace {

MsbBudgetReport
report(int index, double it_w, double p1_w, double p2_w, double p3_w,
       double breaker_w, int suite = 0, int building = 0)
{
    MsbBudgetReport r;
    r.msbIndex = index;
    r.suite = suite;
    r.building = building;
    r.itW = it_w;
    r.demandW = {p1_w, p2_w, p3_w};
    r.breakerLimitW = breaker_w;
    return r;
}

TEST(RegionBudget, ItIsGrantedFirst)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 1000.0;
    // IT alone exceeds the budget; charging must get nothing.
    std::vector<MsbBudgetReport> reports = {
        report(0, 800.0, 100.0, 100.0, 100.0, 5000.0),
        report(1, 600.0, 100.0, 100.0, 100.0, 5000.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.itGrantedW, 1000.0, 1e-6);
    EXPECT_NEAR(out.itUnmetW, 400.0, 1e-6);
    for (size_t c = 0; c < 3; ++c)
        EXPECT_EQ(out.classGrantedW[c], 0.0);
    EXPECT_EQ(out.headroomGrantedW, 0.0);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, HigherClassNeverStarves)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 1500.0;
    // 1000 W of IT, then 600 W of P1 demand against 500 W left:
    // P1 gets the full remainder, P2/P3 get zero.
    std::vector<MsbBudgetReport> reports = {
        report(0, 500.0, 300.0, 200.0, 200.0, 5000.0),
        report(1, 500.0, 300.0, 200.0, 200.0, 5000.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.itGrantedW, 1000.0, 1e-6);
    EXPECT_NEAR(out.classGrantedW[0], 500.0, 1e-6);
    EXPECT_NEAR(out.classUnmetW[0], 100.0, 1e-6);
    EXPECT_EQ(out.classGrantedW[1], 0.0);
    EXPECT_EQ(out.classGrantedW[2], 0.0);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, ProportionalWithinClass)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 300.0;
    // No IT; P1 demand 100 vs 200 against 300 available → both fully
    // met. Shrink budget to 150 → 50/100 proportional split.
    std::vector<MsbBudgetReport> reports = {
        report(0, 0.0, 100.0, 0.0, 0.0, 5000.0),
        report(1, 0.0, 200.0, 0.0, 0.0, 5000.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.classGrantW[0][0], 100.0, 1e-6);
    EXPECT_NEAR(out.classGrantW[0][1], 200.0, 1e-6);
    auditRegionBudget(config, reports, out);

    config.regionBudgetW = 150.0;
    out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.classGrantW[0][0], 50.0, 1e-3);
    EXPECT_NEAR(out.classGrantW[0][1], 100.0, 1e-3);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, SuiteCapBindsAndBudgetReroutes)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 1000.0;
    config.suiteLimitW = {300.0, 1000.0};
    // MSB 0 (suite 0) wants 500 but its suite caps at 300; the
    // blocked 200 must flow to MSB 1 (suite 1) instead of stranding.
    std::vector<MsbBudgetReport> reports = {
        report(0, 0.0, 500.0, 0.0, 0.0, 5000.0, /*suite=*/0),
        report(1, 0.0, 700.0, 0.0, 0.0, 5000.0, /*suite=*/1),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.grantW[0], 300.0, 1e-3);
    EXPECT_NEAR(out.grantW[1], 700.0, 1e-3);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, BuildingCapBinds)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 2000.0;
    config.buildingLimitW = {600.0};
    std::vector<MsbBudgetReport> reports = {
        report(0, 400.0, 300.0, 0.0, 0.0, 5000.0, 0, /*building=*/0),
        report(1, 400.0, 300.0, 0.0, 0.0, 5000.0, 1, /*building=*/0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.grantW[0] + out.grantW[1], 600.0, 1e-3);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, HeadroomSpreadsResidualUpToBreaker)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 1000.0;
    // Demand totals 300 W; the 700 W residual becomes headroom,
    // spread proportionally to remaining breaker capacity. MSB 0's
    // tiny breaker (180 W) binds: 150 W of demand + 30 W headroom;
    // the rest of the residual flows to MSB 1.
    std::vector<MsbBudgetReport> reports = {
        report(0, 100.0, 50.0, 0.0, 0.0, 180.0),
        report(1, 100.0, 50.0, 0.0, 0.0, 5000.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_NEAR(out.headroomGrantedW, 700.0, 1e-3);
    EXPECT_NEAR(out.residualW, 0.0, 1e-3);
    // Proportional to remaining capacity: 30 W vs 4850 W of
    // post-demand breaker headroom.
    EXPECT_NEAR(out.headroomGrantW[0], 700.0 * 30.0 / 4880.0, 1e-3);
    EXPECT_NEAR(out.headroomGrantW[1], 700.0 * 4850.0 / 4880.0, 1e-3);
    EXPECT_LE(out.grantW[0], 180.0 + 1e-9);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, ResidualOnlyWhenEveryChainIsBlocked)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 10000.0;
    std::vector<MsbBudgetReport> reports = {
        report(0, 100.0, 0.0, 0.0, 0.0, 500.0),
        report(1, 100.0, 0.0, 0.0, 0.0, 500.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    // Breakers cap total grants at 1000; the other 9000 W stays
    // residual, which the audit accepts because no chain has headroom.
    EXPECT_NEAR(out.residualW, 9000.0, 1e-3);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudget, EmptyFleet)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 500.0;
    std::vector<MsbBudgetReport> reports;
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    EXPECT_TRUE(out.grantW.empty());
    EXPECT_NEAR(out.residualW, 500.0, 1e-6);
    auditRegionBudget(config, reports, out);
}

TEST(RegionBudgetDeathTest, AuditCatchesOverCommit)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 100.0;
    std::vector<MsbBudgetReport> reports = {
        report(0, 100.0, 0.0, 0.0, 0.0, 500.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    out.grantW[0] += 50.0;  // tamper: grant above the region budget
    EXPECT_DEATH(auditRegionBudget(config, reports, out),
                 "over-commits");
}

TEST(RegionBudgetDeathTest, AuditCatchesPriorityInversion)
{
    RegionBudgetConfig config;
    config.regionBudgetW = 1000.0;
    std::vector<MsbBudgetReport> reports = {
        report(0, 0.0, 300.0, 300.0, 0.0, 5000.0),
    };
    RegionBudgetOutcome out = splitRegionBudget(config, reports);
    // Tamper: withhold part of the P1 grant while region budget and
    // breaker headroom both remain — unmet demand with headroom is
    // exactly the inversion the audit must reject. (The total grant
    // shrinks too, so conservation and decomposition stay intact.)
    out.classGrantW[0][0] -= 100.0;
    out.grantW[0] -= 100.0;
    EXPECT_DEATH(auditRegionBudget(config, reports, out),
                 "class 0 demand");
}

} // namespace
} // namespace dcbatt::core
