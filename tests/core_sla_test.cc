/**
 * @file
 * Tests of the SLA table (Table II) and the SLA-current calculator
 * (Fig. 9b), including the paper's prototype data point: at <5% DOD
 * the SLA current is 2 A for P1 racks and 1 A for P2/P3 racks.
 */

#include <gtest/gtest.h>

#include "core/sla.h"
#include "core/sla_current.h"

namespace dcbatt::core {
namespace {

using power::Priority;
using util::Amperes;
using util::minutes;
using util::toMinutes;

TEST(SlaTable, PaperDefaultsMatchTableII)
{
    SlaTable table = SlaTable::paperDefault();
    EXPECT_DOUBLE_EQ(table.targetAor(Priority::P1), 0.9994);
    EXPECT_DOUBLE_EQ(table.targetAor(Priority::P2), 0.9990);
    EXPECT_DOUBLE_EQ(table.targetAor(Priority::P3), 0.9985);
    EXPECT_DOUBLE_EQ(toMinutes(table.chargeTimeSla(Priority::P1)),
                     30.0);
    EXPECT_DOUBLE_EQ(toMinutes(table.chargeTimeSla(Priority::P2)),
                     60.0);
    EXPECT_DOUBLE_EQ(toMinutes(table.chargeTimeSla(Priority::P3)),
                     90.0);
}

TEST(SlaTable, LossOfRedundancyMatchesTableII)
{
    // Table II column 3: 5.26 / 8.76 / 13.14 hours per year.
    SlaTable table = SlaTable::paperDefault();
    EXPECT_NEAR(table.lossOfRedundancyHoursPerYear(Priority::P1), 5.26,
                0.01);
    EXPECT_NEAR(table.lossOfRedundancyHoursPerYear(Priority::P2), 8.76,
                0.01);
    EXPECT_NEAR(table.lossOfRedundancyHoursPerYear(Priority::P3),
                13.14, 0.01);
}

TEST(SlaTable, CustomEntries)
{
    SlaTable table(std::array<SlaEntry, 3>{
        SlaEntry{0.99, minutes(10.0)},
        SlaEntry{0.98, minutes(20.0)},
        SlaEntry{0.97, minutes(40.0)},
    });
    EXPECT_DOUBLE_EQ(toMinutes(table.chargeTimeSla(Priority::P3)),
                     40.0);
    EXPECT_DOUBLE_EQ(table.targetAor(Priority::P1), 0.99);
}

class SlaCurrentTest : public ::testing::Test
{
  protected:
    SlaCurrentTest()
        : calc_(battery::ChargeTimeModel(), SlaTable::paperDefault())
    {
    }

    SlaCurrentCalculator calc_;
};

TEST_F(SlaCurrentTest, PrototypeDataPoint)
{
    // Fig. 10: at <5% DOD, "2 A for P1 racks and 1 A for P2 and P3
    // racks (from Fig. 9(b))".
    EXPECT_DOUBLE_EQ(calc_.requiredCurrent(0.04, Priority::P1).value(),
                     2.0);
    EXPECT_DOUBLE_EQ(calc_.requiredCurrent(0.04, Priority::P2).value(),
                     1.0);
    EXPECT_DOUBLE_EQ(calc_.requiredCurrent(0.04, Priority::P3).value(),
                     1.0);
}

TEST_F(SlaCurrentTest, MonotoneNondecreasingInDod)
{
    for (Priority p : power::kAllPriorities) {
        double prev = 0.0;
        for (double dod = 0.0; dod <= 1.0; dod += 0.02) {
            double amps = calc_.requiredCurrent(dod, p).value();
            EXPECT_GE(amps + 1e-9, prev)
                << toString(p) << " dod=" << dod;
            prev = amps;
        }
    }
}

TEST_F(SlaCurrentTest, HigherPriorityNeedsAtLeastAsMuchCurrent)
{
    for (double dod = 0.0; dod <= 1.0; dod += 0.05) {
        double p1 = calc_.requiredCurrent(dod, Priority::P1).value();
        double p2 = calc_.requiredCurrent(dod, Priority::P2).value();
        double p3 = calc_.requiredCurrent(dod, Priority::P3).value();
        EXPECT_GE(p1 + 1e-9, p2) << dod;
        EXPECT_GE(p2 + 1e-9, p3) << dod;
    }
}

TEST_F(SlaCurrentTest, GrantedCurrentActuallyMeetsSla)
{
    battery::ChargeTimeModel model;
    SlaTable table = SlaTable::paperDefault();
    for (Priority p : power::kAllPriorities) {
        for (double dod = 0.05; dod <= 1.0; dod += 0.05) {
            if (!calc_.attainable(dod, p))
                continue;
            Amperes amps = calc_.requiredCurrent(dod, p);
            double charge_time =
                model.chargeTime(dod, amps).value();
            EXPECT_LE(charge_time, table.chargeTimeSla(p).value() + 1.0)
                << toString(p) << " dod=" << dod;
        }
    }
}

TEST_F(SlaCurrentTest, UnattainableSlaSaturatesAtMax)
{
    // Full discharge cannot meet P1's 30-minute SLA; the calculator
    // returns the hardware maximum (the paper's acknowledged limit).
    EXPECT_FALSE(calc_.attainable(1.0, Priority::P1));
    EXPECT_DOUBLE_EQ(calc_.requiredCurrent(1.0, Priority::P1).value(),
                     5.0);
}

TEST_F(SlaCurrentTest, MaxAttainableDodOrdering)
{
    double p1 = calc_.maxAttainableDod(Priority::P1);
    double p2 = calc_.maxAttainableDod(Priority::P2);
    double p3 = calc_.maxAttainableDod(Priority::P3);
    EXPECT_LT(p1, 1.0);       // P1's 30-min SLA saturates first
    EXPECT_GT(p1, 0.5);
    EXPECT_DOUBLE_EQ(p2, 1.0);
    EXPECT_DOUBLE_EQ(p3, 1.0);
}

TEST_F(SlaCurrentTest, FloorsConfigurable)
{
    calc_.setFloor(Priority::P3, Amperes(1.8));
    EXPECT_DOUBLE_EQ(calc_.requiredCurrent(0.01, Priority::P3).value(),
                     1.8);
    EXPECT_DOUBLE_EQ(calc_.floor(Priority::P3).value(), 1.8);
}

TEST_F(SlaCurrentTest, LatencyMarginTightensCurrent)
{
    SlaCurrentCalculator no_margin(battery::ChargeTimeModel(),
                                   SlaTable::paperDefault());
    no_margin.setCommandLatencyMargin(util::Seconds(0.0));
    SlaCurrentCalculator big_margin(battery::ChargeTimeModel(),
                                    SlaTable::paperDefault());
    big_margin.setCommandLatencyMargin(minutes(5.0));
    double relaxed =
        no_margin.requiredCurrent(0.6, Priority::P1).value();
    double tight =
        big_margin.requiredCurrent(0.6, Priority::P1).value();
    EXPECT_GT(tight, relaxed);
}

} // namespace
} // namespace dcbatt::core
