// detlint fixture: malformed and dead directives are findings too.
// A reason-less allow() is rejected (and therefore does NOT suppress
// — the underlying finding still fires); an allow() that matches
// nothing is flagged as unused so stale suppressions cannot linger.

#include <cstdlib>

namespace fixture {

int reasonlessAllow()
{
    return std::rand();  // detlint: allow(entropy)  // detlint: expect(entropy)  // detlint: expect(bad-directive)
}

int unknownVerb()
{
    return 1;  // detlint: forbid(entropy)  // detlint: expect(bad-directive)
}

int deadSuppression()
{
    return 2;  // detlint: allow(wall-clock) -- nothing on this line reads a clock  // detlint: expect(unused-suppression)
}

} // namespace fixture
