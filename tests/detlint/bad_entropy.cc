// detlint fixture: entropy sources in deterministic-module code.
// All randomness flows through util::Rng, seeded from the scenario
// config, so that any run replays bit-identically.

#include <cstdlib>
#include <random>

namespace fixture {

unsigned hardwareSeed()
{
    std::random_device rd;  // detlint: expect(entropy)
    return rd();
}

int diceRoll()
{
    return rand() % 6;  // detlint: expect(entropy)
}

void reseed(unsigned seed)
{
    srand(seed);  // detlint: expect(entropy)
}

int stdDiceRoll()
{
    return std::rand() % 6;  // detlint: expect(entropy)
}

} // namespace fixture
