// detlint fixture: pointer-valued sort keys.
// Ordering by a raw pointer value sorts by allocation address, which
// varies run to run (ASLR, allocator state); any downstream tie-break
// or truncation then becomes nondeterministic.

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

namespace fixture {

struct Rack
{
    int id = 0;
    double load = 0.0;
};

void sortByAddress(std::vector<Rack *> &racks)
{
    std::sort(racks.begin(), racks.end(),
              [](const Rack *a, const Rack *b) {
                  return a < b;  // detlint: expect(pointer-sort-key)
              });
}

using AddressOrdered =
    std::map<Rack *, double, std::less<Rack *>>;  // detlint: expect(pointer-sort-key)

} // namespace fixture
