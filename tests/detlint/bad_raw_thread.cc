// detlint fixture: raw threads bypassing util::ThreadPool.
// The pool is the tree's one sanctioned thread owner; ad-hoc threads
// (worse: detached ones) sidestep its deterministic sharding and its
// exception propagation.

#include <thread>  // detlint: expect(raw-thread)

namespace fixture {

void fireAndForget(void (*job)())
{
    std::thread worker(job);  // detlint: expect(raw-thread)
    worker.detach();  // detlint: expect(raw-thread)
}

} // namespace fixture
