// detlint fixture: thread_local state in deterministic-module code.
// A thread_local accumulator makes values a function of which worker
// happened to run which shard — exactly what the --threads knob must
// never influence.

namespace fixture {

double shardSum(const double *values, int n)
{
    thread_local double accumulator = 0.0;  // detlint: expect(thread-local)
    for (int i = 0; i < n; ++i)
        accumulator += values[i];
    return accumulator;
}

} // namespace fixture
