// detlint fixture: unordered containers in deterministic-module code.
// Iterating an unordered_map folds values in hash-bucket order; with
// double-valued payloads the sum's rounding then depends on bucket
// layout, which is exactly the CappingEngine::totalCap bug this rule
// exists to keep out of the tree.
//
// Fixtures are scanned by `detlint.py --selftest` only; they are not
// compiled, so includes are minimal.

#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Ledger
{
    std::unordered_map<int, double> caps;  // detlint: expect(unordered-container)

    double total() const
    {
        double sum = 0.0;
        for (const auto &entry : caps)
            sum += entry.second;
        return sum;
    }
};

std::unordered_set<int> makeSet();  // detlint: expect(unordered-container)

} // namespace fixture
