// detlint fixture: wall-clock reads in deterministic-module code.
// Simulation results must be a function of the event queue's virtual
// time only; any host-clock read makes output vary run to run.

#include <chrono>
#include <ctime>

namespace fixture {

long nowMs()
{
    auto now = std::chrono::system_clock::now();  // detlint: expect(wall-clock)
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now.time_since_epoch())
        .count();
}

long monotonicNs()
{
    return std::chrono::steady_clock::now()  // detlint: expect(wall-clock)
        .time_since_epoch()
        .count();
}

long epochSeconds()
{
    return static_cast<long>(time(nullptr));  // detlint: expect(wall-clock)
}

long epochSecondsStd()
{
    return static_cast<long>(std::time(nullptr));  // detlint: expect(wall-clock)
}

} // namespace fixture
