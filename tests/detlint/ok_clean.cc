// detlint fixture: false-positive guards.
// Everything in this file skirts close to a rule without violating
// it; the selftest asserts zero findings here.  Each guard names the
// near-miss it protects.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace fixture {

// Guard: identifiers containing "rand" (grantOrder, operand) must not
// trip the entropy rule.
int grantOrder(int a, int b);

int useOperand(int operand)
{
    return grantOrder(operand, 2 * operand);
}

// Guard: banned names inside comments are not findings — never call
// rand() or std::unordered_map iteration here, as this comment does.
const char *kDocstring =
    "strings mentioning std::unordered_map, rand(), steady_clock and "
    "std::thread are data, not code";

// Guard: ordered containers are the sanctioned alternative.
std::map<int, double> ledger;

// Guard: member access spelled `.time(...)` (a sim-time getter with
// arguments) is not a wall-clock read.
struct Clocked
{
    double time(int tick) const { return tick * 3.0; }
};

double probe(const Clocked &c)
{
    return c.time(7);
}

// Guard: a comparator over pointers that orders by the pointees'
// fields (with a stable id tie-break) is the sanctioned pattern.
struct Rack
{
    int id = 0;
    double load = 0.0;
};

void sortByLoad(std::vector<Rack *> &racks)
{
    std::sort(racks.begin(), racks.end(),
              [](const Rack *a, const Rack *b) {
                  if (a->load != b->load)
                      return a->load > b->load;
                  return a->id < b->id;
              });
}

} // namespace fixture
