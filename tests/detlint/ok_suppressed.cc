// detlint fixture: audited suppressions.
// Every allow() here carries a reason, sits on (or directly above)
// the offending line, and suppresses a real finding — so this file
// must scan clean.  Selftest counts these toward rule coverage.

#include <chrono>
#include <thread>  // detlint: allow(raw-thread) -- fixture: sanctioned owner include
#include <unordered_map>

namespace fixture {

struct Cache
{
    // Keyed lookups only; no iteration anywhere in this file.
    std::unordered_map<int, double> byId;  // detlint: allow(unordered-container) -- keyed lookup only, never iterated
};

long spanOnlyNowNs()
{
    // detlint: allow(wall-clock) -- fixture: preceding-line suppression form
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

void joinHelper(std::thread &worker)  // detlint: allow(raw-thread) -- fixture: joins a pool-owned worker
{
    worker.join();
}

} // namespace fixture
