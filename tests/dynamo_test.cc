/**
 * @file
 * Tests of the Dynamo control plane: agents (actuation lag, dedup),
 * the capping engine (priority order, ledger semantics), and the
 * breaker controller's escalation ladder.
 */

#include <gtest/gtest.h>

#include "core/local_coordinator.h"

#include "util/logging.h"
#include "dynamo/agent.h"
#include "dynamo/capping.h"
#include "dynamo/controller.h"
#include "power/topology.h"

namespace dcbatt::dynamo {
namespace {

using power::Priority;
using power::Rack;
using util::Amperes;
using util::Seconds;
using util::Watts;
using util::kilowatts;

class AgentTest : public ::testing::Test
{
  protected:
    AgentTest()
        : rack_(0, "r0", Priority::P2, battery::makeVariableCharger()),
          agent_(rack_, queue_, Seconds(20.0))
    {
        rack_.setItDemand(kilowatts(6.0));
    }

    void
    dischargeAndRestore(double seconds = 60.0)
    {
        rack_.loseInputPower();
        rack_.step(Seconds(seconds));
        rack_.restoreInputPower();
    }

    sim::EventQueue queue_;
    Rack rack_;
    RackAgent agent_;
};

TEST_F(AgentTest, ReadPaths)
{
    EXPECT_DOUBLE_EQ(agent_.readItLoad().value(), 6000.0);
    EXPECT_TRUE(agent_.inputPowerOn());
    EXPECT_FALSE(agent_.charging());
    dischargeAndRestore();
    EXPECT_TRUE(agent_.charging());
    EXPECT_GT(agent_.readRechargePower().value(), 0.0);
    EXPECT_GT(agent_.readInputPower().value(), 6000.0);
    EXPECT_DOUBLE_EQ(agent_.readSetpoint().value(), 2.0);
}

TEST_F(AgentTest, OverrideTakesEffectAfterActuationLag)
{
    dischargeAndRestore();
    agent_.commandOverride(Amperes(1.0));
    // Not yet: 10 s in.
    queue_.runUntil(sim::toTicks(Seconds(10.0)));
    EXPECT_DOUBLE_EQ(agent_.readSetpoint().value(), 2.0);
    // After the 20 s lag (Fig. 11).
    queue_.runUntil(sim::toTicks(Seconds(21.0)));
    EXPECT_DOUBLE_EQ(agent_.readSetpoint().value(), 1.0);
    EXPECT_DOUBLE_EQ(agent_.lastCommanded().value(), 1.0);
}

TEST_F(AgentTest, DuplicateCommandsSuppressed)
{
    dischargeAndRestore();
    agent_.commandOverride(Amperes(3.0));
    size_t pending_after_first = queue_.pendingCount();
    agent_.commandOverride(Amperes(3.0));
    EXPECT_EQ(queue_.pendingCount(), pending_after_first);
    agent_.commandOverride(Amperes(4.0));
    EXPECT_EQ(queue_.pendingCount(), pending_after_first + 1);
}

TEST_F(AgentTest, ClearOverrideImmediate)
{
    dischargeAndRestore();
    agent_.commandOverride(Amperes(1.0));
    queue_.runUntil(sim::toTicks(Seconds(25.0)));
    agent_.clearOverride();
    EXPECT_DOUBLE_EQ(agent_.lastCommanded().value(), 0.0);
    EXPECT_FALSE(rack_.shelf().overrideActive());
}

TEST_F(AgentTest, CapCommands)
{
    agent_.commandCap(kilowatts(1.0));
    EXPECT_DOUBLE_EQ(rack_.itLoad().value(), 5000.0);
    agent_.commandUncap();
    EXPECT_DOUBLE_EQ(rack_.itLoad().value(), 6000.0);
}

// --- capping engine -------------------------------------------------

class CappingTest : public ::testing::Test
{
  protected:
    CappingTest()
    {
        // Two racks of each priority, 6 kW demand each.
        for (int i = 0; i < 6; ++i) {
            racks_.push_back(std::make_unique<Rack>(
                i, util::strf("r%d", i),
                static_cast<Priority>(i / 2),
                battery::makeVariableCharger()));
            racks_.back()->setItDemand(kilowatts(6.0));
            agents_.push_back(std::make_unique<RackAgent>(
                *racks_.back(), queue_));
            ptrs_.push_back(agents_.back().get());
        }
    }

    Watts
    capOf(int rack)
    {
        return racks_[static_cast<size_t>(rack)]->capAmount();
    }

    sim::EventQueue queue_;
    std::vector<std::unique_ptr<Rack>> racks_;
    std::vector<std::unique_ptr<RackAgent>> agents_;
    std::vector<RackAgent *> ptrs_;
    CappingEngine engine_;
};

TEST_F(CappingTest, LowPriorityCappedFirst)
{
    // 3 kW reduction fits entirely in the two P3 racks (4.8 kW room).
    Watts applied = engine_.applyReduction(ptrs_, kilowatts(3.0));
    EXPECT_NEAR(applied.value(), 3000.0, 1.0);
    EXPECT_NEAR(capOf(4).value(), 1500.0, 1.0);
    EXPECT_NEAR(capOf(5).value(), 1500.0, 1.0);
    EXPECT_DOUBLE_EQ(capOf(0).value(), 0.0);
    EXPECT_DOUBLE_EQ(capOf(2).value(), 0.0);
}

TEST_F(CappingTest, SpillsUpThePriorityLadder)
{
    // 40% max cap => each rack can shed 2.4 kW; P3 pair sheds 4.8,
    // P2 pair sheds 4.8, remaining 0.4 comes from P1.
    Watts applied = engine_.applyReduction(ptrs_, kilowatts(10.0));
    EXPECT_NEAR(applied.value(), 10000.0, 1.0);
    EXPECT_NEAR(capOf(4).value(), 2400.0, 1.0);
    EXPECT_NEAR(capOf(2).value(), 2400.0, 1.0);
    EXPECT_NEAR(capOf(0).value(), 200.0, 1.0);
}

TEST_F(CappingTest, FloorLimitsTotalReduction)
{
    // Total cappable = 6 racks * 2.4 kW = 14.4 kW.
    Watts applied = engine_.applyReduction(ptrs_, kilowatts(50.0));
    EXPECT_NEAR(applied.value(), 14400.0, 1.0);
    EXPECT_NEAR(engine_.totalCap().value(), 14400.0, 1.0);
}

TEST_F(CappingTest, ZeroReductionIsNoop)
{
    EXPECT_DOUBLE_EQ(
        engine_.applyReduction(ptrs_, Watts(0.0)).value(), 0.0);
    EXPECT_DOUBLE_EQ(
        engine_.applyReduction(ptrs_, Watts(-10.0)).value(), 0.0);
}

TEST_F(CappingTest, ReleaseHighestPriorityFirst)
{
    engine_.applyReduction(ptrs_, kilowatts(10.0));
    Watts released = engine_.release(ptrs_, kilowatts(1.0));
    EXPECT_NEAR(released.value(), 1000.0, 1.0);
    // P1 rack 0 had 200 W, released first; remainder from rack 1.
    EXPECT_DOUBLE_EQ(capOf(0).value(), 0.0);
    EXPECT_NEAR(capOf(1).value(), 0.0, 1.0);
    // P3 still fully capped.
    EXPECT_NEAR(capOf(4).value(), 2400.0, 1.0);
}

TEST_F(CappingTest, ReleaseOnlyOwnLedger)
{
    // A cap imposed by somebody else must survive this engine's
    // release pass.
    racks_[4]->setCapAmount(kilowatts(2.0));
    Watts released = engine_.release(ptrs_, kilowatts(5.0));
    EXPECT_DOUBLE_EQ(released.value(), 0.0);
    EXPECT_DOUBLE_EQ(capOf(4).value(), 2000.0);
}

TEST_F(CappingTest, ReleaseAllClearsOwnCapsOnly)
{
    engine_.applyReduction(ptrs_, kilowatts(3.0));
    racks_[0]->setCapAmount(kilowatts(1.0));  // foreign cap
    engine_.releaseAll(ptrs_);
    EXPECT_DOUBLE_EQ(engine_.totalCap().value(), 0.0);
    EXPECT_DOUBLE_EQ(capOf(4).value(), 0.0);
    EXPECT_DOUBLE_EQ(capOf(0).value(), 1000.0);
    EXPECT_DOUBLE_EQ(CappingEngine::fleetCap(ptrs_).value(), 1000.0);
}

// --- breaker controller ---------------------------------------------

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
    {
        power::TopologySpec spec;
        spec.rootKind = power::NodeKind::Rpp;
        spec.racksPerRpp = 4;
        spec.rppLimit = kilowatts(30.0);
        spec.priorities = {Priority::P1, Priority::P2, Priority::P3,
                           Priority::P3};
        topo_ = std::make_unique<power::Topology>(power::Topology::build(
            spec, battery::makeOriginalCharger()));
        for (Rack *rack : topo_->racks())
            rack->setItDemand(kilowatts(6.0));
    }

    std::unique_ptr<power::Topology> topo_;
    sim::EventQueue queue_;
};

TEST_F(ControllerTest, CapsOnOverloadWithoutCoordinator)
{
    core::LocalOnlyCoordinator coordinator;
    ControlPlane plane(*topo_, topo_->root(), queue_, &coordinator);
    EXPECT_EQ(plane.controllers().size(), 1u);

    // Force a discharge/recharge cycle: 4 racks * ~1.9 kW recharge
    // pushes the 24 kW IT load over the 30 kW RPP limit.
    power::Topology::startOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(60.0));
    power::Topology::endOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(1.0));
    ASSERT_GT(topo_->root().inputPower().value(), 30e3);

    plane.tickAll();
    EXPECT_GT(plane.totalCap().value(), 0.0);
    EXPECT_LE(topo_->root().inputPower().value(), 30e3 + 1.0);
    EXPECT_GT(plane.rootController().maxCapObserved().value(), 0.0);
    EXPECT_TRUE(plane.rootController().chargingEventActive());
}

TEST_F(ControllerTest, ReleasesCapsWhenHeadroomReturns)
{
    core::LocalOnlyCoordinator coordinator;
    ControlPlane plane(*topo_, topo_->root(), queue_, &coordinator);
    power::Topology::startOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(60.0));
    power::Topology::endOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(1.0));
    plane.tickAll();
    ASSERT_GT(plane.totalCap().value(), 0.0);

    // Let charging finish (power drops), then tick again: the caps
    // must be released.
    for (int i = 0; i < 4800; ++i)
        topo_->stepRacks(Seconds(1.0));
    queue_.runUntil(queue_.now() + sim::toTicks(Seconds(1.0)));
    plane.tickAll();
    EXPECT_DOUBLE_EQ(plane.totalCap().value(), 0.0);
}

TEST_F(ControllerTest, ChargingEventLifecycle)
{
    core::LocalOnlyCoordinator coordinator;
    ControlPlane plane(*topo_, topo_->root(), queue_, &coordinator);
    EXPECT_FALSE(plane.rootController().chargingEventActive());
    EXPECT_EQ(plane.rootController().chargingEventCount(), 0);

    power::Topology::startOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(30.0));
    power::Topology::endOpenTransition(topo_->root());
    plane.tickAll();
    EXPECT_TRUE(plane.rootController().chargingEventActive());
    EXPECT_EQ(plane.rootController().chargingEventCount(), 1);

    // Finish the charge; the event must close.
    for (int i = 0; i < 4800; ++i)
        topo_->stepRacks(Seconds(1.0));
    plane.tickAll();
    EXPECT_FALSE(plane.rootController().chargingEventActive());
}

TEST_F(ControllerTest, PeriodicTickViaQueue)
{
    core::LocalOnlyCoordinator coordinator;
    ControllerConfig config;
    config.tickPeriod = Seconds(3.0);
    ControlPlane plane(*topo_, topo_->root(), queue_, &coordinator,
                       config);
    plane.start();
    power::Topology::startOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(60.0));
    power::Topology::endOpenTransition(topo_->root());
    topo_->stepRacks(Seconds(1.0));
    queue_.runUntil(sim::toTicks(Seconds(4.0)));
    EXPECT_GT(plane.totalCap().value(), 0.0);
    plane.stop();
}

TEST_F(ControllerTest, AgentLookup)
{
    core::LocalOnlyCoordinator coordinator;
    ControlPlane plane(*topo_, topo_->root(), queue_, &coordinator);
    EXPECT_EQ(plane.agentFor(2).rackId(), 2);
    EXPECT_EQ(plane.agents().size(), 4u);
}

} // namespace
} // namespace dcbatt::dynamo
