/**
 * @file
 * Tests of the charging-event engine's configuration surface:
 * explicit event times, physics-step convergence, deep-discharge
 * outage flags, controller cadence, and custom SLA tables flowing
 * through to outcomes.
 */

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "trace/trace_generator.h"

namespace dcbatt::core {
namespace {

using power::Priority;
using util::Seconds;

const trace::TraceSet &
traces()
{
    static const trace::TraceSet set = [] {
        trace::TraceGenSpec spec;
        spec.rackCount = 24;
        spec.startTime = util::hours(8.0);
        spec.duration = util::hours(10.0);
        spec.aggregateMean = util::kilowatts(150.0);
        spec.aggregateAmplitude = util::kilowatts(8.0);
        spec.priorities = power::makePriorityMix(8, 8, 8);
        return trace::generateTraces(spec);
    }();
    return set;
}

ChargingEventConfig
baseConfig()
{
    ChargingEventConfig config;
    config.policy = PolicyKind::VariableLocal;
    config.msbLimit = util::kilowatts(250.0);
    config.priorities = power::makePriorityMix(8, 8, 8);
    config.postEventDuration = util::hours(1.5);
    return config;
}

TEST(EngineOptions, ExplicitEventTimeMovesTheTransition)
{
    ChargingEventConfig config = baseConfig();
    config.eventTime = util::hours(9.0);
    config.openTransitionLength = Seconds(60.0);
    auto result = runChargingEvent(config, traces());
    // Sim time 0 is eventTime - preEventDuration, so the OT starts
    // exactly at the lead-in mark.
    EXPECT_NEAR(result.otStart.value(),
                config.preEventDuration.value(), 1.5);

    ChargingEventConfig late = config;
    late.eventTime = util::hours(16.0);
    auto late_result = runChargingEvent(late, traces());
    // Different time of day, different IT level at the event.
    EXPECT_NE(result.itPower.sample(result.otStart - Seconds(30.0)),
              late_result.itPower.sample(late_result.otStart
                                         - Seconds(30.0)));
}

TEST(EngineOptions, PhysicsStepConverges)
{
    ChargingEventConfig coarse = baseConfig();
    coarse.eventTime = util::hours(12.0);
    coarse.physicsStep = Seconds(3.0);
    ChargingEventConfig fine = coarse;
    fine.physicsStep = Seconds(1.0);
    auto coarse_result = runChargingEvent(coarse, traces());
    auto fine_result = runChargingEvent(fine, traces());
    EXPECT_NEAR(coarse_result.peakPower.value(),
                fine_result.peakPower.value(),
                0.02 * fine_result.peakPower.value());
    EXPECT_NEAR(coarse_result.meanInitialDod,
                fine_result.meanInitialDod, 0.02);
    // Completion times agree within the coarse step for each rack.
    for (size_t i = 0; i < coarse_result.racks.size(); ++i) {
        ASSERT_TRUE(coarse_result.racks[i].chargeDuration.has_value());
        ASSERT_TRUE(fine_result.racks[i].chargeDuration.has_value());
        // Detection quantization plus OT-boundary alignment can slip
        // a few coarse steps.
        EXPECT_NEAR(coarse_result.racks[i].chargeDuration->value(),
                    fine_result.racks[i].chargeDuration->value(),
                    15.0)
            << i;
    }
}

TEST(EngineOptions, VeryLongTransitionFlagsOutages)
{
    ChargingEventConfig config = baseConfig();
    config.eventTime = util::hours(12.0);
    // 6 kW mean racks empty their 1782 kJ shelves in ~300 s; 400 s
    // guarantees fleet-wide outages.
    config.openTransitionLength = Seconds(400.0);
    auto result = runChargingEvent(config, traces());
    int outages = 0;
    double dod_sum = 0.0;
    for (const RackOutcome &rack : result.racks) {
        outages += rack.sawOutage ? 1 : 0;
        dod_sum += rack.initialDod;
    }
    EXPECT_GT(outages, 12);
    EXPECT_GT(dod_sum / 24.0, 0.9);
}

TEST(EngineOptions, CustomSlaTableChangesOutcomes)
{
    // Impossible SLAs: nobody can charge in one minute.
    ChargingEventConfig config = baseConfig();
    config.eventTime = util::hours(12.0);
    config.slaTable = SlaTable(std::array<SlaEntry, 3>{
        SlaEntry{0.9999, util::minutes(1.0)},
        SlaEntry{0.9999, util::minutes(1.0)},
        SlaEntry{0.9999, util::minutes(1.0)},
    });
    auto result = runChargingEvent(config, traces());
    EXPECT_EQ(result.slaMetTotal(), 0);

    // Generous SLAs: everyone passes.
    config.slaTable = SlaTable(std::array<SlaEntry, 3>{
        SlaEntry{0.99, util::hours(5.0)},
        SlaEntry{0.99, util::hours(5.0)},
        SlaEntry{0.99, util::hours(5.0)},
    });
    auto generous = runChargingEvent(config, traces());
    EXPECT_EQ(generous.slaMetTotal(), 24);
}

TEST(EngineOptions, SlowerControllerCadenceStillConverges)
{
    ChargingEventConfig config = baseConfig();
    config.policy = PolicyKind::PriorityAware;
    config.eventTime = util::hours(12.0);
    config.controllerConfig.tickPeriod = Seconds(9.0);
    config.controllerConfig.overrideGrace = Seconds(32.0);
    auto result = runChargingEvent(config, traces());
    EXPECT_FALSE(result.breakerTripped);
    for (const RackOutcome &rack : result.racks)
        EXPECT_TRUE(rack.chargeDuration.has_value()) << rack.rackId;
}

TEST(EngineOptions, ResultSeriesShareClock)
{
    ChargingEventConfig config = baseConfig();
    config.eventTime = util::hours(12.0);
    auto result = runChargingEvent(config, traces());
    EXPECT_EQ(result.msbPower.size(), result.itPower.size());
    EXPECT_EQ(result.msbPower.size(), result.rechargePower.size());
    EXPECT_EQ(result.msbPower.size(), result.capPower.size());
    // MSB power decomposes into IT + recharge while uncapped.
    size_t idx = result.msbPower.indexAt(result.chargeStart
                                         + util::minutes(5.0));
    EXPECT_NEAR(result.msbPower[idx],
                result.itPower[idx] + result.rechargePower[idx],
                1.0);
}

} // namespace
} // namespace dcbatt::core
