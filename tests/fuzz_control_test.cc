/**
 * @file
 * Randomized control-plane robustness tests: random sequences of open
 * transitions at random levels of a small hierarchy, driven through
 * the full stack with the priority-aware coordinator. The assertions
 * are invariants rather than numbers:
 *
 *  - no breaker ever trips when the configuration is feasible,
 *  - server caps are always released after the fleet recovers,
 *  - every battery eventually returns to fully charged,
 *  - rack input power is never negative and never exceeds the fleet's
 *    physical envelope.
 */

#include <gtest/gtest.h>

#include "core/priority_aware_coordinator.h"
#include "dynamo/controller.h"
#include "power/topology.h"
#include "trace/trace_generator.h"
#include "util/random.h"

namespace dcbatt {
namespace {

using power::Priority;
using util::Seconds;
using util::Watts;

class FuzzControlTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzControlTest, RandomOpenTransitionsKeepInvariants)
{
    const uint64_t seed = GetParam();
    util::Rng rng(seed);

    // Small two-row hierarchy under one SB.
    power::TopologySpec spec;
    spec.rootKind = power::NodeKind::Sb;
    spec.rppsPerSb = 2;
    spec.racksPerRpp = 8;
    spec.priorities = power::makePriorityMix(5, 6, 5);
    spec.sbLimit = util::kilowatts(130.0);
    spec.rppLimit = util::kilowatts(66.0);
    auto topo = power::Topology::build(spec,
                                       battery::makeVariableCharger());

    trace::TraceGenSpec tspec;
    tspec.rackCount = 16;
    tspec.duration = util::hours(6.0);
    tspec.step = Seconds(3.0);
    tspec.seed = seed * 7 + 1;
    tspec.aggregateMean = util::kilowatts(95.0);
    tspec.aggregateAmplitude = util::kilowatts(5.0);
    tspec.priorities = spec.priorities;
    auto traces = trace::generateTraces(tspec);

    sim::EventQueue queue;
    core::PriorityAwareOptions options;
    options.restoreOnHeadroom = rng.chance(0.5);
    options.allowPostponement = rng.chance(0.5);
    core::PriorityAwareCoordinator coordinator(
        core::SlaCurrentCalculator(battery::ChargeTimeModel(),
                                   core::SlaTable::paperDefault()),
        options);
    dynamo::ControlPlane plane(topo, topo.root(), queue, &coordinator);
    plane.start();

    // 3-5 open transitions at random nodes and times in [5, 150] min,
    // each 5-90 s long.
    auto rpps = topo.nodesOfKind(power::NodeKind::Rpp);
    int events = static_cast<int>(rng.uniformInt(3, 5));
    for (int e = 0; e < events; ++e) {
        power::PowerNode *target = rng.chance(0.5)
            ? &topo.root()
            : rpps[static_cast<size_t>(
                  rng.uniformInt(0, static_cast<int64_t>(rpps.size())
                                        - 1))];
        Seconds at(rng.uniform(300.0, 9000.0));
        Seconds len(rng.uniform(5.0, 90.0));
        topo.scheduleOpenTransition(queue, *target, sim::toTicks(at),
                                    sim::toTicks(len));
    }

    double max_power = 0.0;
    sim::PeriodicTask physics(queue, sim::toTicks(Seconds(1.0)),
                              [&](sim::Tick now) {
        Seconds t = sim::toSeconds(now);
        for (power::Rack *rack : topo.racks()) {
            Watts demand = traces.rackPower(rack->id(), t);
            ASSERT_GE(demand.value(), 0.0);
            rack->setItDemand(demand);
        }
        topo.stepRacks(Seconds(1.0));
        topo.observeBreakers(Seconds(1.0));
        double power = topo.root().inputPower().value();
        ASSERT_GE(power, 0.0);
        // Physical envelope: rack max power + full 5 A recharge.
        ASSERT_LE(power,
                  16.0 * (12600.0 + 6.0 * 52.5 * 5.0 / 0.82) + 1.0);
        max_power = std::max(max_power, power);
    });
    physics.start(0);

    // Run past the last possible event plus the longest recharge.
    queue.runUntil(sim::toTicks(util::hours(6.0)));

    // Invariants at quiescence.
    EXPECT_FALSE(topo.root().breaker()->tripped()) << "seed " << seed;
    for (power::PowerNode *rpp : rpps)
        EXPECT_FALSE(rpp->breaker()->tripped()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(plane.totalCap().value(), 0.0) << "seed " << seed;
    for (power::Rack *rack : topo.racks()) {
        EXPECT_TRUE(rack->shelf().fullyCharged())
            << "seed " << seed << " rack " << rack->id();
        EXPECT_FALSE(rack->sawOutage())
            << "seed " << seed << " rack " << rack->id();
    }
    EXPECT_GT(max_power, 90e3);  // the scenario actually exercised load
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzControlTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

} // namespace
} // namespace dcbatt
