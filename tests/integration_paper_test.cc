/**
 * @file
 * Paper-scale integration tests: run the Section V-B experiments at
 * full size (316 racks) and assert the headline numbers the paper
 * reports, with tolerances that account for the synthetic traces.
 * These are the repo's end-to-end regression net — if a change moves
 * a Table III entry or inverts a Fig. 14 ordering, it fails here.
 */

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "trace/trace_generator.h"

namespace dcbatt::core {
namespace {

using power::Priority;
using util::Seconds;

class PaperScaleTest : public ::testing::Test
{
  protected:
    static const trace::TraceSet &
    traces()
    {
        static const trace::TraceSet set = [] {
            trace::TraceGenSpec spec;
            spec.rackCount = 316;
            spec.startTime = util::hours(10.0);
            spec.duration = util::hours(8.0);
            spec.priorities = trace::paperMsbPriorities();
            return trace::generateTraces(spec);
        }();
        return set;
    }

    static ChargingEventResult
    run(PolicyKind policy, double limit_mw, double mean_dod)
    {
        ChargingEventConfig config;
        config.policy = policy;
        config.msbLimit = util::megawatts(limit_mw);
        config.targetMeanDod = mean_dod;
        config.priorities = trace::paperMsbPriorities();
        config.postEventDuration = util::minutes(100.0);
        // Audit the physical invariants in flight; a violation aborts
        // the test through the DCBATT contract machinery.
        config.auditInterval = util::minutes(1.0);
        return runChargingEvent(config, traces());
    }
};

TEST_F(PaperScaleTest, TableIIICaseD_OriginalCharger)
{
    // Paper (d): 2.3 MW limit, medium discharge -> 378 kW (18%).
    auto result = run(PolicyKind::OriginalLocal, 2.3, 0.5);
    EXPECT_NEAR(util::toKilowatts(result.maxCap), 378.0, 60.0);
    EXPECT_NEAR(result.maxCapFractionOfIt, 0.18, 0.04);
    EXPECT_FALSE(result.breakerTripped);
    // The in-flight invariant auditor actually ran, and found the
    // physics clean end to end.
    EXPECT_GT(result.auditCount, 0u);
    EXPECT_EQ(result.auditViolations, 0u);
}

TEST_F(PaperScaleTest, TableIIICaseD_VariableCharger)
{
    // Paper (d): variable charger needs 68 kW (3%).
    auto result = run(PolicyKind::VariableLocal, 2.3, 0.5);
    EXPECT_GT(util::toKilowatts(result.maxCap), 20.0);
    EXPECT_LT(util::toKilowatts(result.maxCap), 150.0);
}

TEST_F(PaperScaleTest, TableIIICaseA_VariableChargerNeedsNoCapping)
{
    // Paper (a)/(c)/(e): at the 2.5 MW limit the variable charger
    // avoids capping entirely.
    for (double dod : {0.3, 0.5, 0.7}) {
        auto result = run(PolicyKind::VariableLocal, 2.5, dod);
        // At high discharge the fleet sits exactly on the limit and a
        // marginal sub-kW cap can appear; "no capping" means nothing
        // a service would notice (paper reports 0 kW).
        EXPECT_LT(util::toKilowatts(result.maxCap), 1.0) << dod;
    }
}

TEST_F(PaperScaleTest, TableIII_PriorityAwareNeverCaps)
{
    // Paper: priority-aware needs 0 kW capping in all six cases.
    for (double limit : {2.5, 2.3}) {
        for (double dod : {0.3, 0.5, 0.7}) {
            auto result = run(PolicyKind::PriorityAware, limit, dod);
            EXPECT_DOUBLE_EQ(result.maxCap.value(), 0.0)
                << limit << "/" << dod;
            EXPECT_FALSE(result.breakerTripped);
        }
    }
}

TEST_F(PaperScaleTest, OriginalChargerSpikeIsAQuarterOfServerPower)
{
    // Section I: the recharge spike can be "up to 25% of the server
    // power consumption". 316 racks at 5 A CC ~= 600 kW on ~2.05 MW.
    auto result = run(PolicyKind::OriginalLocal, 5.0, 0.5);
    double spike = result.rechargePower.maxValue();
    double it_at_peak = result.itPower.maxValue();
    EXPECT_NEAR(spike / it_at_peak, 0.28, 0.05);
}

TEST_F(PaperScaleTest, VariableChargerCutsSpikeBy60PercentAtLowDod)
{
    auto original = run(PolicyKind::OriginalLocal, 5.0, 0.3);
    auto variable = run(PolicyKind::VariableLocal, 5.0, 0.3);
    double ratio = variable.rechargePower.maxValue()
        / original.rechargePower.maxValue();
    EXPECT_NEAR(1.0 - ratio, 0.6, 0.06);
}

TEST_F(PaperScaleTest, Fig14_PriorityAwareProtectsP1Longest)
{
    // Medium discharge, falling limit: P1 satisfaction must be
    // monotone nonincreasing and stay full strength longer than
    // global's.
    int prev_p1 = 90;
    for (double limit : {2.5, 2.4, 2.3, 2.25}) {
        auto pa = run(PolicyKind::PriorityAware, limit, 0.5);
        EXPECT_LE(pa.slaMetByPriority[0], prev_p1);
        prev_p1 = pa.slaMetByPriority[0];
        auto global = run(PolicyKind::GlobalRate, limit, 0.5);
        EXPECT_GE(pa.slaMetByPriority[0], global.slaMetByPriority[0])
            << limit;
        // P3's 90-minute SLA is met even at the 1 A floor (the
        // paper's Fig. 14(a) observation).
        EXPECT_EQ(pa.slaMetByPriority[2], 85) << limit;
    }
}

TEST_F(PaperScaleTest, Fig14_GlobalPenalizesP1First)
{
    auto result = run(PolicyKind::GlobalRate, 2.45, 0.5);
    // P1 already suffering while P2/P3 still whole.
    EXPECT_LT(result.slaMetByPriority[0], 60);
    EXPECT_EQ(result.slaMetByPriority[1], 142);
    EXPECT_EQ(result.slaMetByPriority[2], 85);
}

TEST_F(PaperScaleTest, CappingOnsetNear120kWOfAvailablePower)
{
    // "server power capping would begin if the available power was
    // less than 120 kW (power limit below 2.2 MW)". Our traces peak
    // near 2.1 MW, so the onset sits just above 2.2 MW.
    auto above = run(PolicyKind::PriorityAware, 2.26, 0.5);
    EXPECT_DOUBLE_EQ(above.maxCap.value(), 0.0);
    auto below = run(PolicyKind::PriorityAware, 2.2, 0.5);
    EXPECT_GT(below.maxCap.value(), 0.0);
    EXPECT_LT(util::toKilowatts(below.maxCap), 60.0);
}

TEST_F(PaperScaleTest, Fig15_AllP1PriorityAwareBeatsGlobal)
{
    // All racks P1, medium discharge: lowest-discharge-first should
    // satisfy several times more SLAs than the uniform rate.
    std::vector<Priority> all_p1(316, Priority::P1);
    trace::TraceGenSpec spec;
    spec.rackCount = 316;
    spec.startTime = util::hours(10.0);
    spec.duration = util::hours(8.0);
    spec.priorities = all_p1;
    trace::TraceSet p1_traces = trace::generateTraces(spec);

    auto run_p1 = [&](PolicyKind policy, double limit_mw) {
        ChargingEventConfig config;
        config.policy = policy;
        config.msbLimit = util::megawatts(limit_mw);
        config.targetMeanDod = 0.5;
        config.priorities = all_p1;
        config.postEventDuration = util::minutes(100.0);
        return runChargingEvent(config, p1_traces);
    };
    int pa_total = 0, global_total = 0;
    for (double limit : {2.5, 2.4, 2.3}) {
        pa_total += run_p1(PolicyKind::PriorityAware, limit)
                        .slaMetTotal();
        global_total += run_p1(PolicyKind::GlobalRate, limit)
                            .slaMetTotal();
    }
    EXPECT_GT(pa_total, global_total * 3 / 2);
}

} // namespace
} // namespace dcbatt::core
