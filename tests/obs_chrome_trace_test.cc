/**
 * @file
 * obs::TraceSpan + obs::ChromeTraceWriter contract: spans record only
 * when tracing is enabled, nest correctly on one thread, and the
 * exported document is well-formed JSON in the Chrome trace event
 * format (the subset chrome://tracing and Perfetto consume).
 */

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace_writer.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"

namespace dcbatt {
namespace {

/**
 * Minimal recursive-descent JSON parser: validates syntax only (no
 * DOM). Enough to prove the writer emits well-formed JSON, which is
 * the contract Perfetto depends on.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        return value() && (skipWs(), pos_ == text_.size());
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    string()
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        return consume('"');
    }

    bool
    number()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        return number();
    }

    bool
    object()
    {
        if (!consume('{'))
            return false;
        if (consume('}'))
            return true;
        do {
            if (!string() || !consume(':') || !value())
                return false;
        } while (consume(','));
        return consume('}');
    }

    bool
    array()
    {
        if (!consume('['))
            return false;
        if (consume(']'))
            return true;
        do {
            if (!value())
                return false;
        } while (consume(','));
        return consume(']');
    }

    const std::string &text_;
    size_t pos_ = 0;
};

class TraceSpanTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::clearSpans(); }
    void
    TearDown() override
    {
        obs::setTracingEnabled(false);
        obs::clearSpans();
    }
};

TEST_F(TraceSpanTest, DisabledSpansRecordNothing)
{
    obs::setTracingEnabled(false);
    {
        DCBATT_SPAN("test.should_not_record");
    }
    EXPECT_TRUE(obs::drainSpans().empty());
}

TEST_F(TraceSpanTest, EnabledSpansRecordNameAndArgs)
{
    obs::setTracingEnabled(true);
    {
        DCBATT_SPAN_NAMED(span, "test.outer");
        span.arg("answer", 42.0);
    }
    std::vector<obs::SpanEvent> events = obs::drainSpans();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "test.outer");
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].key, "answer");
    EXPECT_EQ(events[0].args[0].value, 42.0);
    // Drain empties the buffer.
    EXPECT_TRUE(obs::drainSpans().empty());
}

TEST_F(TraceSpanTest, NestedSpansContainEachOther)
{
    obs::setTracingEnabled(true);
    {
        DCBATT_SPAN("test.outer");
        {
            DCBATT_SPAN("test.inner");
        }
    }
    std::vector<obs::SpanEvent> events = obs::drainSpans();
    ASSERT_EQ(events.size(), 2u);
    // Spans close inner-first.
    const obs::SpanEvent &inner = events[0];
    const obs::SpanEvent &outer = events[1];
    EXPECT_EQ(inner.name, "test.inner");
    EXPECT_EQ(outer.name, "test.outer");
    EXPECT_EQ(inner.tid, outer.tid);
    // Containment on the shared trace clock: the outer interval
    // brackets the inner one.
    EXPECT_LE(outer.startNs, inner.startNs);
    EXPECT_GE(outer.startNs + outer.durNs, inner.startNs + inner.durNs);
}

TEST_F(TraceSpanTest, SpansArmedBeforeDisableStillComplete)
{
    obs::setTracingEnabled(true);
    {
        DCBATT_SPAN("test.in_flight");
        obs::setTracingEnabled(false);
    }
    // The span was armed while tracing was on; its record lands even
    // though recording stopped mid-flight (drop-on-disable would lose
    // the half-open interval silently).
    EXPECT_EQ(obs::drainSpans().size(), 1u);
}

TEST_F(TraceSpanTest, ChromeTraceJsonIsWellFormed)
{
    obs::setTracingEnabled(true);
    {
        DCBATT_SPAN_NAMED(span, "test.with \"quotes\" and \\slash");
        span.arg("racks", 316.0);
        DCBATT_SPAN("test.nested");
    }
    std::string doc =
        obs::ChromeTraceWriter::toJson(obs::drainSpans());
    JsonChecker checker(doc);
    EXPECT_TRUE(checker.valid()) << doc;
    // The fields chrome://tracing requires of complete events.
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":"), std::string::npos);
    EXPECT_NE(doc.find("\"pid\": 1"), std::string::npos);
}

TEST_F(TraceSpanTest, EmptyTraceIsStillValidJson)
{
    std::string doc = obs::ChromeTraceWriter::toJson({});
    JsonChecker checker(doc);
    EXPECT_TRUE(checker.valid()) << doc;
}

TEST_F(TraceSpanTest, MetricsJsonIsWellFormedToo)
{
    // The metrics exporter shares the escaping helpers; validate its
    // document with the same parser.
    std::string doc = obs::snapshotMetrics().toJson();
    JsonChecker checker(doc);
    EXPECT_TRUE(checker.valid()) << doc;
}

} // namespace
} // namespace dcbatt
