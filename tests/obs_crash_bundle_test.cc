/**
 * @file
 * Tests for the post-mortem crash-bundle path (obs/crash_bundle.h):
 * a failing DCBATT_REQUIRE with a bundle directory armed must dump a
 * manifest with the failing message, the last-N events in order, the
 * crash context, the thread's sim time, and a parseable metrics
 * snapshot — before the (throwing) fail handler unwinds.
 */

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/crash_bundle.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace dcbatt::obs {
namespace {

struct CheckUnwind : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

[[noreturn]] void
throwingHandler(const util::CheckFailure &failure)
{
    throw CheckUnwind(failure.describe());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CrashBundleTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        previous_ = util::setCheckFailHandler(&throwingHandler);
        clearEvents();
        clearCrashContext();
        // One directory per test: bundles from an earlier test must
        // not satisfy a later test's existence checks.
        dir_ = ::testing::TempDir() + "dcbatt_crash_bundle_test_"
            + ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
    }

    void
    TearDown() override
    {
        setCrashBundleDir("");  // also uninstalls the failure sink
        clearCrashContext();
        setCrashBundleEventTail(256);
        setEventLoggingEnabled(false);
        clearEvents();
        util::setCheckFailHandler(previous_);
    }

    std::string dir_;

  private:
    util::CheckFailHandler previous_ = nullptr;
};

TEST_F(CrashBundleTest, ArmingEnablesEventLoggingAndReportsState)
{
    EXPECT_FALSE(crashBundleArmed());
    setEventLoggingEnabled(false);
    setCrashBundleDir(dir_);
    EXPECT_TRUE(crashBundleArmed());
    EXPECT_EQ(crashBundleDir(), dir_);
    // Bundles need an event tail, so arming force-enables the journal.
    EXPECT_TRUE(eventLoggingEnabled());
    setCrashBundleDir("");
    EXPECT_FALSE(crashBundleArmed());
}

TEST_F(CrashBundleTest, FailureDumpsBundleBeforeHandlerUnwinds)
{
    setCrashBundleDir(dir_);
    setCrashBundleEventTail(3);
    setCrashContext("core.policy", "priority-aware");
    setCrashContext("core.racks", "316");
    SimTimeGuard sim_time([] { return 1234.5; });

    // Four events; the tail keeps only the newest three.
    logEvent(10.0, "charge_start", {{"rack", 0.0}});
    logEvent(20.0, "charge_start", {{"rack", 1.0}});
    logEvent(30.0, "cc_cv_transition", {{"rack", 0.0}});
    logEvent(40.0, "charge_finish", {{"rack", 1.0}});

    int racks = -7;
    EXPECT_THROW(
        DCBATT_REQUIRE(racks >= 0, "rack count %d went negative",
                       racks),
        CheckUnwind);

    // --- manifest: schema, failing check, sim time, context ---
    std::string manifest = readFile(dir_ + "/manifest.json");
    EXPECT_NE(manifest.find("\"schema\": \"dcbatt-crash-bundle-v1\""),
              std::string::npos)
        << manifest;
    EXPECT_NE(manifest.find("\"kind\": \"REQUIRE\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"condition\": \"racks >= 0\""),
              std::string::npos);
    EXPECT_NE(
        manifest.find("\"message\": \"rack count -7 went negative\""),
        std::string::npos)
        << manifest;
    EXPECT_NE(manifest.find("\"sim_time_s\": 1234.5"),
              std::string::npos)
        << manifest;
    EXPECT_NE(manifest.find("\"core.policy\": \"priority-aware\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"core.racks\": \"316\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"events\": 3"), std::string::npos);

    // --- failure.txt round-trips describe() ---
    std::string failure_text = readFile(dir_ + "/failure.txt");
    EXPECT_NE(failure_text.find("rack count -7 went negative"),
              std::string::npos);

    // --- events.jsonl: the last-N ring, in order ---
    std::string events = readFile(dir_ + "/events.jsonl");
    EXPECT_NE(events.find("\"schema\": \"dcbatt-events-v1\""),
              std::string::npos);
    EXPECT_EQ(events.find("charge_start\", \"rack\": 0"),
              std::string::npos)
        << "oldest event should have fallen off the 3-event tail";
    size_t second = events.find("\"t_s\": 20");
    size_t third = events.find("\"t_s\": 30");
    size_t fourth = events.find("\"t_s\": 40");
    ASSERT_NE(second, std::string::npos) << events;
    ASSERT_NE(third, std::string::npos);
    ASSERT_NE(fourth, std::string::npos);
    EXPECT_LT(second, third);
    EXPECT_LT(third, fourth);

    // --- metrics.json: the versioned snapshot ---
    std::string metrics = readFile(dir_ + "/metrics.json");
    EXPECT_NE(metrics.find("\"schema\": \"dcbatt-metrics-v1\""),
              std::string::npos);
}

TEST_F(CrashBundleTest, DisarmedFailureWritesNothing)
{
    // No setCrashBundleDir: the sink is not installed.
    EXPECT_THROW(DCBATT_REQUIRE(false, "no bundle expected"),
                 CheckUnwind);
    std::ifstream manifest(dir_ + "/manifest.json");
    EXPECT_FALSE(manifest.good());
    EXPECT_EQ(writeCrashBundle(util::CheckFailure{}), "");
}

TEST_F(CrashBundleTest, SimTimeGuardNestsAndRestores)
{
    setCrashBundleDir(dir_);
    {
        SimTimeGuard outer([] { return 1.0; });
        {
            SimTimeGuard inner([] { return 2.0; });
            EXPECT_THROW(DCBATT_REQUIRE(false, "inner"), CheckUnwind);
            std::string manifest = readFile(dir_ + "/manifest.json");
            EXPECT_NE(manifest.find("\"sim_time_s\": 2"),
                      std::string::npos)
                << manifest;
        }
        EXPECT_THROW(DCBATT_REQUIRE(false, "outer"), CheckUnwind);
        std::string manifest = readFile(dir_ + "/manifest.json");
        EXPECT_NE(manifest.find("\"sim_time_s\": 1"),
                  std::string::npos)
            << manifest;
    }
    EXPECT_THROW(DCBATT_REQUIRE(false, "no provider"), CheckUnwind);
    std::string manifest = readFile(dir_ + "/manifest.json");
    EXPECT_NE(manifest.find("\"sim_time_s\": -1"), std::string::npos)
        << manifest;
}

} // namespace
} // namespace dcbatt::obs
