/**
 * @file
 * The observability determinism contract, end to end:
 *
 *  1. enabling span recording does not change a charging event's
 *     results in any bit;
 *  2. the metrics a sweep produces are identical whether it runs on
 *     one worker thread or several (per-thread shards merge by
 *     integer summation);
 *  3. --metrics-json-style export is byte-stable.
 *
 * These are the properties the CI golden-artifact and determinism
 * jobs pin at the binary level; this test pins them at the API level
 * where failures are attributable.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "obs/chrome_trace_writer.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "sim/sweep_runner.h"
#include "trace/trace_generator.h"
#include "util/thread_pool.h"

namespace dcbatt {
namespace {

trace::TraceSet
smallTraces(const std::vector<power::Priority> &priorities)
{
    trace::TraceGenSpec spec;
    spec.rackCount = static_cast<int>(priorities.size());
    spec.startTime = util::hours(10.0);
    spec.duration = util::hours(1.0);
    spec.priorities = priorities;
    return trace::generateTraces(spec);
}

core::ChargingEventConfig
smallConfig(const std::vector<power::Priority> &priorities,
            double limit_mw, double dod)
{
    core::ChargingEventConfig config;
    config.policy = core::PolicyKind::PriorityAware;
    config.msbLimit = util::megawatts(limit_mw);
    config.targetMeanDod = dod;
    config.priorities = priorities;
    config.postEventDuration = util::minutes(20.0);
    return config;
}

/** Every numeric field that goes into a figure artifact. */
void
expectResultsBitIdentical(const core::ChargingEventResult &a,
                          const core::ChargingEventResult &b)
{
    ASSERT_EQ(a.msbPower.size(), b.msbPower.size());
    for (size_t i = 0; i < a.msbPower.size(); ++i) {
        EXPECT_EQ(a.msbPower[i], b.msbPower[i]) << "sample " << i;
        EXPECT_EQ(a.itPower[i], b.itPower[i]) << "sample " << i;
        EXPECT_EQ(a.rechargePower[i], b.rechargePower[i])
            << "sample " << i;
        EXPECT_EQ(a.capPower[i], b.capPower[i]) << "sample " << i;
    }
    EXPECT_EQ(a.peakPower.value(), b.peakPower.value());
    EXPECT_EQ(a.maxCap.value(), b.maxCap.value());
    EXPECT_EQ(a.overloadSteps, b.overloadSteps);
    EXPECT_EQ(a.meanInitialDod, b.meanInitialDod);
    ASSERT_EQ(a.racks.size(), b.racks.size());
    for (size_t i = 0; i < a.racks.size(); ++i) {
        EXPECT_EQ(a.racks[i].slaMet, b.racks[i].slaMet) << i;
        EXPECT_EQ(a.racks[i].chargeDuration.has_value(),
                  b.racks[i].chargeDuration.has_value())
            << i;
        if (a.racks[i].chargeDuration && b.racks[i].chargeDuration) {
            EXPECT_EQ(a.racks[i].chargeDuration->value(),
                      b.racks[i].chargeDuration->value())
                << i;
        }
    }
}

TEST(ObsDeterminism, TracingOnOffProducesIdenticalEventResults)
{
    auto priorities = power::makePriorityMix(6, 5, 5);
    trace::TraceSet traces = smallTraces(priorities);
    auto config = smallConfig(priorities, 0.9, 0.5);

    obs::setTracingEnabled(false);
    obs::clearSpans();
    auto off = core::runChargingEvent(config, traces);

    obs::setTracingEnabled(true);
    auto on = core::runChargingEvent(config, traces);
    obs::setTracingEnabled(false);

    // The traced run did record spans...
    EXPECT_FALSE(obs::drainSpans().empty());
    // ...and changed nothing in the simulation output.
    expectResultsBitIdentical(off, on);
}

/** One fixed 4-task sweep against a given pool width. */
obs::MetricsSnapshot
runSweepAndSnapshot(unsigned threads,
                    std::vector<core::ChargingEventResult> *results)
{
    auto priorities = power::makePriorityMix(6, 5, 5);
    trace::TraceSet traces = smallTraces(priorities);
    const double limits[] = {1.0, 0.9, 0.85, 0.95};
    std::vector<sim::SweepTask> tasks;
    for (size_t i = 0; i < 4; ++i) {
        sim::SweepTask task;
        task.label = util::strf("case%zu", i);
        task.config = smallConfig(priorities, limits[i], 0.5);
        task.traces = &traces;
        tasks.push_back(std::move(task));
    }
    obs::MetricsRegistry::instance().reset();
    util::ThreadPool pool(threads);
    *results = sim::SweepRunner(pool).run(tasks);
    return obs::snapshotMetrics();
}

TEST(ObsDeterminism, SweepMetricsIdenticalAcrossThreadCounts)
{
    std::vector<core::ChargingEventResult> serial_results;
    std::vector<core::ChargingEventResult> pooled_results;
    obs::MetricsSnapshot serial =
        runSweepAndSnapshot(1, &serial_results);
    obs::MetricsSnapshot pooled =
        runSweepAndSnapshot(4, &pooled_results);

    // Snapshot equality is structural: same metrics, same order, same
    // merged values, bucket by bucket.
    EXPECT_EQ(serial, pooled);
    // And the JSON documents are byte-equal — what the CI determinism
    // job diffs at the binary level.
    EXPECT_EQ(serial.toJson(), pooled.toJson());

    ASSERT_EQ(serial_results.size(), pooled_results.size());
    for (size_t i = 0; i < serial_results.size(); ++i)
        expectResultsBitIdentical(serial_results[i],
                                  pooled_results[i]);

    // Sanity: the sweep actually counted its work.
    const obs::MetricValue *events =
        serial.find("core.charging_events");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->count, 4u);
}

} // namespace
} // namespace dcbatt
