/**
 * @file
 * Unit tests for the flight recorder's event journal (obs/event_log.h):
 * the off-by-default gate, per-scope sequence numbering, the
 * (scope, seq) merge order and its independence from thread placement,
 * deterministic ring drops, the last-N view, and the JSONL rendering.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"

namespace dcbatt::obs {
namespace {

/** Clean journal + default knobs around every test. */
class EventLogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearEvents();
        setEventCapacityPerScope(65536);
        setEventLoggingEnabled(true);
    }

    void
    TearDown() override
    {
        setEventLoggingEnabled(false);
        clearEvents();
        setEventCapacityPerScope(65536);
    }
};

TEST_F(EventLogTest, DisabledLoggingRecordsNothing)
{
    setEventLoggingEnabled(false);
    logEvent(1.0, "ignored", {{"x", 1.0}});
    EXPECT_EQ(eventCount(), 0u);
}

TEST_F(EventLogTest, RecordsPayloadAndPerScopeSequence)
{
    logEvent(0.5, "alpha", {{"rack", 3.0}}, {{"policy", "pa"}});
    logEvent(1.5, "beta");

    auto events = snapshotEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].scope, "");
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].tSeconds, 0.5);
    EXPECT_EQ(events[0].type, "alpha");
    ASSERT_EQ(events[0].nums.size(), 1u);
    EXPECT_EQ(events[0].nums[0].first, "rack");
    EXPECT_EQ(events[0].nums[0].second, 3.0);
    ASSERT_EQ(events[0].labels.size(), 1u);
    EXPECT_EQ(events[0].labels[0].first, "policy");
    EXPECT_EQ(events[0].labels[0].second, "pa");
    EXPECT_EQ(events[1].seq, 1u);
}

TEST_F(EventLogTest, RunScopeNamesAndNestingWin)
{
    EXPECT_EQ(currentRunScope(), "");
    {
        RunScope outer("outer");
        EXPECT_EQ(currentRunScope(), "outer");
        logEvent(0.0, "in_outer");
        {
            RunScope inner("inner");
            EXPECT_EQ(currentRunScope(), "inner");
            logEvent(0.0, "in_inner");
        }
        EXPECT_EQ(currentRunScope(), "outer");
    }
    EXPECT_EQ(currentRunScope(), "");

    auto events = snapshotEvents();
    ASSERT_EQ(events.size(), 2u);
    // Merge order is scope-name order, not emission order.
    EXPECT_EQ(events[0].scope, "inner");
    EXPECT_EQ(events[1].scope, "outer");
}

TEST_F(EventLogTest, MergeOrderIndependentOfThreadPlacement)
{
    // Two logical tasks; run once with both on this thread, once on
    // two racing threads. The merged view must be identical.
    auto task = [](const std::string &scope, int base) {
        RunScope run_scope(scope);
        for (int i = 0; i < 50; ++i)
            logEvent(base + i, "tick", {{"i", double(i)}});
    };

    task("0000:a", 100);
    task("0001:b", 200);
    auto serial = snapshotEvents();
    clearEvents();

    std::thread t1(task, "0000:a", 100);
    std::thread t2(task, "0001:b", 200);
    t1.join();
    t2.join();
    auto threaded = snapshotEvents();

    ASSERT_EQ(serial.size(), threaded.size());
    EXPECT_EQ(serial, threaded);
    EXPECT_EQ(eventsToJsonl(serial), eventsToJsonl(threaded));
}

TEST_F(EventLogTest, PerScopeRingDropsOldestDeterministically)
{
    setEventCapacityPerScope(4);
    {
        RunScope run_scope("ring");
        for (int i = 0; i < 10; ++i)
            logEvent(double(i), "e", {{"i", double(i)}});
    }
    auto events = snapshotEvents();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(droppedEventCount(), 6u);
    // The survivors are the newest four, seqs intact.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].seq, 6u + i);
}

TEST_F(EventLogTest, LastEventsOrdersBySimTimeThenScope)
{
    {
        RunScope a("a");
        logEvent(5.0, "late_a");
        logEvent(1.0, "early_a");
    }
    {
        RunScope b("b");
        logEvent(3.0, "mid_b");
    }
    auto tail = lastEvents(2);
    ASSERT_EQ(tail.size(), 2u);
    // Ascending (tSeconds, scope, seq); the 1.0 s event falls off.
    EXPECT_EQ(tail[0].type, "mid_b");
    EXPECT_EQ(tail[1].type, "late_a");
}

TEST_F(EventLogTest, JsonlHeaderAndFlattenedPayload)
{
    logEvent(2.0, "charge_start", {{"rack", 7.0}},
             {{"policy", "priority-aware"}});
    std::string doc = eventsToJsonl(snapshotEvents(), 3);

    // Header line: schema + counts.
    EXPECT_NE(doc.find("{\"schema\": \"dcbatt-events-v1\", "
                       "\"events\": 1, \"dropped\": 3}\n"),
              std::string::npos)
        << doc;
    // Body line: envelope keys then call-site payload order.
    EXPECT_NE(doc.find("{\"scope\": \"\", \"seq\": 0, \"t_s\": 2, "
                       "\"type\": \"charge_start\", "
                       "\"policy\": \"priority-aware\", \"rack\": 7}"),
              std::string::npos)
        << doc;
}

TEST_F(EventLogTest, ClearResetsSequencesAndDropTally)
{
    // Capacity applies to scopes created after the call, so use a
    // scope no earlier test has touched.
    setEventCapacityPerScope(1);
    RunScope run_scope("clear_test");
    logEvent(0.0, "a");
    logEvent(0.0, "b");
    EXPECT_EQ(droppedEventCount(), 1u);
    clearEvents();
    EXPECT_EQ(eventCount(), 0u);
    EXPECT_EQ(droppedEventCount(), 0u);
    logEvent(0.0, "fresh");
    auto events = snapshotEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 0u);
}

} // namespace
} // namespace dcbatt::obs
