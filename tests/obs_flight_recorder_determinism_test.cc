/**
 * @file
 * The flight recorder's determinism contract at the sweep level: with
 * the time-series recorder armed and event logging on, a multi-task
 * sweep must produce byte-identical CSV/JSONL exports whether it runs
 * on one worker thread or several, and recording must not change the
 * simulation results in any bit.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "obs/event_log.h"
#include "obs/time_series_recorder.h"
#include "sim/sweep_runner.h"
#include "trace/trace_generator.h"
#include "util/thread_pool.h"

namespace dcbatt {
namespace {

trace::TraceSet
smallTraces(const std::vector<power::Priority> &priorities)
{
    trace::TraceGenSpec spec;
    spec.rackCount = static_cast<int>(priorities.size());
    spec.startTime = util::hours(10.0);
    spec.duration = util::hours(1.0);
    spec.priorities = priorities;
    return trace::generateTraces(spec);
}

std::vector<sim::SweepTask>
smallSweep(const trace::TraceSet &traces,
           const std::vector<power::Priority> &priorities)
{
    const double limits[] = {1.0, 0.9, 0.85, 0.95};
    std::vector<sim::SweepTask> tasks;
    for (size_t i = 0; i < 4; ++i) {
        sim::SweepTask task;
        task.label = util::strf("case%zu", i);
        task.config.policy = core::PolicyKind::PriorityAware;
        task.config.msbLimit = util::megawatts(limits[i]);
        task.config.targetMeanDod = 0.5;
        task.config.priorities = priorities;
        task.config.postEventDuration = util::minutes(20.0);
        task.traces = &traces;
        tasks.push_back(std::move(task));
    }
    return tasks;
}

struct RecordedSweep
{
    std::string csv;
    std::string json;
    std::string events;
    std::vector<core::ChargingEventResult> results;
};

RecordedSweep
runRecordedSweep(unsigned threads)
{
    auto priorities = power::makePriorityMix(6, 5, 5);
    trace::TraceSet traces = smallTraces(priorities);

    obs::clearTimeSeries();
    obs::clearEvents();
    obs::TimeSeriesOptions options;
    options.cadenceSeconds = 30.0;
    obs::armTimeSeries(options);
    obs::setEventLoggingEnabled(true);

    RecordedSweep recorded;
    {
        util::ThreadPool pool(threads);
        recorded.results = sim::SweepRunner(pool).run(
            smallSweep(traces, priorities));
    }

    obs::setEventLoggingEnabled(false);
    obs::disarmTimeSeries();
    recorded.csv = obs::timeSeriesToCsv();
    recorded.json = obs::timeSeriesToJson();
    recorded.events = obs::eventsToJsonl(obs::snapshotEvents(),
                                         obs::droppedEventCount());
    obs::clearTimeSeries();
    obs::clearEvents();
    return recorded;
}

TEST(FlightRecorderDeterminism, ExportsByteIdenticalAcrossThreadCounts)
{
    RecordedSweep serial = runRecordedSweep(1);
    RecordedSweep pooled = runRecordedSweep(8);

    // The tapes have content...
    EXPECT_NE(serial.csv.find("msb_mw"), std::string::npos)
        << serial.csv.substr(0, 200);
    EXPECT_NE(serial.events.find("charge_start"), std::string::npos);
    EXPECT_NE(serial.events.find("event_end"), std::string::npos);

    // ...and every export is byte-identical at 1 vs 8 workers.
    EXPECT_EQ(serial.csv, pooled.csv);
    EXPECT_EQ(serial.json, pooled.json);
    EXPECT_EQ(serial.events, pooled.events);
}

TEST(FlightRecorderDeterminism, RecordingDoesNotPerturbResults)
{
    auto priorities = power::makePriorityMix(6, 5, 5);
    trace::TraceSet traces = smallTraces(priorities);
    auto tasks = smallSweep(traces, priorities);

    obs::disarmTimeSeries();
    obs::setEventLoggingEnabled(false);
    util::ThreadPool pool(2);
    auto off = sim::SweepRunner(pool).run(tasks);

    obs::clearTimeSeries();
    obs::clearEvents();
    obs::armTimeSeries();
    obs::setEventLoggingEnabled(true);
    auto on = sim::SweepRunner(pool).run(tasks);
    obs::setEventLoggingEnabled(false);
    obs::disarmTimeSeries();

    // Recording actually happened on the instrumented run.
    EXPECT_GT(obs::publishedTimeSeriesCount(), 0u);
    EXPECT_GT(obs::eventCount(), 0u);
    obs::clearTimeSeries();
    obs::clearEvents();

    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
        ASSERT_EQ(off[i].msbPower.size(), on[i].msbPower.size());
        for (size_t s = 0; s < off[i].msbPower.size(); ++s) {
            ASSERT_EQ(off[i].msbPower[s], on[i].msbPower[s])
                << "task " << i << " sample " << s;
        }
        EXPECT_EQ(off[i].peakPower.value(), on[i].peakPower.value());
        EXPECT_EQ(off[i].overloadSteps, on[i].overloadSteps);
        EXPECT_EQ(off[i].maxCap.value(), on[i].maxCap.value());
    }
}

} // namespace
} // namespace dcbatt
