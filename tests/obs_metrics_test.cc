/**
 * @file
 * obs::MetricsRegistry contract: per-thread shard increments merge by
 * integer summation, so snapshots are identical at any thread count;
 * histogram buckets are (edge[i-1], edge[i]]; snapshots list metrics
 * sorted by name; the JSON rendering is stable.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dcbatt {
namespace {

using obs::MetricKind;
using obs::MetricsSnapshot;
using obs::MetricValue;

/**
 * Run `total` increments of `name` split across `threads` workers.
 * Work is partitioned, not raced: every run does the same increments,
 * only the thread placement differs.
 */
void
countAcrossThreads(const std::string &name, uint64_t total,
                   unsigned threads)
{
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        uint64_t share = total / threads
            + (t < total % threads ? 1 : 0);
        workers.emplace_back([name, share] {
            obs::Counter &counter = obs::counter(name);
            for (uint64_t i = 0; i < share; ++i)
                counter.add(1);
        });
    }
    for (std::thread &worker : workers)
        worker.join();
}

TEST(MetricsRegistry, CounterAccumulates)
{
    obs::Counter &counter = obs::counter("test.basic_counter");
    uint64_t before = counter.value();
    counter.add(1);
    counter.add(41);
    EXPECT_EQ(counter.value(), before + 42);
    DCBATT_COUNT("test.basic_counter");
    EXPECT_EQ(counter.value(), before + 43);
}

TEST(MetricsRegistry, RegisterOrFetchReturnsSameHandle)
{
    obs::Counter &a = obs::counter("test.same_handle");
    obs::Counter &b = obs::counter("test.same_handle");
    EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, MergeIsIdenticalAcrossThreadCounts)
{
    // The same logical work — 10'000 increments — placed on 1, 2, 3,
    // and 8 threads must produce the same merged value. Exited
    // threads' shards are folded into the retired accumulator, so
    // this also covers shard retirement.
    const uint64_t kTotal = 10'000;
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        std::string name =
            "test.merge_t" + std::to_string(threads);
        countAcrossThreads(name, kTotal, threads);
        EXPECT_EQ(obs::counter(name).value(), kTotal)
            << "thread count " << threads;
    }
}

TEST(MetricsRegistry, SnapshotSortedByName)
{
    obs::counter("test.zz_last");
    obs::counter("test.aa_first");
    MetricsSnapshot snapshot = obs::snapshotMetrics();
    ASSERT_GE(snapshot.metrics.size(), 2u);
    for (size_t i = 1; i < snapshot.metrics.size(); ++i) {
        EXPECT_LT(snapshot.metrics[i - 1].name,
                  snapshot.metrics[i].name);
    }
    EXPECT_NE(snapshot.find("test.aa_first"), nullptr);
    EXPECT_EQ(snapshot.find("test.not_registered"), nullptr);
}

TEST(MetricsRegistry, GaugeLastWriteWins)
{
    obs::Gauge &gauge = obs::gauge("test.gauge");
    gauge.set(2.5);
    gauge.set(-1.25);
    EXPECT_EQ(gauge.value(), -1.25);
    MetricsSnapshot snapshot = obs::snapshotMetrics();
    const MetricValue *value = snapshot.find("test.gauge");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->kind, MetricKind::Gauge);
    EXPECT_EQ(value->gauge, -1.25);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreUpperInclusive)
{
    // Buckets of {10, 20}: (-inf, 10], (10, 20], (20, inf).
    obs::Histogram &hist =
        obs::histogram("test.hist_edges", {10.0, 20.0});
    hist.observe(10.0);  // exactly on an edge -> that bucket
    hist.observe(10.5);
    hist.observe(20.0);
    hist.observe(20.000001);  // just past the last edge -> overflow
    hist.observe(-3.0);       // below the first edge -> first bucket

    MetricsSnapshot snapshot = obs::snapshotMetrics();
    const MetricValue *value = snapshot.find("test.hist_edges");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->kind, MetricKind::Histogram);
    ASSERT_EQ(value->bucketEdges,
              (std::vector<double>{10.0, 20.0}));
    ASSERT_EQ(value->bucketCounts.size(), 3u);
    EXPECT_EQ(value->bucketCounts[0], 2u);  // 10.0, -3.0
    EXPECT_EQ(value->bucketCounts[1], 2u);  // 10.5, 20.0
    EXPECT_EQ(value->bucketCounts[2], 1u);  // 20.000001
    EXPECT_EQ(value->count, 5u);
}

TEST(MetricsRegistry, HistogramMergeAcrossThreads)
{
    // 300 observations in each of three buckets, spread over 4
    // threads; the merged counts must be exact.
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([] {
            obs::Histogram &hist = obs::histogram(
                "test.hist_threads", {1.0, 2.0});
            for (int i = 0; i < 75; ++i) {
                hist.observe(0.5);
                hist.observe(1.5);
                hist.observe(2.5);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    MetricsSnapshot snapshot = obs::snapshotMetrics();
    const MetricValue *value = snapshot.find("test.hist_threads");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->bucketCounts,
              (std::vector<uint64_t>{300, 300, 300}));
    EXPECT_EQ(value->count, 900u);
}

TEST(MetricsRegistry, JsonIsStableAndEscaped)
{
    obs::counter("test.json \"quoted\"").add(7);
    MetricsSnapshot snapshot = obs::snapshotMetrics();
    std::string doc = snapshot.toJson();
    EXPECT_EQ(doc, snapshot.toJson()) << "rendering must be stable";
    EXPECT_NE(doc.find("dcbatt-metrics-v1"), std::string::npos);
    EXPECT_NE(doc.find("\"test.json \\\"quoted\\\"\""),
              std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesEverything)
{
    // reset() is the per-run scoping hook (tests, bench reruns); it
    // must zero counters, gauges, and histogram buckets but keep the
    // registrations alive.
    obs::counter("test.reset_counter").add(5);
    obs::gauge("test.reset_gauge").set(9.0);
    obs::histogram("test.reset_hist", {1.0}).observe(0.5);
    obs::MetricsRegistry::instance().reset();
    EXPECT_EQ(obs::counter("test.reset_counter").value(), 0u);
    EXPECT_EQ(obs::gauge("test.reset_gauge").value(), 0.0);
    MetricsSnapshot snapshot = obs::snapshotMetrics();
    const MetricValue *hist = snapshot.find("test.reset_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 0u);
}

} // namespace
} // namespace dcbatt
