/**
 * @file
 * Unit tests for the flight recorder's telemetry tape
 * (obs/time_series_recorder.h): sim-time cadence, the decimate and
 * ring bounded-memory policies, arming plumbing, scope-keyed
 * publication, and the CSV/JSON exports.
 */

#include <string>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/time_series_recorder.h"

namespace dcbatt::obs {
namespace {

class TimeSeriesTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        disarmTimeSeries();
        clearTimeSeries();
    }

    void
    TearDown() override
    {
        disarmTimeSeries();
        clearTimeSeries();
    }
};

TEST_F(TimeSeriesTest, SamplesOnCadenceOnly)
{
    TimeSeriesOptions options;
    options.cadenceSeconds = 10.0;
    TimeSeriesRecorder recorder(options);
    double value = 0.0;
    recorder.addProbe("v", [&value] { return value; });

    recorder.sampleAt(0.0);  // first call always samples
    value = 1.0;
    recorder.sampleAt(3.0);  // before the next cadence point: skipped
    recorder.sampleAt(9.9);  // still skipped
    value = 2.0;
    recorder.sampleAt(10.0);  // due
    value = 3.0;
    recorder.sampleAt(25.0);  // due (19.9 or later)

    ASSERT_EQ(recorder.sampleCount(), 3u);
    EXPECT_EQ(recorder.timeAt(0), 0.0);
    EXPECT_EQ(recorder.timeAt(1), 10.0);
    EXPECT_EQ(recorder.timeAt(2), 25.0);
    EXPECT_EQ(recorder.valueAt(0, 0), 0.0);
    EXPECT_EQ(recorder.valueAt(0, 1), 2.0);
    EXPECT_EQ(recorder.valueAt(0, 2), 3.0);
}

TEST_F(TimeSeriesTest, DecimateHalvesTapeAndDoublesCadence)
{
    TimeSeriesOptions options;
    options.cadenceSeconds = 1.0;
    options.maxSamples = 4;
    options.bound = TimeSeriesBound::Decimate;
    TimeSeriesRecorder recorder(options);
    recorder.addProbe("t2", [] { return 0.0; });

    for (int t = 0; t < 4; ++t)
        recorder.sampleAt(double(t));
    EXPECT_EQ(recorder.cadenceSeconds(), 1.0);

    // The 5th sample triggers compaction: keep t = 0, 2, append 4.
    recorder.sampleAt(4.0);
    ASSERT_EQ(recorder.sampleCount(), 3u);
    EXPECT_EQ(recorder.timeAt(0), 0.0);
    EXPECT_EQ(recorder.timeAt(1), 2.0);
    EXPECT_EQ(recorder.timeAt(2), 4.0);
    EXPECT_EQ(recorder.cadenceSeconds(), 2.0);

    // The new cadence really is in force: t = 5 is skipped, 6 sampled.
    recorder.sampleAt(5.0);
    EXPECT_EQ(recorder.sampleCount(), 3u);
    recorder.sampleAt(6.0);
    EXPECT_EQ(recorder.sampleCount(), 4u);
    // Coverage is preserved: the tape still starts at t = 0.
    EXPECT_EQ(recorder.timeAt(0), 0.0);
}

TEST_F(TimeSeriesTest, RingDropsOldestKeepsTailResolution)
{
    TimeSeriesOptions options;
    options.cadenceSeconds = 1.0;
    options.maxSamples = 3;
    options.bound = TimeSeriesBound::Ring;
    TimeSeriesRecorder recorder(options);
    recorder.addProbe("v", [] { return 1.0; });

    for (int t = 0; t < 5; ++t)
        recorder.sampleAt(double(t));
    ASSERT_EQ(recorder.sampleCount(), 3u);
    // Full resolution at the tail, oldest gone.
    EXPECT_EQ(recorder.timeAt(0), 2.0);
    EXPECT_EQ(recorder.timeAt(1), 3.0);
    EXPECT_EQ(recorder.timeAt(2), 4.0);
    EXPECT_EQ(recorder.cadenceSeconds(), 1.0);
}

TEST_F(TimeSeriesTest, ArmingCarriesOptions)
{
    EXPECT_FALSE(timeSeriesArmed());
    TimeSeriesOptions options;
    options.cadenceSeconds = 7.5;
    options.maxSamples = 128;
    options.bound = TimeSeriesBound::Ring;
    armTimeSeries(options);
    EXPECT_TRUE(timeSeriesArmed());
    TimeSeriesOptions armed = armedTimeSeriesOptions();
    EXPECT_EQ(armed.cadenceSeconds, 7.5);
    EXPECT_EQ(armed.maxSamples, 128u);
    EXPECT_EQ(armed.bound, TimeSeriesBound::Ring);
    disarmTimeSeries();
    EXPECT_FALSE(timeSeriesArmed());
}

TimeSeriesRecorder
tinyTape(double base)
{
    TimeSeriesOptions options;
    options.cadenceSeconds = 1.0;
    TimeSeriesRecorder recorder(options);
    recorder.addProbe("a", [base] { return base; });
    recorder.addProbe("b", [base] { return base * 2.0; });
    recorder.sampleAt(0.0);
    recorder.sampleAt(1.0);
    return recorder;
}

TEST_F(TimeSeriesTest, CsvGroupsByScopeWithSortedHeaderUnion)
{
    {
        RunScope scope("0001:second");
        publishTimeSeries(tinyTape(2.0));
    }
    {
        RunScope scope("0000:first");
        TimeSeriesOptions options;
        TimeSeriesRecorder recorder(options);
        recorder.addProbe("c", [] { return 9.0; });
        recorder.sampleAt(0.0);
        publishTimeSeries(std::move(recorder));
    }
    EXPECT_EQ(publishedTimeSeriesCount(), 2u);

    std::string csv = timeSeriesToCsv();
    // Sorted union of probe names; scopes in name order regardless of
    // publication order; empty cells where a tape lacks a probe.
    EXPECT_EQ(csv,
              "scope,t_s,a,b,c\n"
              "0000:first,0,,,9\n"
              "0001:second,0,2,4,\n"
              "0001:second,1,2,4,\n");
}

TEST_F(TimeSeriesTest, RepeatPublishesGetSuffixedKeys)
{
    RunScope scope("dup");
    publishTimeSeries(tinyTape(1.0));
    publishTimeSeries(tinyTape(5.0));
    EXPECT_EQ(publishedTimeSeriesCount(), 2u);
    std::string csv = timeSeriesToCsv();
    EXPECT_NE(csv.find("\ndup,0,1,2\n"), std::string::npos) << csv;
    EXPECT_NE(csv.find("\ndup#2,0,5,10\n"), std::string::npos) << csv;
}

TEST_F(TimeSeriesTest, JsonCarriesSchemaAndColumns)
{
    {
        RunScope scope("run");
        publishTimeSeries(tinyTape(3.0));
    }
    std::string json = timeSeriesToJson();
    EXPECT_NE(json.find("\"schema\": \"dcbatt-timeseries-v1\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"scope\": \"run\""), std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"t_s\", \"a\", \"b\"]"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"values\": [[3, 3], [6, 6]]"),
              std::string::npos)
        << json;
}

} // namespace
} // namespace dcbatt::obs
