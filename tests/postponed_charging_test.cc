/**
 * @file
 * Tests of the postponed-charging extension (the paper's future
 * work): BBU pause semantics, shelf holds, agent hold/resume with
 * actuation lag, the coordinator's postponement logic, and the
 * end-to-end effect — no server capping below the 1 A floor budget.
 */

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "core/priority_aware_coordinator.h"
#include "dynamo/agent.h"
#include "trace/trace_generator.h"

namespace dcbatt {
namespace {

using core::PolicyKind;
using core::PriorityAwareCoordinator;
using core::PriorityAwareOptions;
using core::SlaCurrentCalculator;
using core::SlaTable;
using dynamo::OverrideCommand;
using dynamo::RackChargeInfo;
using power::Priority;
using util::Amperes;
using util::Seconds;
using util::Watts;

// --- battery layer ---------------------------------------------------

TEST(BbuPause, PausedPackDrawsNothingAndMakesNoProgress)
{
    battery::BbuModel bbu;
    bbu.forceDod(0.5);
    bbu.startCharging(Amperes(2.0));
    bbu.setPaused(true);
    EXPECT_TRUE(bbu.charging());
    EXPECT_DOUBLE_EQ(bbu.chargingCurrent().value(), 0.0);
    EXPECT_DOUBLE_EQ(bbu.inputPower().value(), 0.0);
    bbu.step(Seconds(600.0));
    EXPECT_NEAR(bbu.dod(), 0.5, 1e-12);
}

TEST(BbuPause, ResumeContinuesWhereItLeftOff)
{
    battery::BbuModel bbu;
    bbu.forceDod(0.5);
    bbu.startCharging(Amperes(2.0));
    bbu.step(Seconds(300.0));
    double dod_mid = bbu.dod();
    bbu.setPaused(true);
    bbu.step(Seconds(1000.0));
    EXPECT_NEAR(bbu.dod(), dod_mid, 1e-12);
    bbu.setPaused(false);
    bbu.step(Seconds(300.0));
    EXPECT_LT(bbu.dod(), dod_mid);
}

TEST(BbuPause, TotalChargeTimeUnchangedByPause)
{
    battery::ChargeTimeModel model;
    battery::BbuModel bbu;
    bbu.forceDod(0.6);
    bbu.startCharging(Amperes(3.0));
    double active = 0.0;
    // Alternate 60 s charging / 60 s paused.
    bool paused = false;
    double t = 0.0;
    while (!bbu.fullyCharged() && t < 6.0 * 3600.0) {
        if (static_cast<int>(t) % 60 == 0) {
            paused = !paused;
            bbu.setPaused(paused);
        }
        bbu.step(Seconds(1.0));
        if (!paused)
            active += 1.0;
        t += 1.0;
    }
    ASSERT_TRUE(bbu.fullyCharged());
    EXPECT_NEAR(active,
                model.chargeTime(0.6, Amperes(3.0)).value(), 3.0);
}

TEST(BbuPause, DischargeClearsPause)
{
    battery::BbuModel bbu;
    bbu.forceDod(0.3);
    bbu.startCharging(Amperes(2.0));
    bbu.setPaused(true);
    bbu.discharge(Watts(1000.0), Seconds(10.0));
    EXPECT_FALSE(bbu.paused());
}

TEST(ShelfHold, HoldsAndResumesAllBbus)
{
    battery::PowerShelf shelf(battery::makeVariableCharger());
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    shelf.restoreInputPower();
    ASSERT_GT(shelf.rechargePower().value(), 0.0);
    shelf.holdCharging();
    EXPECT_TRUE(shelf.chargingHeld());
    EXPECT_DOUBLE_EQ(shelf.rechargePower().value(), 0.0);
    EXPECT_TRUE(shelf.anyCharging());  // still in Charging state
    shelf.resumeCharging();
    EXPECT_FALSE(shelf.chargingHeld());
    EXPECT_GT(shelf.rechargePower().value(), 0.0);
}

TEST(ShelfHold, HoldBeforeRestoreAppliesAtChargeStart)
{
    battery::PowerShelf shelf(battery::makeVariableCharger());
    shelf.loseInputPower();
    shelf.step(Seconds(60.0), util::kilowatts(6.0));
    shelf.holdCharging();
    shelf.restoreInputPower();
    EXPECT_TRUE(shelf.anyCharging());
    EXPECT_DOUBLE_EQ(shelf.rechargePower().value(), 0.0);
}

// --- agent layer ------------------------------------------------------

TEST(AgentHold, HoldAndResumeWithActuationLag)
{
    sim::EventQueue queue;
    power::Rack rack(0, "r0", Priority::P3,
                     battery::makeVariableCharger());
    rack.setItDemand(util::kilowatts(6.0));
    dynamo::RackAgent agent(rack, queue, Seconds(20.0));
    rack.loseInputPower();
    rack.step(Seconds(60.0));
    rack.restoreInputPower();

    agent.commandHold();
    EXPECT_TRUE(agent.holdCommanded());
    queue.runUntil(sim::toTicks(Seconds(10.0)));
    EXPECT_FALSE(agent.chargingHeld());  // lag not elapsed
    queue.runUntil(sim::toTicks(Seconds(21.0)));
    EXPECT_TRUE(agent.chargingHeld());

    agent.commandResume(Amperes(1.0));
    EXPECT_FALSE(agent.holdCommanded());
    queue.runUntil(sim::toTicks(Seconds(45.0)));
    EXPECT_FALSE(agent.chargingHeld());
    EXPECT_DOUBLE_EQ(agent.readSetpoint().value(), 1.0);
}

TEST(AgentHold, DuplicateHoldSuppressed)
{
    sim::EventQueue queue;
    power::Rack rack(0, "r0", Priority::P3,
                     battery::makeVariableCharger());
    dynamo::RackAgent agent(rack, queue);
    agent.commandHold();
    size_t pending = queue.pendingCount();
    agent.commandHold();
    EXPECT_EQ(queue.pendingCount(), pending);
    agent.commandResume(Amperes(1.0));
    EXPECT_EQ(queue.pendingCount(), pending + 1);
    agent.commandResume(Amperes(1.0));
    EXPECT_EQ(queue.pendingCount(), pending + 1);
}

// --- coordinator layer -------------------------------------------------

RackChargeInfo
chargingRack(int id, Priority priority, double dod)
{
    RackChargeInfo info;
    info.rackId = id;
    info.priority = priority;
    info.initialDod = dod;
    info.setpoint = Amperes(2.0);
    info.charging = true;
    return info;
}

PriorityAwareCoordinator
makePa(PriorityAwareOptions options)
{
    return PriorityAwareCoordinator(
        SlaCurrentCalculator(battery::ChargeTimeModel(),
                             SlaTable::paperDefault()),
        options);
}

const double kWpa = battery::rackWattsPerAmpere({}).value();

TEST(PostponePlan, HoldsReverseOrderWhenFloorsDontFit)
{
    PriorityAwareOptions options;
    options.allowPostponement = true;
    options.resumeMargin = Watts(0.0);  // exact-count assertions
    auto pa = makePa(options);
    std::vector<RackChargeInfo> racks{
        chargingRack(0, Priority::P1, 0.5),
        chargingRack(1, Priority::P2, 0.5),
        chargingRack(2, Priority::P3, 0.5)};
    // Budget fits only two floors.
    auto commands = pa.planInitial(racks, Watts(2.0 * kWpa));
    int holds = 0;
    for (const auto &cmd : commands) {
        if (cmd.kind == OverrideCommand::Kind::Hold) {
            ++holds;
            EXPECT_EQ(cmd.rackId, 2);  // the P3 rack
        }
    }
    EXPECT_EQ(holds, 1);
}

TEST(PostponePlan, WithoutExtensionNothingIsHeld)
{
    auto pa = makePa({});
    std::vector<RackChargeInfo> racks{
        chargingRack(0, Priority::P1, 0.5),
        chargingRack(1, Priority::P3, 0.5)};
    auto commands = pa.planInitial(racks, Watts(0.0));
    for (const auto &cmd : commands)
        EXPECT_EQ(cmd.kind, OverrideCommand::Kind::SetCurrent);
}

TEST(PostponeTick, HoldsFlooredRacksOnPersistentOverload)
{
    PriorityAwareOptions options;
    options.allowPostponement = true;
    options.resumeMargin = Watts(0.0);  // exact-count assertions
    auto pa = makePa(options);
    std::vector<RackChargeInfo> racks{
        chargingRack(0, Priority::P1, 0.5),
        chargingRack(1, Priority::P3, 0.5)};
    auto plan = pa.planInitial(racks, Watts(2.0 * kWpa));
    // All commands landed (setpoints match commands).
    for (auto &info : racks) {
        for (const auto &cmd : plan) {
            if (cmd.rackId == info.rackId)
                info.setpoint = cmd.current;
        }
    }
    auto commands = pa.onTick(racks, Watts(-0.5 * kWpa));
    ASSERT_FALSE(commands.empty());
    EXPECT_EQ(commands[0].kind, OverrideCommand::Kind::Hold);
    EXPECT_EQ(commands[0].rackId, 1);
}

TEST(PostponeTick, ResumesWhenHeadroomReturns)
{
    PriorityAwareOptions options;
    options.allowPostponement = true;
    options.resumeMargin = Watts(0.0);
    auto pa = makePa(options);
    std::vector<RackChargeInfo> racks{
        chargingRack(0, Priority::P1, 0.5),
        chargingRack(1, Priority::P3, 0.5)};
    auto plan = pa.planInitial(racks, Watts(1.0 * kWpa));  // P3 held
    // Pretend every command landed.
    for (auto &info : racks) {
        for (const auto &cmd : plan) {
            if (cmd.rackId != info.rackId)
                continue;
            if (cmd.kind == OverrideCommand::Kind::Hold) {
                info.setpoint = Amperes(0.0);
                info.held = true;
            } else {
                info.setpoint = cmd.current;
            }
        }
    }
    auto commands = pa.onTick(racks, util::kilowatts(50.0));
    ASSERT_EQ(commands.size(), 1u);
    EXPECT_EQ(commands[0].kind, OverrideCommand::Kind::Resume);
    EXPECT_EQ(commands[0].rackId, 1);
    // The resumed rack's power change is in flight; a second tick
    // with unchanged measurements must not re-issue anything.
    EXPECT_TRUE(pa.onTick(racks, util::kilowatts(50.0)).empty());
}

TEST(PostponeTick, NoResumeWithoutHeadroom)
{
    PriorityAwareOptions options;
    options.allowPostponement = true;
    options.resumeMargin = util::kilowatts(10.0);
    auto pa = makePa(options);
    std::vector<RackChargeInfo> racks{
        chargingRack(0, Priority::P3, 0.5)};
    pa.planInitial(racks, Watts(0.0));  // held
    EXPECT_TRUE(pa.onTick(racks, Watts(500.0)).empty());
}

// --- end to end ------------------------------------------------------

TEST(PostponeEndToEnd, EliminatesCappingBelowFloorBudget)
{
    trace::TraceGenSpec tspec;
    tspec.rackCount = 48;
    tspec.startTime = util::hours(10.0);
    tspec.duration = util::hours(8.0);
    tspec.aggregateMean = util::kilowatts(300.0);
    tspec.aggregateAmplitude = util::kilowatts(15.0);
    tspec.priorities = power::makePriorityMix(16, 16, 16);
    auto traces = trace::generateTraces(tspec);

    // Limit just above the IT peak: the 48-rack floor (18.4 kW) does
    // not fit.
    core::ChargingEventConfig config;
    config.policy = PolicyKind::PriorityAware;
    config.msbLimit = util::kilowatts(322.0);
    config.targetMeanDod = 0.5;
    config.priorities = tspec.priorities;
    config.postEventDuration = util::hours(3.5);

    auto capped = core::runChargingEvent(config, traces);
    EXPECT_GT(capped.maxCap.value(), 0.0);

    config.priorityAwareOptions.allowPostponement = true;
    auto postponed = core::runChargingEvent(config, traces);
    // Transient caps while holds propagate through the 20 s actuation
    // lag are genuine control behaviour; the claim is that capping is
    // not *sustained*: zero ten minutes into the charging event.
    size_t settled = postponed.capPower.indexAt(
        postponed.chargeStart + util::minutes(10.0));
    EXPECT_DOUBLE_EQ(postponed.capPower[settled], 0.0);
    double late_max = 0.0;
    for (size_t i = settled; i < postponed.capPower.size(); ++i)
        late_max = std::max(late_max, postponed.capPower[i]);
    EXPECT_DOUBLE_EQ(late_max, 0.0);
    int held = 0;
    for (const auto &rack : postponed.racks)
        held += rack.everHeld ? 1 : 0;
    EXPECT_GT(held, 0);
    // P1 protection unchanged.
    EXPECT_GE(postponed.slaMetByPriority[0],
              capped.slaMetByPriority[0]);
    // Deferral is the designed trade-off: racks that have not
    // finished by the end of the window must be ones that were
    // postponed, never racks stranded idle — and resumes must have
    // let a majority finish.
    int finished = 0;
    for (const auto &rack : postponed.racks) {
        if (rack.chargeDuration.has_value())
            ++finished;
        else
            EXPECT_TRUE(rack.everHeld) << rack.rackId;
    }
    EXPECT_GE(finished, 24);
}

} // namespace
} // namespace dcbatt
