/**
 * @file
 * Property test of the incremental power-aggregation cache: after any
 * sequence of mutations (demand changes, caps, open transitions,
 * physics steps, overrides, BBU fail/repair), every node's cached
 * inputPower() equals a brute-force recursive recompute — exactly, not
 * approximately, because the cache refresh sums children in the same
 * order with the same expressions.
 */

#include <gtest/gtest.h>

#include "power/topology.h"
#include "util/random.h"

namespace dcbatt::power {
namespace {

using util::Seconds;
using util::Watts;

/**
 * Cache-free recursive aggregate, associating the sum exactly like
 * PowerNode::refreshPowerCache (children in order, left to right).
 */
Watts
bruteForcePower(const PowerNode &node)
{
    if (node.rack())
        return node.rack()->inputPower();
    Watts total(0.0);
    for (const PowerNode *child : node.children())
        total += bruteForcePower(*child);
    return total;
}

/** Compare every node's cached aggregate against the brute force. */
void
expectCachesExact(const Topology &topo, int step)
{
    const PowerNode &root = topo.root();
    ASSERT_EQ(root.inputPower().value(),
              bruteForcePower(root).value())
        << "root mismatch after mutation " << step;
    for (NodeKind kind : {NodeKind::Sb, NodeKind::Rpp}) {
        for (const PowerNode *node :
             const_cast<Topology &>(topo).nodesOfKind(kind)) {
            ASSERT_EQ(node->inputPower().value(),
                      bruteForcePower(*node).value())
                << toString(kind) << " " << node->name()
                << " mismatch after mutation " << step;
        }
    }
}

TEST(PowerAggregationCache, RandomizedMutationsStayExact)
{
    TopologySpec spec;
    spec.rootKind = NodeKind::Msb;
    spec.sbsPerMsb = 2;
    spec.rppsPerSb = 2;
    spec.racksPerRpp = 4;
    Topology topo =
        Topology::build(spec, battery::makeVariableCharger());
    const int n = static_cast<int>(topo.racks().size());

    util::Rng rng(2024);
    for (int i = 0; i < n; ++i)
        topo.rack(i).setItDemand(util::kilowatts(6.0));

    for (int step = 0; step < 400; ++step) {
        int rack_id = static_cast<int>(rng.uniform(0.0, 1.0)
                                       * (n - 1));
        double roll = rng.uniform(0.0, 1.0);
        Rack &rack = topo.rack(rack_id);
        if (roll < 0.3) {
            rack.setItDemand(Watts(rng.uniform(500.0, 12000.0)));
        } else if (roll < 0.45) {
            rack.setCapAmount(Watts(rng.uniform(0.0, 3000.0)));
        } else if (roll < 0.55) {
            rack.loseInputPower();
        } else if (roll < 0.7) {
            rack.restoreInputPower();
        } else if (roll < 0.8) {
            rack.shelf().setOverride(
                util::Amperes(rng.uniform(1.0, 5.0)));
        } else if (roll < 0.9) {
            topo.stepRacks(Seconds(1.0));
        } else if (roll < 0.95) {
            rack.shelf().failBbu(
                static_cast<int>(rng.uniform(0.0, 1.0) * 5.0));
        } else {
            rack.shelf().repairBbu(
                static_cast<int>(rng.uniform(0.0, 1.0) * 5.0));
        }
        expectCachesExact(topo, step);
    }
}

TEST(PowerAggregationCache, ObserveBreakersRefreshesBottomUp)
{
    // observeBreakers() batch-refreshes every node before the thermal
    // observation; the refreshed caches must equal a cold recompute.
    TopologySpec spec;
    spec.rootKind = NodeKind::Msb;
    spec.sbsPerMsb = 2;
    spec.rppsPerSb = 2;
    spec.racksPerRpp = 4;
    Topology topo =
        Topology::build(spec, battery::makeVariableCharger());
    for (Rack *rack : topo.racks())
        rack->setItDemand(util::kilowatts(7.5));

    topo.startOpenTransition(topo.root());
    topo.stepRacks(Seconds(30.0));
    topo.endOpenTransition(topo.root());
    for (int t = 0; t < 60; ++t) {
        topo.stepRacks(Seconds(1.0));
        topo.observeBreakers(Seconds(1.0));
        expectCachesExact(topo, t);
    }
}

} // namespace
} // namespace dcbatt::power
