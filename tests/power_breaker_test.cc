/**
 * @file
 * Tests of the circuit-breaker thermal trip model, pinned to the
 * paper's hazard: "a 30% power overdraw at a circuit breaker for more
 * than 30 seconds could trip it".
 */

#include <gtest/gtest.h>

#include "power/breaker.h"

namespace dcbatt::power {
namespace {

using util::Seconds;
using util::Watts;
using util::kilowatts;

TEST(Breaker, BasicAccessors)
{
    CircuitBreaker breaker("rpp0", kilowatts(190.0));
    EXPECT_EQ(breaker.name(), "rpp0");
    EXPECT_DOUBLE_EQ(breaker.limit().value(), 190e3);
    EXPECT_FALSE(breaker.tripped());
    EXPECT_TRUE(breaker.overloaded(kilowatts(200.0)));
    EXPECT_FALSE(breaker.overloaded(kilowatts(100.0)));
    EXPECT_DOUBLE_EQ(breaker.available(kilowatts(100.0)).value(), 90e3);
}

TEST(Breaker, ThirtyPercentOverFor30SecondsTrips)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    // 130 kW on a 100 kW breaker.
    for (int s = 0; s < 29; ++s) {
        EXPECT_FALSE(breaker.observe(kilowatts(130.0), Seconds(1.0)))
            << s;
    }
    EXPECT_TRUE(breaker.observe(kilowatts(130.0), Seconds(1.0)));
    EXPECT_TRUE(breaker.tripped());
}

TEST(Breaker, LargerOverloadTripsFaster)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    // 60% overdraw should trip in ~15 s (inverse-time).
    int s = 0;
    while (!breaker.tripped() && s < 60) {
        breaker.observe(kilowatts(160.0), Seconds(1.0));
        ++s;
    }
    EXPECT_TRUE(breaker.tripped());
    EXPECT_NEAR(s, 15, 1);
}

TEST(Breaker, SmallOverloadTakesLonger)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    int s = 0;
    while (!breaker.tripped() && s < 1000) {
        breaker.observe(kilowatts(110.0), Seconds(1.0));
        ++s;
    }
    EXPECT_TRUE(breaker.tripped());
    EXPECT_NEAR(s, 90, 2);
}

TEST(Breaker, RunningAtLimitNeverTrips)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    for (int s = 0; s < 3600; ++s)
        breaker.observe(kilowatts(100.0), Seconds(1.0));
    EXPECT_FALSE(breaker.tripped());
    EXPECT_DOUBLE_EQ(breaker.thermalAccumulator(), 0.0);
}

TEST(Breaker, AccumulatorCoolsWhenUnderLimit)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    for (int s = 0; s < 20; ++s)
        breaker.observe(kilowatts(130.0), Seconds(1.0));
    double hot = breaker.thermalAccumulator();
    EXPECT_GT(hot, 0.0);
    for (int s = 0; s < 120; ++s)
        breaker.observe(kilowatts(50.0), Seconds(1.0));
    EXPECT_LT(breaker.thermalAccumulator(), hot * 0.2);
    EXPECT_FALSE(breaker.tripped());
}

TEST(Breaker, IntermittentOverloadSurvives)
{
    // Alternating 10 s over / 60 s under never accumulates to a trip.
    CircuitBreaker breaker("b", kilowatts(100.0));
    for (int cycle = 0; cycle < 30; ++cycle) {
        for (int s = 0; s < 10; ++s)
            breaker.observe(kilowatts(130.0), Seconds(1.0));
        for (int s = 0; s < 60; ++s)
            breaker.observe(kilowatts(90.0), Seconds(1.0));
    }
    EXPECT_FALSE(breaker.tripped());
}

TEST(Breaker, ResetTripClearsState)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    for (int s = 0; s < 40; ++s)
        breaker.observe(kilowatts(140.0), Seconds(1.0));
    ASSERT_TRUE(breaker.tripped());
    breaker.resetTrip();
    EXPECT_FALSE(breaker.tripped());
    EXPECT_DOUBLE_EQ(breaker.thermalAccumulator(), 0.0);
}

TEST(Breaker, ObserveAfterTripIsInert)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    for (int s = 0; s < 40; ++s)
        breaker.observe(kilowatts(140.0), Seconds(1.0));
    ASSERT_TRUE(breaker.tripped());
    EXPECT_FALSE(breaker.observe(kilowatts(500.0), Seconds(1.0)));
}

TEST(Breaker, CustomTripCurve)
{
    BreakerTripCurve curve;
    curve.referenceOverload = 0.5;
    curve.referenceTime = Seconds(10.0);
    CircuitBreaker breaker("b", kilowatts(100.0), curve);
    EXPECT_DOUBLE_EQ(breaker.tripThreshold(), 5.0);
    int s = 0;
    while (!breaker.tripped() && s < 100) {
        breaker.observe(kilowatts(150.0), Seconds(1.0));
        ++s;
    }
    EXPECT_NEAR(s, 10, 1);
}

TEST(Breaker, SetLimitChangesHeadroom)
{
    CircuitBreaker breaker("b", kilowatts(100.0));
    breaker.setLimit(kilowatts(200.0));
    EXPECT_FALSE(breaker.overloaded(kilowatts(150.0)));
}

TEST(BreakerDeathTest, NonpositiveLimitPanics)
{
    EXPECT_DEATH(CircuitBreaker("b", Watts(0.0)), "nonpositive");
    CircuitBreaker breaker("b", kilowatts(1.0));
    EXPECT_DEATH(breaker.setLimit(Watts(-5.0)), "nonpositive");
}

} // namespace
} // namespace dcbatt::power
