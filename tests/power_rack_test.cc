/**
 * @file
 * Tests of the Rack: IT demand/capping, input power accounting, and
 * outage detection during open transitions.
 */

#include <gtest/gtest.h>

#include "power/rack.h"

namespace dcbatt::power {
namespace {

using util::Seconds;
using util::Watts;
using util::kilowatts;

Rack
makeRack(Priority priority = Priority::P2)
{
    return Rack(0, "rack0", priority, battery::makeVariableCharger());
}

TEST(Rack, Accessors)
{
    Rack rack = makeRack(Priority::P1);
    EXPECT_EQ(rack.id(), 0);
    EXPECT_EQ(rack.name(), "rack0");
    EXPECT_EQ(rack.priority(), Priority::P1);
    rack.setPriority(Priority::P3);
    EXPECT_EQ(rack.priority(), Priority::P3);
}

TEST(Rack, ItLoadFollowsDemand)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(6.0));
    EXPECT_DOUBLE_EQ(rack.itLoad().value(), 6000.0);
    EXPECT_DOUBLE_EQ(rack.inputPower().value(), 6000.0);
}

TEST(Rack, CappingReducesLoad)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(6.0));
    rack.setCapAmount(kilowatts(1.5));
    EXPECT_DOUBLE_EQ(rack.itLoad().value(), 4500.0);
    EXPECT_DOUBLE_EQ(rack.capAmount().value(), 1500.0);
    rack.uncap();
    EXPECT_DOUBLE_EQ(rack.itLoad().value(), 6000.0);
}

TEST(Rack, CapBeyondDemandClampsToZeroLoad)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(2.0));
    rack.setCapAmount(kilowatts(5.0));
    EXPECT_DOUBLE_EQ(rack.itLoad().value(), 0.0);
}

TEST(Rack, NegativeCapDustClampsToZero)
{
    // Floating-point dust from the capping ledger is tolerated and
    // clamped; a meaningfully negative cap is a contract violation
    // (see the death test below).
    Rack rack = makeRack();
    rack.setCapAmount(Watts(-1e-9));
    EXPECT_DOUBLE_EQ(rack.capAmount().value(), 0.0);
}

TEST(RackDeathTest, MeaningfullyNegativeCapIsAContractViolation)
{
    Rack rack = makeRack();
    EXPECT_DEATH(rack.setCapAmount(kilowatts(-3.0)), "negative cap");
}

TEST(Rack, NoInputPowerWhileOnBattery)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(6.0));
    rack.loseInputPower();
    EXPECT_FALSE(rack.inputPowerOn());
    EXPECT_DOUBLE_EQ(rack.inputPower().value(), 0.0);
    EXPECT_DOUBLE_EQ(rack.rechargePower().value(), 0.0);
}

TEST(Rack, OpenTransitionDischargesAndRecharges)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(6.0));
    rack.loseInputPower();
    for (int s = 0; s < 45; ++s)
        rack.step(Seconds(1.0));
    EXPECT_GT(rack.shelf().meanDod(), 0.1);
    EXPECT_FALSE(rack.sawOutage());
    rack.restoreInputPower();
    EXPECT_TRUE(rack.shelf().anyCharging());
    // Input power now includes IT load plus recharge power.
    EXPECT_GT(rack.inputPower().value(), 6000.0);
    EXPECT_GT(rack.rechargePower().value(), 100.0);
}

TEST(Rack, LongOutageSetsOutageFlag)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(12.0));
    rack.loseInputPower();
    // 12 kW rack: batteries run ~148 s; step past that.
    for (int s = 0; s < 200; ++s)
        rack.step(Seconds(1.0));
    EXPECT_TRUE(rack.sawOutage());
    rack.clearOutageFlag();
    EXPECT_FALSE(rack.sawOutage());
}

TEST(Rack, InputPowerIncludesRechargeTail)
{
    Rack rack = makeRack();
    rack.setItDemand(kilowatts(6.0));
    rack.loseInputPower();
    for (int s = 0; s < 30; ++s)
        rack.step(Seconds(1.0));
    rack.restoreInputPower();
    double with_charge = rack.inputPower().value();
    // Run the charge to completion.
    for (int s = 0; s < 7200 && rack.shelf().anyCharging(); ++s)
        rack.step(Seconds(1.0));
    EXPECT_TRUE(rack.shelf().fullyCharged());
    EXPECT_LT(rack.inputPower().value(), with_charge);
    EXPECT_DOUBLE_EQ(rack.inputPower().value(), 6000.0);
}

} // namespace
} // namespace dcbatt::power
