/**
 * @file
 * Tests of the power-hierarchy topology builder, aggregation, priority
 * mixing, and open-transition scheduling.
 */

#include <gtest/gtest.h>

#include "power/topology.h"

namespace dcbatt::power {
namespace {

using util::Seconds;
using util::kilowatts;

TopologySpec
smallMsbSpec()
{
    TopologySpec spec;
    spec.rootKind = NodeKind::Msb;
    spec.sbsPerMsb = 2;
    spec.rppsPerSb = 2;
    spec.racksPerRpp = 4;
    return spec;
}

TEST(PriorityMix, CountsAreExact)
{
    auto mix = makePriorityMix(89, 142, 85);
    ASSERT_EQ(mix.size(), 316u);
    std::array<int, 3> counts{0, 0, 0};
    for (Priority p : mix)
        ++counts[static_cast<size_t>(priorityIndex(p))];
    EXPECT_EQ(counts[0], 89);
    EXPECT_EQ(counts[1], 142);
    EXPECT_EQ(counts[2], 85);
}

TEST(PriorityMix, Interleaved)
{
    // Proportional interleave: any window of 32 racks should contain
    // every priority when the classes are this balanced.
    auto mix = makePriorityMix(89, 142, 85);
    for (size_t start = 0; start + 32 <= mix.size(); start += 32) {
        std::array<int, 3> counts{0, 0, 0};
        for (size_t i = start; i < start + 32; ++i)
            ++counts[static_cast<size_t>(priorityIndex(mix[i]))];
        EXPECT_GT(counts[0], 0) << start;
        EXPECT_GT(counts[1], 0) << start;
        EXPECT_GT(counts[2], 0) << start;
    }
}

TEST(Topology, BuildsExpectedShape)
{
    Topology topo = Topology::build(smallMsbSpec(),
                                    battery::makeVariableCharger());
    EXPECT_EQ(topo.root().kind(), NodeKind::Msb);
    EXPECT_EQ(topo.racks().size(), 16u);
    EXPECT_EQ(topo.nodesOfKind(NodeKind::Sb).size(), 2u);
    EXPECT_EQ(topo.nodesOfKind(NodeKind::Rpp).size(), 4u);
    EXPECT_EQ(topo.nodesOfKind(NodeKind::RackNode).size(), 16u);
    EXPECT_EQ(topo.root().racksBelow().size(), 16u);
}

TEST(Topology, TotalRacksTruncates)
{
    TopologySpec spec = smallMsbSpec();
    spec.totalRacks = 13;
    Topology topo = Topology::build(spec,
                                    battery::makeVariableCharger());
    EXPECT_EQ(topo.racks().size(), 13u);
}

TEST(Topology, BreakersAtRightLevels)
{
    Topology topo = Topology::build(smallMsbSpec(),
                                    battery::makeVariableCharger());
    EXPECT_NE(topo.root().breaker(), nullptr);
    EXPECT_DOUBLE_EQ(topo.root().breaker()->limit().value(), 2.5e6);
    for (PowerNode *sb : topo.nodesOfKind(NodeKind::Sb)) {
        ASSERT_NE(sb->breaker(), nullptr);
        EXPECT_DOUBLE_EQ(sb->breaker()->limit().value(), 1.25e6);
    }
    for (PowerNode *rpp : topo.nodesOfKind(NodeKind::Rpp)) {
        ASSERT_NE(rpp->breaker(), nullptr);
        EXPECT_DOUBLE_EQ(rpp->breaker()->limit().value(), 190e3);
    }
    for (PowerNode *leaf : topo.nodesOfKind(NodeKind::RackNode))
        EXPECT_EQ(leaf->breaker(), nullptr);
}

TEST(Topology, PrioritiesCycled)
{
    TopologySpec spec = smallMsbSpec();
    spec.priorities = {Priority::P1, Priority::P2, Priority::P3};
    Topology topo = Topology::build(spec,
                                    battery::makeVariableCharger());
    EXPECT_EQ(topo.rack(0).priority(), Priority::P1);
    EXPECT_EQ(topo.rack(1).priority(), Priority::P2);
    EXPECT_EQ(topo.rack(2).priority(), Priority::P3);
    EXPECT_EQ(topo.rack(3).priority(), Priority::P1);
}

TEST(Topology, PowerAggregatesLeafToRoot)
{
    Topology topo = Topology::build(smallMsbSpec(),
                                    battery::makeVariableCharger());
    for (Rack *rack : topo.racks())
        rack->setItDemand(kilowatts(5.0));
    EXPECT_DOUBLE_EQ(topo.root().inputPower().value(), 16 * 5000.0);
    PowerNode *sb = topo.nodesOfKind(NodeKind::Sb)[0];
    EXPECT_DOUBLE_EQ(sb->inputPower().value(), 8 * 5000.0);
    PowerNode *rpp = topo.nodesOfKind(NodeKind::Rpp)[0];
    EXPECT_DOUBLE_EQ(rpp->inputPower().value(), 4 * 5000.0);
}

TEST(Topology, SiteScaleBuild)
{
    TopologySpec spec;
    spec.rootKind = NodeKind::Site;
    spec.buildingsPerSite = 2;
    spec.suitesPerBuilding = 1;
    spec.msbsPerSuite = 1;
    spec.sbsPerMsb = 1;
    spec.rppsPerSb = 1;
    spec.racksPerRpp = 2;
    Topology topo = Topology::build(spec,
                                    battery::makeVariableCharger());
    EXPECT_EQ(topo.root().kind(), NodeKind::Site);
    EXPECT_EQ(topo.nodesOfKind(NodeKind::Building).size(), 2u);
    EXPECT_EQ(topo.racks().size(), 4u);
}

TEST(Topology, RppRootBuild)
{
    TopologySpec spec;
    spec.rootKind = NodeKind::Rpp;
    spec.rootName = "row7";
    spec.racksPerRpp = 14;
    Topology topo = Topology::build(spec,
                                    battery::makeVariableCharger());
    EXPECT_EQ(topo.root().kind(), NodeKind::Rpp);
    EXPECT_EQ(topo.racks().size(), 14u);
    EXPECT_EQ(topo.rack(0).name(), "row7.rack00");
}

TEST(Topology, OpenTransitionAffectsOnlySubtree)
{
    Topology topo = Topology::build(smallMsbSpec(),
                                    battery::makeVariableCharger());
    PowerNode *rpp = topo.nodesOfKind(NodeKind::Rpp)[0];
    Topology::startOpenTransition(*rpp);
    int off = 0;
    for (Rack *rack : topo.racks())
        off += rack->inputPowerOn() ? 0 : 1;
    EXPECT_EQ(off, 4);
    Topology::endOpenTransition(*rpp);
    for (Rack *rack : topo.racks())
        EXPECT_TRUE(rack->inputPowerOn());
}

TEST(Topology, ScheduledOpenTransition)
{
    Topology topo = Topology::build(smallMsbSpec(),
                                    battery::makeVariableCharger());
    for (Rack *rack : topo.racks())
        rack->setItDemand(kilowatts(6.0));
    sim::EventQueue queue;
    topo.scheduleOpenTransition(queue, topo.root(),
                                sim::toTicks(Seconds(10.0)),
                                sim::toTicks(Seconds(45.0)));
    queue.runUntil(sim::toTicks(Seconds(9.0)));
    EXPECT_TRUE(topo.rack(0).inputPowerOn());
    queue.runUntil(sim::toTicks(Seconds(11.0)));
    EXPECT_FALSE(topo.rack(0).inputPowerOn());
    queue.runUntil(sim::toTicks(Seconds(56.0)));
    EXPECT_TRUE(topo.rack(0).inputPowerOn());
}

TEST(Topology, StepRacksAdvancesPhysics)
{
    Topology topo = Topology::build(smallMsbSpec(),
                                    battery::makeVariableCharger());
    for (Rack *rack : topo.racks())
        rack->setItDemand(kilowatts(6.0));
    Topology::startOpenTransition(topo.root());
    topo.stepRacks(Seconds(30.0));
    for (Rack *rack : topo.racks())
        EXPECT_GT(rack->shelf().meanDod(), 0.0);
}

TEST(Topology, ObserveBreakersTripsOverloadedRpp)
{
    TopologySpec spec = smallMsbSpec();
    spec.rppLimit = kilowatts(10.0);  // absurdly low to force a trip
    Topology topo = Topology::build(spec,
                                    battery::makeVariableCharger());
    for (Rack *rack : topo.racks())
        rack->setItDemand(kilowatts(6.0));
    for (int s = 0; s < 60; ++s)
        topo.observeBreakers(Seconds(1.0));
    EXPECT_TRUE(
        topo.nodesOfKind(NodeKind::Rpp)[0]->breaker()->tripped());
}

TEST(TopologyDeathTest, RackRootRejected)
{
    TopologySpec spec;
    spec.rootKind = NodeKind::RackNode;
    EXPECT_EXIT(Topology::build(spec, battery::makeVariableCharger()),
                testing::ExitedWithCode(1), "cannot root");
}

TEST(NodeKindNames, AllDistinct)
{
    EXPECT_STREQ(toString(NodeKind::Site), "site");
    EXPECT_STREQ(toString(NodeKind::Msb), "msb");
    EXPECT_STREQ(toString(NodeKind::Sb), "sb");
    EXPECT_STREQ(toString(NodeKind::Rpp), "rpp");
    EXPECT_STREQ(toString(NodeKind::RackNode), "rack");
}

} // namespace
} // namespace dcbatt::power
