/**
 * @file
 * Determinism contract of the sharded Monte Carlo AOR simulator: for
 * a fixed (seed, shard count, horizon), the result must be
 * bit-identical at ANY worker-thread count — the thread count is an
 * execution detail, the shard count is part of the experiment.
 */

#include <gtest/gtest.h>

#include "reliability/aor_simulator.h"
#include "util/thread_pool.h"

namespace dcbatt::reliability {
namespace {

AorConfig
shardedConfig()
{
    AorConfig config;
    config.years = 4000.0;
    config.shards = 16;
    config.seed = 2024;
    return config;
}

void
expectBitIdentical(const AorResult &a, const AorResult &b)
{
    // Exact equality on purpose: the reduction order is fixed (shard
    // index), so the floating-point sums must match to the last bit.
    EXPECT_EQ(a.aor, b.aor);
    EXPECT_EQ(a.lossOfRedundancyHoursPerYear,
              b.lossOfRedundancyHoursPerYear);
    EXPECT_EQ(a.lossEventsPerYear, b.lossEventsPerYear);
}

TEST(AorSharded, BitIdenticalAcrossThreadCounts)
{
    auto processes = paperFailureData();
    AorConfig config = shardedConfig();

    util::ThreadPool pool1(1);
    util::ThreadPool pool2(2);
    util::ThreadPool pool8(8);
    AorSimulator sim1(processes, config, &pool1);
    AorSimulator sim2(processes, config, &pool2);
    AorSimulator sim8(processes, config, &pool8);
    AorSimulator sim_nopool(processes, config, nullptr);

    for (double minutes : {10.0, 45.0, 90.0}) {
        auto r1 = sim1.aorForChargeTime(util::minutes(minutes));
        auto r2 = sim2.aorForChargeTime(util::minutes(minutes));
        auto r8 = sim8.aorForChargeTime(util::minutes(minutes));
        auto r0 = sim_nopool.aorForChargeTime(util::minutes(minutes));
        expectBitIdentical(r1, r2);
        expectBitIdentical(r1, r8);
        expectBitIdentical(r1, r0);  // no pool == same numbers
    }
}

TEST(AorSharded, RepeatedQueriesAreStable)
{
    util::ThreadPool pool(4);
    AorSimulator sim(paperFailureData(), shardedConfig(), &pool);
    auto first = sim.aorForChargeTime(util::minutes(30.0));
    auto second = sim.aorForChargeTime(util::minutes(30.0));
    expectBitIdentical(first, second);
}

TEST(AorSharded, ShardCountIsSemantic)
{
    // Different shard counts sample different histories: the results
    // must agree statistically but are not expected to be identical.
    auto processes = paperFailureData();
    AorConfig base = shardedConfig();
    base.years = 8000.0;

    AorConfig split = base;
    split.shards = 32;

    util::ThreadPool pool(2);
    AorSimulator sim16(processes, base, &pool);
    AorSimulator sim32(processes, split, &pool);
    auto r16 = sim16.aorForChargeTime(util::minutes(60.0));
    auto r32 = sim32.aorForChargeTime(util::minutes(60.0));

    EXPECT_EQ(sim16.shardCount(), 16);
    EXPECT_EQ(sim32.shardCount(), 32);
    // Both estimate the same AOR (paper: ~99.90% at 60 min).
    EXPECT_NEAR(r16.aor, r32.aor, 5e-3);
    EXPECT_GT(r16.aor, 0.9);
    EXPECT_GT(r32.aor, 0.9);
}

TEST(AorSharded, SerialPathMatchesShardsEqualOne)
{
    // shards == 1 must reproduce the legacy single-timeline numbers
    // whether or not a pool is attached.
    auto processes = paperFailureData();
    AorConfig config;
    config.years = 3000.0;
    config.seed = 7;
    config.shards = 1;

    util::ThreadPool pool(4);
    AorSimulator serial(processes, config, nullptr);
    AorSimulator pooled(processes, config, &pool);
    expectBitIdentical(serial.aorForChargeTime(util::minutes(30.0)),
                       pooled.aorForChargeTime(util::minutes(30.0)));
    // The legacy accessor is still available in single-shard mode.
    EXPECT_EQ(serial.timeline().size(), pooled.timeline().size());
}

TEST(AorSharded, ShardTimelinesCoverDisjointSubHorizons)
{
    AorConfig config = shardedConfig();
    AorSimulator sim(paperFailureData(), config, nullptr);
    const double shard_horizon_s =
        config.years * 8760.0 * 3600.0 / config.shards;
    for (int s = 0; s < sim.shardCount(); ++s) {
        for (const auto &interval : sim.shardTimeline(s)) {
            EXPECT_GE(interval.startSeconds, 0.0);
            EXPECT_LT(interval.startSeconds, shard_horizon_s);
        }
    }
}

} // namespace
} // namespace dcbatt::reliability
