/**
 * @file
 * Tests of the Table I failure data and the Monte Carlo AOR simulator,
 * pinned against Table II: the paper's charge-time SLAs correspond to
 * AOR 99.94 / 99.90 / 99.85 % at 30 / 60 / 90 minutes.
 */

#include <gtest/gtest.h>

#include "reliability/aor_simulator.h"
#include "reliability/failure_data.h"
#include "util/units.h"

namespace dcbatt::reliability {
namespace {

using util::Seconds;
using util::minutes;

TEST(FailureData, TableIRowCount)
{
    auto data = paperFailureData();
    EXPECT_EQ(data.size(), 11u);
}

TEST(FailureData, TableIValuesSpotChecked)
{
    auto data = paperFailureData();
    // Utility row.
    EXPECT_EQ(data[0].component, "utility");
    EXPECT_DOUBLE_EQ(data[0].mtbfHours, 6.39e3);
    EXPECT_DOUBLE_EQ(data[0].mttrHours, 0.6);
    EXPECT_EQ(data[0].effect, FailureEffect::OpenTransitionPair);
    // MSB corrective maintenance.
    EXPECT_DOUBLE_EQ(data[2].mtbfHours, 4.12e4);
    EXPECT_DOUBLE_EQ(data[2].mttrHours, 20.2);
    // Annual maintenance rows use the normal interval model.
    EXPECT_EQ(data[5].interval, IntervalModel::AnnualNormal);
    EXPECT_DOUBLE_EQ(data[5].mtbfHours, 8.76e3);
    // Outage rows keep the rack dark.
    EXPECT_EQ(data[8].effect, FailureEffect::Outage);
    EXPECT_DOUBLE_EQ(data[10].mtbfHours, 6.25e6);
}

TEST(FailureData, TotalEventRate)
{
    // Sum of 8760/MTBF over Table I: ~4.85 failures per year, which
    // produce ~9.7 rack power-loss episodes (2 OTs per episode).
    double rate = totalEventsPerYear(paperFailureData());
    EXPECT_NEAR(rate, 4.85, 0.1);
}

class AorTest : public ::testing::Test
{
  protected:
    static AorSimulator &
    simulator()
    {
        // Shared across tests: the timeline generation is the
        // expensive part and is immutable.
        static AorSimulator sim(paperFailureData(), config());
        return sim;
    }

    static AorConfig
    config()
    {
        AorConfig cfg;
        cfg.years = 2e4;
        cfg.seed = 7;
        return cfg;
    }
};

TEST_F(AorTest, LossEventsPerYearNearDoubleTheFailureRate)
{
    auto result = simulator().aorForChargeTime(minutes(30.0));
    // Almost every failure yields two open transitions.
    EXPECT_NEAR(result.lossEventsPerYear, 9.7, 0.3);
}

TEST_F(AorTest, TableIIAnchors)
{
    auto r30 = simulator().aorForChargeTime(minutes(30.0));
    auto r60 = simulator().aorForChargeTime(minutes(60.0));
    auto r90 = simulator().aorForChargeTime(minutes(90.0));
    // Paper Table II: 99.94 / 99.90 / 99.85 %.
    EXPECT_NEAR(r30.aor, 0.9994, 2e-4);
    EXPECT_NEAR(r60.aor, 0.9990, 2e-4);
    EXPECT_NEAR(r90.aor, 0.9985, 2e-4);
}

TEST_F(AorTest, LossOfRedundancyHoursNearTableII)
{
    auto r30 = simulator().aorForChargeTime(minutes(30.0));
    EXPECT_NEAR(r30.lossOfRedundancyHoursPerYear, 5.26, 0.6);
    auto r90 = simulator().aorForChargeTime(minutes(90.0));
    EXPECT_NEAR(r90.lossOfRedundancyHoursPerYear, 13.14, 0.6);
}

TEST_F(AorTest, AorDecreasesLinearlyInChargeTime)
{
    // Fig. 9(a): AOR falls linearly with charging time. Check the
    // slope is constant across the sweep to within a few percent.
    std::vector<double> aors;
    for (double m = 15.0; m <= 120.0; m += 15.0)
        aors.push_back(simulator().aorForChargeTime(minutes(m)).aor);
    for (size_t i = 1; i < aors.size(); ++i)
        EXPECT_LT(aors[i], aors[i - 1]);
    // Mild sublinearity is genuine: with longer recharges, more
    // recharge windows swallow the episode's paired return
    // transition. The paper's "decreases linearly" holds to ~15%.
    double first_drop = aors[0] - aors[1];
    double last_drop = aors[aors.size() - 2] - aors.back();
    EXPECT_NEAR(first_drop, last_drop, 0.20 * first_drop);
}

TEST_F(AorTest, ZeroChargeTimeStillLosesDischargeAndDarkTime)
{
    auto result = simulator().aorForChargeTime(Seconds(0.0));
    EXPECT_LT(result.aor, 1.0);
    EXPECT_GT(result.darkHoursPerYear, 0.0);
    // Dark time: ~9.7 OTs * 45 s plus rare outage repairs (~0.3 h/yr).
    EXPECT_NEAR(result.darkHoursPerYear, 0.4, 0.2);
}

TEST_F(AorTest, ChargeModelVariantUsesLossDuration)
{
    // A duration-dependent recharge (longer loss -> deeper discharge
    // -> longer recharge) must land between the fixed bounds.
    auto fixed_short = simulator().aorForChargeTime(minutes(10.0));
    auto fixed_long = simulator().aorForChargeTime(minutes(60.0));
    auto variable = simulator().aorForChargeModel(
        [](const LossInterval &loss) {
            return loss.durationSeconds > 60.0 ? minutes(60.0)
                                               : minutes(10.0);
        });
    EXPECT_LE(variable.aor, fixed_short.aor);
    EXPECT_GE(variable.aor, fixed_long.aor);
}

TEST_F(AorTest, TimelineSortedAndPositive)
{
    const auto &timeline = simulator().timeline();
    ASSERT_GT(timeline.size(), 1000u);
    for (size_t i = 1; i < timeline.size(); ++i) {
        ASSERT_LE(timeline[i - 1].startSeconds,
                  timeline[i].startSeconds);
        ASSERT_GE(timeline[i].durationSeconds, 0.0);
    }
}

TEST(AorSimulator, DeterministicInSeed)
{
    AorConfig cfg;
    cfg.years = 500.0;
    AorSimulator a(paperFailureData(), cfg);
    AorSimulator b(paperFailureData(), cfg);
    EXPECT_EQ(a.timeline().size(), b.timeline().size());
    EXPECT_DOUBLE_EQ(a.aorForChargeTime(minutes(30.0)).aor,
                     b.aorForChargeTime(minutes(30.0)).aor);
}

TEST(AorSimulator, OutageOnlyProcessKeepsRackDarkUntilRepair)
{
    std::vector<FailureProcess> processes{
        {"outage", "msb", 8760.0, 10.0, FailureEffect::Outage,
         IntervalModel::Exponential}};
    AorConfig cfg;
    cfg.years = 2000.0;
    AorSimulator sim(processes, cfg);
    auto result = sim.aorForChargeTime(Seconds(0.0));
    // One outage per year lasting ~10 h on average.
    EXPECT_NEAR(result.darkHoursPerYear, 10.0, 1.5);
    EXPECT_NEAR(result.lossEventsPerYear, 1.0, 0.15);
}

TEST(AorSimulator, OpenTransitionPairYieldsTwoEventsPerFailure)
{
    std::vector<FailureProcess> processes{
        {"corrective", "msb", 8760.0, 8.0,
         FailureEffect::OpenTransitionPair,
         IntervalModel::Exponential}};
    AorConfig cfg;
    cfg.years = 2000.0;
    AorSimulator sim(processes, cfg);
    auto result = sim.aorForChargeTime(minutes(30.0));
    EXPECT_NEAR(result.lossEventsPerYear, 2.0, 0.2);
    // Not-full time ~= 2 episodes * (45 s + 30 min) per year.
    EXPECT_NEAR(result.lossOfRedundancyHoursPerYear,
                2.0 * (45.0 / 3600.0 + 0.5), 0.2);
}

TEST(AorSimulatorDeathTest, RejectsBadHorizon)
{
    AorConfig cfg;
    cfg.years = 0.0;
    EXPECT_DEATH(AorSimulator(paperFailureData(), cfg), "horizon");
}

} // namespace
} // namespace dcbatt::reliability
