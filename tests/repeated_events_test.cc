/**
 * @file
 * Repeated-event robustness: open transitions are "the norm rather
 * than an exception" (Section II-C), so the control plane must handle
 * back-to-back events cleanly — including a second transition landing
 * *during* the recharge of the first. Exercises the controller's
 * charging-event lifecycle (override clearing between events, DOD
 * re-estimation) through the full stack.
 */

#include <gtest/gtest.h>

#include "core/priority_aware_coordinator.h"
#include "dynamo/controller.h"
#include "power/topology.h"
#include "util/random.h"

namespace dcbatt {
namespace {

using power::Priority;
using util::Seconds;

class RepeatedEventsTest : public ::testing::Test
{
  protected:
    RepeatedEventsTest()
        : coordinator_(core::SlaCurrentCalculator(
                           battery::ChargeTimeModel(),
                           core::SlaTable::paperDefault()))
    {
        power::TopologySpec spec;
        spec.rootKind = power::NodeKind::Rpp;
        spec.racksPerRpp = 8;
        spec.rppLimit = util::kilowatts(70.0);
        spec.priorities = power::makePriorityMix(3, 3, 2);
        topo_ = std::make_unique<power::Topology>(
            power::Topology::build(spec,
                                   battery::makeVariableCharger()));
        plane_ = std::make_unique<dynamo::ControlPlane>(
            *topo_, topo_->root(), queue_, &coordinator_);
        plane_->start();
        for (power::Rack *rack : topo_->racks())
            rack->setItDemand(util::kilowatts(6.0));
        physics_ = std::make_unique<sim::PeriodicTask>(
            queue_, sim::toTicks(Seconds(1.0)), [this](sim::Tick) {
                topo_->stepRacks(Seconds(1.0));
                topo_->observeBreakers(Seconds(1.0));
            });
        physics_->start(0);
    }

    void
    runUntil(double seconds)
    {
        queue_.runUntil(sim::toTicks(Seconds(seconds)));
    }

    bool
    allFull() const
    {
        for (power::Rack *rack : topo_->racks()) {
            if (!rack->shelf().fullyCharged())
                return false;
        }
        return true;
    }

    sim::EventQueue queue_;
    core::PriorityAwareCoordinator coordinator_;
    std::unique_ptr<power::Topology> topo_;
    std::unique_ptr<dynamo::ControlPlane> plane_;
    std::unique_ptr<sim::PeriodicTask> physics_;
};

TEST_F(RepeatedEventsTest, TwoSeparatedEventsBothRecover)
{
    topo_->scheduleOpenTransition(queue_, topo_->root(),
                                  sim::toTicks(Seconds(60.0)),
                                  sim::toTicks(Seconds(45.0)));
    // Well after the first recharge completes.
    topo_->scheduleOpenTransition(queue_, topo_->root(),
                                  sim::toTicks(util::hours(1.8)),
                                  sim::toTicks(Seconds(45.0)));
    runUntil(util::hours(1.5).value());
    EXPECT_TRUE(allFull());
    EXPECT_EQ(plane_->rootController().chargingEventCount(), 1);
    EXPECT_FALSE(plane_->rootController().chargingEventActive());

    runUntil(util::hours(3.5).value());
    EXPECT_TRUE(allFull());
    EXPECT_EQ(plane_->rootController().chargingEventCount(), 2);
    EXPECT_FALSE(topo_->root().breaker()->tripped());
    EXPECT_DOUBLE_EQ(plane_->totalCap().value(), 0.0);
}

TEST_F(RepeatedEventsTest, SecondTransitionDuringRechargeDeepensDod)
{
    topo_->scheduleOpenTransition(queue_, topo_->root(),
                                  sim::toTicks(Seconds(60.0)),
                                  sim::toTicks(Seconds(45.0)));
    // Mid-recharge (a few minutes in), power drops again.
    topo_->scheduleOpenTransition(queue_, topo_->root(),
                                  sim::toTicks(Seconds(400.0)),
                                  sim::toTicks(Seconds(45.0)));
    runUntil(450.0);
    // Batteries discharged twice without completing the recharge.
    for (power::Rack *rack : topo_->racks())
        EXPECT_GT(rack->shelf().meanDod(), 0.15) << rack->id();
    runUntil(util::hours(2.5).value());
    EXPECT_TRUE(allFull());
    EXPECT_FALSE(topo_->root().breaker()->tripped());
    EXPECT_DOUBLE_EQ(plane_->totalCap().value(), 0.0);
}

TEST_F(RepeatedEventsTest, DailyMaintenanceCadenceSurvivesAWeek)
{
    // One 45 s transition per simulated day for a week ("an MSB level
    // open transition takes place almost every workday").
    for (int day = 0; day < 7; ++day) {
        topo_->scheduleOpenTransition(
            queue_, topo_->root(),
            sim::toTicks(util::hours(24.0 * day + 9.0)),
            sim::toTicks(Seconds(45.0)));
    }
    // Step physics at a coarse 5 s to keep the week affordable.
    physics_->stop();
    sim::PeriodicTask coarse(queue_, sim::toTicks(Seconds(5.0)),
                             [this](sim::Tick) {
                                 topo_->stepRacks(Seconds(5.0));
                             });
    coarse.start(0);
    runUntil(util::hours(24.0 * 7.0).value());
    EXPECT_TRUE(allFull());
    EXPECT_EQ(plane_->rootController().chargingEventCount(), 7);
    EXPECT_DOUBLE_EQ(plane_->totalCap().value(), 0.0);
}

} // namespace
} // namespace dcbatt
