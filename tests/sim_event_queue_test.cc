/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace dcbatt::sim {
namespace {

TEST(SimTime, TickConversions)
{
    EXPECT_EQ(toTicks(util::Seconds(1.0)), 1'000'000);
    EXPECT_EQ(toTicks(util::Seconds(0.0000005)), 1);  // rounds
    EXPECT_DOUBLE_EQ(toSeconds(3'000'000).value(), 3.0);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue q;
    int ran = 0;
    q.schedule(10, [&] { ++ran; });
    q.schedule(100, [&] { ++ran; });
    EXPECT_EQ(q.runUntil(50), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q.now(), 50);  // clock advances to the horizon
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, ScheduleAfter)
{
    EventQueue q;
    Tick seen = -1;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelExecutedEventReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, EventsScheduledDuringRun)
{
    EventQueue q;
    std::vector<Tick> times;
    q.schedule(10, [&] {
        times.push_back(q.now());
        q.schedule(10, [&] { times.push_back(q.now()); });  // same tick
    });
    q.run();
    EXPECT_EQ(times, (std::vector<Tick>{10, 10}));
}

TEST(EventQueueDeathTest, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50, [] {}), "in the past");
}

TEST(PeriodicTask, FiresAtPeriod)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTask task(q, 10, [&](Tick now) { fires.push_back(now); });
    task.start();
    q.runUntil(35);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 20, 30}));
    EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, CustomPhase)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTask task(q, 10, [&](Tick now) { fires.push_back(now); });
    task.start(0);
    q.runUntil(25);
    EXPECT_EQ(fires, (std::vector<Tick>{0, 10, 20}));
}

TEST(PeriodicTask, StopHalts)
{
    EventQueue q;
    int count = 0;
    PeriodicTask task(q, 10, [&](Tick) { ++count; });
    task.start();
    q.runUntil(25);
    task.stop();
    EXPECT_FALSE(task.running());
    q.runUntil(100);
    EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, StopFromCallback)
{
    EventQueue q;
    int count = 0;
    PeriodicTask task(q, 10, [&](Tick) {
        if (++count == 2)
            task.stop();
    });
    task.start();
    q.runUntil(1000);
    EXPECT_EQ(count, 2);
    EXPECT_TRUE(q.empty());
}

TEST(PeriodicTask, DestructorCancels)
{
    EventQueue q;
    int count = 0;
    {
        PeriodicTask task(q, 10, [&](Tick) { ++count; });
        task.start();
        q.runUntil(15);
    }
    q.runUntil(100);
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.empty());
}

TEST(PeriodicTaskDeathTest, RejectsNonpositivePeriod)
{
    EventQueue q;
    EXPECT_DEATH(PeriodicTask(q, 0, [](Tick) {}), "positive");
}

// ---------------------------------------------------------------------
// Backend-parameterized coverage: every behavior below must hold for
// both the calendar queue and the heap escape hatch.
// ---------------------------------------------------------------------

class EventQueueBackendTest
    : public ::testing::TestWithParam<EventQueue::Backend>
{
};

INSTANTIATE_TEST_SUITE_P(
    Backends, EventQueueBackendTest,
    ::testing::Values(EventQueue::Backend::Calendar,
                      EventQueue::Backend::Heap),
    [](const auto &param_info) {
        return param_info.param == EventQueue::Backend::Calendar
            ? "Calendar"
            : "Heap";
    });

TEST_P(EventQueueBackendTest, OrderAndFifoTieBreak)
{
    EventQueue q(GetParam());
    EXPECT_EQ(q.backend(), GetParam());
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(10, [&] { order.push_back(2); });  // FIFO at same tick
    q.schedule(40, [&] { order.push_back(4); });
    EXPECT_EQ(q.run(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 40);
}

TEST_P(EventQueueBackendTest, MixedScaleGapsAndGrowth)
{
    // Dense same-tick bursts, sparse multi-second jumps, and enough
    // population to force the calendar through grow + shrink resizes.
    EventQueue q(GetParam());
    std::vector<Tick> fired;
    for (int burst = 0; burst < 8; ++burst) {
        Tick base = static_cast<Tick>(burst) * 5'000'000;
        for (int i = 0; i < 200; ++i)
            q.schedule(base + i, [&q, &fired] {
                fired.push_back(q.now());
            });
    }
    EXPECT_EQ(q.pendingCount(), 1600u);
    EXPECT_EQ(q.run(), 1600u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(fired.size(), 1600u);
    EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueBackendTest, SparseFarFutureEvents)
{
    // First delay seeds a tiny bucket width; the far-future events
    // then exercise the calendar's direct-search fallback.
    EventQueue q(GetParam());
    std::vector<Tick> fired;
    q.schedule(1, [&] { fired.push_back(q.now()); });
    q.schedule(10'000'000, [&] { fired.push_back(q.now()); });
    q.schedule(50'000'000, [&] { fired.push_back(q.now()); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(fired,
              (std::vector<Tick>{1, 10'000'000, 50'000'000}));
}

TEST_P(EventQueueBackendTest, CancellationResidueIsCompacted)
{
    EventQueue q(GetParam());
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        ids.push_back(q.schedule(1000 + i, [] {}));
    EXPECT_EQ(q.internalEntryCount(), 1000u);
    for (int i = 0; i < 999; ++i) {
        EXPECT_TRUE(q.cancel(ids[static_cast<size_t>(i)]));
        // Leak gate: dead entries never outnumber live ones beyond
        // the small compaction floor.
        EXPECT_LE(q.internalEntryCount(),
                  2 * q.pendingCount() + 16);
    }
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_LE(q.internalEntryCount(), 16u);
    EXPECT_EQ(q.run(), 1u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.internalEntryCount(), 0u);
}

TEST_P(EventQueueBackendTest, PeriodicRestartChurnStaysBounded)
{
    // Each start() cancels the previous pending event; without
    // compaction this leaks one heap/bucket entry per restart.
    EventQueue q(GetParam());
    PeriodicTask task(q, 10, [](Tick) {});
    for (int i = 0; i < 10'000; ++i)
        task.start();
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_LE(q.internalEntryCount(), 16u);
    task.stop();
}

// ---------------------------------------------------------------------
// Differential fuzz: the calendar queue must execute the exact same
// event sequence (ticks, labels, clock) as the heap reference under
// interleaved schedule / scheduleAfter / cancel / runUntil traffic,
// including callbacks that schedule more work.
// ---------------------------------------------------------------------

struct FuzzTrace
{
    std::vector<std::pair<Tick, int>> fired;
    Tick finalNow = 0;
    size_t executed = 0;
    size_t leftPending = 0;
};

FuzzTrace
runFuzz(EventQueue::Backend backend, uint64_t seed)
{
    EventQueue q(backend);
    FuzzTrace trace;
    uint64_t state = seed;
    auto rnd = [&state](uint64_t bound) {
        state = state * 6364136223846793005ULL
            + 1442695040888963407ULL;
        return (state >> 33) % bound;
    };
    int next_label = 0;
    std::function<EventQueue::Callback(int)> make_cb =
        [&](int label) -> EventQueue::Callback {
        return [&, label] {
            trace.fired.emplace_back(q.now(), label);
            // A slice of callbacks schedules follow-up work, with the
            // delay a pure function of the label so both backends see
            // identical traffic.
            if (label % 5 == 0 && next_label < 6000)
                q.scheduleAfter((label % 47) + 1,
                                make_cb(next_label++));
        };
    };
    std::vector<EventId> outstanding;
    for (int op = 0; op < 2500; ++op) {
        switch (rnd(5)) {
          case 0:
            outstanding.push_back(q.schedule(
                q.now() + static_cast<Tick>(rnd(1000)),
                make_cb(next_label++)));
            break;
          case 1:
          case 2:
            outstanding.push_back(
                q.scheduleAfter(static_cast<Tick>(rnd(5000)),
                                make_cb(next_label++)));
            break;
          case 3:
            if (!outstanding.empty()) {
                size_t pick = rnd(outstanding.size());
                q.cancel(outstanding[pick]);
                outstanding[pick] = outstanding.back();
                outstanding.pop_back();
            }
            break;
          case 4:
            trace.executed +=
                q.runUntil(q.now() + static_cast<Tick>(rnd(3000)));
            break;
        }
        // Internal-size invariant must hold mid-churn too.
        EXPECT_LE(q.internalEntryCount(),
                  2 * q.pendingCount() + 16);
    }
    trace.leftPending = q.pendingCount();
    trace.executed += q.run();
    trace.finalNow = q.now();
    return trace;
}

TEST(EventQueueDifferential, CalendarMatchesHeapReference)
{
    for (uint64_t seed : {1ULL, 42ULL, 0xfeedULL, 987654321ULL}) {
        FuzzTrace calendar =
            runFuzz(EventQueue::Backend::Calendar, seed);
        FuzzTrace heap = runFuzz(EventQueue::Backend::Heap, seed);
        EXPECT_EQ(calendar.fired, heap.fired) << "seed " << seed;
        EXPECT_EQ(calendar.finalNow, heap.finalNow) << "seed " << seed;
        EXPECT_EQ(calendar.executed, heap.executed) << "seed " << seed;
        EXPECT_EQ(calendar.leftPending, heap.leftPending)
            << "seed " << seed;
        EXPECT_FALSE(calendar.fired.empty()) << "fuzz did no work";
    }
}

} // namespace
} // namespace dcbatt::sim
