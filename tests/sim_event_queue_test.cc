/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace dcbatt::sim {
namespace {

TEST(SimTime, TickConversions)
{
    EXPECT_EQ(toTicks(util::Seconds(1.0)), 1'000'000);
    EXPECT_EQ(toTicks(util::Seconds(0.0000005)), 1);  // rounds
    EXPECT_DOUBLE_EQ(toSeconds(3'000'000).value(), 3.0);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue q;
    int ran = 0;
    q.schedule(10, [&] { ++ran; });
    q.schedule(100, [&] { ++ran; });
    EXPECT_EQ(q.runUntil(50), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q.now(), 50);  // clock advances to the horizon
    EXPECT_EQ(q.pendingCount(), 1u);
    q.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, ScheduleAfter)
{
    EventQueue q;
    Tick seen = -1;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelExecutedEventReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, EventsScheduledDuringRun)
{
    EventQueue q;
    std::vector<Tick> times;
    q.schedule(10, [&] {
        times.push_back(q.now());
        q.schedule(10, [&] { times.push_back(q.now()); });  // same tick
    });
    q.run();
    EXPECT_EQ(times, (std::vector<Tick>{10, 10}));
}

TEST(EventQueueDeathTest, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50, [] {}), "in the past");
}

TEST(PeriodicTask, FiresAtPeriod)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTask task(q, 10, [&](Tick now) { fires.push_back(now); });
    task.start();
    q.runUntil(35);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 20, 30}));
    EXPECT_TRUE(task.running());
}

TEST(PeriodicTask, CustomPhase)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTask task(q, 10, [&](Tick now) { fires.push_back(now); });
    task.start(0);
    q.runUntil(25);
    EXPECT_EQ(fires, (std::vector<Tick>{0, 10, 20}));
}

TEST(PeriodicTask, StopHalts)
{
    EventQueue q;
    int count = 0;
    PeriodicTask task(q, 10, [&](Tick) { ++count; });
    task.start();
    q.runUntil(25);
    task.stop();
    EXPECT_FALSE(task.running());
    q.runUntil(100);
    EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, StopFromCallback)
{
    EventQueue q;
    int count = 0;
    PeriodicTask task(q, 10, [&](Tick) {
        if (++count == 2)
            task.stop();
    });
    task.start();
    q.runUntil(1000);
    EXPECT_EQ(count, 2);
    EXPECT_TRUE(q.empty());
}

TEST(PeriodicTask, DestructorCancels)
{
    EventQueue q;
    int count = 0;
    {
        PeriodicTask task(q, 10, [&](Tick) { ++count; });
        task.start();
        q.runUntil(15);
    }
    q.runUntil(100);
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.empty());
}

TEST(PeriodicTaskDeathTest, RejectsNonpositivePeriod)
{
    EventQueue q;
    EXPECT_DEATH(PeriodicTask(q, 0, [](Tick) {}), "positive");
}

} // namespace
} // namespace dcbatt::sim
