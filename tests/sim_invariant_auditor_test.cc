/**
 * @file
 * Tests for the InvariantAuditor framework and for the charging
 * physical invariants registered from core/charging_invariants.h —
 * both that a clean simulation audits clean and that deliberately
 * injected violations are detected and reported.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/charging_invariants.h"
#include "power/topology.h"
#include "sim/event_queue.h"
#include "sim/invariant_auditor.h"
#include "util/units.h"

namespace dcbatt {
namespace {

using power::Priority;
using sim::AuditViolation;
using sim::EventQueue;
using sim::InvariantAuditor;
using util::Seconds;
using util::Watts;

TEST(InvariantAuditorTest, AuditsAtTheConfiguredInterval)
{
    EventQueue queue;
    InvariantAuditor auditor(queue, 100);
    int calls = 0;
    auditor.addInvariant("counter", [&](sim::AuditContext &) {
        ++calls;
    });
    auditor.start();
    queue.runUntil(1000);
    EXPECT_EQ(calls, 10);
    EXPECT_EQ(auditor.auditCount(), 10u);
    EXPECT_EQ(auditor.violationCount(), 0u);
}

TEST(InvariantAuditorTest, StopDisarmsTheTask)
{
    EventQueue queue;
    InvariantAuditor auditor(queue, 10);
    int calls = 0;
    auditor.addInvariant("counter", [&](sim::AuditContext &) {
        ++calls;
    });
    auditor.start();
    queue.runUntil(50);
    auditor.stop();
    queue.runUntil(200);
    EXPECT_EQ(calls, 5);
}

TEST(InvariantAuditorTest, ViolationsReachTheHandlerInOrder)
{
    EventQueue queue;
    InvariantAuditor auditor(queue, 10);
    auditor.addInvariant("first", [](sim::AuditContext &context) {
        context.fail("a");
        context.fail("b");
    });
    auditor.addInvariant("second", [](sim::AuditContext &context) {
        EXPECT_TRUE(context.expect(true, "never recorded"));
        EXPECT_FALSE(context.expect(false, "c"));
    });

    std::vector<AuditViolation> seen;
    auditor.setViolationHandler([&](const AuditViolation &violation) {
        seen.push_back(violation);
    });
    queue.runUntil(25);
    auditor.auditNow();

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].invariant, "first");
    EXPECT_EQ(seen[0].detail, "a");
    EXPECT_EQ(seen[1].detail, "b");
    EXPECT_EQ(seen[2].invariant, "second");
    EXPECT_EQ(seen[2].detail, "c");
    EXPECT_EQ(seen[2].when, 25);
    EXPECT_EQ(auditor.violationCount(), 3u);
    EXPECT_EQ(auditor.auditCount(), 1u);
}

/** Four racks (P1, P2, P3, P2) under one MSB. */
class ChargingInvariantsTest : public ::testing::Test
{
  protected:
    ChargingInvariantsTest()
        : topology_(power::Topology::build(
              spec(), battery::makeVariableCharger()))
    {
    }

    static power::TopologySpec
    spec()
    {
        power::TopologySpec result;
        result.sbsPerMsb = 1;
        result.rppsPerSb = 1;
        result.racksPerRpp = 4;
        result.totalRacks = 4;
        result.priorities = {Priority::P1, Priority::P2, Priority::P3,
                             Priority::P2};
        return result;
    }

    /** Discharge every rack on battery, then restore input power. */
    void
    dischargeAndRestore()
    {
        for (power::Rack *rack : topology_.racks()) {
            rack->setItDemand(util::kilowatts(6.0));
            rack->loseInputPower();
        }
        for (int i = 0; i < 60; ++i)
            topology_.stepRacks(Seconds(1.0));
        for (power::Rack *rack : topology_.racks())
            rack->restoreInputPower();
        topology_.stepRacks(Seconds(1.0));
    }

    std::vector<AuditViolation>
    audit(const core::PriorityAwareCoordinator *coordinator = nullptr)
    {
        EventQueue queue;
        InvariantAuditor auditor(queue, 1);
        core::registerChargingInvariants(auditor, topology_,
                                         coordinator);
        std::vector<AuditViolation> seen;
        auditor.setViolationHandler(
            [&](const AuditViolation &violation) {
                seen.push_back(violation);
            });
        auditor.auditNow();
        EXPECT_EQ(auditor.violationCount(), seen.size());
        return seen;
    }

    power::Topology topology_;
};

TEST_F(ChargingInvariantsTest, CleanFleetAuditsClean)
{
    for (power::Rack *rack : topology_.racks())
        rack->setItDemand(util::kilowatts(6.0));
    topology_.stepRacks(Seconds(1.0));
    EXPECT_TRUE(audit().empty());
}

TEST_F(ChargingInvariantsTest, ChargingFleetAuditsClean)
{
    dischargeAndRestore();
    ASSERT_TRUE(topology_.rack(0).shelf().anyCharging());
    EXPECT_TRUE(audit().empty());
}

TEST_F(ChargingInvariantsTest, DetectsPriorityInversion)
{
    dischargeAndRestore();
    // Deliberate inversion: postpone the P1 rack's charging while the
    // lower-priority racks keep drawing recharge power.
    topology_.rack(0).shelf().holdCharging();
    std::vector<AuditViolation> seen = audit();
    ASSERT_FALSE(seen.empty());
    for (const AuditViolation &violation : seen)
        EXPECT_EQ(violation.invariant, "priority-charging-order");
    // Three lower-priority racks still charging behind the held P1.
    EXPECT_EQ(seen.size(), 3u);
}

TEST_F(ChargingInvariantsTest, HoldingTheLowestPriorityIsLegal)
{
    dischargeAndRestore();
    // Postponing P3 (and nothing above it) honours the ordering.
    topology_.rack(2).shelf().holdCharging();
    EXPECT_TRUE(audit().empty());
}

TEST_F(ChargingInvariantsTest, DetectsConservationViolation)
{
    // The tree aggregates power on demand, so node-vs-children sums
    // cannot drift apart through the public API; to exercise the
    // detection path, drive the checker with an impossible tolerance
    // (-1 W) that no consistent tree can meet. Every comparison then
    // reads as a deliberate conservation violation.
    for (power::Rack *rack : topology_.racks())
        rack->setItDemand(util::kilowatts(6.0));
    topology_.stepRacks(Seconds(1.0));

    EventQueue queue;
    InvariantAuditor auditor(queue, 1);
    core::ChargingInvariantOptions options;
    options.conservationTolerance = Watts(-1.0);
    core::registerChargingInvariants(auditor, topology_, nullptr,
                                     options);
    std::vector<AuditViolation> seen;
    auditor.setViolationHandler([&](const AuditViolation &violation) {
        seen.push_back(violation);
    });
    auditor.auditNow();
    ASSERT_FALSE(seen.empty());
    bool found = false;
    for (const AuditViolation &violation : seen)
        found |= violation.invariant == "power-conservation";
    EXPECT_TRUE(found);
}

} // namespace
} // namespace dcbatt
