/**
 * @file
 * Region engine determinism: sharded-vs-threads and
 * sharded-vs-single-queue differential tests.
 *
 * The contract (region_engine.h) is bit-identical results — exact
 * double equality, not tolerance — for any --threads and between the
 * sharded and single-queue execution modes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "power/region_spec.h"
#include "sim/region_engine.h"
#include "util/units.h"

namespace dcbatt::sim {
namespace {

power::RegionSpec
smallSpec()
{
    power::RegionSpec spec;
    spec.name = "test-region";
    spec.buildings = 1;
    spec.suitesPerBuilding = 2;
    spec.msbs = 2;
    spec.racksPerMsb = 32;
    spec.sbsPerMsb = 2;
    spec.racksPerRpp = 16;
    spec.msbLimit = util::kilowatts(320.0);
    spec.seed = 7;
    spec.duration = util::minutes(40.0);
    spec.physicsStep = util::Seconds(1.0);
    spec.coordinationPeriod = util::Seconds(30.0);
    spec.traceStep = util::Seconds(3.0);
    spec.msbAggregateMean = util::kilowatts(200.0);
    spec.msbAggregateAmplitude = util::kilowatts(20.0);
    spec.firstOutage = util::minutes(5.0);
    spec.outageStagger = util::minutes(5.0);
    spec.targetMeanDod = 0.3;
    spec.windowSamples = 100;
    spec.maxResidentWindows = 2;
    spec.auditInterval = util::minutes(2.0);
    return spec;
}

void
expectSeriesIdentical(const util::TimeSeries &a,
                      const util::TimeSeries &b, const char *label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    EXPECT_EQ(a.start().value(), b.start().value()) << label;
    EXPECT_EQ(a.step().value(), b.step().value()) << label;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << label << " sample " << i;
}

/** Exact equality on every field — the bit-identical contract. */
void
expectResultsIdentical(const RegionResult &a, const RegionResult &b)
{
    ASSERT_EQ(a.msbs.size(), b.msbs.size());
    for (size_t i = 0; i < a.msbs.size(); ++i) {
        const RegionMsbOutcome &x = a.msbs[i];
        const RegionMsbOutcome &y = b.msbs[i];
        EXPECT_EQ(x.msbIndex, y.msbIndex);
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.racks, y.racks);
        EXPECT_EQ(x.suite, y.suite);
        EXPECT_EQ(x.building, y.building);
        EXPECT_EQ(x.peakMw, y.peakMw) << "msb " << i;
        EXPECT_EQ(x.overloadSteps, y.overloadSteps) << "msb " << i;
        EXPECT_EQ(x.budgetOverSteps, y.budgetOverSteps) << "msb " << i;
        EXPECT_EQ(x.breakerTripped, y.breakerTripped);
        EXPECT_EQ(x.meanInitialDod, y.meanInitialDod) << "msb " << i;
        EXPECT_EQ(x.racksByPriority, y.racksByPriority);
        EXPECT_EQ(x.slaMetByPriority, y.slaMetByPriority)
            << "msb " << i;
        EXPECT_EQ(x.outages, y.outages) << "msb " << i;
        EXPECT_EQ(x.everCapped, y.everCapped) << "msb " << i;
        EXPECT_EQ(x.everHeld, y.everHeld) << "msb " << i;
        EXPECT_EQ(x.meanGrantMw, y.meanGrantMw) << "msb " << i;
        EXPECT_EQ(x.minGrantMw, y.minGrantMw) << "msb " << i;
        EXPECT_EQ(x.maxGrantMw, y.maxGrantMw) << "msb " << i;
        EXPECT_EQ(x.itEnergyMwh, y.itEnergyMwh) << "msb " << i;
        EXPECT_EQ(x.rechargeEnergyMwh, y.rechargeEnergyMwh)
            << "msb " << i;
        EXPECT_EQ(x.traceWindowsGenerated, y.traceWindowsGenerated);
        EXPECT_EQ(x.traceRefetches, y.traceRefetches);
        EXPECT_EQ(x.traceEvictions, y.traceEvictions);
        EXPECT_EQ(x.tracePeakResidentBytes, y.tracePeakResidentBytes);
    }
    expectSeriesIdentical(a.itMw, b.itMw, "itMw");
    expectSeriesIdentical(a.demandItMw, b.demandItMw, "demandItMw");
    expectSeriesIdentical(a.rechargeMw, b.rechargeMw, "rechargeMw");
    expectSeriesIdentical(a.capMw, b.capMw, "capMw");
    expectSeriesIdentical(a.grantMw, b.grantMw, "grantMw");
    expectSeriesIdentical(a.unmetMw, b.unmetMw, "unmetMw");
    expectSeriesIdentical(a.regionPowerMw, b.regionPowerMw,
                          "regionPowerMw");
    EXPECT_EQ(a.peakRegionMw, b.peakRegionMw);
    EXPECT_EQ(a.coordinationTicks, b.coordinationTicks);
    EXPECT_EQ(a.budgetAudits, b.budgetAudits);
    EXPECT_EQ(a.physicalAudits, b.physicalAudits);
    EXPECT_EQ(a.tracePeakResidentBytes, b.tracePeakResidentBytes);
}

TEST(RegionEngine, ThreadCountDoesNotChangeResults)
{
    power::RegionSpec spec = smallSpec();
    RegionRunOptions one;
    one.threads = 1;
    RegionRunOptions four;
    four.threads = 4;
    RegionResult a = runRegion(spec, one);
    RegionResult b = runRegion(spec, four);
    expectResultsIdentical(a, b);
}

TEST(RegionEngine, ShardedMatchesSingleQueueReference)
{
    power::RegionSpec spec = smallSpec();
    RegionRunOptions sharded;
    sharded.threads = 2;
    RegionRunOptions reference;
    reference.singleQueue = true;
    RegionResult a = runRegion(spec, sharded);
    RegionResult b = runRegion(spec, reference);
    expectResultsIdentical(a, b);
}

TEST(RegionEngine, RunIsSane)
{
    power::RegionSpec spec = smallSpec();
    RegionResult result = runRegion(spec, {});

    ASSERT_EQ(result.msbs.size(), 2u);
    EXPECT_EQ(result.racksTotal(), 64);
    EXPECT_EQ(result.msbs[0].name, "test-region/b0/s0/msb000");
    EXPECT_EQ(result.msbs[1].name, "test-region/b0/s1/msb001");

    // 40 min at a 30 s cadence.
    EXPECT_EQ(result.coordinationTicks, 80u);
    EXPECT_EQ(result.budgetAudits, result.coordinationTicks);
    EXPECT_GT(result.physicalAudits, 0u);
    EXPECT_EQ(result.regionPowerMw.size(), result.coordinationTicks);

    for (const RegionMsbOutcome &msb : result.msbs) {
        EXPECT_FALSE(msb.breakerTripped) << msb.name;
        EXPECT_EQ(msb.overloadSteps, 0) << msb.name;
        EXPECT_EQ(msb.budgetOverSteps, 0) << msb.name;
        EXPECT_GT(msb.peakMw, 0.1) << msb.name;
        EXPECT_GT(msb.meanInitialDod, 0.0) << msb.name;
        EXPECT_GT(msb.itEnergyMwh, 0.0) << msb.name;
        EXPECT_GT(msb.rechargeEnergyMwh, 0.0) << msb.name;
        EXPECT_GT(msb.meanGrantMw, 0.0) << msb.name;
        // Streaming stats: windows were paged, memory stayed at the
        // two-window bound.
        EXPECT_GT(msb.traceWindowsGenerated, 2u) << msb.name;
        const size_t window_bytes =
            spec.windowSamples
            * static_cast<size_t>(spec.racksPerMsb) * sizeof(double);
        EXPECT_LE(msb.tracePeakResidentBytes,
                  spec.maxResidentWindows * window_bytes)
            << msb.name;
    }

    // Grants never exceed the region budget.
    double budget_mw =
        power::effectiveRegionBudget(spec).value() / 1e6;
    for (size_t i = 0; i < result.grantMw.size(); ++i)
        EXPECT_LE(result.grantMw[i], budget_mw + 1e-6);
    EXPECT_GT(result.peakRegionMw, 0.1);
}

TEST(RegionEngine, TightBudgetStillDeterministic)
{
    // Oversubscribe hard (60% of fleet rating) so the splitter is
    // binding, then re-check the threads differential under pressure.
    power::RegionSpec spec = smallSpec();
    spec.regionBudget =
        util::Watts(0.6 * spec.msbLimit.value() * spec.msbs);
    RegionRunOptions one;
    one.threads = 1;
    RegionRunOptions three;
    three.threads = 3;
    RegionResult a = runRegion(spec, one);
    RegionResult b = runRegion(spec, three);
    expectResultsIdentical(a, b);
    // The cap must actually bind somewhere for this test to mean
    // anything.
    double budget_mw = 0.6 * spec.msbLimit.value() * spec.msbs / 1e6;
    EXPECT_LE(a.grantMw.maxValue(), budget_mw + 1e-6);
}

} // namespace
} // namespace dcbatt::sim
